//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal property-testing harness with the same surface the test suites
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range/tuple/`any`/`collection::vec` strategies, and
//! [`test_runner::ProptestConfig`].
//!
//! Unlike upstream there is no shrinking and no persisted failure seeds:
//! each named test draws a deterministic stream seeded from the test name,
//! so failures reproduce exactly on re-run (but are reported as drawn, not
//! minimized). The default case count matches upstream's 256.

#![warn(missing_docs)]

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Rejection marker produced by `prop_assume!`; rejected cases are
    /// skipped, not failed.
    #[derive(Debug)]
    pub struct Rejected;

    /// Per-test configuration. Only `cases` is honoured by this stub.
    ///
    /// The default matches upstream proptest's 256 cases per property so
    /// suites written against crates.io proptest keep their intended
    /// coverage. Unlike upstream there is **no shrinking** — a failing
    /// case is reported as drawn, not minimized — and **no failure-seed
    /// persistence**; determinism comes from the name-seeded stream
    /// instead (see [`TestRng::deterministic`]).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream proptest's default.
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 stream used to drive strategy sampling; seeded from the
    /// property's name so every test has an independent, reproducible
    /// stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream for case number `case` of the property named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of entropy.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// This stub's strategies are direct samplers — no shrinking tree.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_float_strategies!(f32, f64);

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite full-range doubles; upstream also generates specials,
            // but the workspace's properties only assume finiteness.
            (rng.unit_f64() - 0.5) * 2.0 * f64::MAX.sqrt()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced re-exports matching upstream's `prop::` hierarchy.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { .. }`
/// item expands to a zero-argument test that samples its strategies for
/// `cases` deterministic cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        // The immediately-invoked closure gives `prop_assume!` a `return`
        // target; clippy flags it when the macro expands in-crate.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                // Err means prop_assume! rejected the case; move on.
                let _ = outcome;
            }
        }
    )*};
}

/// Asserts a condition inside a property; failure fails the test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::core::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_hold_bounds(x in 1.0f64..2.0, k in -5i32..=5, n in 0usize..10) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((-5..=5).contains(&k));
            prop_assert!(n < 10);
        }

        #[test]
        fn tuples_and_vecs((lo, hi) in (0.0f64..1.0, 2.0f64..3.0),
                           xs in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(lo < hi);
            prop_assert!(xs.len() < 16);
        }

        #[test]
        fn assume_rejects_cases(k in 0u32..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }
}
