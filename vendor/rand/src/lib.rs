//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand` API surface the
//! simulator actually touches: [`RngCore`], [`SeedableRng`] (including the
//! SplitMix64-expanded `seed_from_u64`), the [`Rng`] extension trait with
//! `gen`/`gen_range`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ rather than upstream's ChaCha12, so the
//! *streams differ* from crates.io `rand` — everything in this repo that
//! depends on random draws pins its own seeds and derives its expectations
//! from the same stream, so only the statistical quality matters, and
//! xoshiro256++ is more than adequate for the Gaussian/Bernoulli draws the
//! physics models make.

#![warn(missing_docs)]

use core::fmt;

/// Error type for fallible RNG operations (never produced by this stub's
/// own generators; exists so `RngCore` implementations can be written
/// against the real trait shape).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

mod distributions {
    /// Types samplable uniformly from a generator's raw words.
    pub trait Standard: Sized {
        /// Draws one value from `rng`.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random bits into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Floats that can also be drawn from the *closed* unit interval
    /// `[0, 1]` — the extra sampler inclusive `gen_range` needs so
    /// `lo..=hi` can actually return `hi` (upstream `rand` guarantees
    /// this; a half-open draw never would).
    pub trait UnitInclusive: Standard {
        /// Draws uniformly from `[0, 1]`, both endpoints reachable.
        fn sample_unit_inclusive<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl UnitInclusive for f64 {
        fn sample_unit_inclusive<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random bits scaled by 1/(2^53 − 1): hits both 0 and 1.
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }
    }

    impl UnitInclusive for f32 {
        fn sample_unit_inclusive<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
        }
    }

    impl Standard for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Uniform sampling from a range expression, as accepted by
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as distributions::Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as distributions::UnitInclusive>::sample_unit_inclusive(rng);
                let v = lo + u * (hi - lo);
                // lo + 1.0*(hi-lo) can overshoot hi by one ulp; clamp back.
                if v > hi { hi } else { v }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`; integers full-range).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the same stream as crates.io `rand`'s ChaCha12-based `StdRng`;
    /// see the crate docs for why that is acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The generator's raw xoshiro256++ state, for checkpointing.
        /// Feeding the words back through [`StdRng::from_state`] resumes
        /// the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot. The
        /// all-zero state (unreachable from any seeded generator) is
        /// remapped the same way `from_seed` remaps it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        1,
                    ],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro cannot leave the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..64).map(|_| rng.gen()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..64).map(|_| resumed.gen()).collect();
        assert_eq!(tail, resumed_tail);
        // The all-zero state maps onto the same escape state from_seed uses.
        assert_eq!(StdRng::from_state([0; 4]), StdRng::from_seed([0u8; 32]));
    }

    #[test]
    fn unit_interval_and_ranges_hold_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(r > 0.0 && r < 1.0);
            let k = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn inclusive_float_range_reaches_both_endpoints() {
        // An RngCore that yields a fixed word, to pin the extreme draws.
        struct Fixed(u64);
        impl super::RngCore for Fixed {
            fn next_u32(&mut self) -> u32 {
                (self.0 >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                dest.fill(0);
            }
        }
        // All-ones word → u = 1 exactly → hi must come back (upstream rand
        // guarantees inclusive ranges can return their upper endpoint).
        assert_eq!(Fixed(u64::MAX).gen_range(3.0f64..=7.0), 7.0);
        assert_eq!(Fixed(u64::MAX).gen_range(3.0f32..=7.0), 7.0);
        // All-zero word → lo.
        assert_eq!(Fixed(0).gen_range(3.0f64..=7.0), 3.0);
        assert_eq!(Fixed(0).gen_range(3.0f32..=7.0), 3.0);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
