//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stand-in defines `Serialize`/`Deserialize` as
//! bound-free marker traits with blanket implementations, so these derives
//! have nothing to generate: they accept the annotated item (validating
//! that the attribute parses) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
