//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes through a real format (the one JSON-ish round-trip test
//! hand-rolls its encoding). With no registry access in the build
//! container, the traits are vendored as blanket-implemented markers and
//! the derives (see `serde_derive`) expand to nothing, keeping every
//! `#[derive(serde::Serialize, serde::Deserialize)]` in the tree valid
//! without pulling in the real dependency graph.
//!
//! # ⚠️ This is NOT serde
//!
//! `Serialize` is implemented for **every** type and the derives are
//! no-ops. Do not add a format crate (`serde_json`, `bincode`, …) or write
//! code whose correctness depends on a `T: Serialize`/`DeserializeOwned`
//! bound while this stand-in is in the workspace: it will compile and
//! silently do nothing / accept everything. If the build environment ever
//! gains registry access, replace *all* of `vendor/` with the real crates
//! in one commit (see README "Vendored dependency stand-ins").

#![warn(missing_docs)]

/// Marker matching `serde::Serialize`'s role in type signatures.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker matching `serde::Deserialize`'s role in type signatures.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker matching `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
