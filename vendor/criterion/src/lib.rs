//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build container has no registry access, so the bench targets link
//! against this minimal harness instead: it runs each benchmark body a
//! fixed, small number of iterations and reports a coarse ns/iter figure.
//! It exists to keep `cargo bench` and `--all-targets` builds working, not
//! to produce statistically meaningful measurements.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body — enough for a coarse number, small
/// enough that the full suite stays fast.
const ITERS: u32 = 1_000;

/// Runs one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// Throughput annotation (accepted, unused by this stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Matches the real API's post-`criterion_group!` configuration hook.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter (stub harness)", b.ns_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored; the stub is single-shot).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring the real
/// macro's shape (an optional `config = ..; targets = ..` form is not
/// needed by this workspace).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
