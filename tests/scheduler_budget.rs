//! Does the conditioning firmware fit the LEON as *software IPs*?
//!
//! The paper's platform thesis: software peripherals with exact hardware
//! matching let designers explore before committing to silicon, because
//! "the LEON CPU … guarantees flexibility and required computational power
//! for real-time software IPs implementation". This test budgets the whole
//! control-tick workload — reference subtraction + PI, the two IIR stages,
//! the despike median, King inversion, direction and temperature decode —
//! at the 1 kHz control rate against a 40 MHz LEON, using conservative
//! per-block cycle costs.

use hotwire::isif::sched::IpTask;
use hotwire::isif::Scheduler;

struct CostedIp {
    name: &'static str,
    cycles: u32,
}

impl IpTask for CostedIp {
    fn name(&self) -> &str {
        self.name
    }
    fn cycle_cost(&self) -> u32 {
        self.cycles
    }
    fn run(&mut self) {}
}

/// Conservative LEON-cycle costs per control tick for each software IP in
/// the conditioning chain (integer ops, no FPU; King inversion via a
/// 64-entry LUT + interpolation as the ASIC would).
const WORKLOAD: &[(&str, u32)] = &[
    ("reference subtraction + PI", 120),
    ("median-5 despike", 160),
    ("0.1 Hz IIR (extended precision)", 90),
    ("king inversion (LUT + lerp)", 140),
    ("direction detector", 60),
    ("temperature decode + smoothing", 180),
    ("fault monitors", 110),
    ("telemetry pack (amortized)", 40),
];

#[test]
fn conditioning_chain_fits_the_leon_budget() {
    // 40 MHz / 1 kHz control rate = 40 000 cycles per tick.
    let mut sched = Scheduler::new(40_000).expect("budget");
    for &(name, cycles) in WORKLOAD {
        sched.add_task(Box::new(CostedIp { name, cycles }));
    }
    for _ in 0..1000 {
        sched.tick();
    }
    assert_eq!(sched.overruns(), 0, "software IPs must fit the budget");
    let utilization = sched.utilization();
    assert!(
        utilization < 0.05,
        "conditioning chain uses {:.1} % of the CPU — expected a few per cent, \
         leaving headroom for the paper's 'instantiating new ones'",
        utilization * 100.0
    );
}

#[test]
fn budget_breaks_visibly_when_oversubscribed() {
    // Sanity check of the accounting itself: 300 instances of the chain
    // cannot fit, and the scheduler must say so rather than lie.
    let mut sched = Scheduler::new(40_000).expect("budget");
    for _ in 0..300 {
        for &(name, cycles) in WORKLOAD {
            sched.add_task(Box::new(CostedIp { name, cycles }));
        }
    }
    sched.tick();
    assert_eq!(sched.overruns(), 1);
    assert!(sched.utilization() > 1.0);
}

#[test]
fn a_slower_asic_core_still_fits_at_burst_rates() {
    // The §7 ASIC could clock a small integer core at 4 MHz to save power:
    // 4 000 cycles per 1 kHz tick still holds the chain (900 cycles).
    let mut sched = Scheduler::new(4_000).expect("budget");
    for &(name, cycles) in WORKLOAD {
        sched.add_task(Box::new(CostedIp { name, cycles }));
    }
    for _ in 0..100 {
        sched.tick();
    }
    assert_eq!(sched.overruns(), 0);
    assert!(sched.utilization() < 0.3);
}
