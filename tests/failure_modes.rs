//! Failure-injection integration tests: the liquid-specific failure modes of
//! paper §4 must be *visible to the firmware's own diagnostics*, not just to
//! the simulator.

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::FlowMeter;
use hotwire::physics::fouling::{FoulingParams, Passivation};
use hotwire::physics::sensor::HeaterId;
use hotwire::physics::{MafParams, SensorEnvironment};
use hotwire::units::{Celsius, KelvinDelta, MetersPerSecond};

fn env(v_cm_s: f64) -> SensorEnvironment {
    SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(v_cm_s),
        ..SensorEnvironment::still_water()
    }
}

#[test]
fn overdriven_loop_grows_bubbles_and_flags_them() {
    // 40 K overheat in 15 °C water at 1 bar targets a 55 °C wall, above the
    // ≈40 °C outgassing onset. The closed loop then enters a relaxation
    // cycle — blanket forms → less power needed → wall cools → blanket
    // dissolves → reheats — so coverage must be tracked at its *peaks*, and
    // the corrupted signal must trip the firmware's bubble flag.
    let cfg = FlowMeterConfig {
        overheat: KelvinDelta::new(40.0),
        ..FlowMeterConfig::test_profile()
    };
    let mut m = FlowMeter::new(cfg, MafParams::nominal(), 1).expect("meter builds");
    let mut peak: f64 = 0.0;
    for _ in 0..60 {
        m.run(0.5, env(100.0));
        peak = peak.max(m.die().bubble_coverage(HeaterId::A));
    }
    assert!(peak > 0.1, "no bubbles grew: peak coverage {peak}");
    assert!(
        m.fault_latch().bubble_activity,
        "firmware failed to flag bubble activity (peak {peak}, detachments {})",
        m.die().detachment_count(HeaterId::A)
    );
}

#[test]
fn paper_configuration_stays_clean_in_the_same_water() {
    let mut m = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 1)
        .expect("meter builds");
    m.run(30.0, env(100.0));
    assert!(m.die().bubble_coverage(HeaterId::A) < 0.01);
    assert!(!m.fault_latch().bubble_activity);
}

#[test]
fn heavy_fouling_is_flagged_as_drift() {
    let params = MafParams {
        passivation: Passivation::Bare,
        fouling: FoulingParams::accelerated(),
        ..MafParams::nominal()
    };
    let mut m = FlowMeter::new(FlowMeterConfig::test_profile(), params, 2).expect("meter builds");
    // Establish a baseline, then age hard and keep measuring.
    m.run(3.0, env(100.0));
    for _ in 0..6 {
        m.die_mut().age_surfaces(24.0, Celsius::new(40.0), 0.2);
        m.run(2.0, env(100.0));
    }
    assert!(
        m.die().fouling_thickness_um(HeaterId::A) > 5.0,
        "aging did not deposit: {} µm",
        m.die().fouling_thickness_um(HeaterId::A)
    );
    assert!(
        m.fault_latch().fouling_suspected,
        "firmware failed to flag fouling drift"
    );
}

#[test]
fn flow_beyond_full_scale_saturates_the_loop_visibly() {
    let mut m = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 3)
        .expect("meter builds");
    // 20 m/s demands ~135 mW per heater — beyond the 5 V supply rail.
    let meas = m.run(5.0, env(2000.0)).expect("measures");
    assert!(
        meas.faults.loop_saturated || m.fault_latch().loop_saturated,
        "railed loop not reported (supply code {})",
        meas.supply_code
    );
}

#[test]
fn unbiased_off_time_dissolves_a_grown_blanket() {
    // Physics-level confirmation of the pulsed-drive mechanism: grow a
    // blanket by holding the wall hot in open loop, then cut the drive; the
    // off-time dissolution that the pulsed schedule exploits must clear it.
    let mut die = hotwire::physics::MafDie::in_potable_water(MafParams::nominal());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let dt = hotwire::units::Seconds::from_millis(10.0);
    let hot = hotwire::units::Watts::new(0.10); // forces the wall past onset
    for _ in 0..4000 {
        die.step(dt, hot, hot, env(100.0), &mut rng);
    }
    let grown = die.bubble_coverage(HeaterId::A);
    assert!(grown > 0.1, "precondition: coverage {grown}");
    for _ in 0..4000 {
        die.step(
            dt,
            hotwire::units::Watts::ZERO,
            hotwire::units::Watts::ZERO,
            env(100.0),
            &mut rng,
        );
    }
    assert!(
        die.bubble_coverage(HeaterId::A) < 0.3 * grown,
        "blanket did not dissolve: {} from {grown}",
        die.bubble_coverage(HeaterId::A)
    );
}
