//! End-to-end telemetry-link test: measurements produced by the conditioned
//! instrument, packed into wire records, framed over the UART model through
//! line noise, decoded at the far end, and compared against what was sent.

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::telemetry::TelemetryRecord;
use hotwire::core::FlowMeter;
use hotwire::isif::uart::FrameDecoder;
use hotwire::physics::{MafParams, SensorEnvironment};
use hotwire::units::MetersPerSecond;

#[test]
fn measurements_survive_the_telemetry_link() {
    let mut meter = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 77)
        .expect("meter builds");
    let env = SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(140.0),
        ..SensorEnvironment::still_water()
    };

    // Collect ten reporting-interval measurements. Each reporting interval
    // is one wire *burst*; bursts are separated by line idle, and noise
    // bursts (including an adversarial fake SOH with a huge false length)
    // may appear in between.
    let mut sent = Vec::new();
    let mut bursts: Vec<Vec<u8>> = Vec::new();
    for i in 0..10 {
        let m = meter.run(0.2, env).expect("control ticks ran");
        let record = TelemetryRecord::from_measurement(&m);
        sent.push(record);
        if i % 3 == 0 {
            bursts.push(vec![0xA5, 0xFF, 0xEE]); // noise burst with fake SOH
        }
        bursts.push(record.to_frame().expect("fixed payload encodes"));
    }

    // Far-end receiver: a real UART flushes framing on inter-burst idle.
    let mut decoder = FrameDecoder::new();
    let mut received = Vec::new();
    for burst in &bursts {
        decoder.flush(); // idle gap preceding every burst
        for &b in burst {
            if let Some(payload) = decoder.push(b) {
                if let Ok(r) = TelemetryRecord::from_bytes(&payload) {
                    received.push(r);
                }
            }
        }
    }
    assert_eq!(
        received.len(),
        10,
        "all framed records must decode with idle-flush framing"
    );
    // Every received record is one that was sent, in order.
    let mut sent_iter = sent.iter();
    for r in &received {
        assert!(
            sent_iter.any(|s| s == r),
            "received record not among sent (or out of order): {r:?}"
        );
    }
    // And the payloads are physically sensible.
    for r in &received {
        let v = r.velocity().to_cm_per_s();
        assert!((0.0..=260.0).contains(&v), "velocity {v} cm/s");
    }
}

#[test]
fn burst_probe_reports_over_the_link() {
    use hotwire::core::burst::{BurstConfig, BurstController};

    let meter = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 78)
        .expect("meter builds");
    let mut probe = BurstController::new(meter, BurstConfig::asic_default()).expect("schedule");
    let env = SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(90.0),
        ..SensorEnvironment::still_water()
    };
    let reading = probe.measure_once(env);
    // The probe ships its burst reading using the last conditioned
    // measurement's record.
    let m = probe
        .meter()
        .last_measurement()
        .copied()
        .expect("burst produced control ticks");
    let record = TelemetryRecord::from_measurement(&m);
    let frame = record.to_frame().expect("encodes");
    let mut decoder = FrameDecoder::new();
    let mut got = None;
    for b in frame {
        if let Some(p) = decoder.push(b) {
            got = Some(TelemetryRecord::from_bytes(&p).expect("valid record"));
        }
    }
    let got = got.expect("frame decoded");
    assert_eq!(got, record);
    // Burst reading and telemetry record tell a consistent story.
    assert!(
        (got.velocity().to_cm_per_s() - reading.speed.to_cm_per_s()).abs() < 30.0,
        "telemetry {} vs burst {}",
        got.velocity().to_cm_per_s(),
        reading.speed.to_cm_per_s()
    );
}
