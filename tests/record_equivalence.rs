//! Record-path equivalence: streaming reductions vs post-hoc full traces.
//!
//! The recorder contract (`rig::record`) promises that everything in
//! [`RunReductions`] is **bit-identical** to the same reduction computed
//! post hoc over a [`RecordPolicy::Full`] trace of the same spec — at any
//! `--jobs` count, fault schedules included. These tests pin that contract
//! for every metric the experiments consume: settled Welford statistics,
//! extra per-window Welfords, the bounded rise-time series, error RMS and
//! worst-|err|, supply-code/bubble/fouling peaks, min/max/last, and the
//! per-policy store contents (`SettledWindowOnly`, `Decimated`).

use hotwire::core::config::FlowMeterConfig;
use hotwire::rig::campaign::derive_seed;
use hotwire::rig::fault::{FaultKind, FaultSchedule};
use hotwire::rig::metrics;
use hotwire::rig::scenario::{Scenario, Schedule};
use hotwire::rig::{Campaign, LineConfig, RecordPolicy, RunOutcome, RunSpec, TraceStore, Windows};

/// Bit-level f64 equality (same-NaN counts as equal, unlike `==`).
#[track_caller]
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

/// A spec exercising every reduction at once: a 60→150 cm/s step with a
/// settled window, two extra windows, a series window across the step and
/// an error window.
fn step_spec(policy: RecordPolicy) -> RunSpec {
    let scenario = Scenario {
        flow_cm_s: Schedule::new().then_hold(60.0, 6.0).then_hold(150.0, 6.0),
        ..Scenario::steady(0.0, 12.0)
    };
    RunSpec::new(
        format!("step-{policy:?}"),
        FlowMeterConfig::test_profile(),
        scenario,
        0x0EC0,
    )
    .with_sample_period(0.02)
    .with_windows(
        Windows::settled(2.0, 3.0)
            .with_extra(1.0, 2.0)
            .with_extra(7.0, 9.0)
            .with_series(5.5, 12.0)
            .with_err(2.0, 6.0),
    )
    .with_record(policy)
}

/// An f1-style faulted spec: steady flow, a stuck ADC mid-run, plus the
/// full reduction plan.
fn faulted_spec(policy: RecordPolicy) -> RunSpec {
    RunSpec::new(
        format!("faulted-{policy:?}"),
        FlowMeterConfig::test_profile(),
        Scenario::steady(100.0, 10.0),
        derive_seed(0x0EC1, 0),
    )
    .with_sample_period(0.01)
    .with_windows(
        Windows::settled(1.0, 2.0)
            .with_extra(0.5, 1.0)
            .with_series(3.5, 8.0)
            .with_err(4.0, 7.0),
    )
    .with_config(LineConfig::new().with_faults(
        FaultSchedule::new(derive_seed(0x0EC1, 1)).with_event(
            4.0,
            2.0,
            FaultKind::AdcStuck { code: 1200 },
        ),
    ))
    .with_record(policy)
}

/// Asserts every streaming reduction in `metrics_only` equals the same
/// reduction computed post hoc over `full`'s stored trace.
fn assert_reductions_match_post_hoc(full: &RunOutcome, metrics_only: &RunOutcome, spec: &RunSpec) {
    let store: &TraceStore = &full.trace.samples;
    let red = &metrics_only.reduced;

    // The MetricsOnly store must actually be empty — that's the point.
    assert!(metrics_only.trace.samples.is_empty());
    assert_eq!(red.samples, store.len() as u64, "sample count");

    // Settled window: streaming Welford == post-hoc Welford over the
    // stored DUT column (same fold order ⇒ same bits).
    let (s0, s1) = spec.settled_window();
    assert_eq!(red.settled, store.window_stats(s0, s1), "settled window");
    assert_bits(
        red.settled.std_dev(),
        store.window_stats(s0, s1).std_dev(),
        "settled σ",
    );

    // Extra windows (e03 repeatability visits, e12 mode windows).
    assert_eq!(red.windows.len(), spec.windows.extra.len());
    for (w, &(t0, t1)) in red.windows.iter().zip(&spec.windows.extra) {
        assert_eq!(*w, store.window_stats(t0, t1), "extra window [{t0},{t1})");
    }

    // Series window (e10 / a01 rise-time input): the retained series is
    // exactly the stored columns sliced to the window, and the rise-time
    // computed from it is bit-identical.
    let (w0, w1) = spec.windows.series.expect("spec declares a series window");
    assert_eq!(red.series.ts, store.ts_in(w0, w1), "series times");
    assert_eq!(red.series.ys, store.dut_in(w0, w1), "series values");
    let streaming_rise = metrics::rise_time_split(&red.series.ts, &red.series.ys, 60.0, 150.0);
    let post_hoc_rise =
        metrics::rise_time_split(store.ts_in(w0, w1), store.dut_in(w0, w1), 60.0, 150.0);
    match (streaming_rise, post_hoc_rise) {
        (Some(a), Some(b)) => assert_bits(a, b, "rise time"),
        (a, b) => assert_eq!(a, b, "rise time presence"),
    }

    // Error window (e05): worst |dut − truth| and RMS, same fold order.
    let (e0, e1) = spec.windows.err.expect("spec declares an error window");
    let err_range = store.window(e0, e1);
    let pairs: Vec<(f64, f64)> = err_range
        .clone()
        .map(|i| (store.truth()[i], store.dut()[i]))
        .collect();
    assert_eq!(red.err_count(), pairs.len() as u64, "error-window count");
    assert_bits(red.err_rms(), metrics::rms_error(&pairs), "error RMS");
    let worst = err_range
        .map(|i| (store.dut()[i] - store.truth()[i]).abs())
        .fold(0.0, f64::max);
    assert_bits(red.err_max_abs, worst, "worst |err|");

    // Whole-run scalars (a01 rail check, e05/e11 physics peaks, f1 fault
    // accounting).
    assert_eq!(
        red.supply_code_max,
        store.supply_codes().iter().copied().max().unwrap_or(0),
        "supply-code max"
    );
    assert_bits(
        red.bubble_peak,
        store.bubble().iter().copied().fold(0.0, f64::max),
        "bubble peak",
    );
    assert_bits(
        red.fouling_peak,
        store.fouling().iter().copied().fold(0.0, f64::max),
        "fouling peak",
    );
    assert_bits(
        red.dut_min,
        store.dut().iter().copied().fold(f64::INFINITY, f64::min),
        "dut min",
    );
    assert_bits(
        red.dut_max,
        store
            .dut()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
        "dut max",
    );
    assert_eq!(
        red.fault_samples,
        store.faults().iter().filter(|&&f| f).count() as u64,
        "fault samples"
    );
    assert_eq!(red.last, store.last(), "last sample");
}

#[test]
fn metrics_only_matches_full_trace_post_hoc() {
    let specs = [
        step_spec(RecordPolicy::Full),
        step_spec(RecordPolicy::MetricsOnly),
    ];
    let outcomes = Campaign::with_jobs(2).run(&specs).expect("campaign runs");
    assert_reductions_match_post_hoc(&outcomes[0], &outcomes[1], &specs[0]);
}

#[test]
fn faulted_run_reductions_match_full_trace() {
    let specs = [
        faulted_spec(RecordPolicy::Full),
        faulted_spec(RecordPolicy::MetricsOnly),
    ];
    let outcomes = Campaign::with_jobs(2).run(&specs).expect("campaign runs");
    // The fault must actually bite, or this test proves nothing.
    assert!(outcomes[0].reduced.fault_samples > 0, "fault never fired");
    assert_reductions_match_post_hoc(&outcomes[0], &outcomes[1], &specs[0]);
}

#[test]
fn reductions_are_policy_and_jobs_invariant() {
    // Same spec, every policy, serial and parallel: six runs, one set of
    // reductions. `RunReductions` derives `PartialEq`, so this compares
    // every accumulator field (Welford state included) exactly.
    let policies = [
        RecordPolicy::Full,
        RecordPolicy::SettledWindowOnly,
        RecordPolicy::MetricsOnly,
        RecordPolicy::Decimated(4),
    ];
    let specs: Vec<RunSpec> = policies.iter().map(|&p| step_spec(p)).collect();
    let serial = Campaign::with_jobs(1).run(&specs).expect("serial runs");
    let parallel = Campaign::with_jobs(3).run(&specs).expect("parallel runs");
    let reference = &serial[0].reduced;
    for outcome in serial.iter().chain(&parallel) {
        assert_eq!(
            &outcome.reduced, reference,
            "{}: reductions drifted across policy/jobs",
            outcome.label
        );
    }
}

#[test]
fn settled_window_only_stores_exactly_the_window() {
    let specs = [
        step_spec(RecordPolicy::Full),
        step_spec(RecordPolicy::SettledWindowOnly),
    ];
    let outcomes = Campaign::new().run(&specs).expect("campaign runs");
    let full = &outcomes[0].trace.samples;
    let settled = &outcomes[1].trace.samples;
    let (s0, s1) = specs[0].settled_window();
    let window = full.window(s0, s1);
    assert_eq!(settled.len(), window.len(), "settled store size");
    assert!(settled.ts().iter().all(|&t| t >= s0 && t < s1));
    assert_eq!(settled.dut(), &full.dut()[window], "settled store contents");
}

#[test]
fn decimated_store_keeps_every_nth_sample() {
    let specs = [
        step_spec(RecordPolicy::Full),
        step_spec(RecordPolicy::Decimated(4)),
    ];
    let outcomes = Campaign::new().run(&specs).expect("campaign runs");
    let full = &outcomes[0].trace.samples;
    let thin = &outcomes[1].trace.samples;
    assert_eq!(thin.len(), full.len().div_ceil(4), "decimated store size");
    for (i, s) in thin.iter().enumerate() {
        assert_eq!(Some(s), full.get(4 * i), "decimated sample {i}");
    }
    // A decimated store still answers windowed queries over what it kept.
    let (s0, s1) = specs[0].settled_window();
    assert!(thin.window_stats(s0, s1).count() > 0);
}
