//! End-to-end integration tests spanning every crate: physics die → AFE →
//! ISIF platform → conditioning firmware → evaluation rig.

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::direction::FlowDirection;
use hotwire::core::FlowMeter;
use hotwire::physics::{MafParams, SensorEnvironment};
use hotwire::rig::campaign::FieldCalibration;
use hotwire::rig::{metrics, LineRunner, Scenario};
use hotwire::units::MetersPerSecond;

fn meter(seed: u64) -> FlowMeter {
    FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), seed)
        .expect("meter builds")
}

fn field_calibrate(m: &mut FlowMeter, setpoints_cm_s: &[f64], seed: u64) {
    FieldCalibration {
        setpoints_cm_s: setpoints_cm_s.to_vec(),
        settle_s: 0.6,
        average_s: 0.4,
        seed,
    }
    .apply(m, 1)
    .expect("calibrates");
}

#[test]
fn calibrated_meter_tracks_full_staircase() {
    let mut m = meter(1);
    field_calibrate(&mut m, &[15.0, 50.0, 100.0, 160.0, 220.0], 1);
    let mut runner = LineRunner::new(Scenario::fig11_staircase(3.0), m, 1);
    let trace = runner.run(0.05);
    // Settled tail of each dwell: tracking within a band.
    let settled: Vec<(f64, f64)> = trace
        .samples
        .iter()
        .filter(|s| (s.t / 3.0).fract() > 0.7)
        .map(|s| (s.true_cm_s, s.dut_cm_s))
        .collect();
    assert!(settled.len() > 20);
    let rms = metrics::rms_error(&settled);
    assert!(rms < 15.0, "staircase rms {rms:.2} cm/s");
}

#[test]
fn worst_case_die_is_rescued_by_field_calibration() {
    // ±1 % heater and ±1.5 % reference tolerances shift the operating point;
    // calibration against the reference meter absorbs it.
    let mut m = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::worst_case(), 2)
        .expect("meter builds");
    // A ±1 % heater mismatch dwarfs the dual-heater direction signal, so a
    // toleranced die *requires* the per-unit direction auto-zero before use.
    m.auto_zero_direction(0.5, SensorEnvironment::still_water());
    field_calibrate(&mut m, &[15.0, 60.0, 120.0, 200.0], 2);
    let mut runner = LineRunner::new(Scenario::steady(150.0, 4.0), m, 2);
    let trace = runner.run(0.02);
    let mean = metrics::mean(trace.samples.dut_in(2.0, 4.0));
    assert!(
        (mean - 150.0).abs() < 12.0,
        "worst-case die reads {mean:.1} at 150 cm/s"
    );
}

#[test]
fn calibration_survives_simulated_power_cycle() {
    let mut m = meter(3);
    field_calibrate(&mut m, &[20.0, 80.0, 180.0], 3);
    let stored = *m.calibration().expect("installed");
    // "Power cycle": reload from the CRC-protected EEPROM record.
    m.reload_calibration().expect("record intact");
    assert_eq!(*m.calibration().unwrap(), stored);
}

#[test]
fn eeprom_corruption_is_detected_not_silently_used() {
    use hotwire::core::calibration::KingCalibration;
    use hotwire::core::HealthState;

    let mut m = meter(4);
    field_calibrate(&mut m, &[20.0, 80.0, 180.0], 4);
    let stored = *m.calibration().expect("installed");
    // A corrupt primary fails its CRC but degrades to the redundant mirror
    // slot — never silently used, never fatal while a good copy survives.
    m.platform_mut()
        .eeprom_mut()
        .corrupt(KingCalibration::EEPROM_SLOT, 2);
    m.reload_calibration()
        .expect("mirror slot rescues a corrupt primary");
    assert_eq!(*m.calibration().unwrap(), stored);
    assert_eq!(m.health(), HealthState::Recovering);
    // With *both* copies gone the reload must fail loudly.
    m.platform_mut()
        .eeprom_mut()
        .corrupt(KingCalibration::EEPROM_SLOT, 2);
    m.platform_mut()
        .eeprom_mut()
        .corrupt(KingCalibration::REDUNDANT_SLOT, 2);
    assert!(
        m.reload_calibration().is_err(),
        "doubly-corrupt calibration must fail the CRC check"
    );
    assert_eq!(m.health(), HealthState::Faulted);
}

#[test]
fn direction_and_magnitude_through_the_whole_stack() {
    let mut m = meter(5);
    m.auto_zero_direction(0.5, SensorEnvironment::still_water());
    let fwd = m
        .run(
            1.5,
            SensorEnvironment {
                velocity: MetersPerSecond::from_cm_per_s(120.0),
                ..SensorEnvironment::still_water()
            },
        )
        .expect("measures");
    assert_eq!(fwd.direction, FlowDirection::Forward);
    let rev = m
        .run(
            2.0,
            SensorEnvironment {
                velocity: MetersPerSecond::from_cm_per_s(-120.0),
                ..SensorEnvironment::still_water()
            },
        )
        .expect("measures");
    assert_eq!(rev.direction, FlowDirection::Reverse);
    assert!(rev.velocity.get() < 0.0);
}

#[test]
fn whole_stack_is_deterministic() {
    fn build() -> LineRunner {
        let m = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 42)
            .expect("meter builds");
        LineRunner::new(Scenario::steady(77.0, 2.0), m, 42)
    }
    let a = build().run(0.1);
    let b = build().run(0.1);
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.dut_cm_s, y.dut_cm_s);
        assert_eq!(x.supply_code, y.supply_code);
    }
}

#[test]
fn healthy_run_raises_no_faults_and_feeds_watchdog() {
    let mut m = meter(6);
    m.run(
        2.0,
        SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(100.0),
            ..SensorEnvironment::still_water()
        },
    );
    assert!(!m.fault_latch().any(), "faults: {:?}", m.fault_latch());
    assert_eq!(m.platform_mut().watchdog_mut().reset_count(), 0);
}
