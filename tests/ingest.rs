//! Service-side ingest contracts.
//!
//! The ingest pipeline promises that the operator's fleet view is a pure
//! function of the wire: the same [`FleetSpec`] produces a bit-identical
//! merged [`IngestReport`] at any `--jobs` count — with UART corruption
//! actively mangling a subset of lines — and every census entry is backed
//! by a decoded record.

use hotwire::prelude::*;
use hotwire::rig::fault::FaultKind;
use hotwire::rig::ingest;

/// A low-rate config so three full ingest runs stay cheap in debug builds.
fn cheap_config() -> FlowMeterConfig {
    FlowMeterConfig {
        modulator_rate: Hertz::new(1000.0),
        decimation: 2,
        ..FlowMeterConfig::test_profile()
    }
}

/// Every 3rd line carries a stuck ADC *and* a full-run UART corruption
/// window, so the determinism claim is exercised where it is hardest: the
/// wire bytes themselves are seed-dependently flipped and dropped.
fn corrupt_fleet(lines: usize, duration_s: f64) -> FleetSpec {
    FleetSpec::new(
        "ingest-test",
        cheap_config(),
        Scenario::steady(90.0, duration_s),
        0x1276E57,
    )
    .with_lines(lines)
    .with_sample_period(0.02)
    .with_windows(
        Windows::settled(duration_s * 0.25, duration_s * 0.25)
            .with_err(duration_s * 0.25, f64::INFINITY),
    )
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.04)
            .with_faults_every(
                3,
                1,
                FaultSchedule::new(0)
                    .with_event(
                        duration_s * 0.5,
                        duration_s * 0.25,
                        FaultKind::AdcStuck { code: 900 },
                    )
                    .with_event(
                        0.0,
                        duration_s,
                        FaultKind::UartCorruption {
                            flip_per_byte: 0.02,
                            drop_per_byte: 0.02,
                        },
                    ),
            ),
    )
}

/// Debug formatting of every counter, census, alert and confusion count in
/// the report — f64-free, so string equality is bit equality.
fn render(report: &IngestReport) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}",
        report.lines,
        report.stats,
        report.census,
        report.truth,
        report.frames_sent,
        report.lines_silent,
        report.fidelity,
        report.sample_alerts,
    )
}

/// The satellite acceptance: the merged ingest report is bit-identical at
/// `--jobs` 1, 2 and 3 while UART corruption is actively flipping and
/// dropping wire bytes on every 3rd line.
#[test]
fn ingest_report_bit_identical_across_jobs_under_corruption() {
    let spec = corrupt_fleet(9, 2.0);
    let config = IngestConfig::for_fleet(&spec);
    let j1 = ingest::ingest_fleet(&spec, &config, 1).unwrap();
    let j2 = ingest::ingest_fleet(&spec, &config, 2).unwrap();
    let j3 = ingest::ingest_fleet(&spec, &config, 3).unwrap();

    assert_eq!(render(&j1), render(&j2), "ingest jobs 1 vs 2");
    assert_eq!(render(&j1), render(&j3), "ingest jobs 1 vs 3");

    // The corruption actually bit — this was not a clean-wire run.
    assert!(j1.stats.link.crc_errors > 0, "corruption never fired");
    assert!(
        j1.frames_sent > j1.stats.records.records,
        "nothing was lost"
    );
}

/// Census conservation: every record decoded from the wire lands in
/// exactly one census bucket, and the wire view never exceeds the truth's
/// sample count (records can be lost to corruption, never invented).
#[test]
fn wire_census_is_conservative_and_record_backed() {
    let spec = corrupt_fleet(6, 2.0);
    let config = IngestConfig::for_fleet(&spec);
    let report = ingest::ingest_fleet(&spec, &config, 2).unwrap();

    assert_eq!(report.census.total(), report.stats.records.records);
    assert!(report.census.total() <= report.truth.total());
    assert_eq!(report.truth.total(), report.frames_sent);
    assert_eq!(report.lines_silent, 0, "every line should deliver records");

    // Clean lines (2 of 3) deliver everything: overall delivery stays high
    // even with a third of the fleet on a mangled wire.
    assert!(
        report.delivery_ratio() > 0.6,
        "delivery ratio {:.3}",
        report.delivery_ratio()
    );

    // The tick-gap detector noticed the corruption-induced losses.
    assert!(report.stats.records_lost > 0, "losses went undetected");
    assert!(report.stats.alerts_raised > 0);
}

/// A clean wire decodes losslessly through a session: ingest introduces no
/// losses of its own (all loss in the corrupt tests comes from the wire).
#[test]
fn clean_wire_ingests_losslessly() {
    let mut spec = corrupt_fleet(4, 1.5);
    spec.variation.faults = None;
    let config = IngestConfig::for_fleet(&spec);
    let report = ingest::ingest_fleet(&spec, &config, 2).unwrap();

    assert_eq!(report.stats.records.records, report.frames_sent);
    assert_eq!(report.stats.link.crc_errors, 0);
    assert_eq!(report.stats.records.malformed(), 0);
    assert_eq!(report.stats.records_lost, 0);
    assert_eq!(report.stats.bytes_dropped, 0);
    assert_eq!(report.fidelity.detection_accuracy(), 1.0);
}
