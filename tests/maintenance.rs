//! Maintenance-policy integration tests: the modality-generic calibration
//! surface under the fleet engine's determinism contract. The policy
//! engine draws no RNG and acts only at frame boundaries, so a maintained
//! fleet must stay bit-identical across job counts and checkpoint
//! kill/resume exactly like an unmaintained one.

use std::ops::ControlFlow;

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::{FlowMeter, HeatPulseMeter, Meter};
use hotwire::physics::{MafParams, SensorEnvironment};
use hotwire::prelude::*;
use hotwire::units::MetersPerSecond;
use proptest::prelude::*;

fn flow_env(v_cm_s: f64) -> SensorEnvironment {
    SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(v_cm_s),
        ..SensorEnvironment::still_water()
    }
}

/// Drives a meter `frames` control frames at a constant operating point.
fn warm(meter: &mut dyn Meter, frames: u32, v_cm_s: f64) {
    let env = flow_env(v_cm_s);
    for _ in 0..frames {
        let _ = meter.step_frame(env);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `re_zero` with nothing to zero is an *exact* state no-op on both
    /// sensing modalities: when the drift estimate is 0.0 the digest must
    /// not move, and after any re-zero the estimate is 0.0 — so a second
    /// re-zero never moves the digest either. This is what makes an
    /// over-eager maintenance policy harmless rather than corrosive.
    #[test]
    fn re_zero_under_zero_drift_is_a_digest_noop(
        seed in 0u64..500,
        v in 20.0f64..240.0,
        frames in 5u32..60,
    ) {
        let config = FlowMeterConfig::test_profile();
        let cta = FlowMeter::new(config, MafParams::nominal(), seed).unwrap();
        let pulse = HeatPulseMeter::new(config, seed).unwrap();
        let meters: [Box<dyn Meter>; 2] = [Box::new(cta), Box::new(pulse)];
        for mut meter in meters {
            warm(meter.as_mut(), frames, v);
            if meter.drift_estimate() == 0.0 {
                let before = meter.state_digest();
                meter.re_zero();
                prop_assert_eq!(
                    meter.state_digest(), before,
                    "zero-drift re_zero moved the digest: {:?}", meter
                );
            }
            meter.re_zero();
            prop_assert_eq!(meter.drift_estimate(), 0.0);
            let anchored = meter.state_digest();
            meter.re_zero();
            prop_assert_eq!(
                meter.state_digest(), anchored,
                "second re_zero moved the digest: {:?}", meter
            );
        }
    }
}

/// Persist / power-cycle round trip through the *trait* surface — the
/// unification the calibration API redesign promises: identical calling
/// code services the CTA EEPROM record and the heat-pulse one.
#[test]
fn dyn_meter_persist_and_reload_round_trip() {
    let config = FlowMeterConfig::test_profile();
    let cta = FlowMeter::new(config, MafParams::nominal(), 11).unwrap();
    let pulse = HeatPulseMeter::new(config, 11).unwrap();
    let meters: [Box<dyn Meter>; 2] = [Box::new(cta), Box::new(pulse)];
    for mut meter in meters {
        warm(meter.as_mut(), 20, 120.0);
        let wear = meter.calibration_wear();
        meter.persist().expect("factory calibration persists");
        assert_eq!(
            meter.calibration_wear(),
            wear + 1,
            "one persist = one write cycle per slot: {meter:?}"
        );
        let digest = meter.state_digest();
        meter
            .reload_calibration()
            .expect("persisted record survives a power cycle");
        assert_eq!(
            meter.state_digest(),
            digest,
            "reloading the just-persisted record must be a no-op"
        );
        meter.persist().expect("second persist");
        assert_eq!(meter.calibration_wear(), wear + 2);
    }
}

/// A maintained, faulted fleet on a drifting season: CaCO₃ steps on every
/// third line under a winter→summer ramp, serviced by `Policy::Hybrid`.
fn maintained_fleet(modality: Modality, lines: usize) -> FleetSpec {
    let duration_s = 6.0;
    let maintenance = Maintenance::new(Policy::Hybrid {
        period_s: 1.5,
        on_degraded: true,
        drift_threshold: 0.01,
        temp_delta_c: 4.0,
    })
    .with_min_service_interval(0.2)
    .with_persist_min_interval(0.5);
    let fouling = FaultSchedule::new(0)
        .with_event(1.5, 0.0, FaultKind::SteppedFouling { microns: 8.0 })
        .with_event(3.5, 0.0, FaultKind::SteppedFouling { microns: 8.0 });
    FleetSpec::new(
        format!("maintained-{}", modality.name()),
        FlowMeterConfig::test_profile(),
        Scenario::temperature_ramp(100.0, 12.0, 30.0, duration_s),
        0x4D41_1147,
    )
    .with_config(
        LineConfig::new()
            .with_modality(modality)
            .with_maintenance(maintenance),
    )
    .with_lines(lines)
    .with_batch_size(3)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(0.5, 1.2).with_err(0.5, f64::INFINITY))
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.04)
            .with_faults_every(3, 1, fouling),
    )
}

/// Jobs-invariance with the policy engine live: the maintained, faulted
/// fleet folds to identical bits at --jobs 1, 2 and 3 on both modalities,
/// and the policy demonstrably acted (the invariance is not vacuous).
#[test]
fn hybrid_maintained_fleet_is_jobs_invariant_on_both_modalities() {
    for modality in [Modality::Cta, Modality::HeatPulse] {
        let spec = maintained_fleet(modality, 9);
        let j1 = spec.run_jobs(1).unwrap();
        assert!(
            j1.aggregates.maintenance.actions() > 0,
            "{}: hybrid policy never acted: {:?}",
            modality.name(),
            j1.aggregates.maintenance
        );
        for jobs in [2usize, 3] {
            let jn = spec.run_jobs(jobs).unwrap();
            assert_eq!(
                format!("{:?}", j1.aggregates),
                format!("{:?}", jn.aggregates),
                "{} aggregates diverged at jobs {jobs}",
                modality.name()
            );
            for (a, b) in j1.lines.iter().zip(&jn.lines) {
                assert_eq!(a.meter_digest, b.meter_digest, "line {}", a.line);
                assert_eq!(a.maintenance, b.maintenance, "line {}", a.line);
            }
        }
    }
}

/// Kill/resume bit-identity with in-flight policy state: a maintained
/// fleet interrupted mid-run and resumed from its checkpoint (which
/// carries the finished lines' maintenance counters through the v2 codec)
/// finishes identical to the uninterrupted run.
#[test]
fn maintained_fleet_resumes_bit_identical_after_kill() {
    let dir = std::env::temp_dir().join("hotwire-maintenance-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    for modality in [Modality::Cta, Modality::HeatPulse] {
        let spec = maintained_fleet(modality, 9);
        let uninterrupted = spec.run_jobs(2).unwrap();
        let path = dir.join(format!("{}.ck", modality.name()));
        let _ = std::fs::remove_file(&path);
        let stopped = spec.run_checkpointed_with(&path, 1, 2, |progress| {
            if progress.completed_lines >= 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(
            matches!(stopped, Err(FleetError::Interrupted(_))),
            "{}: expected an interrupted run",
            modality.name()
        );
        let resumed = spec.run_checkpointed(&path, 1, 2).unwrap();
        assert_eq!(
            format!("{:?}", uninterrupted.aggregates),
            format!("{:?}", resumed.aggregates),
            "{}: resume diverged from the uninterrupted run",
            modality.name()
        );
        assert!(resumed.aggregates.maintenance.actions() > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
