//! Integration tests for the deterministic observability layer: firmware
//! events surfaced through `core::obs::Observer`, per-run counters and
//! histograms collected by the rig, campaign-wide merges, and the
//! process-wide per-experiment registry behind `repro --json`.

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::EventKind;
use hotwire::rig::campaign::derive_seed;
use hotwire::rig::fault::{FaultKind, FaultSchedule};
use hotwire::rig::obs;
use hotwire::rig::{Campaign, LineConfig, RunSpec, Scenario};

fn base_spec(label: &str, seed_index: u64) -> RunSpec {
    RunSpec::new(
        label.to_string(),
        FlowMeterConfig::test_profile(),
        Scenario::steady(100.0, 2.5),
        derive_seed(0x0B5E, seed_index),
    )
    .with_windows((1.0, 1.0))
}

#[test]
fn fault_runs_emit_cause_then_consequence_events() {
    // An ADC freeze plus an EEPROM bit flip: the injector must report both
    // activations through the meter's observer, and the EEPROM flip's
    // forced calibration reload must land *after* its cause.
    let spec = base_spec("obs-fault-events", 1).with_config(
        LineConfig::new().with_faults(
            FaultSchedule::new(derive_seed(0x0B5E, 101))
                .with_event(0.5, 0.5, FaultKind::AdcStuck { code: 900 })
                .with_event(1.2, 0.2, FaultKind::EepromBitFlip { slot: 0, byte: 3 }),
        ),
    );
    let outcome = Campaign::with_jobs(1).run(&[spec]).unwrap().remove(0);
    let obs = outcome.trace.obs.expect("observability on by default");

    let activated: Vec<&'static str> = obs
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FaultActivated { fault } => Some(fault),
            _ => None,
        })
        .collect();
    assert_eq!(activated, ["adc_stuck", "eeprom_bit_flip"]);
    assert_eq!(obs.counters.faults_activated, 2);
    assert!(
        obs.counters.faults_cleared >= 1,
        "windowed faults must report clearing"
    );

    // The bit flip forces a reload; whichever slot served it, exactly the
    // counters and an event must agree on what happened.
    let reload_events = obs
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::CalibrationReloaded { .. } | EventKind::CalibrationReloadFailed
            )
        })
        .count() as u64;
    assert!(reload_events >= 1, "forced reload not observed");
    assert_eq!(
        obs.counters.calibration_reloads + obs.counters.calibration_failures,
        reload_events
    );

    // Cause precedes consequence: the first reload-ish event may not come
    // before the eeprom activation that triggered it.
    let eeprom_at = obs
        .events
        .iter()
        .position(|e| {
            matches!(
                e.kind,
                EventKind::FaultActivated {
                    fault: "eeprom_bit_flip"
                }
            )
        })
        .unwrap();
    let reload_at = obs
        .events
        .iter()
        .position(|e| {
            matches!(
                e.kind,
                EventKind::CalibrationReloaded { .. } | EventKind::CalibrationReloadFailed
            )
        })
        .unwrap();
    assert!(reload_at > eeprom_at, "reload event precedes its cause");

    // Event logs are chronological: control-tick stamps never go backwards.
    assert!(
        obs.events.windows(2).all(|w| w[0].tick <= w[1].tick),
        "event ticks not monotonic"
    );
}

#[test]
fn uart_corruption_is_counted_and_logged() {
    // Heavy bit-flip probability over most of the run: some telemetry
    // frames must fail CRC, and counter and event log must agree.
    let spec = base_spec("obs-uart-errors", 2).with_config(LineConfig::new().with_faults(
        FaultSchedule::new(derive_seed(0x0B5E, 102)).with_event(
            0.2,
            2.0,
            FaultKind::UartCorruption {
                flip_per_byte: 0.05,
                drop_per_byte: 0.0,
            },
        ),
    ));
    let outcome = Campaign::with_jobs(1).run(&[spec]).unwrap().remove(0);
    let obs = outcome.trace.obs.expect("observability on by default");
    assert!(
        obs.counters.uart_frame_errors > 0,
        "no CRC errors under 5 %/byte flips"
    );
    let logged = obs
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::UartFrameError))
        .count() as u64;
    // The bounded event log may drop tail events, but counters absorb only
    // what the log retained, so retained events and counter must match.
    assert_eq!(obs.counters.uart_frame_errors, logged);
}

#[test]
fn disabling_observability_leaves_the_trace_bare() {
    let spec = base_spec("obs-disabled", 3).without_obs();
    let outcome = Campaign::with_jobs(1).run(&[spec]).unwrap().remove(0);
    assert!(outcome.trace.obs.is_none());
    // And the run itself is unaffected: same trace as an observed twin.
    let observed = Campaign::with_jobs(1)
        .run(&[base_spec("obs-disabled", 3)])
        .unwrap()
        .remove(0);
    assert!(observed.trace.obs.is_some());
    assert_eq!(
        outcome.trace.samples.len(),
        observed.trace.samples.len(),
        "observer changed the run length"
    );
    for (a, b) in outcome.trace.samples.iter().zip(&observed.trace.samples) {
        assert_eq!(a.dut_cm_s.to_bits(), b.dut_cm_s.to_bits());
        assert_eq!(a.supply_code, b.supply_code);
    }
}

#[test]
fn merged_snapshots_are_jobs_invariant_under_faults() {
    // The acceptance criterion stated at the campaign layer, checked here
    // through the public facade: merged obs snapshots (counters,
    // histograms, labelled event logs) are bit-identical across --jobs 1
    // and --jobs 4, fault schedules included.
    let specs: Vec<RunSpec> = (0..4)
        .map(|i| {
            base_spec(&format!("obs-jobs-{i}"), 10 + i as u64).with_config(
                LineConfig::new().with_faults(
                    FaultSchedule::new(derive_seed(0x0B5E, 200 + i as u64))
                        .with_event(0.4, 0.4, FaultKind::AdcStuck { code: 700 + 50 * i })
                        .with_event(
                            0.2,
                            2.0,
                            FaultKind::UartCorruption {
                                flip_per_byte: 0.02,
                                drop_per_byte: 0.02,
                            },
                        ),
                ),
            )
        })
        .collect();
    let serial = Campaign::with_jobs(1).run(&specs).unwrap();
    let parallel = Campaign::with_jobs(4).run(&specs).unwrap();
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.trace.obs, b.trace.obs, "{}", a.label);
    }
    let merged_serial = obs::merge_outcomes(&serial);
    let merged_parallel = obs::merge_outcomes(&parallel);
    assert_eq!(merged_serial, merged_parallel);
    // The merge preserved spec order in the labelled event stream.
    assert_eq!(merged_serial.runs, 4);
    let first_labels: Vec<&str> = merged_serial
        .events
        .iter()
        .map(|(label, _)| label.as_str())
        .collect();
    let mut sorted = first_labels.clone();
    sorted.sort();
    assert_eq!(first_labels, sorted, "events not in spec-label order");
    // Histograms saw every control tick.
    assert_eq!(
        merged_serial.latency_ticks.total,
        merged_serial.counters.control_ticks
    );
    assert_eq!(
        merged_serial.pi_output.total,
        merged_serial.counters.control_ticks
    );
}

#[test]
fn registry_scopes_capture_campaigns_run_inside_them() {
    // The registry is process-global (shared by every test in this
    // binary), so this test uses a unique scope label and reads through
    // `registry_snapshot` rather than draining.
    let label = "obs-itest-scope-4c1d";
    let specs: Vec<RunSpec> = (0..2)
        .map(|i| base_spec(&format!("obs-reg-{i}"), 20 + i as u64))
        .collect();
    let outcomes = obs::scoped(label, || Campaign::with_jobs(2).run(&specs).unwrap());
    assert_eq!(outcomes.len(), 2);

    let registry = obs::registry_snapshot();
    let scope = registry.get(label).expect("scope recorded");
    assert_eq!(scope.campaigns, 1);
    assert_eq!(scope.runs, 2);
    assert!(scope.counters.modulator_steps > 0);
    assert!(scope.wall_s > 0.0, "campaign wall-clock not profiled");
    assert!(scope.samples_per_s().is_finite());
    // Scope accumulation matched what the outcomes themselves carry.
    let merged = obs::merge_outcomes(&outcomes);
    assert_eq!(scope.counters, merged.counters);
    assert_eq!(scope.pi_output, merged.pi_output);

    // Campaigns run *outside* any scope must not have leaked in: the scope
    // saw exactly one campaign even though other tests run campaigns too.
    let unscoped = Campaign::with_jobs(1)
        .run(&[base_spec("obs-reg-unscoped", 30)])
        .unwrap();
    assert!(unscoped[0].trace.obs.is_some());
    let after = obs::registry_snapshot();
    assert_eq!(after.get(label).expect("still there").campaigns, 1);
}
