//! Trait-genericity coverage: the generic `Meter` refactor must leave the
//! CTA path bit-identical. The spec below was run on the pre-refactor
//! engine (hard-coded `FlowMeter`) and its per-line meter digests pinned;
//! the generic `LineRunner<M>` must reproduce them exactly at any job
//! count. The rest of the suite drives the non-CTA modalities through the
//! *unmodified* fleet, campaign and checkpoint engines.

use std::ops::ControlFlow;

use hotwire::prelude::*;

/// Per-line meter digests of `faulted_spec()` captured on the
/// pre-refactor engine (commit with `LineRunner` hard-wired to
/// `FlowMeter`), identical at jobs 1, 2 and 3.
///
/// Re-pinned when the digest schema grew the calibration-surface words
/// (installed King fit, drift monitor, calibration tick — 30 → 37
/// words): the meter *behavior* is unchanged, but every absolute digest
/// value moved with the schema.
const PRE_REFACTOR_DIGESTS: [u64; 9] = [
    0x4a04639dec284e32,
    0xb6edb89026a1295d,
    0x7124b5f69df296e9,
    0x10edab2e6b2fc31d,
    0x63fbdc34c6ffc704,
    0x3b5d16112aea090b,
    0x48d8e525c2de6c02,
    0x2e076c00458a40ee,
    0x0dbb1d8958392c9b,
];

/// A faulted fleet spec exercising the full fault matrix: windowed ADC and
/// supply faults, an EEPROM impulse, UART corruption, and physics events.
fn faulted_spec() -> FleetSpec {
    let schedule = FaultSchedule::new(0)
        .with_event(1.0, 0.8, FaultKind::AdcStuck { code: 1200 })
        .with_event(2.0, 0.6, FaultKind::SupplyBrownout { fraction: 0.6 })
        .with_event(2.2, 0.0, FaultKind::EepromBitFlip { slot: 0, byte: 3 })
        .with_event(
            2.6,
            1.0,
            FaultKind::UartCorruption {
                flip_per_byte: 0.01,
                drop_per_byte: 0.005,
            },
        )
        .with_event(3.2, 0.0, FaultKind::BubbleBurst { coverage: 0.3 })
        .with_event(3.5, 0.0, FaultKind::SteppedFouling { microns: 2.0 });
    FleetSpec::new(
        "meter-trait-pin",
        FlowMeterConfig::test_profile(),
        Scenario::steady(100.0, 4.5),
        0x4D31_7E57,
    )
    .with_lines(9)
    .with_sample_period(0.05)
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.05)
            .with_faults_every(3, 1, schedule),
    )
}

/// The tentpole acceptance: the faulted CTA fleet through the generic
/// `Meter` engine reproduces the pre-refactor per-line digests exactly —
/// meter RNG lanes, fault responses, calibration reloads and health
/// transitions included — at jobs 1, 2 and 3.
#[test]
fn cta_digests_match_the_pre_refactor_engine_at_any_jobs() {
    let spec = faulted_spec();
    for jobs in [1usize, 2, 3] {
        let outcome = spec.run_jobs(jobs).expect("fleet run");
        let digests: Vec<u64> = outcome.lines.iter().map(|l| l.meter_digest).collect();
        assert_eq!(
            digests, PRE_REFACTOR_DIGESTS,
            "CTA digests diverged from the pre-refactor engine at jobs {jobs}"
        );
    }
}

/// `Meter` must stay object-safe: heterogeneous meter collections (mixed
/// racks behind one ingest head) box the trait.
#[test]
fn meter_trait_is_object_safe() {
    fn assert_dyn(_: &dyn Meter) {}
    let config = FlowMeterConfig::test_profile();
    let cta = FlowMeter::new(config, MafParams::nominal(), 7).unwrap();
    let pulse = HeatPulseMeter::new(config, 7).unwrap();
    assert_dyn(&cta);
    assert_dyn(&pulse);
    let rack: Vec<Box<dyn Meter>> = vec![Box::new(cta), Box::new(pulse)];
    for meter in &rack {
        assert!(meter.full_scale().get() > 0.0);
        assert_eq!(meter.health(), HealthState::Healthy);
    }
}

/// A heat-pulse fleet runs under the unmodified fleet engine (same
/// batching, same aggregation fold) and stays jobs-invariant.
#[test]
fn heat_pulse_fleet_is_jobs_invariant() {
    let spec = FleetSpec::new(
        "hp-fleet",
        FlowMeterConfig::test_profile(),
        Scenario::steady(100.0, 6.0),
        0xB0A7,
    )
    .with_config(LineConfig::new().with_modality(Modality::HeatPulse))
    .with_lines(8)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(2.0, 4.0).with_err(2.0, f64::INFINITY))
    .with_variation(LineVariation::new().with_flow_jitter(0.04));
    let j1 = spec.run_jobs(1).unwrap();
    let j2 = spec.run_jobs(2).unwrap();
    let j3 = spec.run_jobs(3).unwrap();
    for (other, what) in [(&j2, "jobs 2"), (&j3, "jobs 3")] {
        assert_eq!(
            format!("{:?}", j1.aggregates),
            format!("{:?}", other.aggregates),
            "heat-pulse aggregates diverge at {what}"
        );
        for (a, b) in j1.lines.iter().zip(&other.lines) {
            assert_eq!(a.meter_digest, b.meter_digest, "line {} at {what}", a.line);
        }
    }
    // The meters actually decoded flow. Like a factory-calibrated hot
    // wire, the heat-pulse meter reports the velocity at the probe —
    // centerline, i.e. bulk × the turbulent profile factor.
    let probe = 100.0 * ReferenceMeter::profile_factor();
    for line in &j1.lines {
        assert!(
            (line.settled_mean - probe).abs() < 0.2 * probe,
            "line {} settled at {:.1} cm/s (probe setpoint {probe:.1})",
            line.line,
            line.settled_mean
        );
    }
}

/// A mixed-modality fleet — CTA DUTs with every 4th line replaced by a
/// Promag reference comparator — runs under the unmodified engine,
/// stays jobs-invariant, and the reference lines track truth tighter
/// than the DUT population.
#[test]
fn mixed_modality_fleet_mixes_reference_comparators() {
    let spec = FleetSpec::new(
        "mixed-fleet",
        FlowMeterConfig::test_profile(),
        Scenario::steady(120.0, 4.0),
        0x3A1D,
    )
    .with_lines(8)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(1.5, 2.5).with_err(1.5, f64::INFINITY))
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.03)
            .with_references_every(4, 3, ReferenceKind::Promag),
    );
    let j1 = spec.run_jobs(1).unwrap();
    let j3 = spec.run_jobs(3).unwrap();
    assert_eq!(
        format!("{:?}", j1.aggregates),
        format!("{:?}", j3.aggregates),
        "mixed-modality aggregates diverge across jobs"
    );
    // Lines 3 and 7 ran the Promag; the electromagnetic reference resolves
    // bulk flow with less noise than any hot-wire DUT in the population.
    let reference_err: Vec<f64> = j1
        .lines
        .iter()
        .filter(|l| l.line % 4 == 3)
        .map(|l| l.err_rms)
        .collect();
    let dut_err: Vec<f64> = j1
        .lines
        .iter()
        .filter(|l| l.line % 4 != 3)
        .map(|l| l.err_rms)
        .collect();
    assert_eq!(reference_err.len(), 2);
    assert_eq!(dut_err.len(), 6);
    let ref_worst = reference_err.iter().cloned().fold(0.0, f64::max);
    let dut_best = dut_err.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        ref_worst < dut_best,
        "reference lines (worst {ref_worst:.2} cm/s RMS) should out-resolve \
         every DUT line (best {dut_best:.2} cm/s RMS)"
    );
}

/// A heat-pulse fleet interrupted between batches resumes from its
/// checkpoint with the uninterrupted run's exact bits — the checkpoint
/// layer needs nothing modality-specific.
#[test]
fn heat_pulse_fleet_checkpoint_resumes_bit_identically() {
    let dir = std::env::temp_dir().join("hotwire-hp-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hp.ck");
    let _ = std::fs::remove_file(&path);
    let spec = FleetSpec::new(
        "hp-resume",
        FlowMeterConfig::test_profile(),
        Scenario::steady(80.0, 3.0),
        0xC4EC,
    )
    .with_config(LineConfig::new().with_modality(Modality::HeatPulse))
    .with_lines(9)
    .with_batch_size(3)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(1.0, 2.0));
    let uninterrupted = spec.run_jobs(2).unwrap();
    let stopped = spec.run_checkpointed_with(&path, 1, 2, |progress| {
        if progress.completed_lines >= 3 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    assert!(
        matches!(stopped, Err(FleetError::Interrupted(_))),
        "expected an interrupted run"
    );
    let resumed = spec.run_checkpointed(&path, 1, 2).unwrap();
    assert_eq!(
        format!("{:?}", uninterrupted.aggregates),
        format!("{:?}", resumed.aggregates),
        "heat-pulse resume diverged from the uninterrupted run"
    );
    for (a, b) in uninterrupted.lines.iter().zip(&resumed.lines) {
        assert_eq!(a.meter_digest, b.meter_digest, "line {} meter", a.line);
    }
    std::fs::remove_file(&path).unwrap();
}

/// A heat-pulse spec through the campaign path: same `RunSpec` surface,
/// no CTA-specific steps, deterministic across replicas.
#[test]
fn heat_pulse_campaign_run_is_deterministic() {
    let spec = RunSpec::new(
        "hp-campaign",
        FlowMeterConfig::test_profile(),
        Scenario::steady(150.0, 5.0),
        99,
    )
    .with_config(LineConfig::new().with_modality(Modality::HeatPulse))
    .with_windows((2.0, 3.0));
    let a = spec.execute().unwrap();
    let b = spec.execute().unwrap();
    assert_eq!(
        a.settled_mean().to_bits(),
        b.settled_mean().to_bits(),
        "replica runs diverge"
    );
    assert_eq!(a.meter.state_digest(), b.meter.state_digest());
    assert!(
        a.meter.as_heat_pulse().is_some(),
        "modality carried through"
    );
    // Factory heat-pulse decode reports probe (centerline) velocity.
    let probe = 150.0 * ReferenceMeter::profile_factor();
    assert!(
        (a.settled_mean() - probe).abs() < 0.15 * probe,
        "heat-pulse campaign read {:.1} cm/s for a probe setpoint of {probe:.1}",
        a.settled_mean()
    );
    // Duty-cycled power: orders of magnitude below the CTA hot wire.
    let cta = RunSpec::new(
        "cta-campaign",
        FlowMeterConfig::test_profile(),
        Scenario::steady(150.0, 5.0),
        99,
    )
    .with_windows((2.0, 3.0))
    .execute()
    .unwrap();
    assert!(
        a.meter.power_draw().get() < 0.2 * cta.meter.power_draw().get(),
        "heat-pulse draw {:.2} mW should sit far below CTA draw {:.2} mW",
        a.meter.power_draw().get() * 1e3,
        cta.meter.power_draw().get() * 1e3
    );
}
