//! Fleet engine contracts.
//!
//! The fleet promises two things no matter how it is scheduled:
//!
//! * **determinism** — the same [`FleetSpec`] produces bit-identical
//!   aggregates and per-line summaries at any `--jobs` count, fault
//!   schedules on a subset of lines included;
//! * **O(lines) memory** — every line is forced to `MetricsOnly`, so a
//!   1000-line fleet holds zero trace bytes.

use hotwire::prelude::*;

/// A low-rate config so the 1000-line test stays cheap in debug builds
/// (the contracts under test don't depend on silicon rates).
fn cheap_config() -> FlowMeterConfig {
    FlowMeterConfig {
        modulator_rate: Hertz::new(1000.0),
        decimation: 2,
        ..FlowMeterConfig::test_profile()
    }
}

/// A fleet with per-line demand jitter and a fault schedule striking
/// every 4th line — the full variation surface in one template.
fn faulted_fleet(lines: usize, duration_s: f64, onset_s: f64, window_s: f64) -> FleetSpec {
    FleetSpec::new(
        "fleet-test",
        cheap_config(),
        Scenario::steady(90.0, duration_s),
        0xF1EE7,
    )
    .with_lines(lines)
    .with_sample_period(0.05)
    .with_windows(
        Windows::settled(duration_s * 0.25, duration_s * 0.25)
            .with_err(duration_s * 0.25, f64::INFINITY),
    )
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.04)
            .with_faults_every(
                4,
                1,
                FaultSchedule::new(0).with_event(
                    onset_s,
                    window_s,
                    FaultKind::AdcStuck { code: 900 },
                ),
            ),
    )
}

/// Debug formatting of f64 round-trips, so Debug-string equality over the
/// whole outcome is bit-level equality of every number in it.
#[track_caller]
fn assert_outcomes_identical(a: &FleetOutcome, b: &FleetOutcome, what: &str) {
    assert_eq!(
        format!("{:?}", a.aggregates),
        format!("{:?}", b.aggregates),
        "{what}: aggregates diverge"
    );
    assert_eq!(a.lines.len(), b.lines.len(), "{what}: line counts diverge");
    for (la, lb) in a.lines.iter().zip(&b.lines) {
        assert_eq!(
            format!("{la:?}"),
            format!("{lb:?}"),
            "{what}: line {} diverges",
            la.line
        );
    }
    // Belt and braces on the floats Debug could theoretically smooth over.
    assert_eq!(
        a.aggregates.repeatability_pct_fs.to_bits(),
        b.aggregates.repeatability_pct_fs.to_bits(),
        "{what}: repeatability bits"
    );
    assert_eq!(
        a.aggregates.resolution_pct_fs.p99.to_bits(),
        b.aggregates.resolution_pct_fs.p99.to_bits(),
        "{what}: resolution p99 bits"
    );
    assert_eq!(
        a.aggregates.err_rms_cm_s.max.to_bits(),
        b.aggregates.err_rms_cm_s.max.to_bits(),
        "{what}: err rms max bits"
    );
}

/// Same faulted fleet at `--jobs` 1, 2 and 3: bit-identical everything.
/// 13 lines over batches of 5 so batch boundaries and job counts misalign
/// every way they can.
#[test]
fn fleet_aggregates_bit_identical_across_jobs() {
    let spec = || faulted_fleet(13, 3.0, 1.0, 0.6).with_batch_size(5);
    let j1 = spec().run_jobs(1).unwrap();
    let j2 = spec().run_jobs(2).unwrap();
    let j3 = spec().run_jobs(3).unwrap();

    assert_outcomes_identical(&j1, &j2, "jobs 1 vs 2");
    assert_outcomes_identical(&j1, &j3, "jobs 1 vs 3");

    // The fault template fired on lines 1, 5 and 9 — and only there.
    let a = &j1.aggregates;
    assert_eq!(a.lines_faulted, 3);
    assert_eq!(a.fault_incidence.get("adc_stuck"), Some(&3));
    for line in &j1.lines {
        let expected = line.line % 4 == 1;
        assert_eq!(
            line.fault_samples > 0,
            expected,
            "line {} fault exposure",
            line.line
        );
    }
}

/// The headline acceptance: a 1000-line fleet completes under forced
/// `MetricsOnly` with zero trace bytes, and its aggregates are
/// bit-identical at `--jobs` 1, 2 and 3.
#[test]
fn thousand_line_fleet_is_metrics_only_and_jobs_invariant() {
    // 0.6 s per line keeps 3 × 1000 runs cheap; a 0.2 s stuck-ADC window
    // is the shortest the meter's fault flags reliably rise on.
    let spec = || faulted_fleet(1000, 0.6, 0.2, 0.2);
    let j1 = spec().run_jobs(1).unwrap();
    let j2 = spec().run_jobs(2).unwrap();
    let j3 = spec().run_jobs(3).unwrap();

    assert_outcomes_identical(&j1, &j2, "1000 lines, jobs 1 vs 2");
    assert_outcomes_identical(&j1, &j3, "1000 lines, jobs 1 vs 3");

    let a = &j1.aggregates;
    assert_eq!(a.lines, 1000);
    assert_eq!(j1.trace_heap_bytes(), 0, "fleet must hold zero trace bytes");
    assert!(
        j1.lines.iter().all(|l| l.trace_heap_bytes == 0),
        "every line must stream MetricsOnly"
    );
    assert_eq!(a.health.total(), a.total_samples);
    assert!(a.total_samples > 0);

    // Every 4th line (offset 1) carried the schedule and the stuck ADC bit.
    assert_eq!(a.lines_faulted, 250);
    assert_eq!(a.fault_incidence.get("adc_stuck"), Some(&250));
    assert!(a.fault_samples > 0);
}
