//! Fleet engine contracts.
//!
//! The fleet promises three things no matter how it is scheduled:
//!
//! * **determinism** — the same [`FleetSpec`] produces bit-identical
//!   aggregates and per-line summaries at any `--jobs` count, batch size
//!   or shard split, fault schedules on a subset of lines included;
//! * **bounded memory** — every line is forced to `MetricsOnly`, so a
//!   1000-line fleet holds zero trace bytes; above the exact threshold
//!   the accumulator is a fixed-size sketch (O(shard), not O(lines));
//! * **restartability** — a run killed between batches and resumed from
//!   its checkpoint finishes with the uninterrupted run's exact bits.

use std::ops::ControlFlow;

use hotwire::prelude::*;

/// A low-rate config so the 1000-line test stays cheap in debug builds
/// (the contracts under test don't depend on silicon rates).
fn cheap_config() -> FlowMeterConfig {
    FlowMeterConfig {
        modulator_rate: Hertz::new(1000.0),
        decimation: 2,
        ..FlowMeterConfig::test_profile()
    }
}

/// A fleet with per-line demand jitter and a fault schedule striking
/// every 4th line — the full variation surface in one template.
fn faulted_fleet(lines: usize, duration_s: f64, onset_s: f64, window_s: f64) -> FleetSpec {
    FleetSpec::new(
        "fleet-test",
        cheap_config(),
        Scenario::steady(90.0, duration_s),
        0xF1EE7,
    )
    .with_lines(lines)
    .with_sample_period(0.05)
    .with_windows(
        Windows::settled(duration_s * 0.25, duration_s * 0.25)
            .with_err(duration_s * 0.25, f64::INFINITY),
    )
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.04)
            .with_faults_every(
                4,
                1,
                FaultSchedule::new(0).with_event(
                    onset_s,
                    window_s,
                    FaultKind::AdcStuck { code: 900 },
                ),
            ),
    )
}

/// Debug formatting of f64 round-trips, so Debug-string equality over the
/// whole outcome is bit-level equality of every number in it.
#[track_caller]
fn assert_outcomes_identical(a: &FleetOutcome, b: &FleetOutcome, what: &str) {
    assert_eq!(
        format!("{:?}", a.aggregates),
        format!("{:?}", b.aggregates),
        "{what}: aggregates diverge"
    );
    assert_eq!(a.lines.len(), b.lines.len(), "{what}: line counts diverge");
    for (la, lb) in a.lines.iter().zip(&b.lines) {
        assert_eq!(
            format!("{la:?}"),
            format!("{lb:?}"),
            "{what}: line {} diverges",
            la.line
        );
    }
    // Belt and braces on the floats Debug could theoretically smooth over.
    assert_eq!(
        a.aggregates.repeatability_pct_fs.to_bits(),
        b.aggregates.repeatability_pct_fs.to_bits(),
        "{what}: repeatability bits"
    );
    assert_eq!(
        a.aggregates.resolution_pct_fs.p99.to_bits(),
        b.aggregates.resolution_pct_fs.p99.to_bits(),
        "{what}: resolution p99 bits"
    );
    assert_eq!(
        a.aggregates.err_rms_cm_s.max.to_bits(),
        b.aggregates.err_rms_cm_s.max.to_bits(),
        "{what}: err rms max bits"
    );
}

/// Same faulted fleet at `--jobs` 1, 2 and 3: bit-identical everything.
/// 13 lines over batches of 5 so batch boundaries and job counts misalign
/// every way they can.
#[test]
fn fleet_aggregates_bit_identical_across_jobs() {
    let spec = || faulted_fleet(13, 3.0, 1.0, 0.6).with_batch_size(5);
    let j1 = spec().run_jobs(1).unwrap();
    let j2 = spec().run_jobs(2).unwrap();
    let j3 = spec().run_jobs(3).unwrap();

    assert_outcomes_identical(&j1, &j2, "jobs 1 vs 2");
    assert_outcomes_identical(&j1, &j3, "jobs 1 vs 3");

    // The fault template fired on lines 1, 5 and 9 — and only there.
    let a = &j1.aggregates;
    assert_eq!(a.lines_faulted, 3);
    assert_eq!(a.fault_incidence.get("adc_stuck"), Some(&3));
    for line in &j1.lines {
        let expected = line.line % 4 == 1;
        assert_eq!(
            line.fault_samples > 0,
            expected,
            "line {} fault exposure",
            line.line
        );
    }
}

/// The headline acceptance: a 1000-line fleet completes under forced
/// `MetricsOnly` with zero trace bytes, and its aggregates are
/// bit-identical at `--jobs` 1, 2 and 3.
#[test]
fn thousand_line_fleet_is_metrics_only_and_jobs_invariant() {
    // 0.6 s per line keeps 3 × 1000 runs cheap; a 0.2 s stuck-ADC window
    // is the shortest the meter's fault flags reliably rise on.
    let spec = || faulted_fleet(1000, 0.6, 0.2, 0.2);
    let j1 = spec().run_jobs(1).unwrap();
    let j2 = spec().run_jobs(2).unwrap();
    let j3 = spec().run_jobs(3).unwrap();

    assert_outcomes_identical(&j1, &j2, "1000 lines, jobs 1 vs 2");
    assert_outcomes_identical(&j1, &j3, "1000 lines, jobs 1 vs 3");

    let a = &j1.aggregates;
    assert_eq!(a.lines, 1000);
    assert_eq!(j1.trace_heap_bytes(), 0, "fleet must hold zero trace bytes");
    assert!(
        j1.lines.iter().all(|l| l.trace_heap_bytes == 0),
        "every line must stream MetricsOnly"
    );
    assert_eq!(a.health.total(), a.total_samples);
    assert!(a.total_samples > 0);

    // Every 4th line (offset 1) carried the schedule and the stuck ADC bit.
    assert_eq!(a.lines_faulted, 250);
    assert_eq!(a.fault_incidence.get("adc_stuck"), Some(&250));
    assert!(a.fault_samples > 0);
}

/// Shard fan-out is invisible in the bits: any shard count, merged in
/// line order, reproduces the monolithic aggregates exactly — including
/// across different job counts per run.
#[test]
fn sharded_merge_reproduces_monolithic_bits() {
    let spec = faulted_fleet(26, 1.5, 0.4, 0.4).with_batch_size(7);
    let mono = spec.run_jobs(1).unwrap();
    for (shards, jobs) in [(2, 1), (3, 2), (5, 3), (26, 2)] {
        let sharded = spec.run_sharded(shards, jobs).unwrap();
        assert_outcomes_identical(&mono, &sharded, &format!("{shards} shards at jobs {jobs}"));
    }
    // Manual shard runs merge the same way (the multi-process shape).
    let parts = spec.shards(3);
    let mut acc = parts[0].run_jobs(2).unwrap();
    for part in &parts[1..] {
        acc.merge(&part.run_jobs(3).unwrap()).unwrap();
    }
    let merged = FleetAggregates::from_summaries(
        &acc.summaries,
        spec.config.full_scale.to_cm_per_s(),
        spec.scenario.duration_s * spec.lines as f64,
    );
    assert_eq!(
        format!("{:?}", mono.aggregates),
        format!("{merged:?}"),
        "hand-merged shards diverge from the monolithic aggregates"
    );
}

/// The sketch path (exact_threshold 0) keeps integer aggregates, extrema
/// and repeatability bit-identical to the exact path, and its mid-rank
/// percentiles inside the sketch's guaranteed relative error.
#[test]
fn sketch_aggregates_track_exact_within_alpha() {
    let spec = faulted_fleet(40, 1.0, 0.3, 0.3);
    let exact = spec.run_jobs(2).unwrap();
    let sketched = spec.clone().with_exact_threshold(0).run_jobs(2).unwrap();
    assert!(
        sketched.lines.is_empty(),
        "sketch path must retain no lines"
    );
    let (ea, sa) = (&exact.aggregates, &sketched.aggregates);
    assert_eq!(ea.total_samples, sa.total_samples);
    assert_eq!(ea.health, sa.health);
    assert_eq!(ea.fault_incidence, sa.fault_incidence);
    assert_eq!(ea.nan_lines, sa.nan_lines);
    assert_eq!(
        ea.repeatability_pct_fs.to_bits(),
        sa.repeatability_pct_fs.to_bits()
    );
    assert_eq!(
        ea.resolution_pct_fs.min.to_bits(),
        sa.resolution_pct_fs.min.to_bits()
    );
    assert_eq!(
        ea.resolution_pct_fs.max.to_bits(),
        sa.resolution_pct_fs.max.to_bits()
    );
    for (e, s) in [
        (ea.resolution_pct_fs.p50, sa.resolution_pct_fs.p50),
        (ea.resolution_pct_fs.p90, sa.resolution_pct_fs.p90),
        (ea.resolution_pct_fs.p99, sa.resolution_pct_fs.p99),
        (ea.err_rms_cm_s.p50, sa.err_rms_cm_s.p50),
        (ea.err_rms_cm_s.p99, sa.err_rms_cm_s.p99),
    ] {
        assert!(
            (e - s).abs() <= QuantileSketch::RELATIVE_ERROR * e.abs() + 1e-12,
            "sketch percentile {s} strayed past α from exact {e}"
        );
    }
}

/// Checkpoint/resume bit-identity, the tentpole acceptance: a run
/// interrupted between batches and resumed from its checkpoint file
/// produces the uninterrupted run's exact bits — at jobs 1, 2 and 3, with
/// faulted lines in the population, on both AFE tiers.
#[test]
fn interrupted_resume_is_bit_identical_at_any_jobs() {
    let dir = std::env::temp_dir().join("hotwire-fleet-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    for (jobs, fast_tier) in [(1, false), (2, false), (3, false), (2, true)] {
        let mut spec = faulted_fleet(13, 1.0, 0.3, 0.3).with_batch_size(4);
        if fast_tier {
            spec = spec
                .with_config(LineConfig::new().with_afe_tier(hotwire::core::config::AfeTier::Fast));
        }
        let uninterrupted = spec.run_jobs(jobs).unwrap();

        let path = dir.join(format!("jobs{jobs}-fast{fast_tier}.ck"));
        let _ = std::fs::remove_file(&path);
        // First attempt: stop mid-run after the first batch boundary —
        // the deterministic stand-in for a kill (fleet_bench exercises
        // the real process death in CI).
        let stopped = spec.run_checkpointed_with(&path, 1, jobs, |progress| {
            if progress.completed_lines >= 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match stopped {
            Err(FleetError::Interrupted(partial)) => {
                assert!(partial.completed_lines >= 4);
                assert!(partial.completed_lines < 13);
            }
            other => panic!("expected an interrupted run, got {other:?}"),
        }
        // Second attempt: same spec, same path — resumes past the
        // checkpointed prefix and must finish with identical bits.
        let resumed = spec.run_checkpointed(&path, 1, jobs).unwrap();
        assert_outcomes_identical(
            &uninterrupted,
            &resumed,
            &format!("resume at jobs {jobs}, fast tier {fast_tier}"),
        );
        // Meter end states included, not just statistics.
        for (a, b) in uninterrupted.lines.iter().zip(&resumed.lines) {
            assert_eq!(a.meter_digest, b.meter_digest, "line {} meter", a.line);
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// A checkpoint written by one spec refuses to seed a different spec's
/// run instead of silently stitching two fleets together.
#[test]
fn resume_refuses_a_foreign_checkpoint() {
    let dir = std::env::temp_dir().join("hotwire-fleet-foreign-ck-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("foreign.ck");
    let _ = std::fs::remove_file(&path);
    let spec = faulted_fleet(8, 1.0, 0.3, 0.3).with_batch_size(4);
    spec.run_checkpointed(&path, 1, 2).unwrap();
    // Different seed → different fingerprint → refused.
    let mut other = faulted_fleet(8, 1.0, 0.3, 0.3).with_batch_size(4);
    other.seed ^= 1;
    match other.run_checkpointed(&path, 1, 2) {
        Err(FleetError::Checkpoint(CheckpointError::SpecMismatch { .. })) => {}
        other => panic!("expected a spec mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

/// Regression: lines with NaN statistics (no settled coverage, no err
/// window) used to sort last under `total_cmp` and report as the
/// population's p99/max. They are now excluded from the ranks and
/// surfaced as an explicit count — identically on both aggregation paths.
#[test]
fn nan_lines_surface_instead_of_poisoning_percentiles() {
    // No err window at all: every line's err_rms is NaN by construction.
    let spec = FleetSpec::new("nan-fleet", cheap_config(), Scenario::steady(90.0, 1.0), 7)
        .with_lines(9)
        .with_sample_period(0.05)
        .with_windows(Windows::settled(0.25, 0.25));
    let exact = spec.run_jobs(2).unwrap();
    let a = &exact.aggregates;
    assert_eq!(a.nan_lines.err_rms, 9, "every line's err_rms is NaN");
    assert!(a.err_rms_cm_s.p99.is_nan() && a.err_rms_cm_s.max.is_nan());
    // Resolution is real on every line — NaN-free ranks, finite worst.
    assert_eq!(a.nan_lines.resolution, 0);
    assert!(a.resolution_pct_fs.max.is_finite(), "max must not be NaN");
    assert!(a.resolution_pct_fs.p99.is_finite());
    // Sketch path reports the same counts.
    let sketched = spec.with_exact_threshold(0).run_jobs(2).unwrap();
    assert_eq!(sketched.aggregates.nan_lines, a.nan_lines);
}

/// A fleet on the diurnal demand curve under pressure transients: the
/// realistic municipal-deployment template (overnight floor, morning and
/// evening peaks, water-hammer spikes to 7 bar) runs jobs-invariant, and
/// the demand extremes actually reach the lines.
#[test]
fn diurnal_demand_fleet_under_pressure_transients_is_jobs_invariant() {
    // Diurnal flow compressed into a 4 s "day", with the pressure-transient
    // profile (0.5 → 3 bar working range, two 7 bar spikes) overlaid.
    let mut scenario = Scenario::diurnal_demand(20.0, 200.0, 4.0);
    scenario.pressure_bar = Schedule::pressure_transients(0.5, 3.0, 7.0, 2, 0.5);
    // The full-rate test profile: the demand swing must show up in the
    // DUT output, not just in the schedule (cheap_config's 1 kHz loop
    // never settles on these short runs).
    let spec = FleetSpec::new(
        "diurnal-fleet",
        FlowMeterConfig::test_profile(),
        scenario,
        0xD1A7,
    )
    .with_lines(9)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(0.5, 3.0).with_extra(0.6, 0.7))
    .with_variation(LineVariation::new().with_flow_jitter(0.05));
    let j1 = spec.run_jobs(1).unwrap();
    let j3 = spec.run_jobs(3).unwrap();
    assert_outcomes_identical(&j1, &j3, "diurnal fleet, jobs 1 vs 3");
    // The demand curve swept the lines: the settled window spans the
    // morning peak through the evening fall, so per-line std must dwarf
    // a steady run's noise floor.
    for line in &j1.lines {
        assert!(
            line.settled_std > 20.0,
            "line {} saw std {:.1} cm/s — diurnal swing missing",
            line.line,
            line.settled_std
        );
    }
    // And the scenario template really carries the 7 bar spikes.
    let mut peak = 0.0f64;
    let mut t = 0.0;
    while t < spec.scenario.duration_s {
        peak = peak.max(spec.scenario.pressure_bar.value_at(t));
        t += 0.01;
    }
    assert_eq!(peak, 7.0);
}

/// Degenerate specs fail fast with typed errors instead of hanging the
/// batch loop or dividing by zero deep in the fold.
#[test]
fn degenerate_specs_are_rejected_up_front() {
    let base = || faulted_fleet(8, 1.0, 0.3, 0.3);
    assert!(matches!(
        base().with_lines(0).run(),
        Err(FleetError::Spec(FleetSpecError::NoLines))
    ));
    let mut zero_batch = base();
    zero_batch.batch_size = 0;
    assert!(matches!(
        zero_batch.run_jobs(2),
        Err(FleetError::Spec(FleetSpecError::ZeroBatchSize))
    ));
    let mut zero_stride = base();
    zero_stride.variation.faults.as_mut().unwrap().stride = 0;
    assert!(matches!(
        zero_stride.run_jobs(2),
        Err(FleetError::Spec(FleetSpecError::ZeroFaultStride))
    ));
    assert!(matches!(
        base()
            .with_variation(LineVariation::new().with_flow_jitter(f64::NAN))
            .run_jobs(2),
        Err(FleetError::Spec(FleetSpecError::BadFlowJitter))
    ));
    assert!(matches!(
        base().with_sample_period(-1.0).run_jobs(2),
        Err(FleetError::Spec(FleetSpecError::BadSamplePeriod))
    ));
    // And the errors render as readable diagnostics.
    let msg = FleetError::from(FleetSpecError::ZeroBatchSize).to_string();
    assert!(msg.contains("batch size"), "unhelpful message: {msg}");
}
