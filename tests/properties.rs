//! Cross-crate property-based tests: invariants of the assembled instrument
//! that must hold for *any* operating point in the design range.

use hotwire::core::config::FlowMeterConfig;
use hotwire::core::FlowMeter;
use hotwire::physics::{MafParams, SensorEnvironment};
use hotwire::units::{Celsius, MetersPerSecond, Pascals};
use proptest::prelude::*;

fn quick_meter(seed: u64) -> FlowMeter {
    FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), seed)
        .expect("meter builds")
}

fn env(v_cm_s: f64, temp_c: f64, bar: f64) -> SensorEnvironment {
    SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(v_cm_s),
        fluid_temperature: Celsius::new(temp_c),
        pressure: Pascals::from_bar(bar),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The conditioned output is finite, the supply stays within the DAC
    /// range, and the wire temperature stays physical for any in-range
    /// operating point.
    #[test]
    fn loop_invariants_hold_everywhere(
        v in 0.0f64..260.0,
        temp in 6.0f64..32.0,
        bar in 0.6f64..7.0,
        seed in 0u64..1000,
    ) {
        let mut m = quick_meter(seed);
        let meas = m.run(0.6, env(v, temp, bar)).expect("control ticks ran");
        prop_assert!(meas.speed.get().is_finite());
        prop_assert!(meas.speed.get() >= 0.0);
        prop_assert!(meas.supply_code <= 4095);
        let wire = m.die().heater_temperature(hotwire::physics::sensor::HeaterId::A);
        prop_assert!(wire.get() > temp - 1.0, "wire below fluid: {wire}");
        prop_assert!(wire.get() < 95.0, "wire boiling: {wire}");
    }

    /// More flow always demands more supply (monotone plant + integrating
    /// controller).
    #[test]
    fn supply_monotone_in_flow(pair in (10.0f64..110.0, 120.0f64..250.0)) {
        let (lo, hi) = pair;
        let mut m = quick_meter(7);
        let low = m.run(1.0, env(lo, 15.0, 1.0)).expect("ran");
        let high = m.run(1.0, env(hi, 15.0, 1.0)).expect("ran");
        prop_assert!(
            high.supply_code > low.supply_code,
            "supply {} at {lo} cm/s vs {} at {hi} cm/s",
            low.supply_code,
            high.supply_code
        );
    }

    /// Measurements arrive exactly at the decimated control rate.
    #[test]
    fn control_cadence_is_exact(v in 0.0f64..250.0) {
        let mut m = quick_meter(11);
        let e = env(v, 15.0, 1.0);
        let mut count = 0u32;
        for _ in 0..64 * 25 {
            if m.step(e).is_some() {
                count += 1;
            }
        }
        prop_assert_eq!(count, 25);
    }

    /// Identical seeds give identical runs; different seeds give different
    /// noise (no accidental RNG sharing/reseeding).
    #[test]
    fn seeded_determinism(seed in 0u64..500) {
        let mut a = quick_meter(seed);
        let mut b = quick_meter(seed);
        let e = env(90.0, 15.0, 1.0);
        let ma = a.run(0.4, e).expect("ran");
        let mb = b.run(0.4, e).expect("ran");
        prop_assert_eq!(ma.conditioned_code, mb.conditioned_code);
        prop_assert_eq!(ma.supply_code, mb.supply_code);
    }
}
