//! Deterministic-seed random-process helpers shared by the physics models.
//!
//! Everything stochastic in the simulator — turbulence, bubble detachment,
//! electronic noise — draws from an explicitly seeded RNG so experiments are
//! reproducible bit-for-bit.

use hotwire_units::Seconds;
use rand::Rng;

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// (We deliberately avoid a `rand_distr` dependency; two uniforms and a
/// `ln`/`sqrt` are plenty for simulation noise.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Draws a zero-mean Gaussian sample with the given standard deviation.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    standard_normal(rng) * sigma
}

/// A first-order Ornstein–Uhlenbeck process: band-limited noise with
/// correlation time `tau` and stationary standard deviation `sigma`.
///
/// Used for pipe turbulence (velocity fluctuation with eddy-turnover
/// correlation time) and slow drift processes.
///
/// ```
/// use hotwire_physics::stochastic::OrnsteinUhlenbeck;
/// use hotwire_units::Seconds;
/// use rand::SeedableRng;
///
/// let mut ou = OrnsteinUhlenbeck::new(Seconds::new(0.1), 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let x = ou.step(Seconds::from_millis(1.0), &mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrnsteinUhlenbeck {
    tau: Seconds,
    sigma: f64,
    state: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates a process with correlation time `tau` and stationary standard
    /// deviation `sigma`, starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive or `sigma` is negative.
    pub fn new(tau: Seconds, sigma: f64) -> Self {
        assert!(tau.get() > 0.0, "OU correlation time must be positive");
        assert!(sigma >= 0.0, "OU sigma must be non-negative");
        OrnsteinUhlenbeck {
            tau,
            sigma,
            state: 0.0,
        }
    }

    /// Current process value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Advances the process by `dt` using the exact discrete-time update
    /// `x' = ρ·x + σ·√(1−ρ²)·ξ` with `ρ = exp(−dt/τ)`, and returns the new
    /// value.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: Seconds, rng: &mut R) -> f64 {
        let rho = (-dt.get() / self.tau.get()).exp();
        let innovation = self.sigma * (1.0 - rho * rho).sqrt();
        self.state = rho * self.state + innovation * standard_normal(rng);
        self.state
    }

    /// Resets the state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// A Poisson event clock: `fire(dt, rate, rng)` returns `true` with
/// probability `1 − exp(−rate·dt)` — used for discrete bubble-detachment
/// events.
pub fn poisson_fires<R: Rng + ?Sized>(rng: &mut R, dt: Seconds, rate_hz: f64) -> bool {
    if rate_hz <= 0.0 {
        return false;
    }
    let p = 1.0 - (-rate_hz * dt.get()).exp();
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xD1CE)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn ou_stationary_variance() {
        let mut r = rng();
        let sigma = 2.0;
        let mut ou = OrnsteinUhlenbeck::new(Seconds::new(0.01), sigma);
        // Burn in, then sample.
        let dt = Seconds::from_millis(1.0);
        for _ in 0..10_000 {
            ou.step(dt, &mut r);
        }
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = ou.step(dt, &mut r);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!(
            (var - sigma * sigma).abs() / (sigma * sigma) < 0.1,
            "variance {var} vs {}",
            sigma * sigma
        );
    }

    #[test]
    fn ou_is_correlated_at_short_lags() {
        let mut r = rng();
        let mut ou = OrnsteinUhlenbeck::new(Seconds::new(1.0), 1.0);
        let dt = Seconds::from_millis(1.0);
        for _ in 0..5_000 {
            ou.step(dt, &mut r);
        }
        // Over one step with dt ≪ τ, consecutive values are nearly equal.
        let a = ou.step(dt, &mut r);
        let b = ou.step(dt, &mut r);
        assert!((a - b).abs() < 0.5);
    }

    #[test]
    fn ou_reset() {
        let mut r = rng();
        let mut ou = OrnsteinUhlenbeck::new(Seconds::new(0.1), 1.0);
        ou.step(Seconds::new(0.1), &mut r);
        ou.reset();
        assert_eq!(ou.value(), 0.0);
    }

    #[test]
    fn poisson_rates() {
        let mut r = rng();
        let dt = Seconds::from_millis(1.0);
        let trials = 100_000;
        let rate = 100.0; // expect p ≈ 1 − e^(−0.1) ≈ 0.0952
        let fires = (0..trials)
            .filter(|_| poisson_fires(&mut r, dt, rate))
            .count();
        let p = fires as f64 / trials as f64;
        assert!((p - 0.0952).abs() < 0.005, "p {p}");
        assert!(!poisson_fires(&mut r, dt, 0.0));
        assert!(!poisson_fires(&mut r, dt, -1.0));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
