//! The resistance–temperature law of the Ti/TiN thin-film resistors (Eq. 1).
//!
//! The paper's die carries two kinds of resistor, both following
//! `R(T) = R₀·(1 + α·(T − T_ref))`:
//!
//! * the heater `Rh = 50.0 ± 0.5 Ω`, exposed to the flow, and
//! * the ambient reference `Rt = 2000 ± 30 Ω`, interdigitated so both
//!   half-bridges share the same reference.
//!
//! Titanium's temperature coefficient is ≈ 3.5·10⁻³ /K; the TiN nanolayer
//! passivation makes the film drift-free ("no drift due to electrical or
//! temperature stress"), so no aging term is modelled on the resistor itself —
//! drift enters only through the fouling layer on top of it.

use crate::error::{ensure_in_range, ensure_positive};
use crate::PhysicsError;
use hotwire_units::{Celsius, Ohms};

/// A thin-film resistance-temperature device (Eq. 1 of the paper).
///
/// ```
/// use hotwire_physics::Rtd;
/// use hotwire_units::{Celsius, Ohms};
///
/// let heater = Rtd::heater();
/// let r = heater.resistance(Celsius::new(40.0));
/// // 50 Ω · (1 + 3.5e-3 · 20) = 53.5 Ω
/// assert!((r.get() - 53.5).abs() < 1e-9);
/// assert!((heater.temperature(r).get() - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rtd {
    r0: Ohms,
    alpha_per_k: f64,
    reference: Celsius,
}

impl Rtd {
    /// Temperature coefficient of the Ti/TiN film, per kelvin.
    pub const TITANIUM_ALPHA: f64 = 3.5e-3;

    /// Creates an RTD with resistance `r0` at the `reference` temperature and
    /// temperature coefficient `alpha_per_k`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if `r0` is not positive or `alpha_per_k` is
    /// outside `(0, 0.02]` (metal-film TCRs are a few 10⁻³/K).
    pub fn new(r0: Ohms, alpha_per_k: f64, reference: Celsius) -> Result<Self, PhysicsError> {
        ensure_positive("r0", r0.get())?;
        ensure_in_range("alpha_per_k", alpha_per_k, 1e-5, 0.02)?;
        if !reference.is_finite() {
            return Err(PhysicsError::NotFinite { name: "reference" });
        }
        Ok(Rtd {
            r0,
            alpha_per_k,
            reference,
        })
    }

    /// The paper's heater: 50.0 Ω at 20 °C, titanium TCR.
    pub fn heater() -> Self {
        Rtd {
            r0: Ohms::new(50.0),
            alpha_per_k: Self::TITANIUM_ALPHA,
            reference: Celsius::new(20.0),
        }
    }

    /// The paper's ambient reference: 2000 Ω at 20 °C, titanium TCR.
    pub fn ambient_reference() -> Self {
        Rtd {
            r0: Ohms::new(2000.0),
            alpha_per_k: Self::TITANIUM_ALPHA,
            reference: Celsius::new(20.0),
        }
    }

    /// Returns a copy with `r0` offset by the given manufacturing tolerance
    /// fraction (e.g. `0.01` = +1 %). The paper quotes ±0.5 Ω on 50 Ω (±1 %)
    /// and ±30 Ω on 2000 Ω (±1.5 %).
    #[must_use]
    pub fn with_tolerance(mut self, fraction: f64) -> Self {
        self.r0 = self.r0 * (1.0 + fraction);
        self
    }

    /// Nominal resistance at the reference temperature.
    #[inline]
    pub fn r0(&self) -> Ohms {
        self.r0
    }

    /// Temperature coefficient α in 1/K.
    #[inline]
    pub fn alpha_per_k(&self) -> f64 {
        self.alpha_per_k
    }

    /// Reference temperature for `r0`.
    #[inline]
    pub fn reference(&self) -> Celsius {
        self.reference
    }

    /// Resistance at film temperature `t` (Eq. 1).
    #[inline]
    pub fn resistance(&self, t: Celsius) -> Ohms {
        self.r0 * (1.0 + self.alpha_per_k * (t - self.reference).get())
    }

    /// Film temperature for a measured resistance (inverse of Eq. 1).
    #[inline]
    pub fn temperature(&self, r: Ohms) -> Celsius {
        Celsius::new(self.reference.get() + (r / self.r0 - 1.0) / self.alpha_per_k)
    }

    /// Sensitivity dR/dT in Ω/K (constant for the linear law).
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.r0.get() * self.alpha_per_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heater_nominals() {
        let h = Rtd::heater();
        assert_eq!(h.r0().get(), 50.0);
        assert!((h.resistance(Celsius::new(20.0)).get() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn resistance_temperature_round_trip() {
        let h = Rtd::heater();
        for t in [-10.0, 0.0, 20.0, 35.0, 60.0, 90.0] {
            let r = h.resistance(Celsius::new(t));
            let back = h.temperature(r);
            assert!((back.get() - t).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn tolerance_shifts_r0() {
        let h = Rtd::heater().with_tolerance(0.01);
        assert!((h.r0().get() - 50.5).abs() < 1e-12);
        // ±0.5 Ω on 50 Ω is the paper's quoted spread.
    }

    #[test]
    fn reference_resistor_nominals() {
        let rt = Rtd::ambient_reference();
        assert_eq!(rt.r0().get(), 2000.0);
        let r25 = rt.resistance(Celsius::new(25.0));
        assert!((r25.get() - 2000.0 * (1.0 + 3.5e-3 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Rtd::new(Ohms::new(0.0), 3.5e-3, Celsius::new(20.0)).is_err());
        assert!(Rtd::new(Ohms::new(50.0), 0.5, Celsius::new(20.0)).is_err());
        assert!(Rtd::new(Ohms::new(50.0), 3.5e-3, Celsius::new(f64::NAN)).is_err());
    }

    #[test]
    fn sensitivity_is_r0_alpha() {
        let h = Rtd::heater();
        assert!((h.sensitivity() - 0.175).abs() < 1e-12);
    }
}
