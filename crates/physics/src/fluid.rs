//! Temperature-dependent fluid property models for water and air.
//!
//! King's-law coefficients and the bubble/fouling models all depend on the
//! working fluid. The paper's sensor was designed for air (MAF = mass *air*
//! flow) and redeployed in potable water, so both fluids are modelled; the
//! contrast between them (water conducts ~25× better) is what motivates the
//! paper's reduced overheat in water.

use hotwire_units::{Celsius, Pascals};

/// A snapshot of thermophysical fluid properties at one temperature.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FluidProperties {
    /// Density ρ in kg/m³.
    pub density: f64,
    /// Dynamic viscosity µ in Pa·s.
    pub dynamic_viscosity: f64,
    /// Thermal conductivity k in W/(m·K).
    pub thermal_conductivity: f64,
    /// Isobaric specific heat c_p in J/(kg·K).
    pub specific_heat: f64,
}

impl FluidProperties {
    /// Prandtl number `Pr = µ·c_p / k`.
    #[inline]
    pub fn prandtl(&self) -> f64 {
        self.dynamic_viscosity * self.specific_heat / self.thermal_conductivity
    }

    /// Kinematic viscosity `ν = µ / ρ` in m²/s.
    #[inline]
    pub fn kinematic_viscosity(&self) -> f64 {
        self.dynamic_viscosity / self.density
    }
}

/// A working fluid with temperature-dependent properties.
///
/// Implementors provide a property snapshot at a bulk temperature; the
/// correlations in [`crate::kings_law`] consume that snapshot.
pub trait Fluid: core::fmt::Debug {
    /// Thermophysical properties at the given bulk temperature.
    fn properties(&self, temperature: Celsius) -> FluidProperties;

    /// Saturation temperature of the dissolved-gas/vapour system at the given
    /// absolute pressure: above this wall temperature the fluid releases
    /// bubbles onto the heater (outgassing well below boiling for
    /// air-saturated water).
    fn bubble_onset_temperature(&self, pressure: Pascals) -> Celsius;

    /// Human-readable fluid name.
    fn name(&self) -> &'static str;
}

/// Liquid water (potable, air-saturated by default).
///
/// Property fits are low-order polynomials valid over 0–90 °C, accurate to a
/// few per mil against IAPWS tabulations — far tighter than the model error
/// anywhere else in this simulator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Water {
    /// Dissolved-air saturation fraction (1.0 = fully air-saturated at
    /// atmospheric pressure, 0.0 = perfectly degassed).
    pub dissolved_air: f64,
    /// Water hardness in °f (French degrees); Tuscan network water is hard,
    /// typically 25–35 °f. Drives CaCO₃ deposition.
    pub hardness_f: f64,
}

impl Water {
    /// Potable network water: air-saturated, hard (30 °f) — the Vinci test
    /// station conditions.
    pub fn potable() -> Self {
        Water {
            dissolved_air: 1.0,
            hardness_f: 30.0,
        }
    }

    /// Degassed, demineralised laboratory water.
    pub fn demineralized() -> Self {
        Water {
            dissolved_air: 0.05,
            hardness_f: 0.5,
        }
    }
}

impl Default for Water {
    fn default() -> Self {
        Water::potable()
    }
}

impl Fluid for Water {
    fn properties(&self, temperature: Celsius) -> FluidProperties {
        let t = temperature.get().clamp(0.0, 95.0);
        // Density: quadratic fit around the 4 °C maximum (kg/m³).
        let density = 999.97 - 4.87e-3 * (t - 4.0).powi(2) + 1.5e-5 * (t - 4.0).powi(3);
        // Dynamic viscosity: Vogel-type fit (Pa·s).
        let dynamic_viscosity = 2.414e-5 * 10f64.powf(247.8 / (t + 273.15 - 140.0));
        // Thermal conductivity (W/m·K): quadratic fit.
        let thermal_conductivity = 0.5562 + 1.99e-3 * t - 8.0e-6 * t * t;
        // Specific heat (J/kg·K): cubic fit, max error < 4 J/(kg·K) vs
        // IAPWS over 0–95 °C.
        let specific_heat = 4214.9 - 2.2972 * t + 0.040428 * t * t - 1.7859e-4 * t * t * t;
        FluidProperties {
            density,
            dynamic_viscosity,
            thermal_conductivity,
            specific_heat,
        }
    }

    fn bubble_onset_temperature(&self, pressure: Pascals) -> Celsius {
        // Outgassing onset: air-saturated water sheds dissolved gas onto a
        // heated wall well below boiling. Henry's law: solubility scales with
        // pressure, so the onset wall temperature rises with line pressure
        // and falls with dissolved-gas content. Anchors: ~40 °C at 1 bar
        // saturated; ~+8 °C per bar; degassed water only bubbles near
        // saturation (approach 100 °C-ish cap).
        let bar = pressure.get() / 1e5;
        let saturated_onset = 40.0 + 8.0 * (bar - 1.0);
        let degassed_onset = 98.0 + 10.0 * (bar - 1.0);
        let f = self.dissolved_air.clamp(0.0, 1.0);
        Celsius::new(f * saturated_onset + (1.0 - f) * degassed_onset)
    }

    fn name(&self) -> &'static str {
        "water"
    }
}

/// Dry air at atmospheric pressure — the MAF sensor's original medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Air;

impl Fluid for Air {
    fn properties(&self, temperature: Celsius) -> FluidProperties {
        let t = temperature.get().clamp(-40.0, 200.0);
        let tk = t + 273.15;
        // Ideal-gas density at 1 atm.
        let density = 101_325.0 / (287.05 * tk);
        // Sutherland viscosity.
        let dynamic_viscosity = 1.458e-6 * tk.powf(1.5) / (tk + 110.4);
        // Conductivity: linear fit (W/m·K).
        let thermal_conductivity = 0.0241 + 7.3e-5 * t;
        let specific_heat = 1006.0 + 0.03 * t;
        FluidProperties {
            density,
            dynamic_viscosity,
            thermal_conductivity,
            specific_heat,
        }
    }

    fn bubble_onset_temperature(&self, _pressure: Pascals) -> Celsius {
        // No bubbles in a gas: effectively unreachable.
        Celsius::new(f64::INFINITY)
    }

    fn name(&self) -> &'static str {
        "air"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_at_20c_matches_handbook() {
        let p = Water::potable().properties(Celsius::new(20.0));
        assert!((p.density - 998.2).abs() < 1.5, "density {}", p.density);
        assert!(
            (p.dynamic_viscosity - 1.002e-3).abs() < 5e-5,
            "viscosity {}",
            p.dynamic_viscosity
        );
        assert!(
            (p.thermal_conductivity - 0.598).abs() < 0.01,
            "conductivity {}",
            p.thermal_conductivity
        );
        assert!(
            (p.specific_heat - 4182.0).abs() < 25.0,
            "cp {}",
            p.specific_heat
        );
        let pr = p.prandtl();
        assert!((6.0..8.0).contains(&pr), "Prandtl {}", pr);
    }

    #[test]
    fn water_viscosity_falls_with_temperature() {
        let w = Water::potable();
        let v10 = w.properties(Celsius::new(10.0)).dynamic_viscosity;
        let v50 = w.properties(Celsius::new(50.0)).dynamic_viscosity;
        assert!(v10 > 1.5 * v50);
    }

    #[test]
    fn air_at_20c_matches_handbook() {
        let p = Air.properties(Celsius::new(20.0));
        assert!((p.density - 1.204).abs() < 0.01, "density {}", p.density);
        assert!(
            (p.dynamic_viscosity - 1.82e-5).abs() < 5e-7,
            "viscosity {}",
            p.dynamic_viscosity
        );
        assert!(
            (p.thermal_conductivity - 0.0257).abs() < 0.001,
            "conductivity {}",
            p.thermal_conductivity
        );
        let pr = p.prandtl();
        assert!((0.68..0.74).contains(&pr), "Prandtl {}", pr);
    }

    #[test]
    fn water_conducts_much_better_than_air() {
        let kw = Water::potable()
            .properties(Celsius::new(20.0))
            .thermal_conductivity;
        let ka = Air.properties(Celsius::new(20.0)).thermal_conductivity;
        assert!(kw / ka > 20.0, "water/air conductivity ratio {}", kw / ka);
    }

    #[test]
    fn bubble_onset_rises_with_pressure() {
        let w = Water::potable();
        let t1 = w.bubble_onset_temperature(Pascals::from_bar(1.0));
        let t3 = w.bubble_onset_temperature(Pascals::from_bar(3.0));
        assert!(t3 > t1);
        assert!((t1.get() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn degassed_water_bubbles_much_later() {
        let sat = Water::potable().bubble_onset_temperature(Pascals::from_bar(1.0));
        let deg = Water::demineralized().bubble_onset_temperature(Pascals::from_bar(1.0));
        assert!(deg.get() > sat.get() + 40.0);
    }

    #[test]
    fn air_never_bubbles() {
        assert!(!Air
            .bubble_onset_temperature(Pascals::from_bar(1.0))
            .is_finite());
    }

    #[test]
    fn kinematic_viscosity_consistent() {
        let p = Water::potable().properties(Celsius::new(20.0));
        assert!((p.kinematic_viscosity() - p.dynamic_viscosity / p.density).abs() < 1e-18);
    }
}
