//! Lumped thermal model of the heated membrane region.
//!
//! The heater sits on a 2 µm SiN/SiO₂/SiN membrane that thermally isolates it
//! from the chip rim; the backside cavity is filled with a low-conductivity
//! organic so essentially all heat leaves through the front face into the
//! fluid. We model one thermal node per heater:
//!
//! ```text
//! C_th · dT/dt = P_el − G_sub·(T − T_rim) − G_conv(v)·(T − T_fluid,eff)
//! ```
//!
//! where `G_conv` is King's law degraded by bubble coverage and fouling.
//! The step integrator is exponential-Euler: exact for the linear ODE between
//! samples, unconditionally stable, so the 2 µm membrane's ~60 µs water time
//! constant does not force a smaller simulation step.

use crate::error::ensure_positive;
use crate::kings_law::KingsLaw;
use crate::PhysicsError;
use hotwire_units::{
    Celsius, HeatCapacity, MetersPerSecond, Seconds, ThermalConductance, ThermalResistance, Watts,
};

/// Static parameters of one membrane thermal node.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MembraneParams {
    /// Heat capacity of the heated region (J/K).
    pub heat_capacity: HeatCapacity,
    /// Conduction to the chip rim through the membrane (W/K). Small by
    /// design — the membrane provides "high thermal isolation of the heated
    /// wires to the chip edges".
    pub substrate_conductance: ThermalConductance,
    /// Conduction through the backside-cavity filler (W/K). The filler is a
    /// "flexible organic material with significant lower heat conduction as
    /// water", so this is smaller still.
    pub backside_conductance: ThermalConductance,
}

impl MembraneParams {
    /// Parameters of the MAF die's heater membrane (2 µm stack, KOH-etched
    /// cavity, organic backside fill).
    pub fn maf() -> Self {
        MembraneParams {
            heat_capacity: HeatCapacity::new(2.0e-7),
            substrate_conductance: ThermalConductance::new(3.0e-5),
            backside_conductance: ThermalConductance::new(8.0e-6),
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if any parameter is non-positive.
    pub fn validate(&self) -> Result<(), PhysicsError> {
        ensure_positive("heat_capacity", self.heat_capacity.get())?;
        ensure_positive("substrate_conductance", self.substrate_conductance.get())?;
        ensure_positive("backside_conductance", self.backside_conductance.get())?;
        Ok(())
    }
}

impl Default for MembraneParams {
    fn default() -> Self {
        MembraneParams::maf()
    }
}

/// Degradation of the front-face convection path (bubbles, scale).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SurfaceCondition {
    /// Fraction of the heater face blanketed by gas bubbles, `0..=1`.
    /// A vapour/gas blanket conducts far worse than water.
    pub bubble_coverage: f64,
    /// Added series thermal resistance of the CaCO₃ scale layer (K/W).
    pub fouling_resistance: ThermalResistance,
}

impl SurfaceCondition {
    /// A clean, bubble-free surface.
    pub fn clean() -> Self {
        SurfaceCondition::default()
    }

    /// Effective convective conductance given the ideal King's-law value.
    ///
    /// Bubble blanketing scales the wetted-area conductance; the scale layer
    /// adds a series resistance.
    pub fn effective_conductance(&self, ideal: ThermalConductance) -> ThermalConductance {
        // A gas blanket retains ~12 % of the wetted heat transfer (gas
        // conduction + micro-convection around the bubble).
        const BLANKET_RESIDUAL: f64 = 0.12;
        let theta = self.bubble_coverage.clamp(0.0, 1.0);
        let wetted = ideal.get() * (1.0 - theta + theta * BLANKET_RESIDUAL);
        let rf = self.fouling_resistance.get().max(0.0);
        ThermalConductance::new(wetted / (1.0 + rf * wetted))
    }
}

/// One-entry memo for the exponential-Euler decay factor `exp(−dt/τ)`.
///
/// Between control ticks the drive and surface state of a membrane node are
/// bit-for-bit constant, so `dt` and `G_tot` — the only inputs to the decay —
/// repeat exactly. Keying on their raw bit patterns lets the modulator-rate
/// hot loop skip the `exp` on every repeated tick without changing a single
/// result bit: a hit returns the very value a recomputation would produce.
#[derive(Debug, Clone, Copy)]
pub struct DecayCache {
    key: (u64, u64),
    value: f64,
}

impl DecayCache {
    /// An empty cache (first lookup always misses).
    pub const fn empty() -> Self {
        // NaN bit patterns — never produced by a real (dt, G_tot) pair.
        DecayCache {
            key: (u64::MAX, u64::MAX),
            value: 0.0,
        }
    }

    #[inline]
    fn decay(&mut self, dt: f64, g_tot: f64, heat_capacity: f64) -> f64 {
        let key = (dt.to_bits(), g_tot.to_bits());
        if self.key != key {
            let tau = heat_capacity / g_tot;
            self.key = key;
            self.value = (-dt / tau).exp();
        }
        self.value
    }
}

impl Default for DecayCache {
    fn default() -> Self {
        DecayCache::empty()
    }
}

/// The evolving thermal state of one membrane node.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MembraneState {
    temperature: Celsius,
}

impl MembraneState {
    /// Starts the node in equilibrium with the given fluid temperature.
    pub fn at_equilibrium(fluid: Celsius) -> Self {
        MembraneState { temperature: fluid }
    }

    /// Current node (≈ heater film) temperature.
    #[inline]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Overrides the node temperature (for tests and checkpoint restore).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    /// Advances the node by `dt` under electrical power `p_el`, ideal
    /// convection from `king` at speed `v`, surface condition `surface`, rim
    /// temperature `t_rim` and effective incoming-fluid temperature
    /// `t_fluid`.
    ///
    /// Returns the conductance actually used (after surface degradation),
    /// which the conditioning loop's observer may want ([C-INTERMEDIATE]).
    ///
    /// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
    #[allow(clippy::too_many_arguments)] // mirrors the physical heat-balance terms
    pub fn step(
        &mut self,
        dt: Seconds,
        p_el: Watts,
        params: &MembraneParams,
        king: &KingsLaw,
        v: MetersPerSecond,
        surface: SurfaceCondition,
        t_fluid: Celsius,
        t_rim: Celsius,
    ) -> ThermalConductance {
        let mut cache = DecayCache::empty();
        self.step_cached(
            dt,
            p_el,
            params,
            king.conductance(v),
            surface,
            t_fluid,
            t_rim,
            &mut cache,
        )
    }

    /// [`step`](Self::step) with the ideal King's-law conductance precomputed
    /// by the caller and the decay exponential memoized through `cache`.
    ///
    /// Bit-identical to `step` when `ideal == king.conductance(v)`: a cache
    /// miss performs exactly the same `τ = C/G_tot`, `exp(−dt/τ)` sequence,
    /// and a hit returns the bit-equal stored value. This is the die's
    /// modulator-rate entry point — the caller hoists the (per-control-tick
    /// constant) King evaluation and each node keeps its own cache.
    #[allow(clippy::too_many_arguments)] // mirrors the physical heat-balance terms
    pub fn step_cached(
        &mut self,
        dt: Seconds,
        p_el: Watts,
        params: &MembraneParams,
        ideal: ThermalConductance,
        surface: SurfaceCondition,
        t_fluid: Celsius,
        t_rim: Celsius,
        cache: &mut DecayCache,
    ) -> ThermalConductance {
        let g_conv = surface.effective_conductance(ideal);
        let g_sub = params.substrate_conductance + params.backside_conductance;
        let g_tot = g_conv + g_sub;
        // T_inf = (P + G_sub·T_rim + G_conv·T_fluid) / G_tot
        let t_inf =
            (p_el.get() + g_sub.get() * t_rim.get() + g_conv.get() * t_fluid.get()) / g_tot.get();
        let decay = cache.decay(dt.get(), g_tot.get(), params.heat_capacity.get());
        self.temperature = Celsius::new(t_inf + (self.temperature.get() - t_inf) * decay);
        g_conv
    }

    /// The steady-state temperature the node would reach at constant drive.
    pub fn steady_state(
        p_el: Watts,
        params: &MembraneParams,
        king: &KingsLaw,
        v: MetersPerSecond,
        surface: SurfaceCondition,
        t_fluid: Celsius,
        t_rim: Celsius,
    ) -> Celsius {
        let g_conv = surface.effective_conductance(king.conductance(v));
        let g_sub = params.substrate_conductance + params.backside_conductance;
        let g_tot = g_conv + g_sub;
        Celsius::new(
            (p_el.get() + g_sub.get() * t_rim.get() + g_conv.get() * t_fluid.get()) / g_tot.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MembraneParams, KingsLaw) {
        (MembraneParams::maf(), KingsLaw::water_default())
    }

    #[test]
    fn equilibrium_without_power() {
        let (params, king) = setup();
        let fluid = Celsius::new(15.0);
        let mut state = MembraneState::at_equilibrium(fluid);
        for _ in 0..100 {
            state.step(
                Seconds::from_micros(10.0),
                Watts::ZERO,
                &params,
                &king,
                MetersPerSecond::new(0.5),
                SurfaceCondition::clean(),
                fluid,
                fluid,
            );
        }
        assert!((state.temperature() - fluid).abs().get() < 1e-9);
    }

    #[test]
    fn heating_approaches_steady_state() {
        let (params, king) = setup();
        let fluid = Celsius::new(15.0);
        let v = MetersPerSecond::new(1.0);
        let p = Watts::new(0.02);
        let mut state = MembraneState::at_equilibrium(fluid);
        // Run 10 ms — far beyond the ~60 µs time constant.
        for _ in 0..1000 {
            state.step(
                Seconds::from_micros(10.0),
                p,
                &params,
                &king,
                v,
                SurfaceCondition::clean(),
                fluid,
                fluid,
            );
        }
        let expected = MembraneState::steady_state(
            p,
            &params,
            &king,
            v,
            SurfaceCondition::clean(),
            fluid,
            fluid,
        );
        assert!(
            (state.temperature() - expected).abs().get() < 1e-6,
            "state {} vs steady {}",
            state.temperature(),
            expected
        );
        assert!(state.temperature() > fluid);
    }

    #[test]
    fn water_time_constant_is_sub_millisecond() {
        let (params, king) = setup();
        let g = king.conductance(MetersPerSecond::new(0.5));
        let tau: Seconds = params.heat_capacity / g;
        assert!(
            tau.get() < 1e-3,
            "τ = {} s — paper: 'response times are reasonable short, even in water'",
            tau.get()
        );
    }

    #[test]
    fn faster_flow_cools_harder() {
        let (params, king) = setup();
        let fluid = Celsius::new(15.0);
        let p = Watts::new(0.02);
        let slow = MembraneState::steady_state(
            p,
            &params,
            &king,
            MetersPerSecond::new(0.2),
            SurfaceCondition::clean(),
            fluid,
            fluid,
        );
        let fast = MembraneState::steady_state(
            p,
            &params,
            &king,
            MetersPerSecond::new(2.0),
            SurfaceCondition::clean(),
            fluid,
            fluid,
        );
        assert!(slow > fast);
    }

    #[test]
    fn bubbles_insulate() {
        let clean = SurfaceCondition::clean();
        let blanketed = SurfaceCondition {
            bubble_coverage: 0.5,
            ..SurfaceCondition::default()
        };
        let ideal = ThermalConductance::new(2e-3);
        assert!(blanketed.effective_conductance(ideal) < clean.effective_conductance(ideal));
        // Fully blanketed retains only the residual fraction.
        let full = SurfaceCondition {
            bubble_coverage: 1.0,
            ..SurfaceCondition::default()
        };
        let g = full.effective_conductance(ideal);
        assert!((g.get() / ideal.get() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn fouling_adds_series_resistance() {
        let ideal = ThermalConductance::new(2e-3);
        let fouled = SurfaceCondition {
            bubble_coverage: 0.0,
            fouling_resistance: ThermalResistance::new(50.0),
        };
        let g = fouled.effective_conductance(ideal);
        // 1/G = 1/2e-3 + 50 = 550 K/W → G ≈ 1.818e-3.
        assert!((g.get() - 1.0 / 550.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_is_clamped() {
        let over = SurfaceCondition {
            bubble_coverage: 2.0,
            ..SurfaceCondition::default()
        };
        let ideal = ThermalConductance::new(1e-3);
        let g = over.effective_conductance(ideal);
        assert!((g.get() / ideal.get() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn exponential_euler_is_stable_for_huge_steps() {
        let (params, king) = setup();
        let fluid = Celsius::new(15.0);
        let mut state = MembraneState::at_equilibrium(fluid);
        // One step of a full second — 4 orders above τ — must land exactly on
        // the steady state, not blow up.
        state.step(
            Seconds::new(1.0),
            Watts::new(0.02),
            &params,
            &king,
            MetersPerSecond::new(1.0),
            SurfaceCondition::clean(),
            fluid,
            fluid,
        );
        let expected = MembraneState::steady_state(
            Watts::new(0.02),
            &params,
            &king,
            MetersPerSecond::new(1.0),
            SurfaceCondition::clean(),
            fluid,
            fluid,
        );
        assert!((state.temperature() - expected).abs().get() < 1e-9);
    }

    #[test]
    fn cached_step_is_bit_identical_to_step() {
        let (params, king) = setup();
        let fluid = Celsius::new(15.0);
        let v = MetersPerSecond::new(0.7);
        let mut plain = MembraneState::at_equilibrium(fluid);
        let mut cached = MembraneState::at_equilibrium(fluid);
        let mut cache = DecayCache::empty();
        let surface = SurfaceCondition {
            bubble_coverage: 0.2,
            fouling_resistance: ThermalResistance::new(10.0),
        };
        let dt = Seconds::from_micros(4.0);
        for i in 0..500 {
            // Vary the drive so t_inf moves while (dt, G_tot) stays cached.
            let p = Watts::new(0.01 + 1e-4 * (i % 7) as f64);
            let g_plain = plain.step(dt, p, &params, &king, v, surface, fluid, fluid);
            let g_cached = cached.step_cached(
                dt,
                p,
                &params,
                king.conductance(v),
                surface,
                fluid,
                fluid,
                &mut cache,
            );
            assert_eq!(g_plain.get().to_bits(), g_cached.get().to_bits());
            assert_eq!(
                plain.temperature().get().to_bits(),
                cached.temperature().get().to_bits()
            );
        }
    }

    #[test]
    fn params_validate() {
        assert!(MembraneParams::maf().validate().is_ok());
        let bad = MembraneParams {
            heat_capacity: HeatCapacity::ZERO,
            ..MembraneParams::maf()
        };
        assert!(bad.validate().is_err());
    }
}
