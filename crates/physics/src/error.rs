//! Error type for physics-model construction and stepping.

/// Errors produced when validating physics-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicsError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter fell outside its physically meaningful range.
    OutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A parameter was NaN or infinite.
    NotFinite {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl core::fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhysicsError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            PhysicsError::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(
                f,
                "parameter `{name}` must lie in [{min}, {max}], got {value}"
            ),
            PhysicsError::NotFinite { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
        }
    }
}

impl std::error::Error for PhysicsError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<(), PhysicsError> {
    if !value.is_finite() {
        return Err(PhysicsError::NotFinite { name });
    }
    if value <= 0.0 {
        return Err(PhysicsError::NonPositive { name, value });
    }
    Ok(())
}

/// Validates that `value` is finite and lies in `[min, max]`.
pub(crate) fn ensure_in_range(
    name: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<(), PhysicsError> {
    if !value.is_finite() {
        return Err(PhysicsError::NotFinite { name });
    }
    if value < min || value > max {
        return Err(PhysicsError::OutOfRange {
            name,
            value,
            min,
            max,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_check() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(matches!(
            ensure_positive("x", 0.0),
            Err(PhysicsError::NonPositive { .. })
        ));
        assert!(matches!(
            ensure_positive("x", f64::NAN),
            Err(PhysicsError::NotFinite { .. })
        ));
    }

    #[test]
    fn range_check() {
        assert!(ensure_in_range("x", 0.5, 0.0, 1.0).is_ok());
        assert!(matches!(
            ensure_in_range("x", 1.5, 0.0, 1.0),
            Err(PhysicsError::OutOfRange { .. })
        ));
        assert!(matches!(
            ensure_in_range("x", f64::INFINITY, 0.0, 1.0),
            Err(PhysicsError::NotFinite { .. })
        ));
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msg = PhysicsError::NonPositive {
            name: "alpha",
            value: -1.0,
        }
        .to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains("-1"));
    }
}
