//! King's law — the empirical heat-loss law of the hot wire (Eq. 2).
//!
//! The paper writes the heat balance of the heated wire as
//!
//! ```text
//! I²·R_w = U²/R_w = (T_w − T_ref) · (A + B·vⁿ)
//! ```
//!
//! i.e. the total thermal conductance from wire to fluid is `G(v) = A + B·vⁿ`
//! with empirically determined, fluid-specific constants `A`, `B` and
//! exponent `n` (≈ 0.5 after L.V. King's 1914 analysis). This module provides
//! both the empirical form and a first-principles constructor from the
//! Kramers Nusselt correlation for a cylinder in cross-flow, so the simulated
//! sensor's constants are *derived* from water properties instead of assumed.

use crate::error::{ensure_in_range, ensure_positive};
use crate::fluid::Fluid;
use crate::PhysicsError;
use hotwire_units::{Celsius, KelvinDelta, Meters, MetersPerSecond, ThermalConductance, Watts};

/// King's-law heat-loss model `G(v) = A + B·vⁿ`.
///
/// ```
/// use hotwire_physics::KingsLaw;
/// use hotwire_units::{KelvinDelta, MetersPerSecond};
///
/// let king = KingsLaw::water_default();
/// let g0 = king.conductance(MetersPerSecond::ZERO);
/// let g1 = king.conductance(MetersPerSecond::new(1.0));
/// assert!(g1 > g0);
/// // Round-trip: velocity back from conductance.
/// let v = king.velocity_from_conductance(g1);
/// assert!((v.get() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KingsLaw {
    /// Free-convection/conduction term `A` in W/K.
    a: f64,
    /// Forced-convection coefficient `B` in W/(K·(m/s)ⁿ).
    b: f64,
    /// Velocity exponent `n` (0 < n ≤ 1, classically 0.5).
    n: f64,
}

/// Geometry of the heated wire/film for the first-principles constructor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireGeometry {
    /// Effective hydraulic diameter of the hot film/wire.
    pub diameter: Meters,
    /// Active length exposed to the flow.
    pub length: Meters,
}

impl WireGeometry {
    /// The MAF die's heater geometry: a thin-film strip on a 2 µm membrane,
    /// modelled as an equivalent cylinder of 10 µm diameter and 0.3 mm
    /// length.
    pub fn maf_heater() -> Self {
        WireGeometry {
            diameter: Meters::from_micrometers(10.0),
            length: Meters::from_millimeters(0.3),
        }
    }
}

impl Default for WireGeometry {
    fn default() -> Self {
        WireGeometry::maf_heater()
    }
}

impl KingsLaw {
    /// Builds an empirical King's law from raw coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if `a` or `b` is not positive, or `n` lies
    /// outside `(0, 1]`.
    pub fn new(a: f64, b: f64, n: f64) -> Result<Self, PhysicsError> {
        ensure_positive("a", a)?;
        ensure_positive("b", b)?;
        ensure_in_range("n", n, 1e-3, 1.0)?;
        Ok(KingsLaw { a, b, n })
    }

    /// Derives King's-law constants from the Kramers correlation for a
    /// cylinder in cross-flow:
    ///
    /// ```text
    /// Nu = 0.42·Pr^0.20 + 0.57·Pr^0.33·Re^0.50
    /// ```
    ///
    /// with `G = Nu·k·π·L` (since `h = Nu·k/D` and the lateral area is
    /// `π·D·L`). The film temperature used for properties is the mean of wall
    /// and fluid temperatures.
    pub fn from_kramers<F: Fluid + ?Sized>(
        fluid: &F,
        film_temperature: Celsius,
        geometry: WireGeometry,
    ) -> Self {
        let props = fluid.properties(film_temperature);
        let pr = props.prandtl();
        let k = props.thermal_conductivity;
        let nu = props.kinematic_viscosity();
        let pi_l_k = core::f64::consts::PI * geometry.length.get() * k;
        let a = pi_l_k * 0.42 * pr.powf(0.20);
        let b = pi_l_k * 0.57 * pr.powf(0.33) * (geometry.diameter.get() / nu).sqrt();
        KingsLaw { a, b, n: 0.5 }
    }

    /// King's law for the MAF heater in 15 °C water — the Vinci test-station
    /// operating point.
    pub fn water_default() -> Self {
        KingsLaw::from_kramers(
            &crate::fluid::Water::potable(),
            Celsius::new(15.0),
            WireGeometry::maf_heater(),
        )
    }

    /// King's law for the MAF heater in 20 °C air — the sensor's original
    /// automotive medium.
    pub fn air_default() -> Self {
        KingsLaw::from_kramers(
            &crate::fluid::Air,
            Celsius::new(20.0),
            WireGeometry::maf_heater(),
        )
    }

    /// The zero-flow term `A` in W/K.
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The forced-convection coefficient `B` in W/(K·(m/s)ⁿ).
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The velocity exponent `n`.
    #[inline]
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Total wire-to-fluid thermal conductance at flow speed `v` (uses the
    /// speed's magnitude: heat loss is direction-independent for a single
    /// wire).
    #[inline]
    pub fn conductance(&self, v: MetersPerSecond) -> ThermalConductance {
        ThermalConductance::new(self.a + self.b * v.get().abs().powf(self.n))
    }

    /// Heat loss at speed `v` and overheat `ΔT = T_w − T_fluid` (Eq. 2).
    #[inline]
    pub fn power(&self, v: MetersPerSecond, overheat: KelvinDelta) -> Watts {
        self.conductance(v) * overheat
    }

    /// Inverts `G(v)` to a flow speed. Conductances at or below `A` map to
    /// zero flow (the law cannot distinguish them).
    #[inline]
    pub fn velocity_from_conductance(&self, g: ThermalConductance) -> MetersPerSecond {
        let excess = g.get() - self.a;
        if excess <= 0.0 {
            MetersPerSecond::ZERO
        } else {
            MetersPerSecond::new((excess / self.b).powf(1.0 / self.n))
        }
    }

    /// Inverts Eq. (2): flow speed from heat loss `p` at overheat `ΔT`.
    ///
    /// Returns zero flow if `overheat` is not positive (no meaningful
    /// inversion exists).
    #[inline]
    pub fn velocity_from_power(&self, p: Watts, overheat: KelvinDelta) -> MetersPerSecond {
        if overheat.get() <= 0.0 {
            return MetersPerSecond::ZERO;
        }
        self.velocity_from_conductance(p / overheat)
    }

    /// Sensitivity `dG/dv` at speed `v`, in W/(K·m/s). Diverges at `v → 0`
    /// for `n < 1`; callers should evaluate at the operating point.
    #[inline]
    pub fn conductance_slope(&self, v: MetersPerSecond) -> f64 {
        let vv = v.get().abs().max(1e-12);
        self.b * self.n * vv.powf(self.n - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::{Air, Water};

    #[test]
    fn water_constants_have_expected_magnitude() {
        let king = KingsLaw::water_default();
        // π·L·k ≈ π·3e-4·0.59 ≈ 5.6e-4; A ≈ 0.42·Pr^0.2·that ≈ 3.5e-4 W/K.
        assert!(
            (1e-4..1e-3).contains(&king.a()),
            "A = {} W/K out of expected MEMS-in-water range",
            king.a()
        );
        assert!(
            (5e-4..1e-2).contains(&king.b()),
            "B = {} out of expected range",
            king.b()
        );
        assert_eq!(king.n(), 0.5);
    }

    #[test]
    fn full_scale_power_is_tens_of_milliwatts() {
        // Sanity anchor for the electronics: at 250 cm/s and 15 K overheat the
        // heater must burn tens of mW — drivable from a 5 V bridge.
        let king = KingsLaw::water_default();
        let p = king.power(MetersPerSecond::new(2.5), KelvinDelta::new(15.0));
        assert!(
            (0.01..0.12).contains(&p.get()),
            "P = {} W at full scale",
            p.get()
        );
    }

    #[test]
    fn air_loses_far_less_heat_than_water() {
        let water = KingsLaw::water_default();
        let air = KingsLaw::air_default();
        let v = MetersPerSecond::new(1.0);
        let ratio = water.conductance(v).get() / air.conductance(v).get();
        assert!(
            ratio > 10.0,
            "water/air conductance ratio {ratio} — this is why overheat must be reduced in water"
        );
    }

    #[test]
    fn conductance_monotonic_in_speed() {
        let king = KingsLaw::water_default();
        let mut prev = king.conductance(MetersPerSecond::ZERO);
        for i in 1..=50 {
            let g = king.conductance(MetersPerSecond::new(i as f64 * 0.05));
            assert!(g > prev);
            prev = g;
        }
    }

    #[test]
    fn velocity_round_trip() {
        let king = KingsLaw::water_default();
        for v in [0.01, 0.1, 0.5, 1.0, 2.5] {
            let g = king.conductance(MetersPerSecond::new(v));
            let back = king.velocity_from_conductance(g);
            assert!((back.get() - v).abs() < 1e-9 * v.max(1.0), "v={v}");
        }
    }

    #[test]
    fn power_round_trip() {
        let king = KingsLaw::water_default();
        let dt = KelvinDelta::new(15.0);
        for v in [0.05, 0.7, 2.0] {
            let p = king.power(MetersPerSecond::new(v), dt);
            let back = king.velocity_from_power(p, dt);
            assert!((back.get() - v).abs() < 1e-9, "v={v}");
        }
    }

    #[test]
    fn sub_a_conductance_maps_to_zero() {
        let king = KingsLaw::water_default();
        let g = ThermalConductance::new(king.a() * 0.5);
        assert_eq!(king.velocity_from_conductance(g).get(), 0.0);
        assert_eq!(
            king.velocity_from_power(Watts::ZERO, KelvinDelta::new(15.0))
                .get(),
            0.0
        );
    }

    #[test]
    fn zero_overheat_inversion_is_zero() {
        let king = KingsLaw::water_default();
        let v = king.velocity_from_power(Watts::new(0.01), KelvinDelta::ZERO);
        assert_eq!(v.get(), 0.0);
    }

    #[test]
    fn direction_independence_of_heat_loss() {
        let king = KingsLaw::water_default();
        let g_fwd = king.conductance(MetersPerSecond::new(1.0));
        let g_rev = king.conductance(MetersPerSecond::new(-1.0));
        assert_eq!(g_fwd, g_rev);
    }

    #[test]
    fn slope_decreases_with_speed_for_sqrt_law() {
        // dG/dv ∝ v^(-1/2): the sensitivity *compresses* at high flow, which
        // is exactly why the paper's resolution degrades from ±0.75 cm/s at
        // low flow to ±4 cm/s at 250 cm/s.
        let king = KingsLaw::water_default();
        let s_low = king.conductance_slope(MetersPerSecond::new(0.1));
        let s_high = king.conductance_slope(MetersPerSecond::new(2.5));
        assert!(s_low > 4.0 * s_high);
    }

    #[test]
    fn kramers_uses_film_properties() {
        let cold = KingsLaw::from_kramers(
            &Water::potable(),
            Celsius::new(5.0),
            WireGeometry::maf_heater(),
        );
        let warm = KingsLaw::from_kramers(
            &Water::potable(),
            Celsius::new(45.0),
            WireGeometry::maf_heater(),
        );
        // Warmer water: higher conductivity, lower viscosity → both A and B
        // shift; the derived law must differ measurably.
        assert!((warm.a() - cold.a()).abs() / cold.a() > 0.01);
        assert!((warm.b() - cold.b()).abs() / cold.b() > 0.01);
    }

    #[test]
    fn rejects_bad_coefficients() {
        assert!(KingsLaw::new(0.0, 1e-3, 0.5).is_err());
        assert!(KingsLaw::new(1e-4, -1.0, 0.5).is_err());
        assert!(KingsLaw::new(1e-4, 1e-3, 1.5).is_err());
        assert!(KingsLaw::new(1e-4, 1e-3, 0.5).is_ok());
    }

    #[test]
    fn air_default_exists_and_is_positive() {
        let king = KingsLaw::from_kramers(&Air, Celsius::new(20.0), WireGeometry::default());
        assert!(king.a() > 0.0 && king.b() > 0.0);
    }
}
