//! CaCO₃ scale deposition on the sensor face — the paper's Fig. 8 failure
//! mode.
//!
//! Heating hard water shifts the carbonate equilibrium
//! `Ca(HCO₃)₂ → CaCO₃↓ + CO₂ + H₂O` (the paper's reaction (3)): calcium
//! carbonate precipitates preferentially on the *hot* surface. The deposit
//! layer adds a series thermal resistance between heater and water, which
//! reads as a slow sensitivity drift. The paper's countermeasure is the
//! PECVD silicon-nitride passivation ("the right choice of a passivation
//! layer results in a better protection against deposits"); after several
//! months in the Vinci station the passivated prototype showed "no deposit of
//! calcium carbonate".
//!
//! Model: deposit thickness `δ` grows at a rate proportional to water
//! hardness, exponentially accelerated by wall temperature (precipitation
//! kinetics), and scaled by a surface *sticking factor* (≈1 for a bare oxide,
//! ≪1 for the inert SiN passivation). Bubble coverage locally concentrates
//! the reaction (the paper notes the effect "is enforced by the concomitant
//! deposition"), modelled as a multiplicative enhancement.

use crate::error::{ensure_in_range, ensure_positive};
use crate::PhysicsError;
use hotwire_units::{Celsius, Seconds, ThermalResistance};

/// Thermal conductivity of calcite scale, W/(m·K).
pub const CACO3_CONDUCTIVITY: f64 = 2.2;

/// Surface finish of the sensor face, which sets the deposit sticking factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Passivation {
    /// Bare SiO₂/metal face — deposits stick readily.
    Bare,
    /// PECVD silicon-nitride final passivation — "inert against most
    /// environmental detrimental effects and is also biocompatible".
    SiliconNitride,
}

impl Passivation {
    /// Fraction of precipitating CaCO₃ that adheres to this surface.
    pub fn sticking_factor(self) -> f64 {
        match self {
            Passivation::Bare => 1.0,
            Passivation::SiliconNitride => 0.04,
        }
    }
}

/// Rate parameters of the scale-deposition model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FoulingParams {
    /// Deposition rate at reference conditions (30 °f water, 25 °C wall,
    /// bare surface), in µm per hour of exposure.
    pub base_rate_um_per_hour: f64,
    /// Wall-temperature acceleration scale in kelvin (Arrhenius-like
    /// `exp((T_wall − 25 °C)/scale)`).
    pub temperature_scale_k: f64,
    /// Enhancement factor at full bubble coverage.
    pub bubble_enhancement: f64,
    /// Effective heat-exchange area of the heater face, m² (converts
    /// thickness to thermal resistance).
    pub face_area_m2: f64,
}

impl FoulingParams {
    /// Defaults calibrated to the field reality: a bare hot surface in hard
    /// 45 °C-wall conditions accumulates ~20 µm over three months, while the
    /// SiN-passivated face at moderate overheat stays below half a micron
    /// (the paper's "no deposit of calcium carbonate" after months of test).
    pub fn potable_defaults() -> Self {
        FoulingParams {
            base_rate_um_per_hour: 0.002,
            temperature_scale_k: 12.0,
            bubble_enhancement: 4.0,
            face_area_m2: 1.0e-8,
        }
    }

    /// Time-compressed rates (100×) for experiments that want visible fouling
    /// within simulated hours rather than months.
    pub fn accelerated() -> Self {
        FoulingParams {
            base_rate_um_per_hour: 0.2,
            ..FoulingParams::potable_defaults()
        }
    }

    /// Validates rate plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if any rate or scale is non-positive, or the
    /// bubble enhancement is below 1.
    pub fn validate(&self) -> Result<(), PhysicsError> {
        ensure_positive("base_rate_um_per_hour", self.base_rate_um_per_hour)?;
        ensure_positive("temperature_scale_k", self.temperature_scale_k)?;
        ensure_in_range("bubble_enhancement", self.bubble_enhancement, 1.0, 100.0)?;
        ensure_positive("face_area_m2", self.face_area_m2)?;
        Ok(())
    }
}

impl Default for FoulingParams {
    fn default() -> Self {
        FoulingParams::potable_defaults()
    }
}

/// The evolving CaCO₃ layer on one heater face.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FoulingLayer {
    params: FoulingParams,
    passivation: Passivation,
    thickness_um: f64,
}

impl FoulingLayer {
    /// A clean face with the given surface finish.
    pub fn new(params: FoulingParams, passivation: Passivation) -> Self {
        FoulingLayer {
            params,
            passivation,
            thickness_um: 0.0,
        }
    }

    /// Current deposit thickness in micrometres.
    #[inline]
    pub fn thickness_um(&self) -> f64 {
        self.thickness_um
    }

    /// The surface finish this layer grows on.
    #[inline]
    pub fn passivation(&self) -> Passivation {
        self.passivation
    }

    /// Series thermal resistance added by the deposit (K/W):
    /// `R = δ / (k_CaCO₃ · A_face)`.
    pub fn thermal_resistance(&self) -> ThermalResistance {
        ThermalResistance::new(
            self.thickness_um * 1e-6 / (CACO3_CONDUCTIVITY * self.params.face_area_m2),
        )
    }

    /// Advances deposition by `dt` at the given wall temperature, water
    /// hardness (°f) and instantaneous bubble coverage.
    pub fn step(&mut self, dt: Seconds, wall: Celsius, hardness_f: f64, bubble_coverage: f64) {
        if hardness_f <= 0.0 {
            return;
        }
        let sticking = self.passivation.sticking_factor();
        let hardness_factor = hardness_f / 30.0;
        let temp_factor = ((wall.get() - 25.0) / self.params.temperature_scale_k).exp();
        let bubble_factor =
            1.0 + (self.params.bubble_enhancement - 1.0) * bubble_coverage.clamp(0.0, 1.0);
        let rate_um_per_s = self.params.base_rate_um_per_hour / 3600.0
            * sticking
            * hardness_factor
            * temp_factor
            * bubble_factor;
        self.thickness_um += rate_um_per_s * dt.get();
    }

    /// Advances deposition by a coarse interval at (assumed constant)
    /// conditions — fouling evolves over hours, so scenario code may step it
    /// far less often than the electrical simulation.
    pub fn advance_hours(&mut self, hours: f64, wall: Celsius, hardness_f: f64, coverage: f64) {
        self.step(Seconds::new(hours * 3600.0), wall, hardness_f, coverage);
    }

    /// Deposits extra scale instantaneously (a fault-injection step event:
    /// debris lodging on the face reads the same as a sudden deposit).
    pub fn deposit(&mut self, microns: f64) {
        self.thickness_um += microns.max(0.0);
    }

    /// Removes the deposit (acid flush / replacement).
    pub fn clean(&mut self) {
        self.thickness_um = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(p: Passivation) -> FoulingLayer {
        FoulingLayer::new(FoulingParams::potable_defaults(), p)
    }

    #[test]
    fn bare_surface_fouls_in_hard_water() {
        let mut l = layer(Passivation::Bare);
        l.advance_hours(24.0 * 30.0, Celsius::new(45.0), 30.0, 0.0);
        assert!(
            l.thickness_um() > 1.0,
            "thickness {} µm after a month",
            l.thickness_um()
        );
    }

    #[test]
    fn passivation_suppresses_fouling() {
        let mut bare = layer(Passivation::Bare);
        let mut passivated = layer(Passivation::SiliconNitride);
        for _ in 0..100 {
            bare.advance_hours(10.0, Celsius::new(45.0), 30.0, 0.0);
            passivated.advance_hours(10.0, Celsius::new(45.0), 30.0, 0.0);
        }
        assert!(
            passivated.thickness_um() < 0.1 * bare.thickness_um(),
            "passivated {} vs bare {}",
            passivated.thickness_um(),
            bare.thickness_um()
        );
    }

    #[test]
    fn hotter_wall_fouls_faster() {
        let mut cool = layer(Passivation::Bare);
        let mut hot = layer(Passivation::Bare);
        cool.advance_hours(100.0, Celsius::new(30.0), 30.0, 0.0);
        hot.advance_hours(100.0, Celsius::new(55.0), 30.0, 0.0);
        assert!(hot.thickness_um() > 2.0 * cool.thickness_um());
    }

    #[test]
    fn bubbles_enhance_deposition() {
        let mut clean = layer(Passivation::Bare);
        let mut bubbly = layer(Passivation::Bare);
        clean.advance_hours(100.0, Celsius::new(45.0), 30.0, 0.0);
        bubbly.advance_hours(100.0, Celsius::new(45.0), 30.0, 0.8);
        assert!(bubbly.thickness_um() > 2.0 * clean.thickness_um());
    }

    #[test]
    fn soft_water_does_not_foul() {
        let mut l = layer(Passivation::Bare);
        l.advance_hours(1000.0, Celsius::new(55.0), 0.0, 0.0);
        assert_eq!(l.thickness_um(), 0.0);
    }

    #[test]
    fn thermal_resistance_scales_with_thickness() {
        let mut l = layer(Passivation::Bare);
        assert_eq!(l.thermal_resistance().get(), 0.0);
        l.advance_hours(24.0 * 60.0, Celsius::new(45.0), 30.0, 0.0);
        let r1 = l.thermal_resistance().get();
        let t1 = l.thickness_um();
        // R = δ/(k·A): 1 µm over 1e-8 m² of calcite is 1e-6/(2.2·1e-8) ≈ 45 K/W.
        assert!((r1 - t1 * 1e-6 / (2.2 * 1e-8)).abs() < 1e-9);
        assert!(r1 > 0.0);
    }

    #[test]
    fn deposit_adds_thickness_immediately() {
        let mut l = layer(Passivation::Bare);
        l.deposit(3.5);
        assert!((l.thickness_um() - 3.5).abs() < 1e-12);
        l.deposit(-1.0); // negative deposits are ignored
        assert!((l.thickness_um() - 3.5).abs() < 1e-12);
        assert!(l.thermal_resistance().get() > 0.0);
    }

    #[test]
    fn clean_resets_thickness() {
        let mut l = layer(Passivation::Bare);
        l.advance_hours(100.0, Celsius::new(50.0), 30.0, 0.0);
        l.clean();
        assert_eq!(l.thickness_um(), 0.0);
        assert_eq!(l.thermal_resistance().get(), 0.0);
    }

    #[test]
    fn params_validation() {
        assert!(FoulingParams::potable_defaults().validate().is_ok());
        assert!(FoulingParams::accelerated().validate().is_ok());
        let bad = FoulingParams {
            bubble_enhancement: 0.5,
            ..FoulingParams::potable_defaults()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn accelerated_is_faster_than_potable() {
        let mut slow = FoulingLayer::new(FoulingParams::potable_defaults(), Passivation::Bare);
        let mut fast = FoulingLayer::new(FoulingParams::accelerated(), Passivation::Bare);
        slow.advance_hours(10.0, Celsius::new(45.0), 30.0, 0.0);
        fast.advance_hours(10.0, Celsius::new(45.0), 30.0, 0.0);
        assert!(fast.thickness_um() > 10.0 * slow.thickness_um());
    }

    #[test]
    fn sticking_factors_ordered() {
        assert!(
            Passivation::SiliconNitride.sticking_factor() < Passivation::Bare.sticking_factor()
        );
    }
}
