//! The measurement line: bulk-vs-local velocity, flow regime, turbulence.
//!
//! The prototype is an insertion probe: the sensor head sits near the pipe
//! axis, so it samples a *local* velocity that relates to the *bulk* (area
//! mean) velocity through the velocity profile. The profile factor depends on
//! the Reynolds regime (parabolic laminar profile → centreline = 2× bulk;
//! flat turbulent 1/7-power profile → ≈1.22× bulk). Turbulent fluctuation is
//! modelled as an Ornstein–Uhlenbeck process with an eddy-turnover
//! correlation time.

use crate::error::ensure_positive;
use crate::fluid::Fluid;
use crate::stochastic::OrnsteinUhlenbeck;
use crate::PhysicsError;
use hotwire_units::{Celsius, Meters, MetersPerSecond, Seconds};
use rand::Rng;

/// Reynolds number below which pipe flow is laminar.
pub const RE_LAMINAR: f64 = 2300.0;
/// Reynolds number above which pipe flow is fully turbulent.
pub const RE_TURBULENT: f64 = 4000.0;

/// A straight measurement pipe with an insertion probe near the axis.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pipe {
    inner_diameter: Meters,
}

impl Pipe {
    /// Creates a pipe with the given inner diameter.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if the diameter is not positive.
    pub fn new(inner_diameter: Meters) -> Result<Self, PhysicsError> {
        ensure_positive("inner_diameter", inner_diameter.get())?;
        Ok(Pipe { inner_diameter })
    }

    /// The DN50 line used in the paper's dedicated measurement section.
    pub fn dn50() -> Self {
        Pipe {
            inner_diameter: Meters::from_millimeters(50.0),
        }
    }

    /// Inner diameter.
    #[inline]
    pub fn inner_diameter(&self) -> Meters {
        self.inner_diameter
    }

    /// Reynolds number of the bulk flow at the given fluid temperature.
    pub fn reynolds<F: Fluid + ?Sized>(
        &self,
        fluid: &F,
        temperature: Celsius,
        bulk: MetersPerSecond,
    ) -> f64 {
        let props = fluid.properties(temperature);
        bulk.get().abs() * self.inner_diameter.get() / props.kinematic_viscosity()
    }

    /// Ratio of centreline (probe) velocity to bulk velocity for the given
    /// Reynolds number, blending smoothly through the transition region.
    pub fn profile_factor(reynolds: f64) -> f64 {
        const LAMINAR: f64 = 2.0;
        // 1/7-power law: v_max / v_bulk = (n+1)(2n+1)/(2n²) with n = 7 → 1.224.
        const TURBULENT: f64 = 1.224;
        if reynolds <= RE_LAMINAR {
            LAMINAR
        } else if reynolds >= RE_TURBULENT {
            TURBULENT
        } else {
            let x = (reynolds - RE_LAMINAR) / (RE_TURBULENT - RE_LAMINAR);
            LAMINAR + (TURBULENT - LAMINAR) * x
        }
    }

    /// Turbulence intensity (rms fluctuation / mean) at the centreline for
    /// the given Reynolds number. Zero in laminar flow; ~4–6 % when fully
    /// turbulent (decaying weakly with Re).
    pub fn turbulence_intensity(reynolds: f64) -> f64 {
        if reynolds <= RE_LAMINAR {
            0.0
        } else {
            let re = reynolds.max(RE_TURBULENT);
            // Fully-developed pipe-core correlation: I ≈ 0.16·Re^(−1/8).
            let full = 0.16 * re.powf(-1.0 / 8.0);
            if reynolds >= RE_TURBULENT {
                full
            } else {
                full * (reynolds - RE_LAMINAR) / (RE_TURBULENT - RE_LAMINAR)
            }
        }
    }

    /// Local velocity at the probe for a given bulk velocity (no turbulence).
    pub fn local_mean_velocity<F: Fluid + ?Sized>(
        &self,
        fluid: &F,
        temperature: Celsius,
        bulk: MetersPerSecond,
    ) -> MetersPerSecond {
        let re = self.reynolds(fluid, temperature, bulk);
        bulk * Self::profile_factor(re)
    }

    /// Velocity-profile ratio `v(r)/v_bulk` at radial position
    /// `r_over_radius ∈ [0, 1)` (0 = centreline, 1 = wall):
    /// parabolic in laminar flow, 1/7-power in turbulent flow, blended
    /// through the transition — the reason the paper's rig had "a
    /// transparent section for monitoring … the correct position of the
    /// sensor in the tube".
    pub fn profile_ratio_at(reynolds: f64, r_over_radius: f64) -> f64 {
        let r = r_over_radius.clamp(0.0, 0.999);
        // Laminar Poiseuille: v(r)/v_bulk = 2·(1 − r²).
        let laminar = 2.0 * (1.0 - r * r);
        // Turbulent 1/7-power: v(r)/v_max = (1 − r)^(1/7), v_max/v_bulk = 1.224.
        let turbulent = 1.224 * (1.0 - r).powf(1.0 / 7.0);
        if reynolds <= RE_LAMINAR {
            laminar
        } else if reynolds >= RE_TURBULENT {
            turbulent
        } else {
            let x = (reynolds - RE_LAMINAR) / (RE_TURBULENT - RE_LAMINAR);
            laminar + (turbulent - laminar) * x
        }
    }

    /// Local mean velocity at an off-centre probe position.
    pub fn local_mean_velocity_at<F: Fluid + ?Sized>(
        &self,
        fluid: &F,
        temperature: Celsius,
        bulk: MetersPerSecond,
        r_over_radius: f64,
    ) -> MetersPerSecond {
        let re = self.reynolds(fluid, temperature, bulk);
        bulk * Self::profile_ratio_at(re, r_over_radius)
    }
}

/// Stateful generator of the instantaneous velocity seen by the probe:
/// profile-corrected mean plus OU turbulence.
#[derive(Debug, Clone)]
pub struct ProbeFlow {
    pipe: Pipe,
    turbulence: OrnsteinUhlenbeck,
}

impl ProbeFlow {
    /// Creates a probe-flow generator for the given pipe. The OU correlation
    /// time approximates one eddy turnover at mid-range flow.
    pub fn new(pipe: Pipe) -> Self {
        ProbeFlow {
            pipe,
            turbulence: OrnsteinUhlenbeck::new(Seconds::from_millis(50.0), 1.0),
        }
    }

    /// The underlying pipe geometry.
    #[inline]
    pub fn pipe(&self) -> &Pipe {
        &self.pipe
    }

    /// Advances by `dt` and returns the instantaneous local velocity at the
    /// probe for bulk velocity `bulk` (sign preserved — the probe senses
    /// direction through the dual heaters).
    pub fn step<F: Fluid + ?Sized, R: Rng + ?Sized>(
        &mut self,
        dt: Seconds,
        fluid: &F,
        temperature: Celsius,
        bulk: MetersPerSecond,
        rng: &mut R,
    ) -> MetersPerSecond {
        let re = self.pipe.reynolds(fluid, temperature, bulk);
        let mean = bulk * Pipe::profile_factor(re);
        let intensity = Pipe::turbulence_intensity(re);
        let xi = self.turbulence.step(dt, rng);
        mean * (1.0 + intensity * xi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::Water;
    use rand::SeedableRng;

    #[test]
    fn reynolds_magnitude_in_water() {
        let pipe = Pipe::dn50();
        // 1 m/s in a DN50 water pipe at 15 °C: Re = v·D/ν ≈ 0.05/1.14e-6 ≈ 44 000.
        let re = pipe.reynolds(
            &Water::potable(),
            Celsius::new(15.0),
            MetersPerSecond::new(1.0),
        );
        assert!((35_000.0..55_000.0).contains(&re), "Re = {re}");
    }

    #[test]
    fn profile_factor_limits() {
        assert_eq!(Pipe::profile_factor(1000.0), 2.0);
        assert!((Pipe::profile_factor(1e5) - 1.224).abs() < 1e-9);
        // Transition is monotone between the limits.
        let mid = Pipe::profile_factor(3000.0);
        assert!(mid < 2.0 && mid > 1.224);
    }

    #[test]
    fn turbulence_intensity_regimes() {
        assert_eq!(Pipe::turbulence_intensity(1500.0), 0.0);
        let i = Pipe::turbulence_intensity(44_000.0);
        assert!((0.02..0.08).contains(&i), "intensity {i}");
        // Intensity decays weakly with Re.
        assert!(Pipe::turbulence_intensity(1e6) < Pipe::turbulence_intensity(1e4));
    }

    #[test]
    fn local_velocity_above_bulk() {
        let pipe = Pipe::dn50();
        let local = pipe.local_mean_velocity(
            &Water::potable(),
            Celsius::new(15.0),
            MetersPerSecond::new(1.0),
        );
        assert!(local.get() > 1.0 && local.get() < 2.1);
    }

    #[test]
    fn probe_flow_fluctuates_around_mean() {
        let mut probe = ProbeFlow::new(Pipe::dn50());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bulk = MetersPerSecond::new(1.0);
        let water = Water::potable();
        let dt = Seconds::from_millis(1.0);
        let n = 50_000;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..n {
            let v = probe
                .step(dt, &water, Celsius::new(15.0), bulk, &mut rng)
                .get();
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / n as f64;
        let expected = Pipe::dn50()
            .local_mean_velocity(&water, Celsius::new(15.0), bulk)
            .get();
        assert!((mean - expected).abs() / expected < 0.02, "mean {mean}");
        assert!(max > mean && min < mean, "fluctuation missing");
    }

    #[test]
    fn laminar_probe_flow_is_noiseless() {
        let mut probe = ProbeFlow::new(Pipe::dn50());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let water = Water::potable();
        // 1 cm/s in DN50: Re ≈ 440 → laminar.
        let bulk = MetersPerSecond::from_cm_per_s(1.0);
        let a = probe.step(
            Seconds::from_millis(1.0),
            &water,
            Celsius::new(15.0),
            bulk,
            &mut rng,
        );
        let b = probe.step(
            Seconds::from_millis(1.0),
            &water,
            Celsius::new(15.0),
            bulk,
            &mut rng,
        );
        assert_eq!(a, b, "laminar flow must carry no turbulence");
        assert!((a.get() - 2.0 * bulk.get()).abs() < 1e-12);
    }

    #[test]
    fn profile_ratio_limits() {
        // Centreline matches the profile factor in both regimes.
        assert!((Pipe::profile_ratio_at(1000.0, 0.0) - 2.0).abs() < 1e-12);
        assert!((Pipe::profile_ratio_at(1e5, 0.0) - 1.224).abs() < 1e-9);
        // Velocity falls toward the wall, monotonically.
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let r = i as f64 / 10.0;
            let v = Pipe::profile_ratio_at(1e5, r);
            assert!(v < prev, "profile not monotone at r={r}");
            prev = v;
        }
        // The turbulent profile is flatter than the laminar one at mid-radius.
        let lam = Pipe::profile_ratio_at(1000.0, 0.5) / Pipe::profile_ratio_at(1000.0, 0.0);
        let turb = Pipe::profile_ratio_at(1e5, 0.5) / Pipe::profile_ratio_at(1e5, 0.0);
        assert!(turb > lam, "turbulent {turb} vs laminar {lam}");
    }

    #[test]
    fn off_center_velocity_below_centerline() {
        let pipe = Pipe::dn50();
        let water = Water::potable();
        let center =
            pipe.local_mean_velocity_at(&water, Celsius::new(15.0), MetersPerSecond::new(1.0), 0.0);
        let off =
            pipe.local_mean_velocity_at(&water, Celsius::new(15.0), MetersPerSecond::new(1.0), 0.5);
        assert!(off < center);
        assert!(off.get() > 0.8, "still most of bulk at mid-radius: {off}");
    }

    #[test]
    fn negative_bulk_keeps_sign() {
        let pipe = Pipe::dn50();
        let local = pipe.local_mean_velocity(
            &Water::potable(),
            Celsius::new(15.0),
            MetersPerSecond::new(-1.0),
        );
        assert!(local.get() < 0.0);
    }

    #[test]
    fn zero_diameter_rejected() {
        assert!(Pipe::new(Meters::ZERO).is_err());
    }
}
