//! Outgassing-bubble formation on the heater surface — the paper's Fig. 7
//! failure mode.
//!
//! Hot-wire anemometry "proved less success in liquids because of bubbles and
//! deposits, which disturb the signal". In air-saturated potable water,
//! dissolved gas comes out of solution on a wall heated above an onset
//! temperature well below boiling (gas solubility drops with temperature,
//! Henry's law makes the onset rise with line pressure). Bubbles stick to the
//! sensor face, blanket the heater, corrupt the heat transfer, and promote
//! local CaCO₃ deposition.
//!
//! The model is a surface-coverage ODE with stochastic detachment:
//!
//! ```text
//! dθ/dt = k_grow·(T_w − T_on)₊·(1 − θ)  −  k_dissolve·(T_on − T_w)₊·θ
//! ```
//!
//! plus Poisson detachment events that remove a random chunk of coverage
//! (the discrete signal "spikes" seen in practice). The paper's mitigation —
//! pulsed drive and reduced overheat — works here for exactly the physical
//! reason it works on the bench: the wall spends most of its time below the
//! onset temperature, so dissolution wins.
//!
//! Time scales are accelerated (~minutes → seconds) so experiments complete
//! in simulated seconds; the *ordering* of continuous-vs-pulsed outcomes is
//! insensitive to the acceleration factor (see tests).

use crate::error::ensure_positive;
use crate::stochastic::poisson_fires;
use crate::PhysicsError;
use hotwire_units::{Celsius, Seconds};
use rand::Rng;

/// Rate parameters of the bubble coverage model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BubbleParams {
    /// Coverage growth rate per kelvin of excess superheat, 1/(K·s).
    pub growth_rate_per_k: f64,
    /// Coverage dissolution rate per kelvin below onset, 1/(K·s).
    pub dissolve_rate_per_k: f64,
    /// Baseline dissolution rate at the onset temperature, 1/s (slow
    /// shrinkage even without subcooling, e.g. flow shear).
    pub baseline_dissolve_rate: f64,
    /// Poisson rate of detachment events at full coverage, 1/s.
    pub detach_rate_at_full: f64,
    /// Largest fraction of current coverage removed by one detachment.
    pub max_detach_fraction: f64,
}

impl BubbleParams {
    /// Accelerated-time defaults (minutes of real fouling compressed into
    /// seconds of simulation).
    pub fn accelerated() -> Self {
        BubbleParams {
            growth_rate_per_k: 0.02,
            dissolve_rate_per_k: 0.05,
            baseline_dissolve_rate: 0.01,
            detach_rate_at_full: 0.8,
            max_detach_fraction: 0.35,
        }
    }

    /// Validates rate plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if any rate is non-positive or the detach
    /// fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), PhysicsError> {
        ensure_positive("growth_rate_per_k", self.growth_rate_per_k)?;
        ensure_positive("dissolve_rate_per_k", self.dissolve_rate_per_k)?;
        ensure_positive("baseline_dissolve_rate", self.baseline_dissolve_rate)?;
        ensure_positive("detach_rate_at_full", self.detach_rate_at_full)?;
        crate::error::ensure_in_range("max_detach_fraction", self.max_detach_fraction, 1e-6, 1.0)?;
        Ok(())
    }
}

impl Default for BubbleParams {
    fn default() -> Self {
        BubbleParams::accelerated()
    }
}

/// The evolving bubble layer on one heater face.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BubbleLayer {
    params: BubbleParams,
    coverage: f64,
    detachments: u64,
}

impl BubbleLayer {
    /// A clean heater face with the given rate parameters.
    pub fn new(params: BubbleParams) -> Self {
        BubbleLayer {
            params,
            coverage: 0.0,
            detachments: 0,
        }
    }

    /// Fraction of the face currently blanketed, `0..=1`.
    #[inline]
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Number of discrete detachment events so far (each one is a signal
    /// spike in the conditioned output).
    #[inline]
    pub fn detachment_count(&self) -> u64 {
        self.detachments
    }

    /// Advances the layer by `dt` given the wall temperature and the
    /// outgassing onset temperature (from
    /// [`Fluid::bubble_onset_temperature`](crate::fluid::Fluid::bubble_onset_temperature)).
    ///
    /// Returns `true` if a detachment event fired during this step.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        dt: Seconds,
        wall: Celsius,
        onset: Celsius,
        rng: &mut R,
    ) -> bool {
        if !onset.get().is_finite() {
            // Gas medium: no bubbles, ever.
            self.coverage = 0.0;
            return false;
        }
        let superheat = (wall - onset).get();
        let grow = self.params.growth_rate_per_k * superheat.max(0.0) * (1.0 - self.coverage);
        let dissolve = (self.params.dissolve_rate_per_k * (-superheat).max(0.0)
            + self.params.baseline_dissolve_rate)
            * self.coverage;
        self.coverage = (self.coverage + dt.get() * (grow - dissolve)).clamp(0.0, 1.0);

        let rate = self.params.detach_rate_at_full * self.coverage;
        if poisson_fires(rng, dt, rate) {
            let frac = rng.gen_range(0.0..self.params.max_detach_fraction);
            self.coverage *= 1.0 - frac;
            self.detachments += 1;
            true
        } else {
            false
        }
    }

    /// Deposits extra coverage instantaneously (a slug of entrained gas
    /// bursting against the face — fault-injection's abrupt bubble event).
    /// Coverage clamps to the unit interval.
    pub fn deposit(&mut self, coverage: f64) {
        self.coverage = (self.coverage + coverage.max(0.0)).clamp(0.0, 1.0);
    }

    /// Clears the layer (e.g. after a maintenance flush).
    pub fn clear(&mut self) {
        self.coverage = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn run(
        layer: &mut BubbleLayer,
        wall: f64,
        onset: f64,
        seconds: f64,
        rng: &mut rand::rngs::StdRng,
    ) {
        let dt = Seconds::from_millis(10.0);
        let steps = (seconds / dt.get()).round() as usize;
        for _ in 0..steps {
            layer.step(dt, Celsius::new(wall), Celsius::new(onset), rng);
        }
    }

    #[test]
    fn hot_wall_grows_coverage() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        run(&mut layer, 55.0, 40.0, 30.0, &mut r);
        assert!(
            layer.coverage() > 0.3,
            "coverage {} after 30 s at 15 K excess superheat",
            layer.coverage()
        );
    }

    #[test]
    fn cool_wall_stays_clean() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        run(&mut layer, 30.0, 40.0, 30.0, &mut r);
        assert_eq!(layer.coverage(), 0.0);
    }

    #[test]
    fn coverage_dissolves_after_cooldown() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        run(&mut layer, 55.0, 40.0, 30.0, &mut r);
        let peak = layer.coverage();
        run(&mut layer, 25.0, 40.0, 30.0, &mut r);
        assert!(
            layer.coverage() < 0.2 * peak,
            "coverage {} did not dissolve from {}",
            layer.coverage(),
            peak
        );
    }

    #[test]
    fn duty_cycling_bounds_coverage() {
        // The paper's mitigation: pulsed drive keeps mean superheat low.
        let mut r1 = rng();
        let mut r2 = rng();
        let mut continuous = BubbleLayer::new(BubbleParams::accelerated());
        let mut pulsed = BubbleLayer::new(BubbleParams::accelerated());
        let dt = Seconds::from_millis(10.0);
        for i in 0..6000 {
            continuous.step(dt, Celsius::new(55.0), Celsius::new(40.0), &mut r1);
            // 20 % duty: heater hot 1 tick out of 5.
            let wall = if i % 5 == 0 { 55.0 } else { 20.0 };
            pulsed.step(dt, Celsius::new(wall), Celsius::new(40.0), &mut r2);
        }
        assert!(
            pulsed.coverage() < 0.3 * continuous.coverage().max(1e-9),
            "pulsed {} vs continuous {}",
            pulsed.coverage(),
            continuous.coverage()
        );
    }

    #[test]
    fn detachments_eventually_fire_on_covered_surface() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        run(&mut layer, 60.0, 40.0, 120.0, &mut r);
        assert!(layer.detachment_count() > 0);
    }

    #[test]
    fn coverage_never_leaves_unit_interval() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        for i in 0..10_000 {
            let wall = if i % 2 == 0 { 90.0 } else { 5.0 };
            layer.step(
                Seconds::from_millis(50.0),
                Celsius::new(wall),
                Celsius::new(40.0),
                &mut r,
            );
            assert!((0.0..=1.0).contains(&layer.coverage()));
        }
    }

    #[test]
    fn gas_medium_never_bubbles() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        let fired = layer.step(
            Seconds::new(1.0),
            Celsius::new(200.0),
            Celsius::new(f64::INFINITY),
            &mut r,
        );
        assert!(!fired);
        assert_eq!(layer.coverage(), 0.0);
    }

    #[test]
    fn deposit_clamps_to_unit_interval() {
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        layer.deposit(0.4);
        assert!((layer.coverage() - 0.4).abs() < 1e-12);
        layer.deposit(0.9);
        assert_eq!(layer.coverage(), 1.0);
        layer.deposit(-5.0); // negative deposits are ignored
        assert_eq!(layer.coverage(), 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut r = rng();
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        run(&mut layer, 55.0, 40.0, 10.0, &mut r);
        layer.clear();
        assert_eq!(layer.coverage(), 0.0);
    }

    #[test]
    fn params_validation() {
        assert!(BubbleParams::accelerated().validate().is_ok());
        let bad = BubbleParams {
            max_detach_fraction: 1.5,
            ..BubbleParams::accelerated()
        };
        assert!(bad.validate().is_err());
    }
}
