//! Electro-thermal and fluid physics models for the hot-wire MEMS sensor.
//!
//! This crate is the *simulated hardware* of the reproduction: everything the
//! paper measured on a physical FhG/ISiT MAF die immersed in a potable-water
//! line is modelled here as a deterministic (seedable) discrete-time system.
//!
//! The building blocks, bottom-up:
//!
//! * [`fluid`] — temperature-dependent water and air property models
//!   (density, viscosity, conductivity, heat capacity, Prandtl number).
//! * [`resistor`] — the Ti/TiN resistance-temperature law of Eq. (1),
//!   `R(T) = R₀·(1 + α·(T − T_ref))`, with manufacturing tolerance.
//! * [`kings_law`] — the empirical heat-loss law of Eq. (2),
//!   `P = (T_w − T_ref)·(A + B·vⁿ)`, plus a first-principles constructor from
//!   a cylinder-in-crossflow Nusselt correlation.
//! * [`membrane`] — the lumped thermal model of the heated membrane
//!   (heat capacity, conduction to the rim, convection to the fluid).
//! * [`sensor`] — the complete two-half-bridge MAF die: two heaters with
//!   advective coupling (flow-direction sensitivity) and the interdigitated
//!   reference resistor.
//! * [`bubbles`] — outgassing-bubble nucleation/coverage on the heater
//!   surface (the paper's Fig. 7 failure mode).
//! * [`fouling`] — CaCO₃ scale deposition (the paper's Fig. 8 failure mode).
//! * [`pipe`] — bulk-vs-local velocity in the measurement line, Reynolds
//!   regime, turbulence as an Ornstein–Uhlenbeck fluctuation.
//! * [`stochastic`] — small deterministic-seed random-process helpers.
//!
//! # Example
//!
//! ```
//! use hotwire_physics::kings_law::KingsLaw;
//! use hotwire_units::{KelvinDelta, MetersPerSecond, Watts};
//!
//! let king = KingsLaw::water_default();
//! let p: Watts = king.power(MetersPerSecond::new(1.0), KelvinDelta::new(15.0));
//! // Heat loss grows with velocity:
//! let p2 = king.power(MetersPerSecond::new(2.0), KelvinDelta::new(15.0));
//! assert!(p2 > p);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bubbles;
pub mod error;
pub mod fluid;
pub mod fouling;
pub mod kings_law;
pub mod membrane;
pub mod pipe;
pub mod resistor;
pub mod sensor;
pub mod stochastic;

pub use error::PhysicsError;
pub use fluid::{Air, Fluid, FluidProperties, Water};
pub use kings_law::KingsLaw;
pub use membrane::{MembraneParams, MembraneState};
pub use resistor::Rtd;
pub use sensor::{MafDie, MafParams, SensorEnvironment};
