//! The complete MAF die: two heaters with advective coupling, the
//! interdigitated reference resistor, and the surface degradation layers.
//!
//! Geometry (paper Fig. 1/2): two heater resistors `Rh` adjoined closely in
//! parallel on the membrane, plus reference resistors `Rt` interdigitated so
//! both half-bridges share the same ambient reference. Flow along the die
//! carries heat from the upstream heater to the downstream one — "the fluid
//! picks up heat at the first resistor and transfers this to the second
//! resistor" — producing the differential cooling that encodes *direction*.
//!
//! The die exposes a purely electrical port: the analog front end applies
//! power to each heater and reads back resistances; everything thermal stays
//! in here.

use crate::bubbles::{BubbleLayer, BubbleParams};
use crate::fluid::{Air, Fluid, FluidProperties, Water};
use crate::fouling::{FoulingLayer, FoulingParams, Passivation};
use crate::kings_law::{KingsLaw, WireGeometry};
use crate::membrane::{DecayCache, MembraneParams, MembraneState, SurfaceCondition};
use crate::resistor::Rtd;
use crate::PhysicsError;
use hotwire_units::{Celsius, MetersPerSecond, Ohms, Pascals, Seconds, ThermalConductance, Watts};
use rand::Rng;

/// The working medium surrounding the die.
///
/// A closed enum rather than a generic keeps [`MafDie`] object-simple for the
/// platform code while still dispatching to the right property model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FluidMedium {
    /// Liquid water (the paper's deployment medium).
    Water(Water),
    /// Air (the sensor's original automotive medium).
    Air(Air),
}

impl FluidMedium {
    /// Water hardness in °f, zero for gases.
    pub fn hardness_f(&self) -> f64 {
        match self {
            FluidMedium::Water(w) => w.hardness_f,
            FluidMedium::Air(_) => 0.0,
        }
    }
}

impl Fluid for FluidMedium {
    fn properties(&self, temperature: Celsius) -> FluidProperties {
        match self {
            FluidMedium::Water(w) => w.properties(temperature),
            FluidMedium::Air(a) => a.properties(temperature),
        }
    }

    fn bubble_onset_temperature(&self, pressure: Pascals) -> Celsius {
        match self {
            FluidMedium::Water(w) => w.bubble_onset_temperature(pressure),
            FluidMedium::Air(a) => a.bubble_onset_temperature(pressure),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FluidMedium::Water(w) => w.name(),
            FluidMedium::Air(a) => a.name(),
        }
    }
}

/// Identifies one of the two heaters on the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum HeaterId {
    /// Heater A — upstream for positive flow.
    A,
    /// Heater B — downstream for positive flow.
    B,
}

/// Static parameters of the complete die.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MafParams {
    /// Nominal heater RTD (50 Ω Ti/TiN).
    pub heater: Rtd,
    /// Fractional manufacturing tolerance applied to heater A (paper: ±1 %).
    pub heater_a_tolerance: f64,
    /// Fractional manufacturing tolerance applied to heater B.
    pub heater_b_tolerance: f64,
    /// Nominal ambient-reference RTD (2 kΩ Ti/TiN).
    pub reference: Rtd,
    /// Fractional tolerance of the reference resistor (paper: ±1.5 %).
    pub reference_tolerance: f64,
    /// Membrane thermal parameters (shared by both heater nodes).
    pub membrane: MembraneParams,
    /// Wire geometry for the King's-law derivation.
    pub geometry: WireGeometry,
    /// Maximum advective heat-coupling fraction between the heaters.
    pub coupling_max: f64,
    /// Velocity at which the coupling reaches half its maximum.
    pub coupling_halfspeed: MetersPerSecond,
    /// Time constant of the reference resistor tracking the fluid
    /// temperature (it sits on the die but is not heated).
    pub reference_lag: Seconds,
    /// Bubble-layer rate parameters.
    pub bubbles: BubbleParams,
    /// Fouling-layer rate parameters.
    pub fouling: FoulingParams,
    /// Surface finish of the die face.
    pub passivation: Passivation,
}

impl MafParams {
    /// The paper's die with nominal (zero-tolerance) resistors and the PECVD
    /// SiN passivation.
    pub fn nominal() -> Self {
        MafParams {
            heater: Rtd::heater(),
            heater_a_tolerance: 0.0,
            heater_b_tolerance: 0.0,
            reference: Rtd::ambient_reference(),
            reference_tolerance: 0.0,
            membrane: MembraneParams::maf(),
            geometry: WireGeometry::maf_heater(),
            coupling_max: 0.18,
            coupling_halfspeed: MetersPerSecond::new(0.15),
            reference_lag: Seconds::from_millis(40.0),
            bubbles: BubbleParams::accelerated(),
            fouling: FoulingParams::potable_defaults(),
            passivation: Passivation::SiliconNitride,
        }
    }

    /// A worst-case-tolerance die (paper: Rh ±0.5 Ω, Rt ±30 Ω), useful for
    /// calibration robustness studies.
    pub fn worst_case() -> Self {
        MafParams {
            heater_a_tolerance: 0.01,
            heater_b_tolerance: -0.01,
            reference_tolerance: 0.015,
            ..MafParams::nominal()
        }
    }

    /// Validates all sub-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError`] if any sub-model parameter is implausible.
    pub fn validate(&self) -> Result<(), PhysicsError> {
        self.membrane.validate()?;
        self.bubbles.validate()?;
        self.fouling.validate()?;
        crate::error::ensure_in_range("coupling_max", self.coupling_max, 0.0, 0.9)?;
        crate::error::ensure_positive("coupling_halfspeed", self.coupling_halfspeed.get())?;
        crate::error::ensure_positive("reference_lag", self.reference_lag.get())?;
        crate::error::ensure_in_range("heater_a_tolerance", self.heater_a_tolerance, -0.05, 0.05)?;
        crate::error::ensure_in_range("heater_b_tolerance", self.heater_b_tolerance, -0.05, 0.05)?;
        crate::error::ensure_in_range(
            "reference_tolerance",
            self.reference_tolerance,
            -0.05,
            0.05,
        )?;
        Ok(())
    }
}

impl Default for MafParams {
    fn default() -> Self {
        MafParams::nominal()
    }
}

/// Instantaneous environment of the die inside the pipe.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SensorEnvironment {
    /// Bulk fluid temperature at the probe.
    pub fluid_temperature: Celsius,
    /// Signed local flow velocity at the probe; positive flows from heater A
    /// towards heater B.
    pub velocity: MetersPerSecond,
    /// Absolute line pressure.
    pub pressure: Pascals,
}

impl SensorEnvironment {
    /// Still 15 °C water at 1 bar — the quiescent test-station condition.
    pub fn still_water() -> Self {
        SensorEnvironment {
            fluid_temperature: Celsius::new(15.0),
            velocity: MetersPerSecond::ZERO,
            pressure: Pascals::from_bar(1.0),
        }
    }
}

impl Default for SensorEnvironment {
    fn default() -> Self {
        SensorEnvironment::still_water()
    }
}

/// One heater channel: RTD + thermal node + surface layers.
#[derive(Debug, Clone)]
struct HeaterChannel {
    rtd: Rtd,
    membrane: MembraneState,
    bubbles: BubbleLayer,
    fouling: FoulingLayer,
    last_conductance: ThermalConductance,
    /// Per-node memo for the exponential-Euler decay factor — the inputs
    /// repeat bit-for-bit between control ticks, so the modulator-rate loop
    /// skips the `exp` on hits without changing any result bit.
    decay_cache: DecayCache,
}

impl HeaterChannel {
    fn new(rtd: Rtd, params: &MafParams, initial: Celsius) -> Self {
        HeaterChannel {
            rtd,
            membrane: MembraneState::at_equilibrium(initial),
            bubbles: BubbleLayer::new(params.bubbles),
            fouling: FoulingLayer::new(params.fouling, params.passivation),
            last_conductance: ThermalConductance::ZERO,
            decay_cache: DecayCache::empty(),
        }
    }

    fn surface(&self) -> SurfaceCondition {
        SurfaceCondition {
            bubble_coverage: self.bubbles.coverage(),
            fouling_resistance: self.fouling.thermal_resistance(),
        }
    }
}

/// The complete two-heater MAF die immersed in a fluid.
///
/// ```
/// use hotwire_physics::{MafDie, MafParams, SensorEnvironment};
/// use hotwire_units::{Seconds, Watts};
/// use rand::SeedableRng;
///
/// let mut die = MafDie::in_potable_water(MafParams::nominal());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let env = SensorEnvironment::still_water();
/// let cold = die.heater_resistance(hotwire_physics::sensor::HeaterId::A);
/// for _ in 0..100 {
///     die.step(Seconds::from_micros(10.0), Watts::new(0.005), Watts::new(0.005), env, &mut rng);
/// }
/// assert!(die.heater_resistance(hotwire_physics::sensor::HeaterId::A) > cold);
/// ```
#[derive(Debug, Clone)]
pub struct MafDie {
    params: MafParams,
    fluid: FluidMedium,
    heater_a: HeaterChannel,
    heater_b: HeaterChannel,
    reference_rtd: Rtd,
    reference_temperature: Celsius,
    king: KingsLaw,
    king_film_temp: f64,
    /// Memo of the last King's-law evaluation, keyed on the velocity's bit
    /// pattern. The velocity only changes at the control/environment rate,
    /// so the modulator-rate loop skips the `powf` on nearly every tick;
    /// invalidated whenever the law is re-derived.
    conductance_cache: Option<(u64, f64)>,
    /// Memo of the reference-lag factor `exp(−dt/lag)`, keyed on the step's
    /// bit pattern (the lag itself is a fixed parameter).
    rho_cache: Option<(u64, f64)>,
}

impl MafDie {
    /// Builds a die immersed in the given fluid, equilibrated at
    /// `initial_temperature`.
    pub fn new(params: MafParams, fluid: FluidMedium, initial_temperature: Celsius) -> Self {
        let heater_a_rtd = params.heater.with_tolerance(params.heater_a_tolerance);
        let heater_b_rtd = params.heater.with_tolerance(params.heater_b_tolerance);
        let reference_rtd = params.reference.with_tolerance(params.reference_tolerance);
        let king = KingsLaw::from_kramers(&fluid, initial_temperature, params.geometry);
        MafDie {
            heater_a: HeaterChannel::new(heater_a_rtd, &params, initial_temperature),
            heater_b: HeaterChannel::new(heater_b_rtd, &params, initial_temperature),
            reference_rtd,
            reference_temperature: initial_temperature,
            king,
            king_film_temp: initial_temperature.get(),
            conductance_cache: None,
            rho_cache: None,
            params,
            fluid,
        }
    }

    /// A die in potable (hard, air-saturated) water at 15 °C.
    pub fn in_potable_water(params: MafParams) -> Self {
        MafDie::new(
            params,
            FluidMedium::Water(Water::potable()),
            Celsius::new(15.0),
        )
    }

    /// A die in 20 °C air — the original MAF application.
    pub fn in_air(params: MafParams) -> Self {
        MafDie::new(params, FluidMedium::Air(Air), Celsius::new(20.0))
    }

    /// The immersion medium.
    #[inline]
    pub fn fluid(&self) -> &FluidMedium {
        &self.fluid
    }

    /// The static die parameters.
    #[inline]
    pub fn params(&self) -> &MafParams {
        &self.params
    }

    /// Instantaneous resistance of the selected heater.
    pub fn heater_resistance(&self, id: HeaterId) -> Ohms {
        let ch = self.channel(id);
        ch.rtd.resistance(ch.membrane.temperature())
    }

    /// Instantaneous resistance of the ambient reference resistor.
    pub fn reference_resistance(&self) -> Ohms {
        self.reference_rtd.resistance(self.reference_temperature)
    }

    /// The reference RTD law (needed by the conditioning firmware to convert
    /// a measured `Rt` back to an ambient temperature).
    #[inline]
    pub fn reference_rtd(&self) -> &Rtd {
        &self.reference_rtd
    }

    /// The heater RTD law for the selected heater.
    pub fn heater_rtd(&self, id: HeaterId) -> &Rtd {
        &self.channel(id).rtd
    }

    /// Current temperature of the ambient-reference node — together with
    /// [`heater_temperature`](Self::heater_temperature) and
    /// [`kings_law`](Self::kings_law), the die state a bounded-error fast
    /// AFE tier linearizes its once-per-frame bridge solve around.
    #[inline]
    pub fn reference_temperature(&self) -> Celsius {
        self.reference_temperature
    }

    /// Film temperature of the selected heater.
    pub fn heater_temperature(&self, id: HeaterId) -> Celsius {
        self.channel(id).membrane.temperature()
    }

    /// Bubble coverage of the selected heater face, `0..=1`.
    pub fn bubble_coverage(&self, id: HeaterId) -> f64 {
        self.channel(id).bubbles.coverage()
    }

    /// CaCO₃ deposit thickness on the selected heater face, µm.
    pub fn fouling_thickness_um(&self, id: HeaterId) -> f64 {
        self.channel(id).fouling.thickness_um()
    }

    /// Total bubble-detachment events on the selected heater so far.
    pub fn detachment_count(&self, id: HeaterId) -> u64 {
        self.channel(id).bubbles.detachment_count()
    }

    /// The wire-to-fluid conductance used at the last step for the selected
    /// heater (diagnostic).
    pub fn last_conductance(&self, id: HeaterId) -> ThermalConductance {
        self.channel(id).last_conductance
    }

    /// The King's law currently in force (re-derived when the film
    /// temperature drifts).
    #[inline]
    pub fn kings_law(&self) -> &KingsLaw {
        &self.king
    }

    fn channel(&self, id: HeaterId) -> &HeaterChannel {
        match id {
            HeaterId::A => &self.heater_a,
            HeaterId::B => &self.heater_b,
        }
    }

    /// Advective coupling fraction at speed `v` — how much of the upstream
    /// heater's overheat arrives at the downstream heater.
    fn coupling(&self, v: MetersPerSecond) -> f64 {
        let s = v.get().abs();
        self.params.coupling_max * s / (s + self.params.coupling_halfspeed.get())
    }

    /// Advances the die by `dt` with electrical powers applied to heaters A
    /// and B, in the given environment.
    ///
    /// The RNG drives bubble detachment; pass a seeded RNG for reproducible
    /// runs.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        dt: Seconds,
        power_a: Watts,
        power_b: Watts,
        env: SensorEnvironment,
        rng: &mut R,
    ) {
        // Re-derive King's law when the film temperature moves > 0.5 K
        // (property drift matters over tens of kelvin, not per sample).
        let film = 0.5
            * (env.fluid_temperature.get()
                + 0.5
                    * (self.heater_a.membrane.temperature().get()
                        + self.heater_b.membrane.temperature().get()));
        if (film - self.king_film_temp).abs() > 0.5 {
            self.king =
                KingsLaw::from_kramers(&self.fluid, Celsius::new(film), self.params.geometry);
            self.king_film_temp = film;
            self.conductance_cache = None;
        }

        // Advective coupling: downstream heater sees pre-heated fluid.
        let c = self.coupling(env.velocity);
        let t_fluid = env.fluid_temperature;
        let (pre_a, pre_b) = if env.velocity.get() >= 0.0 {
            // A upstream, B downstream.
            (
                0.0,
                c * (self.heater_a.membrane.temperature() - t_fluid).get(),
            )
        } else {
            (
                c * (self.heater_b.membrane.temperature() - t_fluid).get(),
                0.0,
            )
        };
        let t_eff_a = Celsius::new(t_fluid.get() + pre_a);
        let t_eff_b = Celsius::new(t_fluid.get() + pre_b);

        let v = env.velocity;
        // Both nodes share the same ideal King's-law conductance at `v` —
        // evaluate it once, through the bit-keyed memo (the velocity only
        // changes at the environment rate, so the `powf` almost always
        // skips). A memo hit returns the exact value a recomputation would.
        let v_bits = v.get().to_bits();
        let ideal = match self.conductance_cache {
            Some((bits, g)) if bits == v_bits => ThermalConductance::new(g),
            _ => {
                let g = self.king.conductance(v);
                self.conductance_cache = Some((v_bits, g.get()));
                g
            }
        };
        let surface_a = self.heater_a.surface();
        let surface_b = self.heater_b.surface();
        self.heater_a.last_conductance = self.heater_a.membrane.step_cached(
            dt,
            power_a,
            &self.params.membrane,
            ideal,
            surface_a,
            t_eff_a,
            t_fluid,
            &mut self.heater_a.decay_cache,
        );
        self.heater_b.last_conductance = self.heater_b.membrane.step_cached(
            dt,
            power_b,
            &self.params.membrane,
            ideal,
            surface_b,
            t_eff_b,
            t_fluid,
            &mut self.heater_b.decay_cache,
        );

        // Surface degradation follows wall temperature.
        let onset = self.fluid.bubble_onset_temperature(env.pressure);
        let hardness = self.fluid.hardness_f();
        let wall_a = self.heater_a.membrane.temperature();
        let wall_b = self.heater_b.membrane.temperature();
        self.heater_a.bubbles.step(dt, wall_a, onset, rng);
        self.heater_b.bubbles.step(dt, wall_b, onset, rng);
        self.heater_a
            .fouling
            .step(dt, wall_a, hardness, self.heater_a.bubbles.coverage());
        self.heater_b
            .fouling
            .step(dt, wall_b, hardness, self.heater_b.bubbles.coverage());

        // Reference resistor tracks the fluid with a first-order lag. The
        // lag factor depends only on `dt` (the lag is a fixed parameter), so
        // it memoizes on the step's bit pattern.
        let dt_bits = dt.get().to_bits();
        let rho = match self.rho_cache {
            Some((bits, rho)) if bits == dt_bits => rho,
            _ => {
                let rho = (-dt.get() / self.params.reference_lag.get()).exp();
                self.rho_cache = Some((dt_bits, rho));
                rho
            }
        };
        self.reference_temperature =
            Celsius::new(t_fluid.get() + (self.reference_temperature.get() - t_fluid.get()) * rho);
    }

    /// Advances surface aging (fouling) by a coarse interval without
    /// electrical drive — used for months-scale endurance studies where
    /// simulating every ΣΔ sample would be pointless.
    pub fn age_surfaces(&mut self, hours: f64, wall: Celsius, coverage: f64) {
        let hardness = self.fluid.hardness_f();
        self.heater_a
            .fouling
            .advance_hours(hours, wall, hardness, coverage);
        self.heater_b
            .fouling
            .advance_hours(hours, wall, hardness, coverage);
    }

    /// Flushes bubbles and scale from both faces (bench maintenance).
    pub fn clean_surfaces(&mut self) {
        self.heater_a.bubbles.clear();
        self.heater_a.fouling.clean();
        self.heater_b.bubbles.clear();
        self.heater_b.fouling.clean();
    }

    /// Slams extra bubble coverage onto both heater faces at once — a slug
    /// of entrained gas bursting against the die (fault injection's abrupt
    /// bubble event). Coverage clamps to the unit interval per face.
    pub fn inject_bubble_burst(&mut self, coverage: f64) {
        self.heater_a.bubbles.deposit(coverage);
        self.heater_b.bubbles.deposit(coverage);
    }

    /// Deposits a step of scale thickness on both heater faces at once
    /// (fault injection's abrupt fouling event, e.g. debris lodging on the
    /// sensor face).
    pub fn deposit_fouling(&mut self, microns: f64) {
        self.heater_a.fouling.deposit(microns);
        self.heater_b.fouling.deposit(microns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn settle(die: &mut MafDie, p: Watts, env: SensorEnvironment, rng: &mut rand::rngs::StdRng) {
        // 20 ms at 10 µs steps ≫ thermal τ.
        for _ in 0..2000 {
            die.step(Seconds::from_micros(10.0), p, p, env, rng);
        }
    }

    #[test]
    fn heating_raises_resistance() {
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        let cold = die.heater_resistance(HeaterId::A);
        settle(
            &mut die,
            Watts::new(0.01),
            SensorEnvironment::still_water(),
            &mut r,
        );
        let hot = die.heater_resistance(HeaterId::A);
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn flow_cools_the_heaters() {
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        let p = Watts::new(0.01);
        settle(&mut die, p, SensorEnvironment::still_water(), &mut r);
        let still = die.heater_temperature(HeaterId::A);
        let flowing = SensorEnvironment {
            velocity: MetersPerSecond::new(1.0),
            ..SensorEnvironment::still_water()
        };
        settle(&mut die, p, flowing, &mut r);
        let moving = die.heater_temperature(HeaterId::A);
        assert!(
            still.get() - moving.get() > 1.0,
            "still {still} vs flowing {moving}"
        );
    }

    #[test]
    fn downstream_heater_runs_hotter() {
        // Positive flow: A upstream, B downstream → B receives A's heat and
        // runs hotter at equal power. This asymmetry is the direction signal.
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        let env = SensorEnvironment {
            velocity: MetersPerSecond::new(0.5),
            ..SensorEnvironment::still_water()
        };
        settle(&mut die, Watts::new(0.01), env, &mut r);
        let ta = die.heater_temperature(HeaterId::A);
        let tb = die.heater_temperature(HeaterId::B);
        assert!(
            tb.get() > ta.get() + 0.05,
            "B (downstream) {tb} must exceed A (upstream) {ta}"
        );
    }

    #[test]
    fn direction_asymmetry_flips_with_flow() {
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        let rev = SensorEnvironment {
            velocity: MetersPerSecond::new(-0.5),
            ..SensorEnvironment::still_water()
        };
        settle(&mut die, Watts::new(0.01), rev, &mut r);
        let ta = die.heater_temperature(HeaterId::A);
        let tb = die.heater_temperature(HeaterId::B);
        assert!(ta.get() > tb.get() + 0.05, "reversed flow must heat A");
    }

    #[test]
    fn reference_tracks_fluid_temperature() {
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        let warm = SensorEnvironment {
            fluid_temperature: Celsius::new(25.0),
            ..SensorEnvironment::still_water()
        };
        // 0.5 s ≫ 40 ms reference lag.
        for _ in 0..5000 {
            die.step(
                Seconds::from_micros(100.0),
                Watts::ZERO,
                Watts::ZERO,
                warm,
                &mut r,
            );
        }
        let rt = die.reference_resistance();
        let expected = die.reference_rtd().resistance(Celsius::new(25.0));
        assert!(
            (rt - expected).abs().get() < 0.1,
            "Rt {rt} vs expected {expected}"
        );
    }

    #[test]
    fn tolerances_shift_resistances() {
        let die = MafDie::in_potable_water(MafParams::worst_case());
        let ra = die.heater_resistance(HeaterId::A);
        let rb = die.heater_resistance(HeaterId::B);
        assert!(ra > rb, "worst case skews A up, B down");
        // The die equilibrates at 15 °C, 5 K below the 20 °C reference point.
        let expect_a = die.heater_rtd(HeaterId::A).resistance(Celsius::new(15.0));
        let expect_b = die.heater_rtd(HeaterId::B).resistance(Celsius::new(15.0));
        assert!((ra - expect_a).abs().get() < 1e-9);
        assert!((rb - expect_b).abs().get() < 1e-9);
        assert!((ra / rb - 50.5 / 49.5).abs() < 1e-3);
    }

    #[test]
    fn overdriven_heater_in_water_grows_bubbles() {
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        let mut r = rng();
        // Drive hard enough to exceed the 40 °C outgassing onset and hold it
        // for 30 simulated seconds (coarse 10 ms steps — thermal state is
        // quasi-static at that scale thanks to exponential Euler).
        let env = SensorEnvironment::still_water();
        let p = Watts::new(0.02);
        for _ in 0..3000 {
            die.step(Seconds::from_millis(10.0), p, p, env, &mut r);
        }
        assert!(
            die.heater_temperature(HeaterId::A).get() > 40.0,
            "wall {} must exceed onset",
            die.heater_temperature(HeaterId::A)
        );
        assert!(
            die.bubble_coverage(HeaterId::A) > 0.1,
            "coverage {}",
            die.bubble_coverage(HeaterId::A)
        );
    }

    #[test]
    fn air_die_never_bubbles() {
        let mut die = MafDie::in_air(MafParams::nominal());
        let mut r = rng();
        let env = SensorEnvironment {
            fluid_temperature: Celsius::new(20.0),
            velocity: MetersPerSecond::new(1.0),
            pressure: Pascals::from_bar(1.0),
        };
        for _ in 0..1000 {
            die.step(
                Seconds::from_millis(10.0),
                Watts::new(0.01),
                Watts::new(0.01),
                env,
                &mut r,
            );
        }
        assert_eq!(die.bubble_coverage(HeaterId::A), 0.0);
        assert_eq!(die.fouling_thickness_um(HeaterId::A), 0.0);
    }

    #[test]
    fn aging_accumulates_fouling_on_bare_die() {
        let params = MafParams {
            passivation: Passivation::Bare,
            ..MafParams::nominal()
        };
        let mut die = MafDie::in_potable_water(params);
        die.age_surfaces(24.0 * 90.0, Celsius::new(45.0), 0.0);
        assert!(die.fouling_thickness_um(HeaterId::A) > 1.0);
        die.clean_surfaces();
        assert_eq!(die.fouling_thickness_um(HeaterId::A), 0.0);
    }

    #[test]
    fn passivated_die_resists_months_of_water() {
        // Paper: "no deposit of calcium carbonate" after several months.
        let mut die = MafDie::in_potable_water(MafParams::nominal());
        die.age_surfaces(24.0 * 90.0, Celsius::new(35.0), 0.0);
        assert!(
            die.fouling_thickness_um(HeaterId::A) < 0.5,
            "thickness {} µm",
            die.fouling_thickness_um(HeaterId::A)
        );
    }

    #[test]
    fn params_validate() {
        assert!(MafParams::nominal().validate().is_ok());
        assert!(MafParams::worst_case().validate().is_ok());
        let bad = MafParams {
            coupling_max: 1.5,
            ..MafParams::nominal()
        };
        assert!(bad.validate().is_err());
    }
}
