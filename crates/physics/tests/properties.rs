//! Property-based tests of the physics models: thermodynamic sanity for any
//! operating point in (and somewhat beyond) the design envelope.

use hotwire_physics::bubbles::{BubbleLayer, BubbleParams};
use hotwire_physics::fluid::{Air, Fluid, Water};
use hotwire_physics::fouling::{FoulingLayer, FoulingParams, Passivation};
use hotwire_physics::kings_law::KingsLaw;
use hotwire_physics::membrane::{MembraneParams, MembraneState, SurfaceCondition};
use hotwire_physics::pipe::Pipe;
use hotwire_physics::resistor::Rtd;
use hotwire_physics::{MafDie, MafParams, SensorEnvironment};
use hotwire_units::{Celsius, KelvinDelta, MetersPerSecond, Pascals, Seconds, Watts};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn water_properties_physical_everywhere(t in 0.0f64..95.0) {
        let p = Water::potable().properties(Celsius::new(t));
        prop_assert!(p.density > 950.0 && p.density < 1001.0);
        prop_assert!(p.dynamic_viscosity > 1e-4 && p.dynamic_viscosity < 2e-3);
        prop_assert!(p.thermal_conductivity > 0.5 && p.thermal_conductivity < 0.7);
        prop_assert!(p.specific_heat > 4100.0 && p.specific_heat < 4270.0);
        prop_assert!(p.prandtl() > 1.0 && p.prandtl() < 14.0);
    }

    #[test]
    fn air_properties_physical_everywhere(t in -40.0f64..200.0) {
        let p = Air.properties(Celsius::new(t));
        prop_assert!(p.density > 0.7 && p.density < 1.6);
        prop_assert!(p.prandtl() > 0.6 && p.prandtl() < 0.8);
    }

    #[test]
    fn rtd_inversion_exact(r0 in 10.0f64..5000.0, alpha in 1e-3f64..8e-3, t in -20.0f64..120.0) {
        let rtd = Rtd::new(
            hotwire_units::Ohms::new(r0),
            alpha,
            Celsius::new(20.0),
        ).unwrap();
        let r = rtd.resistance(Celsius::new(t));
        prop_assert!((rtd.temperature(r).get() - t).abs() < 1e-6);
    }

    #[test]
    fn kings_law_monotone_and_invertible(
        v1 in 0.001f64..3.0,
        v2 in 0.001f64..3.0,
        film in 2.0f64..60.0,
    ) {
        let king = KingsLaw::from_kramers(
            &Water::potable(),
            Celsius::new(film),
            hotwire_physics::kings_law::WireGeometry::maf_heater(),
        );
        let g1 = king.conductance(MetersPerSecond::new(v1));
        let g2 = king.conductance(MetersPerSecond::new(v2));
        prop_assert_eq!(v1 < v2, g1 < g2, "monotonicity");
        let back = king.velocity_from_conductance(g1);
        prop_assert!((back.get() - v1).abs() < 1e-6 * v1.max(1.0));
    }

    #[test]
    fn membrane_steady_state_is_fixed_point(
        p_mw in 0.1f64..80.0,
        v in 0.0f64..3.0,
        fluid in 2.0f64..40.0,
    ) {
        let params = MembraneParams::maf();
        let king = KingsLaw::water_default();
        let p = Watts::new(p_mw * 1e-3);
        let f = Celsius::new(fluid);
        let surface = SurfaceCondition::clean();
        let vv = MetersPerSecond::new(v);
        let t_ss = MembraneState::steady_state(p, &params, &king, vv, surface, f, f);
        let mut state = MembraneState::at_equilibrium(t_ss);
        state.step(Seconds::from_micros(10.0), p, &params, &king, vv, surface, f, f);
        prop_assert!((state.temperature() - t_ss).abs().get() < 1e-9);
        // And the wire is never colder than the fluid under positive drive.
        prop_assert!(t_ss >= f);
    }

    #[test]
    fn bubble_coverage_always_in_unit_interval(
        walls in prop::collection::vec(-10.0f64..120.0, 10..200),
        seed in 0u64..1000,
    ) {
        let mut layer = BubbleLayer::new(BubbleParams::accelerated());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for &w in &walls {
            layer.step(
                Seconds::from_millis(50.0),
                Celsius::new(w),
                Celsius::new(40.0),
                &mut rng,
            );
            prop_assert!((0.0..=1.0).contains(&layer.coverage()));
        }
    }

    #[test]
    fn fouling_thickness_never_decreases(
        steps in prop::collection::vec((10.0f64..70.0, 0.0f64..1.0), 5..50),
    ) {
        let mut layer = FoulingLayer::new(FoulingParams::accelerated(), Passivation::Bare);
        let mut prev = 0.0;
        for &(wall, coverage) in &steps {
            layer.step(Seconds::new(3600.0), Celsius::new(wall), 30.0, coverage);
            prop_assert!(layer.thickness_um() >= prev);
            prev = layer.thickness_um();
        }
    }

    #[test]
    fn pipe_profile_factor_bounded(re in 1.0f64..1e7) {
        let f = Pipe::profile_factor(re);
        prop_assert!((1.2..=2.0).contains(&f));
        let i = Pipe::turbulence_intensity(re);
        prop_assert!((0.0..0.2).contains(&i));
    }

    #[test]
    fn die_heats_monotone_with_power(
        p1_mw in 0.5f64..20.0,
        extra_mw in 1.0f64..30.0,
        v in 0.0f64..2.5,
    ) {
        let run = |p_mw: f64| {
            let mut die = MafDie::in_potable_water(MafParams::nominal());
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let env = SensorEnvironment {
                velocity: MetersPerSecond::new(v),
                ..SensorEnvironment::still_water()
            };
            let p = Watts::new(p_mw * 1e-3);
            for _ in 0..400 {
                die.step(Seconds::from_micros(50.0), p, p, env, &mut rng);
            }
            die.heater_temperature(hotwire_physics::sensor::HeaterId::A).get()
        };
        prop_assert!(run(p1_mw + extra_mw) > run(p1_mw));
    }

    #[test]
    fn onset_temperature_monotone_in_pressure(b1 in 0.2f64..7.0, b2 in 0.2f64..7.0) {
        let w = Water::potable();
        let t1 = w.bubble_onset_temperature(Pascals::from_bar(b1));
        let t2 = w.bubble_onset_temperature(Pascals::from_bar(b2));
        prop_assert_eq!(b1 < b2, t1 < t2);
    }

    #[test]
    fn kings_power_scales_linearly_with_overheat(
        v in 0.0f64..2.5,
        dt1 in 1.0f64..30.0,
        k in 1.1f64..3.0,
    ) {
        let king = KingsLaw::water_default();
        let p1 = king.power(MetersPerSecond::new(v), KelvinDelta::new(dt1));
        let p2 = king.power(MetersPerSecond::new(v), KelvinDelta::new(dt1 * k));
        prop_assert!((p2.get() / p1.get() - k).abs() < 1e-9);
    }
}
