//! Thermometer-coded DACs — the sensor-driving stage.
//!
//! "The sensor driving stage of the platform is provided by a set of
//! configurable 12 bit and 10 bit thermometer DACs." A thermometer DAC
//! switches in one nominally-equal element per code, so it is monotonic *by
//! construction* regardless of element mismatch — exactly the property a
//! control loop actuator needs. Element mismatch shows up as integral
//! nonlinearity only.

use crate::error::{ensure_in_range, ensure_positive};
use crate::noise::standard_normal;
use crate::AfeError;
use hotwire_units::Volts;
use rand::Rng;

/// A thermometer-coded DAC with per-element mismatch.
///
/// ```
/// use hotwire_afe::ThermometerDac;
/// use hotwire_units::Volts;
///
/// let dac = ThermometerDac::ideal(12, Volts::new(5.0))?;
/// assert_eq!(dac.convert(0).get(), 0.0);
/// assert!((dac.convert(4095).get() - 5.0).abs() < 1e-9);
/// assert!((dac.convert(2048).get() - 2.5).abs() < 0.01);
/// # Ok::<(), hotwire_afe::AfeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermometerDac {
    bits: u32,
    vref: Volts,
    /// Cumulative element weights, pre-summed: `cumulative[c]` = output
    /// fraction at code `c`.
    cumulative: Vec<f64>,
}

impl ThermometerDac {
    /// Creates an ideal DAC (zero mismatch) with `bits` resolution and output
    /// span `0..=vref`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] for unsupported bit widths (4..=14) or a
    /// non-positive reference.
    pub fn ideal(bits: u32, vref: Volts) -> Result<Self, AfeError> {
        Self::with_mismatch(bits, vref, 0.0, &mut NoRng)
    }

    /// Creates a DAC whose unit elements carry Gaussian mismatch with the
    /// given relative sigma (e.g. `0.001` = 0.1 % element matching).
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] for unsupported bit widths, a non-positive
    /// reference, or a mismatch sigma outside `[0, 0.05]`.
    pub fn with_mismatch<R: Rng + ?Sized>(
        bits: u32,
        vref: Volts,
        element_sigma: f64,
        rng: &mut R,
    ) -> Result<Self, AfeError> {
        ensure_in_range("bits", bits as f64, 4.0, 14.0)?;
        ensure_positive("vref", vref.get())?;
        ensure_in_range("element_sigma", element_sigma, 0.0, 0.05)?;
        let n = 1usize << bits;
        let mut weights: Vec<f64> = (0..n - 1)
            .map(|_| 1.0 + element_sigma * standard_normal(rng))
            .collect();
        // Elements are physical resistor/current cells: never negative.
        for w in &mut weights {
            *w = w.max(0.0);
        }
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        Ok(ThermometerDac {
            bits,
            vref,
            cumulative,
        })
    }

    /// Resolution in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale output.
    #[inline]
    pub fn vref(&self) -> Volts {
        self.vref
    }

    /// Largest accepted code.
    #[inline]
    pub fn max_code(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// One ideal LSB step.
    pub fn lsb(&self) -> Volts {
        self.vref / (self.max_code() as f64)
    }

    /// Converts a code to the output voltage. Codes above full scale clamp.
    pub fn convert(&self, code: u32) -> Volts {
        let c = (code.min(self.max_code())) as usize;
        self.vref * self.cumulative[c]
    }

    /// The code whose nominal output is closest to `v` (inverse conversion
    /// for loop pre-charging).
    pub fn code_for(&self, v: Volts) -> u32 {
        let frac = (v.get() / self.vref.get()).clamp(0.0, 1.0);
        (frac * self.max_code() as f64).round() as u32
    }

    /// Worst-case integral nonlinearity in LSBs.
    pub fn inl_lsb(&self) -> f64 {
        let n = self.max_code() as f64;
        self.cumulative
            .iter()
            .enumerate()
            .map(|(c, &f)| (f - c as f64 / n).abs() * n)
            .fold(0.0, f64::max)
    }
}

/// Zero-sized RNG stand-in for the ideal constructor (never actually
/// sampled because sigma = 0 still draws — so it must produce values).
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        0x8000_0000
    }
    fn next_u64(&mut self) -> u64 {
        0x8000_0000_8000_0000
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        dest.fill(0x80);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xDAC)
    }

    #[test]
    fn ideal_endpoints_and_midpoint() {
        let dac = ThermometerDac::ideal(10, Volts::new(5.0)).unwrap();
        assert_eq!(dac.convert(0).get(), 0.0);
        assert!((dac.convert(dac.max_code()).get() - 5.0).abs() < 1e-12);
        assert!((dac.convert(512).get() - 5.0 * 512.0 / 1023.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_is_perfectly_linear() {
        let dac = ThermometerDac::ideal(8, Volts::new(2.0)).unwrap();
        assert!(dac.inl_lsb() < 1e-9, "INL {}", dac.inl_lsb());
    }

    #[test]
    fn monotonic_even_with_heavy_mismatch() {
        let mut r = rng();
        let dac = ThermometerDac::with_mismatch(10, Volts::new(5.0), 0.05, &mut r).unwrap();
        let mut prev = -1.0;
        for code in 0..=dac.max_code() {
            let v = dac.convert(code).get();
            assert!(v >= prev, "non-monotonic at code {code}");
            prev = v;
        }
    }

    #[test]
    fn mismatch_produces_nonzero_inl() {
        let mut r = rng();
        let dac = ThermometerDac::with_mismatch(12, Volts::new(5.0), 0.01, &mut r).unwrap();
        let inl = dac.inl_lsb();
        assert!(inl > 0.05, "INL {inl} suspiciously small for 1 % elements");
        assert!(inl < 5.0, "INL {inl} too large");
    }

    #[test]
    fn codes_clamp_at_full_scale() {
        let dac = ThermometerDac::ideal(10, Volts::new(5.0)).unwrap();
        assert_eq!(dac.convert(100_000), dac.convert(dac.max_code()));
    }

    #[test]
    fn code_for_round_trips_nominal_levels() {
        let dac = ThermometerDac::ideal(12, Volts::new(5.0)).unwrap();
        for code in [0u32, 1, 100, 2048, 4095] {
            let v = dac.convert(code);
            assert_eq!(dac.code_for(v), code, "code {code}");
        }
        assert_eq!(dac.code_for(Volts::new(99.0)), dac.max_code());
        assert_eq!(dac.code_for(Volts::new(-1.0)), 0);
    }

    #[test]
    fn lsb_magnitude() {
        let dac = ThermometerDac::ideal(12, Volts::new(5.0)).unwrap();
        assert!((dac.lsb().get() - 5.0 / 4095.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(ThermometerDac::ideal(2, Volts::new(5.0)).is_err());
        assert!(ThermometerDac::ideal(20, Volts::new(5.0)).is_err());
        assert!(ThermometerDac::ideal(10, Volts::ZERO).is_err());
        let mut r = rng();
        assert!(ThermometerDac::with_mismatch(10, Volts::new(5.0), 0.5, &mut r).is_err());
    }
}
