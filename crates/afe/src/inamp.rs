//! The instrumentation-amplifier readout stage.
//!
//! The paper: "The input channel is configured to operate as instrument
//! amplifier". The behavioural model carries the error terms that matter for
//! the resolution claims: programmable gain with gain error, input offset
//! with temperature drift, single-pole bandwidth, input-referred white +
//! flicker noise, and saturation at the supply rails.

use crate::error::{ensure_in_range, ensure_positive};
use crate::noise::{noise_sample, FlickerNoise};
use crate::AfeError;
use hotwire_units::{Hertz, Volts};
use rand::Rng;

/// Static instrumentation-amplifier parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InAmpConfig {
    /// Differential gain setting.
    pub gain: f64,
    /// Relative gain error (e.g. 0.002 = 0.2 %).
    pub gain_error: f64,
    /// Input-referred offset voltage.
    pub input_offset: Volts,
    /// Offset drift per kelvin of chip temperature (V/K).
    pub offset_drift_per_k: f64,
    /// −3 dB bandwidth of the closed-loop amplifier.
    pub bandwidth: Hertz,
    /// Input-referred white-noise density, V/√Hz.
    pub noise_density: f64,
    /// Input-referred flicker-noise rms over the signal band, V.
    pub flicker_rms: Volts,
    /// Output saturation rails (symmetric, ±).
    pub rail: Volts,
}

impl InAmpConfig {
    /// The ISIF channel configured for the MAF bridge: gain 50, ~10 nV/√Hz,
    /// 0.2 mV offset, 100 kHz bandwidth, ±2.5 V rails (0.35 µm BCD supply).
    pub fn isif_default() -> Self {
        InAmpConfig {
            gain: 50.0,
            gain_error: 0.002,
            input_offset: Volts::from_millivolts(0.2),
            offset_drift_per_k: 2.0e-6,
            bandwidth: Hertz::from_kilohertz(100.0),
            noise_density: 10.0e-9,
            flicker_rms: Volts::new(0.4e-6),
            rail: Volts::new(2.5),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] for non-positive gain/bandwidth/rails or a gain
    /// error above 10 %.
    pub fn validate(&self) -> Result<(), AfeError> {
        ensure_positive("gain", self.gain)?;
        ensure_in_range("gain_error", self.gain_error, -0.1, 0.1)?;
        ensure_positive("bandwidth", self.bandwidth.get())?;
        ensure_positive("rail", self.rail.get())?;
        ensure_in_range("noise_density", self.noise_density, 0.0, 1e-3)?;
        Ok(())
    }
}

impl Default for InAmpConfig {
    fn default() -> Self {
        InAmpConfig::isif_default()
    }
}

/// The stateful amplifier (bandwidth pole + flicker generator).
#[derive(Debug, Clone)]
pub struct InstrumentationAmp {
    pub(crate) config: InAmpConfig,
    /// Output-pole state.
    pub(crate) output_state: f64,
    flicker: FlickerNoise,
    /// Discrete pole coefficient `1 − exp(−2π·bw/fs)`, a pure function of
    /// the configuration — precomputed once so the per-sample path carries
    /// no `exp`.
    pub(crate) alpha: f64,
    /// Per-sample white-noise rms at the configured sample rate.
    white_rms: Volts,
}

impl InstrumentationAmp {
    /// Creates an amplifier stepped at `sample_rate` (the ΣΔ modulator
    /// clock).
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] for an invalid configuration or non-positive
    /// sample rate.
    pub fn new(config: InAmpConfig, sample_rate: Hertz) -> Result<Self, AfeError> {
        config.validate()?;
        ensure_positive("sample_rate", sample_rate.get())?;
        // White noise folded into the Nyquist band of the sampler.
        let white_rms = Volts::new(config.noise_density * (sample_rate.get() / 2.0).sqrt());
        let alpha =
            1.0 - (-core::f64::consts::TAU * config.bandwidth.get() / sample_rate.get()).exp();
        Ok(InstrumentationAmp {
            flicker: FlickerNoise::new(config.flicker_rms.get(), sample_rate.get()),
            config,
            output_state: 0.0,
            alpha,
            white_rms,
        })
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &InAmpConfig {
        &self.config
    }

    /// Input-referred rms of the white-noise component at this sample rate.
    #[inline]
    pub fn white_noise_rms(&self) -> Volts {
        self.white_rms
    }

    /// Amplifies one differential sample. `chip_overtemp_k` is the chip
    /// temperature rise above the 25 °C characterization point (drives offset
    /// drift).
    pub fn amplify<R: Rng + ?Sized>(
        &mut self,
        v_diff: Volts,
        chip_overtemp_k: f64,
        rng: &mut R,
    ) -> Volts {
        let noise = self.draw_noise(rng);
        self.amplify_with_noise(v_diff, chip_overtemp_k, noise)
    }

    /// Draws the input-referred noise sample (white + flicker) for one tick
    /// — exactly the draws [`amplify`](Self::amplify) makes internally,
    /// split out so a block caller can pre-draw per-block noise sequences
    /// in the scalar RNG order.
    pub fn draw_noise<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        noise_sample(rng, self.white_rms).get() + self.flicker.next_sample(rng)
    }

    /// Amplifies one sample whose noise was already drawn with
    /// [`draw_noise`](Self::draw_noise). Together the pair is bit-identical
    /// to [`amplify`](Self::amplify).
    pub fn amplify_with_noise(&mut self, v_diff: Volts, chip_overtemp_k: f64, noise: f64) -> Volts {
        let offset =
            self.config.input_offset.get() + self.config.offset_drift_per_k * chip_overtemp_k;
        let ideal =
            (v_diff.get() + offset + noise) * self.config.gain * (1.0 + self.config.gain_error);
        // Single-pole bandwidth limit at the sampler rate.
        self.output_state += self.alpha * (ideal - self.output_state);
        Volts::new(
            self.output_state
                .clamp(-self.config.rail.get(), self.config.rail.get()),
        )
    }

    /// Amplifies a block of differential samples in place, consuming a
    /// pre-drawn `noises` slice ([`draw_noise`](Self::draw_noise), one per
    /// sample). Bit-identical to calling
    /// [`amplify_with_noise`](Self::amplify_with_noise) per element — the
    /// pole state is hoisted into locals so the loop runs over registers.
    ///
    /// # Panics
    ///
    /// Panics if `samples` and `noises` differ in length.
    pub fn amplify_block(&mut self, samples: &mut [f64], noises: &[f64], chip_overtemp_k: f64) {
        assert_eq!(samples.len(), noises.len());
        let offset =
            self.config.input_offset.get() + self.config.offset_drift_per_k * chip_overtemp_k;
        let gain = self.config.gain;
        let gain_scale = 1.0 + self.config.gain_error;
        let alpha = self.alpha;
        let rail = self.config.rail.get();
        let mut state = self.output_state;
        for (s, &n) in samples.iter_mut().zip(noises) {
            let ideal = (*s + offset + n) * gain * gain_scale;
            state += alpha * (ideal - state);
            *s = state.clamp(-rail, rail);
        }
        self.output_state = state;
    }

    /// The amplifier's DC transfer — offset, gain and rail clamp with no
    /// pole dynamics. The fast AFE tier uses this to map a quasi-static
    /// bridge voltage straight to the output level the full chain would
    /// settle to.
    pub fn dc_output(&self, v_diff: Volts, chip_overtemp_k: f64, noise: f64) -> Volts {
        let offset =
            self.config.input_offset.get() + self.config.offset_drift_per_k * chip_overtemp_k;
        let ideal =
            (v_diff.get() + offset + noise) * self.config.gain * (1.0 + self.config.gain_error);
        Volts::new(ideal.clamp(-self.config.rail.get(), self.config.rail.get()))
    }

    /// Clears the internal pole state.
    pub fn reset(&mut self) {
        self.output_state = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xF00D)
    }

    fn quiet_config() -> InAmpConfig {
        InAmpConfig {
            gain_error: 0.0,
            input_offset: Volts::ZERO,
            offset_drift_per_k: 0.0,
            noise_density: 0.0,
            flicker_rms: Volts::ZERO,
            ..InAmpConfig::isif_default()
        }
    }

    #[test]
    fn dc_gain() {
        let mut amp =
            InstrumentationAmp::new(quiet_config(), Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut y = Volts::ZERO;
        for _ in 0..10_000 {
            y = amp.amplify(Volts::from_millivolts(10.0), 0.0, &mut r);
        }
        assert!((y.get() - 0.5).abs() < 1e-6, "out {y}");
    }

    #[test]
    fn offset_is_amplified() {
        let cfg = InAmpConfig {
            input_offset: Volts::from_millivolts(1.0),
            ..quiet_config()
        };
        let mut amp = InstrumentationAmp::new(cfg, Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut y = Volts::ZERO;
        for _ in 0..10_000 {
            y = amp.amplify(Volts::ZERO, 0.0, &mut r);
        }
        assert!((y.get() - 0.05).abs() < 1e-6, "offset out {y}");
    }

    #[test]
    fn offset_drifts_with_chip_temperature() {
        let cfg = InAmpConfig {
            offset_drift_per_k: 10e-6,
            ..quiet_config()
        };
        let mut amp = InstrumentationAmp::new(cfg, Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut cold = Volts::ZERO;
        let mut hot = Volts::ZERO;
        for _ in 0..10_000 {
            cold = amp.amplify(Volts::ZERO, 0.0, &mut r);
        }
        amp.reset();
        for _ in 0..10_000 {
            hot = amp.amplify(Volts::ZERO, 20.0, &mut r);
        }
        // 20 K × 10 µV/K × gain 50 = 10 mV shift.
        assert!(((hot - cold).get() - 0.01).abs() < 1e-5);
    }

    #[test]
    fn saturates_at_rails() {
        let mut amp =
            InstrumentationAmp::new(quiet_config(), Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut y = Volts::ZERO;
        for _ in 0..10_000 {
            y = amp.amplify(Volts::new(1.0), 0.0, &mut r);
        }
        assert_eq!(y.get(), 2.5);
    }

    #[test]
    fn bandwidth_attenuates_fast_input() {
        // A 20 kHz pole stepped at 256 kHz: the discrete pole's Nyquist gain
        // is α/(2−α) ≈ 0.24, so a ±10 mV (→ ±0.5 V after gain) alternating
        // input must come out well under 0.15 V.
        let cfg = InAmpConfig {
            bandwidth: Hertz::from_kilohertz(20.0),
            ..quiet_config()
        };
        let mut amp = InstrumentationAmp::new(cfg, Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut peak: f64 = 0.0;
        for i in 0..20_000 {
            let x = if i % 2 == 0 { 1e-2 } else { -1e-2 };
            let y = amp.amplify(Volts::new(x), 0.0, &mut r);
            if i > 10_000 {
                peak = peak.max(y.get().abs());
            }
        }
        assert!(peak < 0.15, "128 kHz leakage {peak} V");
        assert!(peak > 0.0);
    }

    #[test]
    fn noise_floor_scales_with_density() {
        let cfg = InAmpConfig {
            noise_density: 10e-9,
            flicker_rms: Volts::ZERO,
            input_offset: Volts::ZERO,
            ..InAmpConfig::isif_default()
        };
        let fs = Hertz::from_kilohertz(256.0);
        let amp = InstrumentationAmp::new(cfg, fs).unwrap();
        // 10 nV/√Hz over 128 kHz → 3.58 µV rms input-referred.
        assert!((amp.white_noise_rms().get() - 3.58e-6).abs() < 0.05e-6);
    }

    #[test]
    fn rejects_bad_configs() {
        let bad = InAmpConfig {
            gain: 0.0,
            ..InAmpConfig::isif_default()
        };
        assert!(InstrumentationAmp::new(bad, Hertz::from_kilohertz(256.0)).is_err());
        assert!(InstrumentationAmp::new(InAmpConfig::isif_default(), Hertz::new(0.0)).is_err());
    }
}
