//! Fused analog-front-end block kernel.
//!
//! The per-stage block kernels ([`InstrumentationAmp::amplify_block`],
//! [`AntiAliasFilter::push_block`], [`SigmaDeltaModulator::step_block`])
//! each make one pass over the frame, so chaining them costs three array
//! round trips through L1 per lane. This module fuses the three stages
//! into a single per-element walk with every pole/integrator state hoisted
//! into registers: one read pass over the inputs, one write pass over the
//! bitstream.
//!
//! The fusion is bit-identical to the stage-by-stage passes (and therefore
//! to the scalar per-sample chain): each stage is causal and its state
//! depends only on its own prior state and its current input, so element
//! `k` passing through all three stages before element `k+1` performs the
//! exact same f64 operation sequence per stage as three whole-frame
//! passes would.

use crate::adc::SigmaDeltaModulator;
use crate::filter::AntiAliasFilter;
use crate::inamp::InstrumentationAmp;

/// Runs `diffs` (differential volts) through in-amp → anti-alias → ΣΔ in
/// one fused pass, writing the ±1 bitstream to `bits`. `noises` holds one
/// pre-drawn [`InstrumentationAmp::draw_noise`] value per element.
///
/// Bit-identical to `amp.amplify_block` + `filter.push_block` +
/// `adc.step_block` over the same data, and to the equivalent per-sample
/// scalar chain.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn amplify_filter_modulate_block(
    amp: &mut InstrumentationAmp,
    filter: &mut AntiAliasFilter,
    adc: &mut SigmaDeltaModulator,
    diffs: &[f64],
    noises: &[f64],
    chip_overtemp_k: f64,
    bits: &mut [i32],
) {
    assert_eq!(diffs.len(), noises.len());
    assert_eq!(diffs.len(), bits.len());
    let offset = amp.config.input_offset.get() + amp.config.offset_drift_per_k * chip_overtemp_k;
    let gain = amp.config.gain;
    let gain_scale = 1.0 + amp.config.gain_error;
    let alpha_amp = amp.alpha;
    let rail = amp.config.rail.get();
    let mut amp_state = amp.output_state;
    let alpha_aa = filter.alpha;
    let mut s1 = filter.s1;
    let mut s2 = filter.s2;
    // `v / vref` must stay a division (not a reciprocal multiply) to keep
    // the fused path bit-identical to the scalar modulator.
    let vref = adc.vref;
    let mut i1 = adc.i1;
    let mut i2 = adc.i2;
    for ((&d, &n), b) in diffs.iter().zip(noises).zip(bits.iter_mut()) {
        let ideal = (d + offset + n) * gain * gain_scale;
        amp_state += alpha_amp * (ideal - amp_state);
        let v = amp_state.clamp(-rail, rail);
        s1 += alpha_aa * (v - s1);
        s2 += alpha_aa * (s1 - s2);
        let u = (s2 / vref).clamp(-0.9, 0.9);
        let y = if i2 >= 0.0 { 1.0 } else { -1.0 };
        i1 += 0.5 * (u - y);
        i2 += 0.5 * (i1 - y);
        *b = y as i32;
    }
    amp.output_state = amp_state;
    filter.s1 = s1;
    filter.s2 = s2;
    adc.i1 = i1;
    adc.i2 = i2;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inamp::InAmpConfig;
    use hotwire_units::{Hertz, Volts};

    #[test]
    fn fused_matches_stage_by_stage_passes() {
        let fs = Hertz::from_kilohertz(256.0);
        let mut amp_a = InstrumentationAmp::new(InAmpConfig::isif_default(), fs).unwrap();
        let mut filt_a = AntiAliasFilter::new(Hertz::from_kilohertz(30.0), fs).unwrap();
        let mut adc_a = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        let mut amp_b = amp_a.clone();
        let mut filt_b = filt_a.clone();
        let mut adc_b = adc_a.clone();

        // A few frames of a drifting input with synthetic "noise", crossing
        // the rails and the modulator's overload clamp.
        for frame in 0..4 {
            let diffs: Vec<f64> = (0..256)
                .map(|k| 0.08 * ((k as f64) * 0.13 + frame as f64).sin() - 0.01)
                .collect();
            let noises: Vec<f64> = (0..256).map(|k| 1e-6 * ((k % 7) as f64 - 3.0)).collect();
            let mut staged = diffs.clone();
            let mut bits_a = vec![0i32; 256];
            amp_a.amplify_block(&mut staged, &noises, 2.0);
            filt_a.push_block(&mut staged);
            adc_a.step_block(&staged, &mut bits_a);

            let mut bits_b = vec![0i32; 256];
            amplify_filter_modulate_block(
                &mut amp_b,
                &mut filt_b,
                &mut adc_b,
                &diffs,
                &noises,
                2.0,
                &mut bits_b,
            );
            assert_eq!(bits_a, bits_b, "frame {frame}");
        }
    }
}
