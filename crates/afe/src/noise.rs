//! Electronic noise helpers: Johnson–Nyquist and amplifier noise.

use hotwire_units::{Kelvin, Ohms, Volts};
use rand::Rng;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// RMS Johnson–Nyquist noise voltage of a resistor over a bandwidth:
/// `√(4·k_B·T·R·B)`.
///
/// ```
/// use hotwire_afe::noise::johnson_rms;
/// use hotwire_units::{Kelvin, Ohms};
///
/// // 50 Ω over 100 kHz at 300 K ≈ 0.29 µV rms.
/// let v = johnson_rms(Ohms::new(50.0), Kelvin::new(300.0), 100e3);
/// assert!((v.get() - 2.88e-7).abs() < 2e-8);
/// ```
pub fn johnson_rms(r: Ohms, temperature: Kelvin, bandwidth_hz: f64) -> Volts {
    Volts::new((4.0 * BOLTZMANN * temperature.get() * r.get() * bandwidth_hz).sqrt())
}

/// Draws one sample of zero-mean Gaussian voltage noise with the given rms.
pub fn noise_sample<R: Rng + ?Sized>(rng: &mut R, rms: Volts) -> Volts {
    Volts::new(rms.get() * standard_normal(rng))
}

/// Standard-normal draw (Box–Muller), kept local so `hotwire-afe` does not
/// depend on the physics crate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// A stateful 1/f ("flicker") noise generator: the sum of three octave-spaced
/// first-order low-passed white sources, a standard behavioural approximation
/// good to ~1 dB over three decades.
#[derive(Debug, Clone)]
pub struct FlickerNoise {
    states: [f64; 3],
    /// Per-stage pole coefficients.
    alphas: [f64; 3],
    /// Output scale for unit rms.
    scale: f64,
}

impl FlickerNoise {
    /// Creates a flicker source whose output has roughly the given rms over
    /// the band `[f_low, fs/2]` when stepped at `fs`.
    pub fn new(rms: f64, fs: f64) -> Self {
        // Poles at fs/20, fs/200, fs/2000.
        let alphas = [
            1.0 - (-core::f64::consts::TAU * (fs / 20.0) / fs).exp(),
            1.0 - (-core::f64::consts::TAU * (fs / 200.0) / fs).exp(),
            1.0 - (-core::f64::consts::TAU * (fs / 2000.0) / fs).exp(),
        ];
        FlickerNoise {
            states: [0.0; 3],
            alphas,
            // Empirical normalization: the three-stage average has rms
            // ≈ 0.164 of the white drive (measured, see the calibration
            // test).
            scale: rms / 0.164,
        }
    }

    /// Draws the next flicker sample.
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let w = standard_normal(rng);
        let mut sum = 0.0;
        for (s, a) in self.states.iter_mut().zip(self.alphas) {
            *s += a * (w - *s);
            sum += *s;
        }
        sum / 3.0 * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xA0)
    }

    #[test]
    fn johnson_scaling() {
        let t = Kelvin::new(300.0);
        let v1 = johnson_rms(Ohms::new(50.0), t, 1e5);
        let v4 = johnson_rms(Ohms::new(200.0), t, 1e5);
        // 4× resistance → 2× voltage.
        assert!((v4.get() / v1.get() - 2.0).abs() < 1e-12);
        let vb = johnson_rms(Ohms::new(50.0), t, 4e5);
        assert!((vb.get() / v1.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noise_sample_statistics() {
        let mut r = rng();
        let rms = Volts::new(1e-6);
        let n = 100_000;
        let sum2: f64 = (0..n)
            .map(|_| noise_sample(&mut r, rms).get().powi(2))
            .sum();
        let measured = (sum2 / n as f64).sqrt();
        assert!((measured / 1e-6 - 1.0).abs() < 0.02, "rms {measured}");
    }

    #[test]
    fn flicker_is_low_frequency_heavy() {
        let mut r = rng();
        let mut f = FlickerNoise::new(1.0, 10_000.0);
        // Crude spectral split: difference of adjacent samples (high-pass)
        // must carry much less power than the raw signal (low-pass heavy).
        let n = 200_000;
        let mut prev = 0.0;
        let (mut p_raw, mut p_diff) = (0.0, 0.0);
        for i in 0..n {
            let x = f.next_sample(&mut r);
            p_raw += x * x;
            if i > 0 {
                p_diff += (x - prev) * (x - prev);
            }
            prev = x;
        }
        assert!(
            p_diff < 0.5 * p_raw,
            "difference power {p_diff} vs raw {p_raw} — spectrum not red"
        );
    }

    #[test]
    fn flicker_rms_roughly_calibrated() {
        let mut r = rng();
        let mut f = FlickerNoise::new(2.0, 10_000.0);
        let n = 400_000;
        let sum2: f64 = (0..n).map(|_| f.next_sample(&mut r).powi(2)).sum();
        let rms = (sum2 / n as f64).sqrt();
        assert!((1.0..4.0).contains(&rms), "rms {rms} (target 2.0 ± 3 dB)");
    }
}
