//! The 16-bit ΣΔ ADC — modelled at the modulator level.
//!
//! "Eventually the signal is converted by a 16 bits Sigma Delta ADC." The
//! model is a real 2nd-order single-bit modulator (Boser–Wooley topology with
//! halved integrator gains for stability margin), not an ideal quantizer:
//! the decimation chain in `hotwire-dsp` turns its bitstream into the 16-bit
//! samples the digital section consumes, so quantization noise shaping,
//! overload behaviour and idle tones are all physically present in the
//! simulation.

use crate::error::ensure_positive;
use crate::AfeError;
use hotwire_units::Volts;

/// A 2nd-order single-bit ΣΔ modulator with full-scale input ±`vref`.
///
/// ```
/// use hotwire_afe::SigmaDeltaModulator;
/// use hotwire_units::Volts;
///
/// let mut adc = SigmaDeltaModulator::new(Volts::new(2.5))?;
/// // A mid-scale DC input produces a bitstream whose mean approaches 0.5.
/// let n = 100_000;
/// let ones: i64 = (0..n).map(|_| adc.push(Volts::new(1.25)) as i64).sum();
/// let mean = ones as f64 / n as f64;
/// assert!((mean - 0.5).abs() < 0.01);
/// # Ok::<(), hotwire_afe::AfeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SigmaDeltaModulator {
    pub(crate) vref: f64,
    pub(crate) i1: f64,
    pub(crate) i2: f64,
}

impl SigmaDeltaModulator {
    /// Creates a modulator with differential full scale ±`vref`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if `vref` is not positive.
    pub fn new(vref: Volts) -> Result<Self, AfeError> {
        ensure_positive("vref", vref.get())?;
        Ok(SigmaDeltaModulator {
            vref: vref.get(),
            i1: 0.0,
            i2: 0.0,
        })
    }

    /// Full-scale reference.
    #[inline]
    pub fn vref(&self) -> Volts {
        Volts::new(self.vref)
    }

    /// Converts one input sample to a ±1 bit.
    ///
    /// Inputs beyond ±vref are clipped (the modulator overloads gracefully
    /// rather than going unstable).
    pub fn push(&mut self, v_in: Volts) -> i32 {
        // Normalize, clip to the stable input range of a 2nd-order 1-bit
        // loop (~±0.9 FS).
        let u = (v_in.get() / self.vref).clamp(-0.9, 0.9);
        let y = if self.i2 >= 0.0 { 1.0 } else { -1.0 };
        // Boser–Wooley: halved gains, feedback into both integrators.
        self.i1 += 0.5 * (u - y);
        self.i2 += 0.5 * (self.i1 - y);
        y as i32
    }

    /// Converts a block of input samples (volts) to ±1 bits, advancing one
    /// modulator tick per element. Bit-identical to calling
    /// [`push`](Self::push) per element — the loop integrators are hoisted
    /// into locals so the inner loop runs over registers with no
    /// pointer-chased state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `bits` differ in length.
    pub fn step_block(&mut self, inputs: &[f64], bits: &mut [i32]) {
        assert_eq!(inputs.len(), bits.len());
        // `v / vref` must stay a division (not a reciprocal multiply) to
        // keep the block path bit-identical to `push`.
        let vref = self.vref;
        let mut i1 = self.i1;
        let mut i2 = self.i2;
        for (&v, b) in inputs.iter().zip(bits.iter_mut()) {
            let u = (v / vref).clamp(-0.9, 0.9);
            let y = if i2 >= 0.0 { 1.0 } else { -1.0 };
            i1 += 0.5 * (u - y);
            i2 += 0.5 * (i1 - y);
            *b = y as i32;
        }
        self.i1 = i1;
        self.i2 = i2;
    }

    /// Clears the loop integrators.
    pub fn reset(&mut self) {
        self.i1 = 0.0;
        self.i2 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitstream_mean(adc: &mut SigmaDeltaModulator, v: f64, n: usize) -> f64 {
        let sum: i64 = (0..n).map(|_| adc.push(Volts::new(v)) as i64).sum();
        sum as f64 / n as f64
    }

    #[test]
    fn dc_transfer_is_linear() {
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        for &frac in &[-0.8, -0.5, -0.1, 0.0, 0.1, 0.5, 0.8] {
            adc.reset();
            let mean = bitstream_mean(&mut adc, 2.5 * frac, 200_000);
            assert!(
                (mean - frac).abs() < 0.005,
                "input {frac} FS decoded as {mean}"
            );
        }
    }

    #[test]
    fn overload_clips_not_diverges() {
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        let mean = bitstream_mean(&mut adc, 10.0, 100_000);
        assert!((mean - 0.9).abs() < 0.01, "overloaded mean {mean}");
        assert!(adc.i1.is_finite() && adc.i2.is_finite());
    }

    #[test]
    fn integrators_stay_bounded() {
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        for i in 0..1_000_000 {
            let v = 2.0 * (core::f64::consts::TAU * 1000.0 * i as f64 / 256_000.0).sin();
            adc.push(Volts::new(v));
            assert!(adc.i1.abs() < 20.0 && adc.i2.abs() < 20.0, "state blew up");
        }
    }

    #[test]
    fn noise_shaping_pushes_error_to_high_frequency() {
        // Compare in-band error after heavy averaging (low-pass) for a DC
        // input: a 2nd-order modulator decimated by 256 must be accurate to
        // well below 1e-3 of full scale.
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        let target = 0.37;
        let n = 256 * 4000;
        let mean = bitstream_mean(&mut adc, 2.5 * target, n);
        assert!(
            (mean - target).abs() < 2e-4,
            "decimated DC error {}",
            (mean - target).abs()
        );
    }

    #[test]
    fn effective_resolution_16_bits_with_cic3_r256() {
        // End-to-end check against the paper's "16 bits" figure: a 3rd-order
        // CIC at R=256 on the bitstream recovers a DC level with error below
        // 1 LSB₁₆ = 2⁻¹⁶ of full scale (averaged over several outputs).
        use hotwire_dsp::cic::CicDecimator;
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        let mut cic = CicDecimator::new(3, 256).unwrap();
        let target = 0.2371;
        let mut outputs = Vec::new();
        for _ in 0..256 * 400 {
            if let Some(y) = cic.push(adc.push(Volts::new(2.5 * target))) {
                outputs.push(y as f64 / cic.gain() as f64);
            }
        }
        // Discard CIC settling.
        let settled = &outputs[8..];
        let mean = settled.iter().sum::<f64>() / settled.len() as f64;
        let err = (mean - target).abs();
        assert!(
            err < 1.0 / 65_536.0,
            "DC error {err} exceeds 1 LSB of 16 bits"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        bitstream_mean(&mut adc, 2.0, 1000);
        adc.reset();
        assert_eq!(adc.i1, 0.0);
        assert_eq!(adc.i2, 0.0);
    }

    #[test]
    fn rejects_bad_vref() {
        assert!(SigmaDeltaModulator::new(Volts::ZERO).is_err());
        assert!(SigmaDeltaModulator::new(Volts::new(-1.0)).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn step_block_is_bit_identical_to_scalar_push(
                // ±30 V on a 2.5 V vref drives the loop deep into overload
                // clipping as well as across the linear range.
                xs in proptest::collection::vec(-30.0f64..30.0, 1..300),
                split in 0usize..300
            ) {
                let mut scalar = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
                let mut block = scalar.clone();
                let expected: Vec<i32> =
                    xs.iter().map(|&v| scalar.push(Volts::new(v))).collect();
                // Split the block at an arbitrary point: integrator state
                // must carry across the seam exactly as per-sample calls
                // would leave it.
                let mut bits = vec![0i32; xs.len()];
                let cut = split % xs.len();
                let (lo, hi) = xs.split_at(cut);
                let (bl, bh) = bits.split_at_mut(cut);
                block.step_block(lo, bl);
                block.step_block(hi, bh);
                prop_assert_eq!(&bits, &expected);
                prop_assert_eq!(block.i1.to_bits(), scalar.i1.to_bits());
                prop_assert_eq!(block.i2.to_bits(), scalar.i2.to_bits());
            }
        }
    }
}
