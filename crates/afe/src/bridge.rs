//! The Wheatstone bridge connecting the MAF die to the input channel.
//!
//! Topology (paper Fig. 5): the controlled supply `U_b` feeds two parallel
//! branches — the *heater branch* (series resistor `R1` on top of the heater
//! `Rh`) and the *reference branch* (series resistor `R2` on top of the
//! ambient reference `Rt`). "The signal is acquired between the heater
//! resistance and the reference resistance which are connected in a standard
//! Wheatstone bridge structure."
//!
//! At balance `Rh/(R1+Rh) = Rt/(R2+Rt)`, i.e. the loop regulates the heater
//! to `Rh* = R1·Rt/R2`. Because `Rt` carries the same TCR as `Rh` and tracks
//! the fluid, the balance point — and therefore the *overheat* — rides on the
//! ambient temperature: this is exactly the paper's constant-temperature
//! scheme with an ambient-compensated setpoint.

use crate::error::ensure_positive;
use crate::AfeError;
use hotwire_units::{Amps, Ohms, Volts, Watts};

/// Static bridge component values.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BridgeConfig {
    /// Series resistor above the heater (`R1`).
    pub r_series_heater: Ohms,
    /// Series resistor above the ambient reference (`R2`).
    pub r_series_reference: Ohms,
}

impl BridgeConfig {
    /// Creates a bridge from its two series resistors.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if either resistance is not positive.
    pub fn new(r_series_heater: Ohms, r_series_reference: Ohms) -> Result<Self, AfeError> {
        ensure_positive("r_series_heater", r_series_heater.get())?;
        ensure_positive("r_series_reference", r_series_reference.get())?;
        Ok(BridgeConfig {
            r_series_heater,
            r_series_reference,
        })
    }

    /// Designs the bridge for a target heater operating resistance given the
    /// reference resistance at the calibration temperature: picks `R1 = Rh*`
    /// (equal-arm heater branch, maximizing power transfer head-room) and
    /// `R2 = R1·Rt/Rh*` so the balance lands on `Rh*`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if either resistance is not positive.
    pub fn for_operating_point(rh_target: Ohms, rt_nominal: Ohms) -> Result<Self, AfeError> {
        ensure_positive("rh_target", rh_target.get())?;
        ensure_positive("rt_nominal", rt_nominal.get())?;
        let r1 = rh_target;
        let r2 = Ohms::new(r1.get() * rt_nominal.get() / rh_target.get());
        BridgeConfig::new(r1, r2)
    }

    /// The heater resistance at which the bridge balances, given the current
    /// reference resistance.
    pub fn balance_heater_resistance(&self, rt: Ohms) -> Ohms {
        Ohms::new(self.r_series_heater.get() * rt.get() / self.r_series_reference.get())
    }

    /// Solves the bridge DC operating point for supply `u_b` and instantaneous
    /// element resistances.
    pub fn solve(&self, u_b: Volts, rh: Ohms, rt: Ohms) -> BridgeOutputs {
        let i_heater: Amps = u_b / (self.r_series_heater + rh);
        let i_reference: Amps = u_b / (self.r_series_reference + rt);
        let v_heater_mid: Volts = i_heater * rh;
        let v_reference_mid: Volts = i_reference * rt;
        BridgeOutputs {
            differential: v_heater_mid - v_reference_mid,
            heater_mid: v_heater_mid,
            reference_mid: v_reference_mid,
            heater_current: i_heater,
            heater_power: Watts::from_joule_heating(i_heater, rh),
            reference_power: Watts::from_joule_heating(i_reference, rt),
            supply_current: i_heater + i_reference,
        }
    }
}

/// The solved DC operating point of the bridge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BridgeOutputs {
    /// Midpoint difference `V(heater mid) − V(reference mid)` — the input to
    /// the instrumentation amplifier. Positive when the heater is *colder*
    /// (higher `Rh` fraction needed to balance… see module docs).
    pub differential: Volts,
    /// Heater-branch midpoint voltage.
    pub heater_mid: Volts,
    /// Reference-branch midpoint voltage (carries the fluid temperature via
    /// `Rt` — the paper's "temperature sensor for tracking thermal flow
    /// variation").
    pub reference_mid: Volts,
    /// Current through the heater branch.
    pub heater_current: Amps,
    /// Joule power dissipated in the heater element.
    pub heater_power: Watts,
    /// Joule power dissipated in the reference element (self-heating check).
    pub reference_power: Watts,
    /// Total current drawn from the supply.
    pub supply_current: Amps,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bridge() -> BridgeConfig {
        // Rh* = 52.8 Ω (≈ 15 K overheat on a 50 Ω/20 °C heater at 15 °C
        // fluid), Rt = 1996.5 Ω at 15 °C.
        BridgeConfig::for_operating_point(Ohms::new(52.8), Ohms::new(1996.5)).unwrap()
    }

    #[test]
    fn balance_condition() {
        let b = bridge();
        let rt = Ohms::new(1996.5);
        let rh_star = b.balance_heater_resistance(rt);
        assert!((rh_star.get() - 52.8).abs() < 1e-9);
        let out = b.solve(Volts::new(3.0), rh_star, rt);
        assert!(
            out.differential.abs().get() < 1e-12,
            "differential {} at balance",
            out.differential
        );
    }

    #[test]
    fn differential_sign_encodes_heater_state() {
        let b = bridge();
        let rt = Ohms::new(1996.5);
        // Heater hotter than setpoint → Rh above balance → midpoint above
        // reference → positive differential.
        let hot = b.solve(Volts::new(3.0), Ohms::new(54.0), rt);
        assert!(hot.differential.get() > 0.0);
        let cold = b.solve(Volts::new(3.0), Ohms::new(51.0), rt);
        assert!(cold.differential.get() < 0.0);
    }

    #[test]
    fn balance_tracks_ambient_via_rt() {
        let b = bridge();
        // Warmer fluid → Rt rises → balance Rh* rises → constant overheat.
        let cold = b.balance_heater_resistance(Ohms::new(1996.5));
        let warm = b.balance_heater_resistance(Ohms::new(2030.0));
        assert!(warm > cold);
        let ratio = warm.get() / cold.get();
        assert!((ratio - 2030.0 / 1996.5).abs() < 1e-12);
    }

    #[test]
    fn heater_power_magnitude() {
        let b = bridge();
        // 3 V supply, equal arms: heater sees 1.5 V → ~43 mW. Sanity anchor
        // against King's law full-scale demand (tens of mW).
        let out = b.solve(Volts::new(3.0), Ohms::new(52.8), Ohms::new(1996.5));
        assert!(
            (0.03..0.06).contains(&out.heater_power.get()),
            "heater power {}",
            out.heater_power
        );
    }

    #[test]
    fn reference_self_heating_small_relative_to_heater() {
        // The interdigitated Rt spreads over a large die area with strong
        // coupling to the fluid, so its self-heating appears only as a
        // sub-kelvin setpoint shift absorbed by calibration. The design
        // criterion enforced here: the reference branch burns a few per cent
        // of the heater power at most.
        let b = bridge();
        let out = b.solve(Volts::new(5.0), Ohms::new(52.8), Ohms::new(1996.5));
        assert!(out.reference_power.get() > 0.0);
        assert!(
            out.reference_power.get() < 0.05 * out.heater_power.get(),
            "reference {} vs heater {}",
            out.reference_power,
            out.heater_power
        );
    }

    #[test]
    fn supply_current_is_sum_of_branches() {
        let b = bridge();
        let out = b.solve(Volts::new(3.0), Ohms::new(52.8), Ohms::new(1996.5));
        let i1 = 3.0 / (b.r_series_heater.get() + 52.8);
        let i2 = 3.0 / (b.r_series_reference.get() + 1996.5);
        assert!((out.supply_current.get() - (i1 + i2)).abs() < 1e-12);
    }

    #[test]
    fn midpoints_reconstruct_differential() {
        let b = bridge();
        let out = b.solve(Volts::new(3.0), Ohms::new(53.0), Ohms::new(1990.0));
        assert!(
            ((out.heater_mid - out.reference_mid) - out.differential)
                .abs()
                .get()
                < 1e-12
        );
        // The reference midpoint carries Rt: warmer fluid (higher Rt) raises it.
        let warm = b.solve(Volts::new(3.0), Ohms::new(53.0), Ohms::new(2040.0));
        assert!(warm.reference_mid > out.reference_mid);
    }

    #[test]
    fn zero_supply_zero_everything() {
        let b = bridge();
        let out = b.solve(Volts::ZERO, Ohms::new(52.8), Ohms::new(1996.5));
        assert_eq!(out.differential.get(), 0.0);
        assert_eq!(out.heater_power.get(), 0.0);
        assert_eq!(out.supply_current.get(), 0.0);
    }

    #[test]
    fn rejects_non_positive_resistors() {
        assert!(BridgeConfig::new(Ohms::ZERO, Ohms::new(100.0)).is_err());
        assert!(BridgeConfig::new(Ohms::new(100.0), Ohms::new(-5.0)).is_err());
        assert!(BridgeConfig::for_operating_point(Ohms::ZERO, Ohms::new(2000.0)).is_err());
    }
}
