//! Continuous-time anti-alias low-pass ahead of the ΣΔ modulator.
//!
//! The paper: "Further stages perform signal analog processing, signal
//! recovery, and low-pass filtering for anti-aliasing purpose." Modelled as a
//! cascade of two RC poles (a behavioural Sallen–Key), integrated per
//! modulator sample with the exact single-pole discretization.

use crate::error::ensure_positive;
use crate::AfeError;
use hotwire_units::{Hertz, Volts};

/// A two-pole continuous-time anti-alias filter.
#[derive(Debug, Clone)]
pub struct AntiAliasFilter {
    pub(crate) alpha: f64,
    pub(crate) s1: f64,
    pub(crate) s2: f64,
}

impl AntiAliasFilter {
    /// Creates a filter with both poles at `corner`, stepped at
    /// `sample_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if either frequency is not positive or the corner
    /// is above half the sample rate.
    pub fn new(corner: Hertz, sample_rate: Hertz) -> Result<Self, AfeError> {
        ensure_positive("corner", corner.get())?;
        ensure_positive("sample_rate", sample_rate.get())?;
        if corner.get() >= sample_rate.get() / 2.0 {
            return Err(AfeError::OutOfRange {
                name: "corner",
                value: corner.get(),
                min: 0.0,
                max: sample_rate.get() / 2.0,
            });
        }
        let alpha = 1.0 - (-core::f64::consts::TAU * corner.get() / sample_rate.get()).exp();
        Ok(AntiAliasFilter {
            alpha,
            s1: 0.0,
            s2: 0.0,
        })
    }

    /// Filters one sample.
    pub fn push(&mut self, x: Volts) -> Volts {
        self.s1 += self.alpha * (x.get() - self.s1);
        self.s2 += self.alpha * (self.s1 - self.s2);
        Volts::new(self.s2)
    }

    /// Filters a block of samples (volts) in place. Bit-identical to calling
    /// [`push`](Self::push) per element — both pole states are hoisted into
    /// locals so the loop runs over registers.
    pub fn push_block(&mut self, samples: &mut [f64]) {
        let alpha = self.alpha;
        let mut s1 = self.s1;
        let mut s2 = self.s2;
        for x in samples.iter_mut() {
            s1 += alpha * (*x - s1);
            s2 += alpha * (s1 - s2);
            *x = s2;
        }
        self.s1 = s1;
        self.s2 = s2;
    }

    /// Clears both pole states.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_dc() {
        let mut f = AntiAliasFilter::new(Hertz::from_kilohertz(30.0), Hertz::from_kilohertz(256.0))
            .unwrap();
        let mut y = Volts::ZERO;
        for _ in 0..10_000 {
            y = f.push(Volts::new(1.25));
        }
        assert!((y.get() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn attenuates_near_nyquist() {
        let fs = 256_000.0;
        let mut f = AntiAliasFilter::new(Hertz::from_kilohertz(30.0), Hertz::new(fs)).unwrap();
        let mut peak: f64 = 0.0;
        for i in 0..100_000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let y = f.push(Volts::new(x));
            if i > 50_000 {
                peak = peak.max(y.get().abs());
            }
        }
        // Two discrete poles with α ≈ 0.52: per-pole Nyquist gain
        // α/(2−α) ≈ 0.35 → cascade ≈ 0.125.
        assert!(peak < 0.15, "nyquist leakage {peak}");
        assert!(peak > 0.0, "signal vanished entirely");
    }

    #[test]
    fn two_poles_beat_one_pole_rolloff() {
        // The cascade's step response is slower than a single pole — check
        // the 1-sample step response is quadratic-ish (tiny), i.e. s2 lags.
        let mut f = AntiAliasFilter::new(Hertz::from_kilohertz(10.0), Hertz::from_kilohertz(256.0))
            .unwrap();
        let y1 = f.push(Volts::new(1.0));
        // After one sample, a single pole would already sit at α ≈ 0.22; the
        // cascade sits at α² ≈ 0.05.
        assert!(y1.get() < 0.1, "first-step output {y1}");
    }

    #[test]
    fn reset_clears() {
        let mut f = AntiAliasFilter::new(Hertz::from_kilohertz(30.0), Hertz::from_kilohertz(256.0))
            .unwrap();
        f.push(Volts::new(2.0));
        f.reset();
        assert_eq!(f.push(Volts::ZERO).get(), 0.0);
    }

    #[test]
    fn rejects_bad_corners() {
        assert!(AntiAliasFilter::new(Hertz::new(0.0), Hertz::new(256e3)).is_err());
        assert!(AntiAliasFilter::new(Hertz::new(200e3), Hertz::new(256e3)).is_err());
    }
}
