//! Error type for AFE-block construction.

/// Errors produced when configuring an analog-front-end block.
#[derive(Debug, Clone, PartialEq)]
pub enum AfeError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter fell outside its supported range.
    OutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

impl core::fmt::Display for AfeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AfeError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            AfeError::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(
                f,
                "parameter `{name}` must lie in [{min}, {max}], got {value}"
            ),
        }
    }
}

impl std::error::Error for AfeError {}

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<(), AfeError> {
    if !(value > 0.0 && value.is_finite()) {
        return Err(AfeError::NonPositive { name, value });
    }
    Ok(())
}

pub(crate) fn ensure_in_range(
    name: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<(), AfeError> {
    if !(value.is_finite() && value >= min && value <= max) {
        return Err(AfeError::OutOfRange {
            name,
            value,
            min,
            max,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators() {
        assert!(ensure_positive("g", 1.0).is_ok());
        assert!(ensure_positive("g", 0.0).is_err());
        assert!(ensure_positive("g", f64::NAN).is_err());
        assert!(ensure_in_range("x", 0.5, 0.0, 1.0).is_ok());
        assert!(ensure_in_range("x", 2.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn display() {
        let e = AfeError::NonPositive {
            name: "gain",
            value: -2.0,
        };
        assert!(e.to_string().contains("gain"));
    }
}
