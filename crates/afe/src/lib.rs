//! Analog front-end models: the ISIF input channel and sensor-driving stage.
//!
//! The paper's signal chain (Fig. 4/5): the MAF heater and reference sit in a
//! Wheatstone bridge; the bridge midpoints feed an input channel configured
//! as an *instrumentation amplifier*, then analog low-pass filtering for
//! anti-aliasing, then a 16-bit ΣΔ ADC. The sensor-driving stage is a set of
//! configurable 12/10-bit *thermometer* DACs that actuate the bridge supply.
//!
//! Everything in this crate is an "analog" behavioural model: floating-point
//! voltages with explicitly injected noise, offsets and saturation, advanced
//! sample-by-sample at the ΣΔ modulator rate. The digital world begins at the
//! modulator's 1-bit output (see `hotwire-dsp` for the decimators).
//!
//! * [`bridge`] — Wheatstone bridge DC solver
//! * [`inamp`] — instrumentation amplifier (gain, offset, bandwidth, noise)
//! * [`filter`] — continuous-time anti-alias low-pass
//! * [`adc`] — 2nd-order 1-bit ΣΔ modulator
//! * [`dac`] — thermometer-coded DACs with element mismatch
//! * [`noise`] — Johnson/amplifier noise helpers

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod bridge;
pub mod chain;
pub mod dac;
pub mod error;
pub mod filter;
pub mod inamp;
pub mod noise;

pub use adc::SigmaDeltaModulator;
pub use bridge::{BridgeConfig, BridgeOutputs};
pub use dac::ThermometerDac;
pub use error::AfeError;
pub use filter::AntiAliasFilter;
pub use inamp::InstrumentationAmp;
