//! Property-based tests of the analog-front-end models.

use hotwire_afe::adc::SigmaDeltaModulator;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_afe::dac::ThermometerDac;
use hotwire_units::{Ohms, Volts};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Kirchhoff consistency of the bridge solver for any component values.
    #[test]
    fn bridge_solution_obeys_kirchhoff(
        u in 0.0f64..6.0,
        r1 in 1.0f64..1000.0,
        r2 in 100.0f64..10_000.0,
        rh in 1.0f64..200.0,
        rt in 100.0f64..5000.0,
    ) {
        let bridge = BridgeConfig::new(Ohms::new(r1), Ohms::new(r2)).unwrap();
        let out = bridge.solve(Volts::new(u), Ohms::new(rh), Ohms::new(rt));
        // Branch currents recompute the differential.
        let v_h = u * rh / (r1 + rh);
        let v_t = u * rt / (r2 + rt);
        prop_assert!((out.differential.get() - (v_h - v_t)).abs() < 1e-9);
        prop_assert!((out.heater_mid.get() - v_h).abs() < 1e-9);
        prop_assert!((out.reference_mid.get() - v_t).abs() < 1e-9);
        // Power consistency: P = I²·R.
        let i = u / (r1 + rh);
        prop_assert!((out.heater_power.get() - i * i * rh).abs() < 1e-9);
        // Currents non-negative for non-negative supply.
        prop_assert!(out.supply_current.get() >= 0.0);
    }

    /// The bridge balance resistance scales exactly with Rt.
    #[test]
    fn bridge_balance_is_ratio_exact(
        r1 in 1.0f64..1000.0,
        r2 in 100.0f64..10_000.0,
        rt in 100.0f64..5000.0,
    ) {
        let bridge = BridgeConfig::new(Ohms::new(r1), Ohms::new(r2)).unwrap();
        let rh_star = bridge.balance_heater_resistance(Ohms::new(rt));
        let out = bridge.solve(Volts::new(3.0), rh_star, Ohms::new(rt));
        prop_assert!(out.differential.get().abs() < 1e-9);
    }

    /// The ΣΔ bitstream mean converges to the normalized DC input.
    #[test]
    fn sigma_delta_dc_transfer(frac in -0.85f64..0.85) {
        let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
        let n = 60_000;
        let sum: i64 = (0..n).map(|_| adc.push(Volts::new(2.5 * frac)) as i64).sum();
        let mean = sum as f64 / n as f64;
        prop_assert!((mean - frac).abs() < 0.01, "frac {frac} decoded {mean}");
    }

    /// Thermometer DACs are monotonic for any mismatch level and seed.
    #[test]
    fn thermometer_dac_monotonic(
        bits in 4u32..=10,
        sigma in 0.0f64..0.05,
        seed in 0u64..500,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dac = ThermometerDac::with_mismatch(bits, Volts::new(5.0), sigma, &mut rng).unwrap();
        let mut prev = -1.0;
        for code in 0..=dac.max_code() {
            let v = dac.convert(code).get();
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!((dac.convert(dac.max_code()).get() - 5.0).abs() < 1e-9);
    }

    /// DAC endpoints are exact regardless of mismatch.
    #[test]
    fn thermometer_dac_endpoints(sigma in 0.0f64..0.05, seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dac = ThermometerDac::with_mismatch(12, Volts::new(5.0), sigma, &mut rng).unwrap();
        prop_assert_eq!(dac.convert(0).get(), 0.0);
        prop_assert!((dac.convert(4095).get() - 5.0).abs() < 1e-12);
    }
}
