//! Property-based tests for the quantity newtypes: the generated arithmetic
//! must behave exactly like `f64` arithmetic on the wrapped values, and the
//! dimensional relations must be self-consistent.

use hotwire_units::{
    Amps, Bar, Celsius, Hertz, KelvinDelta, MetersPerSecond, Ohms, Pascals, Seconds, Volts, Watts,
};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6
}

fn positive() -> impl Strategy<Value = f64> {
    1.0e-6..1.0e6
}

proptest! {
    #[test]
    fn add_commutes(a in finite(), b in finite()) {
        let (x, y) = (Volts::new(a), Volts::new(b));
        prop_assert_eq!((x + y).get(), (y + x).get());
    }

    #[test]
    fn add_sub_inverse(a in finite(), b in finite()) {
        let (x, y) = (Volts::new(a), Volts::new(b));
        prop_assert!(((x + y) - y - x).abs().get() <= 1e-9 * (1.0 + a.abs() + b.abs()));
    }

    #[test]
    fn scaling_is_linear(a in finite(), k in -1.0e3f64..1.0e3) {
        let x = Watts::new(a);
        prop_assert_eq!((x * k).get(), a * k);
        prop_assert_eq!((k * x).get(), a * k);
    }

    #[test]
    fn ohms_law_consistency(v in positive(), r in positive()) {
        let volts = Volts::new(v);
        let ohms = Ohms::new(r);
        let amps: Amps = volts / ohms;
        let back: Volts = amps * ohms;
        prop_assert!((back - volts).abs().get() <= 1e-9 * v);
        let r_back: Ohms = volts / amps;
        prop_assert!((r_back - ohms).abs().get() <= 1e-9 * r);
    }

    #[test]
    fn joule_heating_forms_agree(v in positive(), r in positive()) {
        let volts = Volts::new(v);
        let ohms = Ohms::new(r);
        let i = volts / ohms;
        let p1 = Watts::from_voltage_across(volts, ohms);
        let p2 = Watts::from_joule_heating(i, ohms);
        let p3 = volts * i;
        prop_assert!((p1 - p2).abs().get() <= 1e-9 * p1.get().abs().max(1e-12));
        prop_assert!((p1 - p3).abs().get() <= 1e-9 * p1.get().abs().max(1e-12));
    }

    #[test]
    fn temperature_affine_laws(t in -50.0f64..150.0, d in -100.0f64..100.0) {
        let point = Celsius::new(t);
        let delta = KelvinDelta::new(d);
        prop_assert!((((point + delta) - point).get() - d).abs() <= 1e-9);
        prop_assert!(((point + delta) - delta - point).get().abs() <= 1e-9);
        // Celsius→Kelvin→Celsius round-trip.
        prop_assert!((point.to_kelvin().to_celsius().get() - t).abs() <= 1e-9);
    }

    #[test]
    fn velocity_cm_round_trip(v in 0.0f64..10.0) {
        let mps = MetersPerSecond::new(v);
        let back = MetersPerSecond::from_cm_per_s(mps.to_cm_per_s());
        prop_assert!((back - mps).abs().get() <= 1e-12);
    }

    #[test]
    fn pressure_bar_round_trip(p in 0.0f64..1.0e7) {
        let pa = Pascals::new(p);
        let bar: Bar = pa.into();
        let back: Pascals = bar.into();
        prop_assert!((back - pa).abs().get() <= 1e-6 * (1.0 + p));
    }

    #[test]
    fn frequency_period_round_trip(f in 1.0e-3f64..1.0e9) {
        let hz = Hertz::new(f);
        let back = hz.period().to_frequency();
        prop_assert!((back - hz).abs().get() <= 1e-9 * f);
    }

    #[test]
    fn clamp_respects_bounds(a in finite(), lo in -1.0e3f64..0.0, hi in 0.0f64..1.0e3) {
        let clamped = Seconds::new(a).clamp(Seconds::new(lo), Seconds::new(hi));
        prop_assert!(clamped.get() >= lo && clamped.get() <= hi);
    }

    #[test]
    fn ratio_matches_f64(a in finite(), b in positive()) {
        prop_assert_eq!(Volts::new(a) / Volts::new(b), a / b);
    }

    #[test]
    fn serde_round_trip(a in finite()) {
        let v = Volts::new(a);
        let json = serde_json_like_round_trip(v.get());
        prop_assert_eq!(json, v.get());
    }
}

/// Serde is `#[serde(transparent)]`; emulate a round-trip through the
/// serializer contract by using the `From` conversions (no serde_json dep).
fn serde_json_like_round_trip(x: f64) -> f64 {
    let v = Volts::new(x);
    f64::from(v)
}
