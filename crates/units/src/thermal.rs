//! Thermal quantities: temperature points, temperature intervals, thermal
//! conductance/resistance, heat capacity.
//!
//! Temperature is affine: a point on the Celsius scale ([`Celsius`]) and a
//! temperature *difference* ([`KelvinDelta`]) are distinct types, so `20 °C +
//! 15 °C` does not compile but `20 °C + ΔT(15 K)` does.

use crate::{Seconds, Watts};

quantity! {
    /// A temperature difference in kelvin (K).
    ///
    /// This is the "overheat" type of the anemometer: the constant-temperature
    /// loop regulates `T_hot − T_fluid` to a fixed [`KelvinDelta`].
    KelvinDelta, "K"
}

quantity! {
    /// Thermal conductance in watts per kelvin (W/K).
    ///
    /// King's law expresses the hot wire's total conductance to the fluid as
    /// `G(v) = A + B·vⁿ`.
    ThermalConductance, "W/K"
}

quantity! {
    /// Thermal resistance in kelvin per watt (K/W).
    ThermalResistance, "K/W"
}

quantity! {
    /// Heat capacity in joules per kelvin (J/K).
    ///
    /// The membrane's heat capacity sets the sensor time constant
    /// `τ = C_th / G`.
    HeatCapacity, "J/K"
}

relation!(Watts / KelvinDelta = ThermalConductance);
relation!(HeatCapacity / ThermalConductance = Seconds);

impl ThermalConductance {
    /// The reciprocal thermal resistance.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns an infinite resistance for zero
    /// conductance.
    #[inline]
    pub fn to_resistance(self) -> ThermalResistance {
        ThermalResistance::new(1.0 / self.get())
    }
}

impl ThermalResistance {
    /// The reciprocal thermal conductance.
    #[inline]
    pub fn to_conductance(self) -> ThermalConductance {
        ThermalConductance::new(1.0 / self.get())
    }
}

/// A temperature point on the Celsius scale (°C).
///
/// ```
/// use hotwire_units::{Celsius, KelvinDelta};
/// let fluid = Celsius::new(15.0);
/// let wire = fluid + KelvinDelta::new(20.0);
/// assert_eq!(wire.get(), 35.0);
/// assert_eq!((wire - fluid).get(), 20.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[repr(transparent)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// 0 °C.
    pub const ZERO: Self = Self(0.0);

    /// Wraps a raw value in degrees Celsius.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in degrees Celsius.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to the Kelvin scale.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + 273.15)
    }

    /// Clamps the temperature into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Returns `true` if the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// A temperature point on the Kelvin scale (K).
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[repr(transparent)]
#[serde(transparent)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Wraps a raw value in kelvin.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in kelvin.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - 273.15)
    }
}

impl core::ops::Sub for Celsius {
    type Output = KelvinDelta;
    #[inline]
    fn sub(self, rhs: Self) -> KelvinDelta {
        KelvinDelta::new(self.0 - rhs.0)
    }
}

impl core::ops::Add<KelvinDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: KelvinDelta) -> Celsius {
        Celsius::new(self.0 + rhs.get())
    }
}

impl core::ops::Sub<KelvinDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: KelvinDelta) -> Celsius {
        Celsius::new(self.0 - rhs.get())
    }
}

impl core::ops::AddAssign<KelvinDelta> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: KelvinDelta) {
        self.0 += rhs.get();
    }
}

impl core::ops::Sub for Kelvin {
    type Output = KelvinDelta;
    #[inline]
    fn sub(self, rhs: Self) -> KelvinDelta {
        KelvinDelta::new(self.0 - rhs.0)
    }
}

impl core::ops::Add<KelvinDelta> for Kelvin {
    type Output = Kelvin;
    #[inline]
    fn add(self, rhs: KelvinDelta) -> Kelvin {
        Kelvin::new(self.0 + rhs.get())
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} °C", precision, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

impl core::fmt::Display for Kelvin {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} K", precision, self.0)
        } else {
            write!(f, "{} K", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(15.0);
        let k = c.to_kelvin();
        assert!((k.get() - 288.15).abs() < 1e-12);
        assert!((k.to_celsius().get() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn affine_arithmetic() {
        let fluid = Celsius::new(15.0);
        let overheat = KelvinDelta::new(20.0);
        let wire = fluid + overheat;
        assert_eq!(wire.get(), 35.0);
        assert_eq!((wire - fluid).get(), 20.0);
        assert_eq!((wire - overheat).get(), 15.0);
        let mut t = fluid;
        t += KelvinDelta::new(5.0);
        assert_eq!(t.get(), 20.0);
    }

    #[test]
    fn kelvin_point_arithmetic() {
        let a = Kelvin::new(300.0);
        let b = Kelvin::new(290.0);
        assert_eq!((a - b).get(), 10.0);
        assert_eq!((b + KelvinDelta::new(10.0)).get(), 300.0);
    }

    #[test]
    fn conductance_resistance_reciprocal() {
        let g = ThermalConductance::new(2.0e-3);
        let r = g.to_resistance();
        assert!((r.get() - 500.0).abs() < 1e-9);
        assert!((r.to_conductance().get() - 2.0e-3).abs() < 1e-15);
    }

    #[test]
    fn power_from_conductance_and_overheat() {
        let g = ThermalConductance::new(1.5e-3);
        let dt = KelvinDelta::new(20.0);
        let p: Watts = g * dt;
        assert!((p.get() - 0.03).abs() < 1e-12);
        let g2: ThermalConductance = p / dt;
        assert!((g2.get() - 1.5e-3).abs() < 1e-15);
    }

    #[test]
    fn time_constant_from_capacity_and_conductance() {
        let c = HeatCapacity::new(4.0e-6);
        let g = ThermalConductance::new(2.0e-3);
        let tau: Seconds = c / g;
        assert!((tau.get() - 2.0e-3).abs() < 1e-15);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{:.1}", Celsius::new(15.04)), "15.0 °C");
        assert_eq!(format!("{:.0}", Kelvin::new(288.15)), "288 K");
        assert_eq!(format!("{:.1}", KelvinDelta::new(20.0)), "20.0 K");
    }
}
