//! Time-domain quantities: duration and frequency.

quantity! {
    /// A duration in seconds (s).
    Seconds, "s"
}

quantity! {
    /// A frequency in hertz (Hz).
    Hertz, "Hz"
}

impl Seconds {
    /// Builds a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn to_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// The frequency whose period is this duration (`f = 1/T`).
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        Hertz::new(1.0 / self.get())
    }
}

impl Hertz {
    /// Builds a frequency from kilohertz.
    #[inline]
    pub fn from_kilohertz(khz: f64) -> Self {
        Hertz::new(khz * 1e3)
    }

    /// Builds a frequency from megahertz.
    #[inline]
    pub fn from_megahertz(mhz: f64) -> Self {
        Hertz::new(mhz * 1e6)
    }

    /// The period of one cycle (`T = 1/f`).
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_frequency_reciprocal() {
        let f = Hertz::from_kilohertz(256.0);
        let t = f.period();
        assert!((t.get() - 1.0 / 256_000.0).abs() < 1e-18);
        assert!((t.to_frequency().get() - 256_000.0).abs() < 1e-6);
    }

    #[test]
    fn sub_second_conversions() {
        assert!((Seconds::from_millis(2.5).get() - 2.5e-3).abs() < 1e-15);
        assert!((Seconds::from_micros(4.0).get() - 4.0e-6).abs() < 1e-18);
        assert!((Seconds::new(0.25).to_millis() - 250.0).abs() < 1e-9);
        assert!((Hertz::from_megahertz(1.0).get() - 1e6).abs() < 1e-6);
    }
}
