//! Internal macro for declaring linear quantity newtypes.

/// Declares a linear (non-affine) physical quantity newtype over `f64`.
///
/// Generates: `new`/`get`/`abs`/`clamp` inherent methods, `Add`, `Sub`, `Neg`,
/// `Mul<f64>`, `Div<f64>`, `f64 * Self`, `Div<Self> -> f64` (ratio),
/// `AddAssign`/`SubAssign`, `Sum`, `Display` with the unit symbol, and serde
/// derives. Same-unit comparison comes from `PartialOrd`.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[repr(transparent)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in the canonical unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value in the canonical unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (as [`f64::clamp`] does).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of two values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

/// Declares `Mul`/`Div` relations between quantities, e.g.
/// `relation!(Volts / Ohms = Amps)` generates `Volts / Ohms -> Amps`,
/// `Amps * Ohms -> Volts` and `Ohms * Amps -> Volts`.
macro_rules! relation {
    ($num:ident / $den:ident = $quot:ident) => {
        impl core::ops::Div<$den> for $num {
            type Output = $quot;
            #[inline]
            fn div(self, rhs: $den) -> $quot {
                $quot::new(self.get() / rhs.get())
            }
        }

        impl core::ops::Mul<$den> for $quot {
            type Output = $num;
            #[inline]
            fn mul(self, rhs: $den) -> $num {
                $num::new(self.get() * rhs.get())
            }
        }

        impl core::ops::Mul<$quot> for $den {
            type Output = $num;
            #[inline]
            fn mul(self, rhs: $quot) -> $num {
                $num::new(self.get() * rhs.get())
            }
        }

        impl core::ops::Div<$quot> for $num {
            type Output = $den;
            #[inline]
            fn div(self, rhs: $quot) -> $den {
                $den::new(self.get() / rhs.get())
            }
        }
    };
}
