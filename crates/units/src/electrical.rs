//! Electrical quantities: resistance, voltage, current, power, capacitance.

quantity! {
    /// Electrical resistance in ohms (Ω).
    ///
    /// ```
    /// use hotwire_units::{Ohms, Volts, Amps};
    /// let heater = Ohms::new(50.0);
    /// let i: Amps = Volts::new(2.5) / heater;
    /// assert!((i.get() - 0.05).abs() < 1e-12);
    /// ```
    Ohms, "Ω"
}

quantity! {
    /// Electrical potential in volts (V).
    ///
    /// ```
    /// use hotwire_units::{Volts, Amps, Watts};
    /// let p: Watts = Volts::new(5.0) * Amps::new(0.1);
    /// assert!((p.get() - 0.5).abs() < 1e-12);
    /// ```
    Volts, "V"
}

quantity! {
    /// Electrical current in amperes (A).
    Amps, "A"
}

quantity! {
    /// Power in watts (W).
    Watts, "W"
}

quantity! {
    /// Capacitance in farads (F).
    Farads, "F"
}

relation!(Volts / Ohms = Amps);
relation!(Watts / Volts = Amps);

impl Watts {
    /// Joule heating `I²·R` dissipated by a current through a resistance.
    ///
    /// ```
    /// use hotwire_units::{Amps, Ohms, Watts};
    /// let p = Watts::from_joule_heating(Amps::new(0.1), Ohms::new(50.0));
    /// assert!((p.get() - 0.5).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_joule_heating(current: Amps, resistance: Ohms) -> Self {
        Watts::new(current.get() * current.get() * resistance.get())
    }

    /// Joule heating `V²/R` dissipated by a voltage across a resistance.
    #[inline]
    pub fn from_voltage_across(voltage: Volts, resistance: Ohms) -> Self {
        Watts::new(voltage.get() * voltage.get() / resistance.get())
    }
}

impl Volts {
    /// Converts millivolts to volts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Volts::new(mv * 1e-3)
    }

    /// Returns the value in millivolts.
    #[inline]
    pub fn to_millivolts(self) -> f64 {
        self.get() * 1e3
    }
}

impl Amps {
    /// Converts milliamperes to amperes.
    #[inline]
    pub fn from_milliamps(ma: f64) -> Self {
        Amps::new(ma * 1e-3)
    }

    /// Returns the value in milliamperes.
    #[inline]
    pub fn to_milliamps(self) -> f64 {
        self.get() * 1e3
    }
}

impl Watts {
    /// Converts milliwatts to watts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts::new(mw * 1e-3)
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        self.get() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trips() {
        let v = Volts::new(5.0);
        let r = Ohms::new(50.0);
        let i = v / r;
        assert!(((i * r) - v).abs().get() < 1e-12);
        assert!(((v / i) - r).abs().get() < 1e-12);
    }

    #[test]
    fn power_relations_agree() {
        let v = Volts::new(3.0);
        let r = Ohms::new(50.0);
        let i = v / r;
        let p1 = v * i;
        let p2 = Watts::from_joule_heating(i, r);
        let p3 = Watts::from_voltage_across(v, r);
        assert!((p1 - p2).abs().get() < 1e-12);
        assert!((p1 - p3).abs().get() < 1e-12);
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(format!("{:.2}", Volts::new(1.234)), "1.23 V");
        assert_eq!(format!("{}", Ohms::new(50.0)), "50 Ω");
    }

    #[test]
    fn arithmetic_identities() {
        let a = Volts::new(2.0);
        let b = Volts::new(3.0);
        assert_eq!((a + b).get(), 5.0);
        assert_eq!((b - a).get(), 1.0);
        assert_eq!((-a).get(), -2.0);
        assert_eq!((a * 2.0).get(), 4.0);
        assert_eq!((2.0 * a).get(), 4.0);
        assert_eq!((a / 2.0).get(), 1.0);
        assert_eq!(a / b, 2.0 / 3.0);
    }

    #[test]
    fn sum_and_assign_ops() {
        let total: Volts = [1.0, 2.0, 3.0].iter().map(|&x| Volts::new(x)).sum();
        assert_eq!(total.get(), 6.0);
        let mut v = Volts::new(1.0);
        v += Volts::new(2.0);
        v -= Volts::new(0.5);
        assert_eq!(v.get(), 2.5);
    }

    #[test]
    fn milli_conversions() {
        assert!((Volts::from_millivolts(1500.0).get() - 1.5).abs() < 1e-12);
        assert!((Volts::new(1.5).to_millivolts() - 1500.0).abs() < 1e-9);
        assert!((Amps::from_milliamps(20.0).get() - 0.02).abs() < 1e-12);
        assert!((Watts::from_milliwatts(250.0).get() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clamp_min_max() {
        let v = Volts::new(7.0);
        assert_eq!(v.clamp(Volts::ZERO, Volts::new(5.0)).get(), 5.0);
        assert_eq!(v.max(Volts::new(9.0)).get(), 9.0);
        assert_eq!(v.min(Volts::new(3.0)).get(), 3.0);
    }
}
