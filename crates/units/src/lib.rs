//! Physical-quantity newtypes for the `hotwire` anemometer simulator.
//!
//! Every quantity that crosses a crate boundary in the workspace is wrapped in
//! a dedicated newtype ([C-NEWTYPE]): a bridge supply is [`Volts`], a heater
//! resistance is [`Ohms`], a flow speed is [`MetersPerSecond`]. The wrappers
//! are thin (`#[repr(transparent)]` over `f64`), implement the arithmetic that
//! is physically meaningful (`V / Ω = A`, `V · A = W`, `°C − °C = ΔK`, …) and
//! nothing else, so unit confusion becomes a type error instead of a wrong
//! measurement.
//!
//! # Example
//!
//! ```
//! use hotwire_units::{Amps, Ohms, Volts, Watts};
//!
//! let supply = Volts::new(5.0);
//! let heater = Ohms::new(50.0);
//! let current: Amps = supply / heater;
//! let power: Watts = supply * current;
//! assert!((power.get() - 0.5).abs() < 1e-12);
//! ```
//!
//! # Conventions
//!
//! * `Quantity::new(x)` wraps a raw `f64`; `quantity.get()` unwraps it.
//! * Same-unit addition/subtraction and scaling by `f64` are always available.
//! * Affine quantities (temperature) distinguish points ([`Celsius`]) from
//!   intervals ([`KelvinDelta`]).
//! * All types are `Copy`, `PartialEq`, `PartialOrd`, `Debug`, `Display`,
//!   `Default`, and serde-serializable.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[macro_use]
mod macros;

mod electrical;
mod flow;
mod thermal;
mod time;

pub use electrical::{Amps, Farads, Ohms, Volts, Watts};
pub use flow::{Bar, CentimetersPerSecond, LitersPerMinute, Meters, MetersPerSecond, Pascals};
pub use thermal::{
    Celsius, HeatCapacity, Kelvin, KelvinDelta, ThermalConductance, ThermalResistance,
};
pub use time::{Hertz, Seconds};
