//! Flow and hydraulic quantities: velocity, length, pressure, volume flow.

use crate::Seconds;

quantity! {
    /// Flow speed in metres per second (m/s).
    ///
    /// The paper's full scale is 0–250 cm/s, i.e. 2.5 m/s; helper conversions
    /// to/from cm/s are provided because the paper quotes everything in cm/s.
    ///
    /// ```
    /// use hotwire_units::MetersPerSecond;
    /// let v = MetersPerSecond::from_cm_per_s(250.0);
    /// assert_eq!(v.get(), 2.5);
    /// assert_eq!(v.to_cm_per_s(), 250.0);
    /// ```
    MetersPerSecond, "m/s"
}

quantity! {
    /// Flow speed in centimetres per second (cm/s) — the paper's unit.
    CentimetersPerSecond, "cm/s"
}

quantity! {
    /// Length in metres (m).
    Meters, "m"
}

quantity! {
    /// Pressure in pascals (Pa).
    Pascals, "Pa"
}

quantity! {
    /// Pressure in bar (1 bar = 100 kPa) — the paper's unit for line pressure.
    Bar, "bar"
}

quantity! {
    /// Volume flow in litres per minute (L/min).
    LitersPerMinute, "L/min"
}

relation!(Meters / Seconds = MetersPerSecond);

impl MetersPerSecond {
    /// Builds a velocity from a value in centimetres per second.
    #[inline]
    pub fn from_cm_per_s(cm_per_s: f64) -> Self {
        MetersPerSecond::new(cm_per_s * 1e-2)
    }

    /// Returns the value in centimetres per second.
    #[inline]
    pub fn to_cm_per_s(self) -> f64 {
        self.get() * 1e2
    }

    /// Converts to the [`CentimetersPerSecond`] newtype.
    #[inline]
    pub fn to_centimeters_per_second(self) -> CentimetersPerSecond {
        CentimetersPerSecond::new(self.to_cm_per_s())
    }
}

impl CentimetersPerSecond {
    /// Converts to the canonical [`MetersPerSecond`] newtype.
    #[inline]
    pub fn to_meters_per_second(self) -> MetersPerSecond {
        MetersPerSecond::from_cm_per_s(self.get())
    }
}

impl From<CentimetersPerSecond> for MetersPerSecond {
    #[inline]
    fn from(v: CentimetersPerSecond) -> Self {
        v.to_meters_per_second()
    }
}

impl From<MetersPerSecond> for CentimetersPerSecond {
    #[inline]
    fn from(v: MetersPerSecond) -> Self {
        v.to_centimeters_per_second()
    }
}

impl Pascals {
    /// Builds a pressure from bar.
    #[inline]
    pub fn from_bar(bar: f64) -> Self {
        Pascals::new(bar * 1e5)
    }

    /// Returns the value in bar.
    #[inline]
    pub fn to_bar(self) -> Bar {
        Bar::new(self.get() * 1e-5)
    }
}

impl Bar {
    /// Converts to the canonical [`Pascals`] newtype.
    #[inline]
    pub fn to_pascals(self) -> Pascals {
        Pascals::from_bar(self.get())
    }
}

impl From<Bar> for Pascals {
    #[inline]
    fn from(p: Bar) -> Self {
        p.to_pascals()
    }
}

impl From<Pascals> for Bar {
    #[inline]
    fn from(p: Pascals) -> Self {
        p.to_bar()
    }
}

impl Meters {
    /// Builds a length from millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Meters::new(mm * 1e-3)
    }

    /// Builds a length from micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Meters::new(um * 1e-6)
    }

    /// Returns the value in millimetres.
    #[inline]
    pub fn to_millimeters(self) -> f64 {
        self.get() * 1e3
    }
}

impl LitersPerMinute {
    /// Volume flow through a circular pipe of the given inner diameter at the
    /// given mean velocity.
    ///
    /// ```
    /// use hotwire_units::{LitersPerMinute, Meters, MetersPerSecond};
    /// let q = LitersPerMinute::from_pipe_velocity(
    ///     Meters::from_millimeters(50.0),
    ///     MetersPerSecond::new(1.0),
    /// );
    /// // A = π·0.025² ≈ 1.963e-3 m², Q = 1.963e-3 m³/s ≈ 117.8 L/min
    /// assert!((q.get() - 117.8).abs() < 0.1);
    /// ```
    pub fn from_pipe_velocity(inner_diameter: Meters, mean_velocity: MetersPerSecond) -> Self {
        let radius = inner_diameter.get() / 2.0;
        let area = core::f64::consts::PI * radius * radius;
        let m3_per_s = area * mean_velocity.get();
        LitersPerMinute::new(m3_per_s * 1000.0 * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_unit_conversions() {
        let v = MetersPerSecond::from_cm_per_s(250.0);
        assert!((v.get() - 2.5).abs() < 1e-12);
        assert!((v.to_cm_per_s() - 250.0).abs() < 1e-9);
        let c: CentimetersPerSecond = v.into();
        assert!((c.get() - 250.0).abs() < 1e-9);
        let back: MetersPerSecond = c.into();
        assert!((back.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pressure_unit_conversions() {
        let p = Pascals::from_bar(3.0);
        assert!((p.get() - 3.0e5).abs() < 1e-6);
        let b: Bar = p.into();
        assert!((b.get() - 3.0).abs() < 1e-12);
        let p2: Pascals = Bar::new(7.0).into();
        assert!((p2.get() - 7.0e5).abs() < 1e-6);
    }

    #[test]
    fn length_conversions() {
        assert!((Meters::from_millimeters(2.0).get() - 2e-3).abs() < 1e-15);
        assert!((Meters::from_micrometers(2.0).get() - 2e-6).abs() < 1e-18);
        assert!((Meters::new(0.05).to_millimeters() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn distance_velocity_time_relation() {
        let d: Meters = MetersPerSecond::new(2.0) * Seconds::new(3.0);
        assert_eq!(d.get(), 6.0);
        let v: MetersPerSecond = Meters::new(6.0) / Seconds::new(3.0);
        assert_eq!(v.get(), 2.0);
    }

    #[test]
    fn pipe_volume_flow() {
        let q = LitersPerMinute::from_pipe_velocity(
            Meters::from_millimeters(100.0),
            MetersPerSecond::new(0.5),
        );
        // A = π·0.05² = 7.853981e-3 m²; Q = 3.92699e-3 m³/s = 235.62 L/min
        assert!((q.get() - 235.62).abs() < 0.05);
    }
}
