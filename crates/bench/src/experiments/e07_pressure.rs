//! E7 — §5: pressure robustness, 0–3 bar with 7 bar peaks.
//!
//! The station could tune pressure "from 0 up to 3 bar with peaks of 7 bar"
//! while the probe kept measuring. Pressure enters the physics through the
//! outgassing onset (Henry's law): higher pressure *suppresses* bubbles. At
//! the paper's reduced 15 K overheat the wall never crosses the onset, so
//! the reading must ride through the whole schedule — including the peaks —
//! essentially undisturbed. As a contrast case, the naive 40 K drive bubbles
//! at low pressure and recovers at high pressure.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_rig::campaign::Calibration;
use hotwire_rig::{Campaign, RunSpec, Scenario, Trace};

/// One drive's behaviour over the pressure schedule.
#[derive(Debug, Clone)]
pub struct PressureCase {
    /// Case label.
    pub label: &'static str,
    /// Settled mean reading over the 1 bar baseline, cm/s.
    pub baseline_cm_s: f64,
    /// Worst deviation from baseline across the whole schedule, cm/s.
    pub worst_deviation_cm_s: f64,
    /// Reading deviation during the 7 bar peaks, cm/s.
    pub peak_deviation_cm_s: f64,
    /// Peak bubble coverage anywhere in the run.
    pub peak_coverage: f64,
}

/// E7 results.
#[derive(Debug, Clone)]
pub struct PressureResult {
    /// The paper drive and the naive contrast case.
    pub cases: Vec<PressureCase>,
}

fn reduce_case(label: &'static str, trace: &Trace) -> PressureCase {
    // Schedule landmarks (see Scenario::pressure_torture): 1 bar hold ends
    // at t=10; first 7 bar peak spans t∈[40,42); second t∈[52,54).
    // Deviations are measured against the baseline mean, so this is an
    // inherently two-pass reduction over the stored (Full) trace — read
    // straight off the columnar slices.
    let store = &trace.samples;
    let baseline = trace.window_stats(5.0, 10.0).mean();
    let after_hold = store.ts().partition_point(|&t| t <= 5.0);
    let worst = store.dut()[after_hold..]
        .iter()
        .map(|&dut| (dut - baseline).abs())
        .fold(0.0, f64::max);
    let peak_deviation = store
        .window(40.0, 42.0)
        .chain(store.window(52.0, 54.0))
        .map(|i| (store.dut()[i] - baseline).abs())
        .fold(0.0, f64::max);
    let coverage = store.bubble().iter().copied().fold(0.0, f64::max);
    PressureCase {
        label,
        baseline_cm_s: baseline,
        worst_deviation_cm_s: worst,
        peak_deviation_cm_s: peak_deviation,
        peak_coverage: coverage,
    }
}

/// Runs E7. Both drives execute as one campaign.
///
/// Note: the pressure schedule's timing is absolute, so this experiment runs
/// the full-length scenario even in fast mode (the modulator rate still
/// scales down).
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<PressureResult, CoreError> {
    let reduced = speed.config();
    let naive = FlowMeterConfig {
        overheat: hotwire_units::KelvinDelta::new(40.0),
        ..reduced
    };
    let labels = ["15 K overheat (paper)", "40 K overheat (naive)"];
    let specs: Vec<RunSpec> = [reduced, naive]
        .into_iter()
        .zip(labels)
        .map(|(config, label)| {
            RunSpec::new(label, config, Scenario::pressure_torture(100.0), 0xE7)
                .with_calibration(Calibration::Field(super::calibration_recipe(speed, 0xE7)))
                .with_sample_period(0.1)
        })
        .collect();
    let outcomes = Campaign::new().run(&specs)?;
    Ok(PressureResult {
        cases: labels
            .iter()
            .zip(&outcomes)
            .map(|(&label, outcome)| reduce_case(label, &outcome.trace))
            .collect(),
    })
}

impl core::fmt::Display for PressureResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E7 / §5 — pressure robustness: 0–3 bar sweep with 7 bar peaks at 100 cm/s\n"
        )?;
        let mut t = Table::new([
            "drive",
            "baseline [cm/s]",
            "worst dev [cm/s]",
            "7 bar dev [cm/s]",
            "peak bubbles",
        ]);
        for c in &self.cases {
            t.row([
                c.label.to_string(),
                format!("{:.1}", c.baseline_cm_s),
                format!("{:.2}", c.worst_deviation_cm_s),
                format!("{:.2}", c.peak_deviation_cm_s),
                format!("{:.3}", c.peak_coverage),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: tested 0–3 bar with 7 bar peaks; the (reduced-overheat) prototype kept\n\
             measuring — higher pressure only raises the outgassing margin"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_pressure_robustness() {
        let r = run(Speed::Fast).unwrap();
        let paper = &r.cases[0];
        // The paper drive rides the whole schedule within a few cm/s.
        assert!(
            paper.worst_deviation_cm_s < 0.25 * paper.baseline_cm_s,
            "worst deviation {} cm/s on baseline {}",
            paper.worst_deviation_cm_s,
            paper.baseline_cm_s
        );
        assert!(paper.peak_coverage < 0.02, "paper drive must stay clean");
        // The naive drive bubbles somewhere in the low-pressure region.
        assert!(
            r.cases[1].peak_coverage > paper.peak_coverage,
            "naive {} vs paper {}",
            r.cases[1].peak_coverage,
            paper.peak_coverage
        );
    }
}
