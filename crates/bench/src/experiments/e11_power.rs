//! E11 — §7: battery autonomy of the duty-cycled probe.
//!
//! "…deep sleep mode for a considerable power saving allowing the whole
//! system to be supplied by rechargeable batteries (4 alkaline AA) that
//! guarantees autonomy of one year for a typical sensor usage."

use super::Speed;
use crate::table::Table;
use hotwire_core::power::{DutyCycle, PowerState, FOUR_AA_WH};
use hotwire_core::CoreError;
use hotwire_rig::Campaign;
use hotwire_units::{Seconds, Watts};

/// One duty-cycle scenario's budget.
#[derive(Debug, Clone)]
pub struct PowerScenario {
    /// Scenario label.
    pub label: String,
    /// Time-averaged draw, mW.
    pub average_mw: f64,
    /// Autonomy on 4×AA, days.
    pub autonomy_days: f64,
}

/// E11 results.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Scenarios, including the paper's "typical usage".
    pub scenarios: Vec<PowerScenario>,
}

impl PowerResult {
    /// The paper-claim scenario ("typical usage").
    pub fn typical(&self) -> &PowerScenario {
        &self.scenarios[0]
    }
}

/// Runs E11 (pure model — `Speed` has no effect).
///
/// # Errors
///
/// Returns [`CoreError::Config`] only if a scenario is malformed (they are
/// static, so this does not happen in practice).
pub fn run(_speed: Speed) -> Result<PowerResult, CoreError> {
    let cycles = [
        (
            "typical usage (1 s burst / 3 min)",
            DutyCycle::typical_usage(),
        ),
        (
            "fast logging (1 s burst / 30 s)",
            DutyCycle::new(vec![
                PowerState {
                    name: "measure",
                    draw: Watts::new(0.160),
                    duration: Seconds::new(1.0),
                },
                PowerState {
                    name: "sleep",
                    draw: Watts::new(25e-6),
                    duration: Seconds::new(29.0),
                },
            ])?,
        ),
        (
            "continuous (no deep sleep)",
            DutyCycle::continuous(Watts::new(0.160)),
        ),
    ];
    let scenarios = Campaign::new().map(&cycles, |_, (label, cycle)| PowerScenario {
        label: (*label).to_string(),
        average_mw: cycle.average_power().to_milliwatts(),
        autonomy_days: cycle.autonomy_days_on_4aa(),
    });
    Ok(PowerResult { scenarios })
}

impl core::fmt::Display for PowerResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E11 / §7 — battery autonomy on 4×AA ({FOUR_AA_WH} Wh, 15 % derated)\n"
        )?;
        let mut t = Table::new([
            "duty cycle",
            "avg draw [mW]",
            "autonomy [days]",
            "autonomy [yr]",
        ]);
        for s in &self.scenarios {
            t.row([
                s.label.clone(),
                format!("{:.3}", s.average_mw),
                format!("{:.0}", s.autonomy_days),
                format!("{:.2}", s.autonomy_days / 365.0),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: deep-sleep ASIC on 4 alkaline AA \"guarantees autonomy of one year for a\n\
             typical sensor usage\""
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_usage_exceeds_a_year() {
        let r = run(Speed::Fast).unwrap();
        assert!(
            r.typical().autonomy_days > 365.0,
            "typical autonomy {:.0} days",
            r.typical().autonomy_days
        );
        // Continuous operation collapses to days — the motivation for the
        // deep-sleep ASIC.
        let continuous = r.scenarios.last().unwrap();
        assert!(continuous.autonomy_days < 15.0);
    }
}
