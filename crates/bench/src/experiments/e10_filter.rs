//! E10 — §4 ablation: "this output signal requires further filtering (with
//! an IIR filter down to the bandwidth of 0.1 Hz) in order to improve the
//! sensitivity."
//!
//! Resolution at 100 cm/s as a function of the output-filter corner: the
//! narrower the corner, the less turbulence/electronics noise reaches the
//! reading — at the cost of response time.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_rig::campaign::Calibration;
use hotwire_rig::{metrics, Campaign, RecordPolicy, RunSpec, Scenario, Windows};
use hotwire_units::Hertz;

/// Resolution at one filter setting.
#[derive(Debug, Clone, Copy)]
pub struct FilterPoint {
    /// Output-filter corner, Hz.
    pub corner_hz: f64,
    /// ±σ resolution at 100 cm/s, cm/s.
    pub resolution_cm_s: f64,
    /// 10–90 % response to a step (50→150 cm/s), s.
    pub response_s: Option<f64>,
}

/// E10 results.
#[derive(Debug, Clone)]
pub struct FilterResult {
    /// Points in decreasing corner order.
    pub points: Vec<FilterPoint>,
}

/// Runs E10.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<FilterResult, CoreError> {
    // Corners: effectively-unfiltered, 1 Hz, 0.5 Hz, the paper's 0.1 Hz.
    // (Fast mode caps the widest corner below its lower control Nyquist.)
    let corners: &[f64] = match speed {
        Speed::Full => &[10.0, 1.0, 0.5, 0.1],
        Speed::Fast => &[10.0, 1.0, 0.5, 0.2],
    };
    // A corner at f needs ≥ 5τ ≈ 0.8/f to settle and a window of many
    // correlation times to estimate σ honestly; the windows therefore differ
    // per corner and ride along next to each spec.
    let windows: Vec<(f64, f64)> = corners
        .iter()
        .map(|&corner| {
            (
                speed.seconds(10.0).max(1.0 / corner),
                speed.seconds(40.0).max(4.0 / corner),
            )
        })
        .collect();
    let specs: Vec<RunSpec> = corners
        .iter()
        .zip(&windows)
        .enumerate()
        .map(|(i, (&corner, &(settle, window)))| {
            let config = FlowMeterConfig {
                output_filter: Hertz::new(corner),
                ..speed.config()
            };
            // Steady window for resolution, then a step for response.
            let scenario = Scenario {
                flow_cm_s: hotwire_rig::Schedule::new()
                    .then_hold(100.0, settle + window)
                    .then_hold(50.0, settle)
                    .then_hold(150.0, settle + window),
                ..Scenario::steady(0.0, settle + window + settle + settle + window)
            };
            // Resolution streams from the settled window and the step
            // response from a bounded series window — no stored trace.
            RunSpec::new(format!("filter-corner-{corner}Hz"), config, scenario, 0xE10)
                .with_calibration(Calibration::Field(super::calibration_recipe(speed, 0xE10)))
                .with_line_seed(0x1000 + i as u64)
                .with_windows(
                    Windows::settled(settle, window)
                        .with_series(settle + window + settle - 0.5, f64::INFINITY),
                )
                .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let outcomes = Campaign::new().run(&specs)?;
    let points = corners
        .iter()
        .zip(&outcomes)
        .map(|(&corner, outcome)| {
            let step = &outcome.reduced.series;
            FilterPoint {
                corner_hz: corner,
                resolution_cm_s: outcome.settled_std(),
                response_s: metrics::rise_time_split(&step.ts, &step.ys, 50.0, 150.0),
            }
        })
        .collect();
    Ok(FilterResult { points })
}

impl core::fmt::Display for FilterResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E10 / §4 — output-filter bandwidth ablation at 100 cm/s\n"
        )?;
        let mut t = Table::new(["corner [Hz]", "±σ [cm/s]", "±% FS", "10–90 % step [s]"]);
        for p in &self.points {
            t.row([
                format!("{}", p.corner_hz),
                format!("{:.2}", p.resolution_cm_s),
                format!("{:.3}", p.resolution_cm_s / 250.0 * 100.0),
                p.response_s
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: narrowing the IIR to 0.1 Hz \"improves the sensitivity\" — resolution\n\
             tightens monotonically as the corner falls, trading response time"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_filter_monotonic() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.points.len(), 4);
        let wide = r.points.first().unwrap();
        let narrow = r.points.last().unwrap();
        assert!(
            narrow.resolution_cm_s < wide.resolution_cm_s,
            "narrow ±{:.2} must beat wide ±{:.2}",
            narrow.resolution_cm_s,
            wide.resolution_cm_s
        );
        // And the response-time cost is real.
        if let (Some(rw), Some(rn)) = (wide.response_s, narrow.response_s) {
            assert!(rn > rw, "narrow response {rn} s vs wide {rw} s");
        }
    }
}
