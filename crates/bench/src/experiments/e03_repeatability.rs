//! E3 — Table I: repeatability (~±1 % FS).
//!
//! The line revisits the same setpoint interleaved with excursions to other
//! levels; repeatability is the half-spread of the settled means, % FS.

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::MafParams;
use hotwire_rig::scenario::{Scenario, Schedule};
use hotwire_rig::{metrics, Campaign, RecordPolicy, RunSpec, Windows};

/// E3 results.
#[derive(Debug, Clone)]
pub struct RepeatabilityResult {
    /// The revisited setpoint, cm/s.
    pub setpoint_cm_s: f64,
    /// Settled mean of each visit, cm/s.
    pub visit_means: Vec<f64>,
    /// Half-spread of the means, % FS.
    pub repeatability_pct_fs: f64,
}

/// Runs E3.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<RepeatabilityResult, CoreError> {
    let dwell = speed.seconds(12.0);
    let setpoint = 100.0;
    // Interleave the revisited setpoint with excursions across the range.
    let levels = [
        setpoint, 50.0, setpoint, 200.0, setpoint, 25.0, setpoint, 250.0, setpoint, 150.0, setpoint,
    ];
    let scenario = Scenario {
        flow_cm_s: Schedule::staircase(&levels, dwell),
        ..Scenario::steady(0.0, levels.len() as f64 * dwell)
    };
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xE3)?;
    // Every visit window is known up front, so the run streams one Welford
    // per visit and never stores a sample (MetricsOnly).
    let mut windows = Windows::none();
    for (k, &level) in levels.iter().enumerate() {
        if level != setpoint {
            continue;
        }
        let t0 = k as f64 * dwell + 0.7 * dwell;
        let t1 = (k + 1) as f64 * dwell;
        windows = windows.with_extra(t0, t1);
    }
    let spec = RunSpec::new("repeatability-staircase", speed.config(), scenario, 0xE3)
        .with_calibration(calibration)
        .with_sample_period(0.05)
        .with_windows(windows)
        .with_record(RecordPolicy::MetricsOnly);
    let outcomes = Campaign::new().run(&[spec])?;

    let visit_means: Vec<f64> = outcomes[0]
        .reduced
        .windows
        .iter()
        .filter(|stats| stats.count() > 0)
        .map(|stats| stats.mean())
        .collect();
    let repeatability_pct_fs = metrics::repeatability(&visit_means, 250.0) * 100.0;
    Ok(RepeatabilityResult {
        setpoint_cm_s: setpoint,
        visit_means,
        repeatability_pct_fs,
    })
}

impl core::fmt::Display for RepeatabilityResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E3 / Table I — repeatability at {} cm/s across {} interleaved visits\n",
            self.setpoint_cm_s,
            self.visit_means.len()
        )?;
        let mut t = Table::new(["visit", "settled mean [cm/s]"]);
        for (i, m) in self.visit_means.iter().enumerate() {
            t.row([format!("{}", i + 1), format!("{m:.2}")]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "repeatability: ±{:.2} % FS   (paper: roughly ±1 % FS)",
            self.repeatability_pct_fs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_repeatability_in_band() {
        let r = run(Speed::Fast).unwrap();
        assert!(r.visit_means.len() >= 5);
        assert!(
            r.repeatability_pct_fs < 4.0,
            "repeatability ±{:.2} % FS out of band",
            r.repeatability_pct_fs
        );
    }
}
