//! E6 — Fig. 8: CaCO₃ deposition and the passivation-layer defence.
//!
//! Two dies age in hard (30 °f) water under accelerated deposition
//! kinetics — one bare, one with the PECVD SiN passivation. Between aging
//! intervals each die measures a fixed 100 cm/s flow; the deposit's series
//! thermal resistance reads as a negative flow drift. A final months-scale
//! check at *realistic* kinetics reproduces the paper's "no deposit of
//! calcium carbonate" on the passivated prototype.

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::fouling::{FoulingParams, Passivation};
use hotwire_physics::sensor::HeaterId;
use hotwire_physics::{MafDie, MafParams, SensorEnvironment};
use hotwire_rig::Campaign;
use hotwire_units::Celsius;

/// One aging checkpoint for one die.
#[derive(Debug, Clone, Copy)]
pub struct FoulingCheckpoint {
    /// Accumulated aging time, hours.
    pub hours: f64,
    /// Deposit thickness, µm.
    pub thickness_um: f64,
    /// Measured flow at the fixed 100 cm/s true flow, cm/s.
    pub reading_cm_s: f64,
}

/// E6 results.
#[derive(Debug, Clone)]
pub struct FoulingResult {
    /// Checkpoints for the bare die.
    pub bare: Vec<FoulingCheckpoint>,
    /// Checkpoints for the passivated die.
    pub passivated: Vec<FoulingCheckpoint>,
    /// 90-day thickness at realistic kinetics, bare, µm.
    pub realistic_bare_um: f64,
    /// 90-day thickness at realistic kinetics, passivated, µm.
    pub realistic_passivated_um: f64,
}

fn aged_series(
    passivation: Passivation,
    speed: Speed,
    seed: u64,
) -> Result<Vec<FoulingCheckpoint>, CoreError> {
    let params = MafParams {
        passivation,
        fouling: FoulingParams::accelerated(),
        ..MafParams::nominal()
    };
    let mut meter = super::calibrated_meter_with(speed.config(), params, speed, seed)?;
    let env = SensorEnvironment {
        velocity: hotwire_units::MetersPerSecond::from_cm_per_s(122.0),
        ..SensorEnvironment::still_water()
    };
    let mut checkpoints = Vec::new();
    let mut hours = 0.0;
    let step_hours = 6.0;
    for _ in 0..8 {
        // Age: wall sits ~15 K over the 15 °C water while measuring.
        meter
            .die_mut()
            .age_surfaces(step_hours, Celsius::new(30.0), 0.0);
        hours += step_hours;
        let m = meter
            .run(speed.seconds(12.0), env)
            .expect("control loop ran");
        checkpoints.push(FoulingCheckpoint {
            hours,
            thickness_um: meter.die().fouling_thickness_um(HeaterId::A),
            reading_cm_s: m.speed.to_cm_per_s(),
        });
    }
    Ok(checkpoints)
}

/// Runs E6.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<FoulingResult, CoreError> {
    // Each die's aging is inherently serial (state accumulates between
    // checkpoints), but the two dies are independent — run them as one
    // campaign job each.
    let variants = [Passivation::Bare, Passivation::SiliconNitride];
    let mut series = Campaign::new()
        .map(&variants, |_, &passivation| {
            aged_series(passivation, speed, 0xE6)
        })
        .into_iter();
    let bare = series.next().expect("bare series")?;
    let passivated = series.next().expect("passivated series")?;

    // Months-scale check at realistic kinetics (pure aging, no electronics).
    let realistic = |p: Passivation| {
        let params = MafParams {
            passivation: p,
            fouling: FoulingParams::potable_defaults(),
            ..MafParams::nominal()
        };
        let mut die = MafDie::in_potable_water(params);
        die.age_surfaces(24.0 * 90.0, Celsius::new(30.0), 0.0);
        die.fouling_thickness_um(HeaterId::A)
    };
    Ok(FoulingResult {
        bare,
        passivated,
        realistic_bare_um: realistic(Passivation::Bare),
        realistic_passivated_um: realistic(Passivation::SiliconNitride),
    })
}

impl core::fmt::Display for FoulingResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E6 / Fig. 8 — CaCO₃ deposition (accelerated kinetics, 100 cm/s reference reading)\n"
        )?;
        let mut t = Table::new([
            "aged [h]",
            "bare δ [µm]",
            "bare reading",
            "SiN δ [µm]",
            "SiN reading",
        ]);
        for (b, p) in self.bare.iter().zip(&self.passivated) {
            t.row([
                format!("{:.0}", b.hours),
                format!("{:.2}", b.thickness_um),
                format!("{:.1}", b.reading_cm_s),
                format!("{:.2}", p.thickness_um),
                format!("{:.1}", p.reading_cm_s),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "90 days at realistic potable-water kinetics: bare {:.1} µm, SiN-passivated {:.2} µm",
            self.realistic_bare_um, self.realistic_passivated_um
        )?;
        writeln!(
            f,
            "paper: Fig. 8 shows heavy deposit on unprotected surfaces; after months in the\n\
             station the passivated prototype showed \"no deposit of calcium carbonate\""
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fouling_contrast() {
        let r = run(Speed::Fast).unwrap();
        let bare_final = r.bare.last().unwrap();
        let sin_final = r.passivated.last().unwrap();
        assert!(
            bare_final.thickness_um > 10.0 * sin_final.thickness_um.max(1e-9),
            "bare {} µm vs SiN {} µm",
            bare_final.thickness_um,
            sin_final.thickness_um
        );
        // The bare die's reading drifts low as the scale insulates it.
        let bare_first = r.bare.first().unwrap();
        assert!(
            bare_final.reading_cm_s < bare_first.reading_cm_s,
            "bare reading should drift down: {} → {}",
            bare_first.reading_cm_s,
            bare_final.reading_cm_s
        );
        // Realistic kinetics: the paper's "no deposit" claim.
        assert!(r.realistic_passivated_um < 0.5);
        assert!(r.realistic_bare_um > 2.0);
    }
}
