//! E5 — Fig. 7: bubble generation on the heaters, and the pulsed-drive fix.
//!
//! Three drives at the same 100 cm/s flow in 1 bar air-saturated water:
//!
//! 1. continuous, 40 K overheat — the naive air-style port; wall ≈ 55 °C,
//!    far above the ~40 °C outgassing onset → bubbles blanket the heater;
//! 2. continuous, 15 K overheat — wall ≈ 30 °C, below onset;
//! 3. pulsed (25 % duty) at 40 K — above onset only transiently, bubbles
//!    dissolve between pulses.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_physics::sensor::HeaterId;
use hotwire_rig::campaign::{Calibration, RunOutcome};
use hotwire_rig::{Campaign, RecordPolicy, RunSpec, Scenario, Windows};

/// One drive's outcome.
#[derive(Debug, Clone)]
pub struct BubbleCase {
    /// Case label.
    pub label: &'static str,
    /// Peak bubble coverage reached, 0..=1.
    pub peak_coverage: f64,
    /// Final bubble coverage, 0..=1.
    pub final_coverage: f64,
    /// Detachment events (signal spikes) observed.
    pub detachments: u64,
    /// RMS flow error over the second half of the run, cm/s.
    pub rms_error_cm_s: f64,
    /// Whether the firmware's bubble-activity flag latched.
    pub flagged: bool,
}

/// E5 results.
#[derive(Debug, Clone)]
pub struct BubbleResult {
    /// The three cases: naive, reduced-overheat, pulsed.
    pub cases: Vec<BubbleCase>,
    /// Run length, s.
    pub duration_s: f64,
}

fn reduce_case(label: &'static str, outcome: &RunOutcome) -> BubbleCase {
    // Every trace-derived statistic streamed during the run (peak
    // coverage, second-half RMS error); the rest reads meter state.
    let meter = outcome
        .meter
        .as_cta()
        .expect("e05 runs CTA specs exclusively");
    BubbleCase {
        label,
        peak_coverage: outcome.reduced.bubble_peak,
        final_coverage: meter
            .die()
            .bubble_coverage(HeaterId::A)
            .max(meter.die().bubble_coverage(HeaterId::B)),
        detachments: meter.die().detachment_count(HeaterId::A)
            + meter.die().detachment_count(HeaterId::B),
        rms_error_cm_s: outcome.reduced.err_rms(),
        flagged: meter.fault_latch().bubble_activity,
    }
}

/// Runs E5. The three drives execute as one campaign, each calibrating its
/// own configuration.
///
/// # Errors
///
/// Returns [`CoreError`] if any meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<BubbleResult, CoreError> {
    let duration = speed.seconds(90.0);
    let base = speed.config();
    let naive = FlowMeterConfig {
        overheat: hotwire_units::KelvinDelta::new(40.0),
        ..base
    };
    let reduced = base;
    let pulsed = FlowMeterConfig {
        overheat: hotwire_units::KelvinDelta::new(40.0),
        pulsed: Some(hotwire_core::config::PulsedConfig {
            period_ticks: 100,
            duty: 0.25,
        }),
        ..base
    };
    let labels = [
        "continuous, 40 K (naive)",
        "continuous, 15 K (reduced)",
        "pulsed 25 %, 40 K",
    ];
    let specs: Vec<RunSpec> = [naive, reduced, pulsed]
        .into_iter()
        .zip(labels)
        .map(|(config, label)| {
            RunSpec::new(label, config, Scenario::steady(100.0, duration), 0xE5)
                .with_calibration(Calibration::Field(super::calibration_recipe(speed, 0xE5)))
                .with_sample_period(0.1)
                .with_windows(Windows::none().with_err(duration / 2.0, f64::INFINITY))
                .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let outcomes = Campaign::new().run(&specs)?;
    Ok(BubbleResult {
        cases: labels
            .iter()
            .zip(&outcomes)
            .map(|(&label, outcome)| reduce_case(label, outcome))
            .collect(),
        duration_s: duration,
    })
}

impl core::fmt::Display for BubbleResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E5 / Fig. 7 — bubble generation vs drive scheme ({} s at 100 cm/s, 1 bar)\n",
            self.duration_s
        )?;
        let mut t = Table::new([
            "drive",
            "peak coverage",
            "final coverage",
            "detach events",
            "rms error [cm/s]",
            "flagged",
        ]);
        for c in &self.cases {
            t.row([
                c.label.to_string(),
                format!("{:.3}", c.peak_coverage),
                format!("{:.3}", c.final_coverage),
                format!("{}", c.detachments),
                format!("{:.2}", c.rms_error_cm_s),
                format!("{}", c.flagged),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: continuous biasing grows bubbles that invalidate the measurement (Fig. 7);\n\
             pulsed driving + reduced overheat keeps the surface clean"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bubble_ordering() {
        let r = run(Speed::Fast).unwrap();
        let naive = &r.cases[0];
        let reduced = &r.cases[1];
        let pulsed = &r.cases[2];
        assert!(
            naive.peak_coverage > 0.05,
            "naive drive grew no bubbles: {}",
            naive.peak_coverage
        );
        assert!(
            reduced.peak_coverage < 0.02,
            "reduced overheat should stay clean: {}",
            reduced.peak_coverage
        );
        assert!(
            pulsed.peak_coverage < 0.5 * naive.peak_coverage.max(1e-9),
            "pulsed {} vs naive {}",
            pulsed.peak_coverage,
            naive.peak_coverage
        );
    }
}
