//! A2 — ablation: decimation ratio (control rate vs quantization noise).
//!
//! The ΣΔ + CIC chain trades bandwidth for resolution: decimating harder
//! yields more effective bits per control sample but a slower loop. The
//! silicon default (R = 256 → 1 kHz control at 256 kHz modulator) sits where
//! extra bits stop mattering because turbulence dominates.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_rig::campaign::Calibration;
use hotwire_rig::{Campaign, RecordPolicy, RunSpec, Scenario};

/// One decimation setting's outcome.
#[derive(Debug, Clone, Copy)]
pub struct DecimationPoint {
    /// Decimation ratio R.
    pub ratio: u32,
    /// Control rate, Hz.
    pub control_rate_hz: f64,
    /// ±σ at the 100 cm/s hold, cm/s.
    pub resolution_cm_s: f64,
    /// Settled mean error vs truth, cm/s.
    pub bias_cm_s: f64,
}

/// A2 results.
#[derive(Debug, Clone)]
pub struct DecimationResult {
    /// Points in increasing-R order.
    pub points: Vec<DecimationPoint>,
}

/// Runs A2.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<DecimationResult, CoreError> {
    let ratios: &[u32] = &[64, 128, 256, 512];
    let hold = speed.seconds(40.0);
    let base = speed.config();
    let specs: Vec<RunSpec> = ratios
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            // Keep the output filter realizable at every control rate.
            let control_rate = base.modulator_rate.get() / ratio as f64;
            let config = FlowMeterConfig {
                decimation: ratio,
                output_filter: hotwire_units::Hertz::new(
                    base.output_filter.get().min(control_rate / 8.0),
                ),
                ..base
            };
            // Stretch the calibration windows with R so each setpoint
            // settles/averages over as many control samples as at the
            // baseline ratio.
            let cal_scale = ratio as f64 / base.decimation as f64;
            RunSpec::new(
                format!("decimation-{ratio}"),
                config,
                Scenario::steady(100.0, hold),
                0xA2,
            )
            .with_calibration(Calibration::Field(super::calibration_recipe_scaled(
                speed, 0xA2, cal_scale,
            )))
            .with_line_seed(0xB700 + i as u64)
            .with_windows((hold * 0.4, hold * 0.6))
            .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let outcomes = Campaign::new().run(&specs)?;
    Ok(DecimationResult {
        points: ratios
            .iter()
            .zip(&outcomes)
            .map(|(&ratio, outcome)| DecimationPoint {
                ratio,
                control_rate_hz: base.modulator_rate.get() / ratio as f64,
                resolution_cm_s: outcome.settled_std(),
                bias_cm_s: outcome.settled_mean() - 100.0,
            })
            .collect(),
    })
}

impl core::fmt::Display for DecimationResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "A2 — decimation-ratio ablation at 100 cm/s\n")?;
        let mut t = Table::new(["R", "control rate [Hz]", "±σ [cm/s]", "bias [cm/s]"]);
        for p in &self.points {
            t.row([
                format!("{}", p.ratio),
                format!("{:.0}", p.control_rate_hz),
                format!("{:.2}", p.resolution_cm_s),
                format!("{:+.2}", p.bias_cm_s),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "above the silicon default (R = 256) the extra effective bits vanish under the\n\
             turbulence floor; below it, quantization begins to show"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_decimation_sweep_is_sane() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert!(
                p.bias_cm_s.abs() < 15.0,
                "R={} biased by {:.1} cm/s",
                p.ratio,
                p.bias_cm_s
            );
            assert!(p.resolution_cm_s < 15.0);
        }
    }
}
