//! One module per reproduced table/figure. See `DESIGN.md` §4.

pub mod a01_pi_gains;
pub mod a02_decimation;
pub mod a03_probe_position;
pub mod e01_staircase;
pub mod e02_resolution;
pub mod e03_repeatability;
pub mod e04_direction;
pub mod e05_bubbles;
pub mod e06_fouling;
pub mod e07_pressure;
pub mod e08_comparison;
pub mod e09_kings_law;
pub mod e10_filter;
pub mod e11_power;
pub mod e12_modes;
pub mod f1_faults;
pub mod f2_fleet;
pub mod f3_ingest;
pub mod f4_maintenance;
pub mod m1_modality;

use hotwire_core::config::FlowMeterConfig;
use hotwire_core::{CoreError, FlowMeter};
use hotwire_physics::MafParams;
use hotwire_rig::campaign::{self, Calibration, FieldCalibration};
use hotwire_rig::exec;

/// Experiment fidelity: `Full` reproduces the paper's silicon rates and
/// dwell times; `Fast` runs the same code at the reduced test profile for
/// CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speed {
    /// Reduced rates/durations (CI).
    Fast,
    /// Paper-fidelity rates/durations.
    Full,
}

impl Speed {
    /// The firmware configuration for this fidelity.
    pub fn config(self) -> FlowMeterConfig {
        match self {
            Speed::Fast => FlowMeterConfig::test_profile(),
            Speed::Full => FlowMeterConfig::water_station(),
        }
    }

    /// Scales a full-fidelity duration down for fast runs.
    pub fn seconds(self, full: f64) -> f64 {
        match self {
            Speed::Fast => (full / 8.0).max(0.5),
            Speed::Full => full,
        }
    }
}

/// The field-calibration recipe every experiment shares: the paper's
/// setpoint grid at this fidelity's settle/average windows, with the
/// conventional `seed ^ 0xCAFE` calibration-line seed.
pub fn calibration_recipe(speed: Speed, seed: u64) -> FieldCalibration {
    FieldCalibration::paper(speed.seconds(1.5), speed.seconds(0.5), seed ^ 0xCAFE)
}

/// [`calibration_recipe`] with the settle/average windows stretched by
/// `scale` (clamped to ≥ 1) — for specs whose closed loop is slower than
/// the fidelity baseline (heavier decimation, lower PI gains). The windows
/// are wall-clock seconds, so without stretching, a loop running at 1/8 the
/// baseline control rate would settle and average over 1/8 as many control
/// samples, and the King-law fit degrades into seed-sensitive garbage; a
/// field engineer would likewise wait longer per setpoint on a slower
/// meter. Scaling keeps the control-sample count per calibration point
/// invariant across the swept design space.
pub fn calibration_recipe_scaled(speed: Speed, seed: u64, scale: f64) -> FieldCalibration {
    let scale = scale.max(1.0);
    let mut recipe = calibration_recipe(speed, seed);
    recipe.settle_s *= scale;
    recipe.average_s *= scale;
    recipe
}

/// Runs the field-calibration procedure once (setpoints in parallel, up to
/// the process default job count) and packages the result as a reusable
/// [`Calibration::Points`] — the cheap path when several [`RunSpec`]s share
/// one meter build.
///
/// [`RunSpec`]: hotwire_rig::RunSpec
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or a setpoint fails.
pub fn shared_calibration(
    config: FlowMeterConfig,
    params: MafParams,
    speed: Speed,
    seed: u64,
) -> Result<Calibration, CoreError> {
    shared_calibration_with(config, params, seed, calibration_recipe(speed, seed))
}

/// [`shared_calibration`] with an explicit recipe (custom setpoint grids,
/// e.g. the King's-law study).
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or a setpoint fails.
pub fn shared_calibration_with(
    config: FlowMeterConfig,
    params: MafParams,
    meter_seed: u64,
    recipe: FieldCalibration,
) -> Result<Calibration, CoreError> {
    let prototype = FlowMeter::new(config, params, meter_seed)?;
    let (points, estimate) =
        campaign::collect_calibration_points(&prototype, &recipe, exec::default_jobs())?;
    Ok(Calibration::Points {
        points,
        fluid_estimate: Some(estimate),
    })
}

/// Builds a field-calibrated meter — the common starting point of most
/// experiments (the paper calibrated against the Promag 50 before
/// evaluating).
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn calibrated_meter(speed: Speed, seed: u64) -> Result<FlowMeter, CoreError> {
    calibrated_meter_with(speed.config(), MafParams::nominal(), speed, seed)
}

/// Builds a field-calibrated meter from explicit configuration and die
/// parameters. The calibration setpoints run as a (parallel) campaign; the
/// result is identical to the historical serial procedure on replicas.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn calibrated_meter_with(
    config: FlowMeterConfig,
    params: MafParams,
    speed: Speed,
    seed: u64,
) -> Result<FlowMeter, CoreError> {
    let calibration = shared_calibration(config, params, speed, seed)?;
    campaign::build_meter(config, params, seed, &calibration)
}
