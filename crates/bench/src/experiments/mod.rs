//! One module per reproduced table/figure. See `DESIGN.md` §4.

pub mod a01_pi_gains;
pub mod a02_decimation;
pub mod a03_probe_position;
pub mod e01_staircase;
pub mod e02_resolution;
pub mod e03_repeatability;
pub mod e04_direction;
pub mod e05_bubbles;
pub mod e06_fouling;
pub mod e07_pressure;
pub mod e08_comparison;
pub mod e09_kings_law;
pub mod e10_filter;
pub mod e11_power;
pub mod e12_modes;

use hotwire_core::config::FlowMeterConfig;
use hotwire_core::{CoreError, FlowMeter};
use hotwire_physics::MafParams;
use hotwire_rig::runner::field_calibrate;

/// Experiment fidelity: `Full` reproduces the paper's silicon rates and
/// dwell times; `Fast` runs the same code at the reduced test profile for
/// CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speed {
    /// Reduced rates/durations (CI).
    Fast,
    /// Paper-fidelity rates/durations.
    Full,
}

impl Speed {
    /// The firmware configuration for this fidelity.
    pub fn config(self) -> FlowMeterConfig {
        match self {
            Speed::Fast => FlowMeterConfig::test_profile(),
            Speed::Full => FlowMeterConfig::water_station(),
        }
    }

    /// Scales a full-fidelity duration down for fast runs.
    pub fn seconds(self, full: f64) -> f64 {
        match self {
            Speed::Fast => (full / 8.0).max(0.5),
            Speed::Full => full,
        }
    }
}

/// Builds a field-calibrated meter — the common starting point of most
/// experiments (the paper calibrated against the Promag 50 before
/// evaluating).
pub fn calibrated_meter(speed: Speed, seed: u64) -> Result<FlowMeter, CoreError> {
    calibrated_meter_with(speed.config(), MafParams::nominal(), speed, seed)
}

/// Builds a field-calibrated meter from explicit configuration and die
/// parameters.
pub fn calibrated_meter_with(
    config: FlowMeterConfig,
    params: MafParams,
    speed: Speed,
    seed: u64,
) -> Result<FlowMeter, CoreError> {
    let mut meter = FlowMeter::new(config, params, seed)?;
    field_calibrate(
        &mut meter,
        &[15.0, 50.0, 100.0, 160.0, 220.0],
        speed.seconds(1.5),
        speed.seconds(0.5),
        seed ^ 0xCAFE,
    )?;
    Ok(meter)
}
