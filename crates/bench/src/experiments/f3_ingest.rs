//! F3 — telemetry ingest: detection fidelity of the monitoring backend.
//!
//! §6's deployment story has probes "widely diffused all over the water
//! distribution channels" reporting to the network operator, who must spot
//! "any malfunction behavior" *from the reported signal alone*. This
//! experiment runs that service side end to end: a fleet of seed-diverse
//! lines — every third carrying an ADC-stuck fault **and** a noisy UART
//! window — has its framed telemetry captured from the wire, reassembled
//! by [`hotwire_rig::ingest`] per-meter sessions, and condensed into a
//! health census plus alert stream. Because the simulator also knows the
//! ground-truth `HealthMonitor` state of each line, the experiment scores
//! the operator's view against the truth:
//!
//! * **detection fidelity** — the fraction of lines the wire-derived
//!   census classifies (healthy vs not) exactly as the firmware does,
//! * **delivery** — frames decoded vs frames sent through the corrupt
//!   link, and how many records the tick-gap detector inferred lost,
//! * **alerting** — health-transition and tick-gap alerts raised purely
//!   from wire records.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_rig::exec;
use hotwire_rig::fault::{FaultKind, FaultSchedule};
use hotwire_rig::fleet::{FleetSpec, LineVariation};
use hotwire_rig::ingest::{ingest_fleet, IngestConfig, IngestReport};
use hotwire_rig::{Scenario, Windows};

/// Steady demand each line's jittered schedule derives from, cm/s.
const FLOW_CM_S: f64 = 100.0;
/// Per-line flow-demand jitter fraction.
const FLOW_JITTER: f64 = 0.05;
/// ADC fault onset, scenario seconds (clears the 3 s health warmup).
const ONSET_S: f64 = 4.0;
/// Active ADC fault window, seconds.
const WINDOW_S: f64 = 1.5;
/// Every `FAULT_STRIDE`-th line carries the fault schedule.
const FAULT_STRIDE: usize = 3;
/// Per-byte bit-flip probability during the UART corruption window.
const FLIP_PER_BYTE: f64 = 0.02;
/// Per-byte drop probability during the UART corruption window.
const DROP_PER_BYTE: f64 = 0.02;

/// F3 results: the merged ingest report plus the scale it ran at.
#[derive(Debug)]
pub struct IngestResult {
    /// The merged fleet ingest report.
    pub report: IngestReport,
    /// Scenario seconds per line.
    pub duration_s: f64,
}

/// The fleet template at a given scale: every `FAULT_STRIDE`-th line gets
/// an ADC-stuck fault *and* a full-run UART corruption window, so the
/// ingest service must recognize unhealthy lines through a degraded link.
/// Public so `ingest_bench` and the determinism tests exercise exactly the
/// experiment's population.
pub fn fleet_spec(lines: usize, duration_s: f64) -> FleetSpec {
    FleetSpec::new(
        "f3-ingest",
        FlowMeterConfig::test_profile(),
        Scenario::steady(FLOW_CM_S, duration_s),
        0xF3,
    )
    .with_lines(lines)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(1.0, 2.5).with_err(1.0, f64::INFINITY))
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(FLOW_JITTER)
            .with_faults_every(
                FAULT_STRIDE,
                1,
                FaultSchedule::new(0)
                    .with_event(ONSET_S, WINDOW_S, FaultKind::AdcStuck { code: 1200 })
                    .with_event(
                        0.0,
                        duration_s,
                        FaultKind::UartCorruption {
                            flip_per_byte: FLIP_PER_BYTE,
                            drop_per_byte: DROP_PER_BYTE,
                        },
                    ),
            ),
    )
}

/// The fleet scale at each fidelity: `(lines, scenario seconds)`.
pub fn scale(speed: Speed) -> (usize, f64) {
    match speed {
        Speed::Fast => (48, 6.0),
        Speed::Full => (512, 8.0),
    }
}

/// Runs F3 with the process-default job count.
///
/// # Errors
///
/// Returns [`CoreError`] if any line cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<IngestResult, CoreError> {
    run_jobs(speed, exec::default_jobs())
}

/// [`run`] with an explicit job count (`1` = serial) — the determinism
/// tests compare the merged report across job counts.
///
/// # Errors
///
/// Returns [`CoreError`] if any line cannot be built or calibrated.
pub fn run_jobs(speed: Speed, jobs: usize) -> Result<IngestResult, CoreError> {
    let (lines, duration_s) = scale(speed);
    let spec = fleet_spec(lines, duration_s);
    let config = IngestConfig::for_fleet(&spec);
    let report = ingest_fleet(&spec, &config, jobs)?;
    Ok(IngestResult { report, duration_s })
}

impl core::fmt::Display for IngestResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let r = &self.report;
        let s = &r.stats;
        writeln!(
            f,
            "F3 / §6 — telemetry ingest: {} lines × {} s, ADC-stuck + {:.0} %/byte UART noise\n\
             on every {}rd line; operator census derived purely from wire records\n",
            r.lines,
            self.duration_s,
            FLIP_PER_BYTE * 100.0,
            FAULT_STRIDE
        )?;
        let mut t = Table::new(["ingest statistic", "value"]);
        t.row(["frames sent".to_string(), r.frames_sent.to_string()]);
        t.row(["records decoded".to_string(), s.records.records.to_string()]);
        t.row([
            "delivery ratio".to_string(),
            format!("{:.4}", r.delivery_ratio()),
        ]);
        t.row(["crc errors".to_string(), s.link.crc_errors.to_string()]);
        t.row([
            "frames recovered by re-hunt".to_string(),
            s.link.recovered_frames.to_string(),
        ]);
        t.row([
            "records inferred lost".to_string(),
            s.records_lost.to_string(),
        ]);
        t.row([
            "health transitions seen".to_string(),
            s.health_transitions.to_string(),
        ]);
        t.row(["alerts raised".to_string(), s.alerts_raised.to_string()]);
        writeln!(f, "{t}")?;
        let fid = &r.fidelity;
        writeln!(
            f,
            "detection fidelity: {:.4} ({} TP / {} TN / {} FP / {} FN over {} lines, \
             {} silent)",
            fid.detection_accuracy(),
            fid.true_positives,
            fid.true_negatives,
            fid.false_positives,
            fid.false_negatives,
            fid.lines,
            r.lines_silent
        )?;
        writeln!(
            f,
            "census (wire vs truth): healthy {}/{}, degraded {}/{}, faulted {}/{}, recovering {}/{}",
            r.census.counts[0],
            r.truth.counts[0],
            r.census.counts[1],
            r.truth.counts[1],
            r.census.counts[2],
            r.truth.counts[2],
            r.census.counts[3],
            r.truth.counts[3]
        )?;
        writeln!(
            f,
            "\npaper: §6 claims malfunctions can be \"immediately localized and isolated\" by the\n\
             operator — this scores how well that works when the only evidence is the wire"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ingest_fidelity_sane() {
        let r = run(Speed::Fast).unwrap();
        let (lines, _) = scale(Speed::Fast);
        let rep = &r.report;
        assert_eq!(rep.lines, lines);
        assert_eq!(rep.fidelity.lines, lines as u64);

        // Telemetry flowed on every line and mostly survived the link.
        assert!(rep.frames_sent > 0);
        assert!(rep.stats.records.records > 0);
        assert_eq!(rep.lines_silent, 0, "every line must deliver some records");
        assert!(
            rep.delivery_ratio() > 0.8,
            "delivery ratio {:.3}",
            rep.delivery_ratio()
        );

        // The corrupt link actually bit, and the re-hunt recovered frames
        // that a discard-on-mismatch decoder would have swallowed.
        assert!(rep.stats.link.crc_errors > 0);

        // The faulted lines go non-healthy in truth, and the wire census
        // sees enough of it: fidelity well above a coin flip.
        assert!(rep.truth.counts[1] + rep.truth.counts[2] + rep.truth.counts[3] > 0);
        assert!(
            rep.fidelity.detection_accuracy() > 0.9,
            "detection accuracy {:.3}",
            rep.fidelity.detection_accuracy()
        );
        assert!(rep.stats.health_transitions > 0);
        assert!(rep.stats.alerts_raised > 0);
    }
}
