//! E2 — Table I: resolution across the measuring range.
//!
//! Paper: "the resolution is in the range of ±0.75 cm/s to ±4 cm/s
//! (worst-case) that is ±0.35 % up to ±1.76 % with repeatability roughly
//! ±1 % respect to the full scale (0–250 cm/s)."
//!
//! We hold each setpoint, let the 0.1 Hz output settle, and report ±σ of the
//! conditioned output. The expected *shape*: resolution degrades toward high
//! flow, because turbulence scales with velocity and King's-law sensitivity
//! compresses as `dU/dv ∝ v^(n−1)`.

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::MafParams;
use hotwire_rig::{Campaign, RecordPolicy, RunSpec, Scenario};

/// Resolution at one operating point.
#[derive(Debug, Clone, Copy)]
pub struct ResolutionPoint {
    /// True flow, cm/s.
    pub flow_cm_s: f64,
    /// ±σ resolution, cm/s.
    pub resolution_cm_s: f64,
    /// The same, % of the 250 cm/s full scale.
    pub resolution_pct_fs: f64,
}

/// E2 results.
#[derive(Debug, Clone)]
pub struct ResolutionResult {
    /// Per-setpoint resolutions, ascending flow.
    pub points: Vec<ResolutionPoint>,
    /// Averaging window, s.
    pub window_s: f64,
}

impl ResolutionResult {
    /// Best (smallest) resolution in cm/s.
    pub fn best_cm_s(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.resolution_cm_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst (largest) resolution in cm/s.
    pub fn worst_cm_s(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.resolution_cm_s)
            .fold(0.0, f64::max)
    }
}

/// Runs E2.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<ResolutionResult, CoreError> {
    let settle = speed.seconds(8.0);
    let window = speed.seconds(40.0);
    // One field calibration, shared by every setpoint's meter replica; the
    // setpoints then run as a parallel campaign.
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xE2)?;
    let flows = [10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0];
    let specs: Vec<RunSpec> = flows
        .iter()
        .enumerate()
        .map(|(i, &flow)| {
            RunSpec::new(
                format!("{flow} cm/s"),
                speed.config(),
                Scenario::steady(flow, settle + window),
                0xE2,
            )
            .with_line_seed(0x2000 + i as u64)
            .with_calibration(calibration.clone())
            .with_windows((settle, window))
            // Pure sweep: the ±σ comes from the streaming settled window,
            // so no raw samples need to be held at all.
            .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let points = Campaign::new()
        .run(&specs)?
        .iter()
        .zip(&flows)
        .map(|(outcome, &flow)| {
            let sigma = outcome.settled_std();
            ResolutionPoint {
                flow_cm_s: flow,
                resolution_cm_s: sigma,
                resolution_pct_fs: sigma / 250.0 * 100.0,
            }
        })
        .collect();
    Ok(ResolutionResult {
        points,
        window_s: window,
    })
}

impl core::fmt::Display for ResolutionResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E2 / Table I — resolution across the range ({} s windows)\n",
            self.window_s
        )?;
        let mut t = Table::new(["flow [cm/s]", "±σ [cm/s]", "±% FS"]);
        for p in &self.points {
            t.row([
                format!("{:.0}", p.flow_cm_s),
                format!("{:.2}", p.resolution_cm_s),
                format!("{:.3}", p.resolution_pct_fs),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "measured span: ±{:.2} … ±{:.2} cm/s",
            self.best_cm_s(),
            self.worst_cm_s()
        )?;
        writeln!(
            f,
            "paper: ±0.75 … ±4 cm/s (±0.35 % … ±1.76 % FS), degrading toward high flow"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_resolution_shape() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.points.len(), 7);
        // The headline shape: resolution at full scale is clearly worse
        // than at low flow.
        let low = r.points[1].resolution_cm_s; // 25 cm/s
        let high = r.points[6].resolution_cm_s; // 250 cm/s
        assert!(
            high > low,
            "resolution must degrade toward high flow: low ±{low:.2}, high ±{high:.2}"
        );
        // And the magnitudes stay in a plausible band around the paper's.
        assert!(r.worst_cm_s() < 15.0, "worst ±{:.2}", r.worst_cm_s());
    }
}
