//! E1 — Fig. 11: the water-speed evaluation staircase.
//!
//! A calibrated MEMS probe rides a 0 → 250 → 0 cm/s staircase alongside the
//! Promag 50 reference; the figure's content is the two series tracking the
//! true flow. We reproduce the series and summarize tracking error over the
//! settled tail of each dwell.

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::MafParams;
use hotwire_rig::{metrics, Campaign, RunSpec, Scenario, Trace};

/// E1 results.
#[derive(Debug, Clone)]
pub struct StaircaseResult {
    /// Sampled co-simulation trace (1 s cadence).
    pub trace: Trace,
    /// RMS tracking error of the MEMS probe over settled windows, cm/s.
    pub dut_rms_cm_s: f64,
    /// RMS tracking error of the Promag 50 over the same windows, cm/s.
    pub promag_rms_cm_s: f64,
    /// Worst linearity deviation of the MEMS probe, % FS.
    pub linearity_pct_fs: f64,
    /// Worst up-vs-down matched-level difference, % FS.
    pub hysteresis_pct_fs: f64,
    /// Dwell time per staircase level, s.
    pub dwell_s: f64,
}

/// Runs E1.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<StaircaseResult, CoreError> {
    let dwell = speed.seconds(8.0);
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xE1)?;
    let spec = RunSpec::new(
        "fig11-staircase",
        speed.config(),
        Scenario::fig11_staircase(dwell),
        0xE1,
    )
    .with_calibration(calibration)
    .with_sample_period(dwell / 8.0);
    let outcomes = Campaign::new().run(&[spec])?;
    let trace = outcomes.into_iter().next().expect("one spec").trace;

    // Settled tail: the last 30 % of each dwell. The staircase rises for
    // the first 7 levels and falls afterwards, which also yields the
    // up-vs-down hysteresis comparison at the shared levels.
    let mut settled_pairs_dut = Vec::new();
    let mut settled_pairs_promag = Vec::new();
    let mut level_means: std::collections::BTreeMap<(u64, bool), (f64, u32)> =
        std::collections::BTreeMap::new();
    let rising_levels = 7.0;
    for s in &trace.samples {
        let phase = (s.t / dwell).fract();
        if phase > 0.7 {
            settled_pairs_dut.push((s.true_cm_s, s.dut_cm_s));
            settled_pairs_promag.push((s.true_cm_s, s.promag_cm_s));
            let rising = s.t / dwell < rising_levels;
            let key = ((s.true_cm_s * 10.0).round() as u64, rising);
            let e = level_means.entry(key).or_insert((0.0, 0));
            e.0 += s.dut_cm_s;
            e.1 += 1;
        }
    }
    let series = |rising: bool| -> Vec<(f64, f64)> {
        level_means
            .iter()
            .filter(|((_, r), _)| *r == rising)
            .map(|((lvl, _), (sum, n))| (*lvl as f64 / 10.0, sum / *n as f64))
            .collect()
    };
    let hysteresis_pct_fs = metrics::hysteresis(&series(true), &series(false), 250.0) * 100.0;
    Ok(StaircaseResult {
        dut_rms_cm_s: metrics::rms_error(&settled_pairs_dut),
        promag_rms_cm_s: metrics::rms_error(&settled_pairs_promag),
        linearity_pct_fs: metrics::linearity(&settled_pairs_dut, 250.0) * 100.0,
        hysteresis_pct_fs,
        trace,
        dwell_s: dwell,
    })
}

impl core::fmt::Display for StaircaseResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E1 / Fig. 11 — water-speed evaluation (staircase, {} s per level)\n",
            self.dwell_s
        )?;
        let mut t = Table::new([
            "t [s]",
            "true [cm/s]",
            "MEMS [cm/s]",
            "Promag [cm/s]",
            "turbine [cm/s]",
        ]);
        for s in &self.trace.samples {
            t.row([
                format!("{:.1}", s.t),
                format!("{:.1}", s.true_cm_s),
                format!("{:.1}", s.dut_cm_s),
                format!("{:.1}", s.promag_cm_s),
                format!("{:.1}", s.turbine_cm_s),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "settled tracking error: MEMS {:.2} cm/s rms, Promag {:.2} cm/s rms",
            self.dut_rms_cm_s, self.promag_rms_cm_s
        )?;
        writeln!(
            f,
            "MEMS worst linearity deviation: {:.2} % FS; up-vs-down hysteresis: {:.2} % FS",
            self.linearity_pct_fs, self.hysteresis_pct_fs
        )?;
        writeln!(
            f,
            "paper: Fig. 11 shows the MEMS output tracking the staircase over 0–250 cm/s"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_staircase_tracks() {
        let r = run(Speed::Fast).unwrap();
        assert!(!r.trace.samples.is_empty());
        assert!(
            r.dut_rms_cm_s < 20.0,
            "settled rms {} cm/s too large",
            r.dut_rms_cm_s
        );
        // Promag is the better instrument, but the MEMS tracks the shape.
        assert!(r.promag_rms_cm_s < r.dut_rms_cm_s + 5.0);
        let text = r.to_string();
        assert!(text.contains("Fig. 11"));
    }
}
