//! F1 — fault-injection campaign: graceful degradation under a seeded
//! fault matrix.
//!
//! §6 of the paper argues for diffuse deployment precisely because a smart
//! probe can localize and isolate its own malfunctions. This experiment
//! quantifies that claim: each fault class from the rig's
//! [`FaultSchedule`] vocabulary is injected into its own steady-flow run,
//! and the firmware's health supervisor is scored on
//!
//! * **detection latency** — time from fault onset to the first reported
//!   non-`Healthy` health state;
//! * **worst-case flow error** — the largest |DUT − true| excursion while
//!   the fault is active (plus a short observation tail for impulses);
//! * **time-to-recover** — time from the end of the fault window until the
//!   health state settles back to `Healthy` for good.
//!
//! All runs execute as one campaign, so the whole matrix is bit-identical
//! at any `--jobs` value. Event times are *not* speed-scaled: the health
//! supervisor's warmup (3 s) and recovery holds are control-time
//! constants, so the schedule must clear them at either fidelity.

use super::Speed;
use crate::table::Table;
use hotwire_core::{CoreError, HealthState, KingCalibration};
use hotwire_rig::campaign::derive_seed;
use hotwire_rig::fault::{FaultKind, FaultSchedule};
use hotwire_rig::{Campaign, LineConfig, RunOutcome, RunSpec, Scenario};

/// Steady line speed every fault rides on, cm/s.
const FLOW_CM_S: f64 = 100.0;
/// Fault onset, scenario seconds (must clear the 3 s health warmup).
const ONSET_S: f64 = 4.0;
/// Scenario length, seconds.
const DURATION_S: f64 = 10.0;
/// Active window for sustained faults, seconds.
const WINDOW_S: f64 = 2.0;
/// Observation tail for impulse faults' worst-error window, seconds.
const IMPULSE_TAIL_S: f64 = 2.0;

/// One fault class's scorecard.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Fault-class label.
    pub label: &'static str,
    /// Time from onset to the first non-`Healthy` sample, s (NaN = never
    /// detected — expected for faults the supervisor cannot see, like a
    /// pure telemetry-link attack).
    pub detect_s: f64,
    /// Largest |DUT − true| while the fault was active, cm/s.
    pub worst_error_cm_s: f64,
    /// Time from the end of the fault window until health settles back to
    /// `Healthy`, s (NaN = not detected, or still unhealthy at run end).
    pub recover_s: f64,
    /// Telemetry frames lost on the simulated wire (UART faults only).
    pub frames_lost: u64,
}

/// F1 results.
#[derive(Debug, Clone)]
pub struct FaultMatrixResult {
    /// One scorecard per fault class.
    pub cases: Vec<FaultCase>,
    /// Fault onset time, s.
    pub onset_s: f64,
    /// Scenario length, s.
    pub duration_s: f64,
}

impl FaultMatrixResult {
    /// The scorecard with the given label (panics if absent — labels are
    /// static and covered by tests).
    pub fn case(&self, label: &str) -> &FaultCase {
        self.cases
            .iter()
            .find(|c| c.label == label)
            .expect("known fault-class label")
    }
}

/// The fault matrix: label, injected kind, active-window length.
fn matrix() -> Vec<(&'static str, FaultKind, f64)> {
    vec![
        ("adc stuck", FaultKind::AdcStuck { code: 1200 }, WINDOW_S),
        ("adc offset", FaultKind::AdcOffset { codes: 500 }, WINDOW_S),
        (
            "supply brownout",
            FaultKind::SupplyBrownout { fraction: 0.55 },
            WINDOW_S,
        ),
        (
            "dac element fail",
            FaultKind::DacElementFail { span_loss: 0.4 },
            WINDOW_S,
        ),
        (
            "eeprom bit flip",
            FaultKind::EepromBitFlip {
                slot: KingCalibration::EEPROM_SLOT,
                byte: 3,
            },
            0.0,
        ),
        (
            "uart corruption",
            FaultKind::UartCorruption {
                flip_per_byte: 0.05,
                drop_per_byte: 0.05,
            },
            WINDOW_S,
        ),
        (
            "bubble burst",
            FaultKind::BubbleBurst { coverage: 0.5 },
            0.0,
        ),
        (
            "stepped fouling",
            FaultKind::SteppedFouling { microns: 8.0 },
            0.0,
        ),
    ]
}

fn reduce_case(label: &'static str, window_s: f64, outcome: &RunOutcome) -> FaultCase {
    // Health scans read the dense health/time columns; the error scan zips
    // the dut/truth columns over a partition_point window.
    let store = &outcome.trace.samples;
    let fault_end = ONSET_S + window_s;
    let error_end = ONSET_S + window_s.max(IMPULSE_TAIL_S);

    let onset = store.ts().partition_point(|&t| t < ONSET_S);
    let detect_s = store.health()[onset..]
        .iter()
        .position(|&h| h != HealthState::Healthy)
        .map_or(f64::NAN, |i| store.ts()[onset + i] - ONSET_S);

    let worst_error_cm_s = store
        .window(ONSET_S, error_end)
        .map(|i| (store.dut()[i] - store.truth()[i]).abs())
        .fold(0.0, f64::max);

    // Recovery = the last unhealthy sample, measured from the end of the
    // fault window — provided the run actually ends healthy again.
    let recover_s = if detect_s.is_nan() {
        f64::NAN
    } else {
        let last_bad = store
            .health()
            .iter()
            .rposition(|&h| h != HealthState::Healthy)
            .map_or(f64::NAN, |i| store.ts()[i]);
        let ends_healthy = store
            .health()
            .last()
            .is_some_and(|&h| h == HealthState::Healthy);
        if ends_healthy {
            (last_bad - fault_end).max(0.0)
        } else {
            f64::NAN
        }
    };

    FaultCase {
        label,
        detect_s,
        worst_error_cm_s,
        recover_s,
        frames_lost: outcome
            .trace
            .uart
            .frames_sent
            .saturating_sub(outcome.trace.uart.frames_received),
    }
}

/// Runs F1 with the process-default campaign.
///
/// # Errors
///
/// Returns [`CoreError`] if the shared calibration or any run fails.
pub fn run(speed: Speed) -> Result<FaultMatrixResult, CoreError> {
    run_with(speed, Campaign::new())
}

/// Runs F1 under an explicit campaign (the jobs-invariance tests pin the
/// job count through this).
fn run_with(speed: Speed, campaign: Campaign) -> Result<FaultMatrixResult, CoreError> {
    let config = speed.config();
    let calibration =
        super::shared_calibration(config, hotwire_physics::MafParams::nominal(), speed, 0xF1)?;
    let cases = matrix();
    let specs: Vec<RunSpec> = cases
        .iter()
        .enumerate()
        .map(|(i, &(label, kind, window_s))| {
            RunSpec::new(
                label,
                config,
                Scenario::steady(FLOW_CM_S, DURATION_S),
                derive_seed(0xF1, i as u64),
            )
            .with_meter_seed(0xF1)
            .with_calibration(calibration.clone())
            .with_sample_period(0.01)
            .with_config(
                LineConfig::new().with_faults(
                    FaultSchedule::new(derive_seed(0xF1A7, i as u64))
                        .with_event(ONSET_S, window_s, kind),
                ),
            )
        })
        .collect();
    let outcomes = campaign.run(&specs)?;
    Ok(FaultMatrixResult {
        cases: cases
            .iter()
            .zip(&outcomes)
            .map(|(&(label, _, window_s), outcome)| reduce_case(label, window_s, outcome))
            .collect(),
        onset_s: ONSET_S,
        duration_s: DURATION_S,
    })
}

/// `NaN`-aware cell rendering: undetectable/unrecovered print as `—`.
fn cell(x: f64) -> String {
    if x.is_nan() {
        "—".to_string()
    } else {
        format!("{x:.2}")
    }
}

impl core::fmt::Display for FaultMatrixResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "F1 — fault-injection matrix ({} cm/s steady, fault at t = {} s of {} s)\n",
            FLOW_CM_S, self.onset_s, self.duration_s
        )?;
        let mut t = Table::new([
            "fault",
            "detect [s]",
            "worst err [cm/s]",
            "recover [s]",
            "frames lost",
        ]);
        for c in &self.cases {
            t.row([
                c.label.to_string(),
                cell(c.detect_s),
                format!("{:.2}", c.worst_error_cm_s),
                cell(c.recover_s),
                if c.frames_lost > 0 {
                    format!("{}", c.frames_lost)
                } else {
                    "—".to_string()
                },
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "— = not detectable by the health supervisor (telemetry-link faults are caught\n\
             by the receiver's CRC instead) or not yet recovered at run end"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fault_matrix_detects_and_recovers() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.cases.len(), 8);

        // A stuck ADC starves the watchdog: detection well inside a second,
        // and the meter must come back once the code unfreezes.
        let stuck = r.case("adc stuck");
        assert!(
            stuck.detect_s.is_finite() && stuck.detect_s < 1.0,
            "stuck-ADC detection latency {}",
            stuck.detect_s
        );
        assert!(
            stuck.recover_s.is_finite(),
            "stuck-ADC run must end healthy (recover {})",
            stuck.recover_s
        );
        assert!(
            stuck.worst_error_cm_s > 5.0,
            "a frozen code must corrupt the reading: {}",
            stuck.worst_error_cm_s
        );

        // The EEPROM flip is caught by the CRC on the forced reload and
        // degrades to the mirror slot — an immediate Recovering excursion.
        let eeprom = r.case("eeprom bit flip");
        assert!(
            eeprom.detect_s.is_finite() && eeprom.detect_s < 0.5,
            "EEPROM fallback detection {}",
            eeprom.detect_s
        );
        assert!(
            eeprom.recover_s.is_finite(),
            "mirror fallback must recover: {}",
            eeprom.recover_s
        );

        // The UART attack is invisible to the health supervisor but must
        // cost frames on the wire.
        let uart = r.case("uart corruption");
        assert!(uart.frames_lost > 0, "noisy link lost no frames");

        // Every case sees *some* flow error; none may panic or go empty.
        for c in &r.cases {
            assert!(
                c.worst_error_cm_s.is_finite(),
                "{}: worst error not finite",
                c.label
            );
        }
    }

    #[test]
    fn fault_matrix_is_jobs_invariant() {
        let serial = run_with(Speed::Fast, Campaign::with_jobs(1)).unwrap();
        let parallel = run_with(Speed::Fast, Campaign::with_jobs(2)).unwrap();
        for (a, b) in serial.cases.iter().zip(&parallel.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.detect_s.to_bits(), b.detect_s.to_bits(), "{}", a.label);
            assert_eq!(
                a.worst_error_cm_s.to_bits(),
                b.worst_error_cm_s.to_bits(),
                "{}",
                a.label
            );
            assert_eq!(a.recover_s.to_bits(), b.recover_s.to_bits(), "{}", a.label);
            assert_eq!(a.frames_lost, b.frames_lost, "{}", a.label);
        }
    }
}
