//! F2 — fleet simulation: population statistics over many concurrent lines.
//!
//! §6 of the paper motivates *diffuse* deployment — "a capillary
//! monitoring of the whole water supply system" — which turns the
//! evaluation question from "what does one meter measure?" into "what
//! does the *population* of meters deliver?". This experiment stands up a
//! fleet of seed-diverse lines behind one [`FleetSpec`] template (every
//! line a distinct physical meter on a distinct line, ±5 % flow-demand
//! jitter, a fault schedule striking every 10th line) and reports the
//! population answers:
//!
//! * resolution percentiles (what the p99 meter delivers, not the mean),
//! * line-to-line repeatability (half-spread of settled means, % FS),
//! * the health-state census over fleet simulated time,
//! * per-fault-kind incidence and faulted-line counts.
//!
//! Fleet runs use the reduced test profile at either fidelity — the
//! population questions are about spread across meters, not silicon
//! rates — and differ only in scale: ~100 lines fast, 1000 lines full.
//! Everything streams at `MetricsOnly`, so the fleet's trace heap is
//! zero bytes no matter the line count.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_rig::fault::{FaultKind, FaultSchedule};
use hotwire_rig::fleet::{FleetError, FleetOutcome, FleetSpec, LineVariation};
use hotwire_rig::{Scenario, Windows};

/// Steady demand every line's jittered schedule is derived from, cm/s.
const FLOW_CM_S: f64 = 100.0;
/// Per-line flow-demand jitter fraction.
const FLOW_JITTER: f64 = 0.05;
/// Fault onset, scenario seconds (clears the 3 s health warmup).
const ONSET_S: f64 = 4.0;
/// Active fault window, seconds.
const WINDOW_S: f64 = 1.5;
/// Every `FAULT_STRIDE`-th line carries the fault schedule.
const FAULT_STRIDE: usize = 10;

/// F2 results: the fleet outcome plus the scale it ran at.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The full fleet outcome (aggregates + per-line summaries).
    pub outcome: FleetOutcome,
    /// Scenario seconds per line.
    pub duration_s: f64,
}

/// The fleet template at a given scale. Public so the fleet benchmark and
/// determinism tests exercise exactly the experiment's population.
pub fn fleet_spec(lines: usize, duration_s: f64) -> FleetSpec {
    FleetSpec::new(
        "f2-fleet",
        FlowMeterConfig::test_profile(),
        Scenario::steady(FLOW_CM_S, duration_s),
        0xF2,
    )
    .with_lines(lines)
    .with_sample_period(0.05)
    // Resolution windows sit before the fault onset so the percentiles
    // measure the healthy population; the err window spans the fault.
    .with_windows(Windows::settled(1.0, 2.5).with_err(1.0, f64::INFINITY))
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(FLOW_JITTER)
            .with_faults_every(
                FAULT_STRIDE,
                3,
                FaultSchedule::new(0).with_event(
                    ONSET_S,
                    WINDOW_S,
                    FaultKind::AdcStuck { code: 1200 },
                ),
            ),
    )
}

/// The fleet scale at each fidelity: `(lines, scenario seconds)`.
pub fn scale(speed: Speed) -> (usize, f64) {
    match speed {
        Speed::Fast => (96, 6.0),
        Speed::Full => (1000, 8.0),
    }
}

/// Runs F2 with the process-default job count.
///
/// # Errors
///
/// Returns [`FleetError`] if the spec is degenerate or any line cannot be
/// built or calibrated (the error carries the completed prefix).
pub fn run(speed: Speed) -> Result<FleetResult, FleetError> {
    let (lines, duration_s) = scale(speed);
    let outcome = fleet_spec(lines, duration_s).run()?;
    Ok(FleetResult {
        outcome,
        duration_s,
    })
}

impl core::fmt::Display for FleetResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = &self.outcome.aggregates;
        writeln!(
            f,
            "F2 / §6 — fleet simulation: {} lines × {} s at ~{} cm/s (±{:.0} % demand jitter,\n\
             ADC-stuck fault on every {}th line at t = {} s)\n",
            a.lines,
            self.duration_s,
            FLOW_CM_S,
            FLOW_JITTER * 100.0,
            FAULT_STRIDE,
            ONSET_S
        )?;
        let mut t = Table::new(["population statistic", "p50", "p90", "p99", "worst"]);
        let r = &a.resolution_pct_fs;
        t.row([
            "resolution [±% FS]".to_string(),
            format!("{:.3}", r.p50),
            format!("{:.3}", r.p90),
            format!("{:.3}", r.p99),
            format!("{:.3}", r.max),
        ]);
        let e = &a.err_rms_cm_s;
        t.row([
            "rms error [cm/s]".to_string(),
            format!("{:.2}", e.p50),
            format!("{:.2}", e.p90),
            format!("{:.2}", e.p99),
            format!("{:.2}", e.max),
        ]);
        writeln!(f, "{t}")?;
        writeln!(f, "{a}")?;
        writeln!(
            f,
            "\npaper: §6's diffuse-deployment pitch asks exactly these population questions —\n\
             the worst meter's resolution, how much fleet time is degraded, what actually fails"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fleet_population_sane() {
        let r = run(Speed::Fast).unwrap();
        let a = &r.outcome.aggregates;
        let (lines, _) = scale(Speed::Fast);
        assert_eq!(a.lines, lines);

        // MetricsOnly is forced: the whole fleet holds zero trace bytes.
        assert_eq!(r.outcome.trace_heap_bytes(), 0);

        // Every 10th line carries the schedule, and the stuck ADC actually
        // bites on each of them.
        let expected_faulted = lines.div_ceil(FAULT_STRIDE) as u64;
        assert_eq!(a.fault_incidence.get("adc_stuck"), Some(&expected_faulted));
        assert_eq!(a.lines_faulted, expected_faulted);
        assert!(a.fault_samples > 0);

        // The census covers every streamed sample and the faults push some
        // of the fleet's time out of Healthy.
        assert_eq!(a.health.total(), a.total_samples);
        assert!(
            a.health.counts[1] + a.health.counts[2] + a.health.counts[3] > 0,
            "faulted lines must register non-healthy time"
        );

        // Population spread is real but bounded: percentiles ordered, the
        // p99 meter still resolves within a few % FS.
        let res = &a.resolution_pct_fs;
        assert!(res.p50 <= res.p90 && res.p90 <= res.p99 && res.p99 <= res.max);
        assert!(res.max < 10.0, "worst resolution {:.3} % FS", res.max);
        assert!(
            a.repeatability_pct_fs.is_finite() && a.repeatability_pct_fs > 0.0,
            "repeatability ±{} % FS",
            a.repeatability_pct_fs
        );
    }
}
