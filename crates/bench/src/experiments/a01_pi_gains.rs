//! A1 — ablation: PI gain selection.
//!
//! The paper's platform pitch is exactly this exploration: "a quick and
//! exhaustive design space exploration changing analog settings,
//! interconnecting digital IPs … finding the fittest solution". This
//! ablation sweeps the PI gains over a grid and reports settling time and
//! resolution at the operating point — the two axes a designer trades.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::CoreError;
use hotwire_rig::campaign::Calibration;
use hotwire_rig::scenario::{Scenario, Schedule};
use hotwire_rig::{metrics, Campaign, RecordPolicy, RunSpec, Windows};

/// One gain pair's outcome.
#[derive(Debug, Clone, Copy)]
pub struct GainPoint {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain per control sample.
    pub ki: f64,
    /// 10–90 % response through a 50→150 cm/s step, s (`None` = never
    /// settled or unstable).
    pub response_s: Option<f64>,
    /// ±σ at the 100 cm/s hold, cm/s.
    pub resolution_cm_s: f64,
    /// Whether the supply ever railed (instability indicator).
    pub railed: bool,
}

/// A1 results.
#[derive(Debug, Clone)]
pub struct PiGainResult {
    /// Grid points in sweep order.
    pub points: Vec<GainPoint>,
    /// The production gains, for reference.
    pub production: (f64, f64),
}

/// Runs A1.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<PiGainResult, CoreError> {
    let grid: &[(f64, f64)] = &[
        (0.002, 0.0005),
        (0.02, 0.0005),
        (0.02, 0.005),
        (0.1, 0.005),
        (0.1, 0.03),
        (0.4, 0.1),
    ];
    let hold = speed.seconds(30.0);
    let production = {
        let c = FlowMeterConfig::water_station();
        (c.kp, c.ki)
    };
    let specs: Vec<RunSpec> = grid
        .iter()
        .enumerate()
        .map(|(i, &(kp, ki))| {
            let config = FlowMeterConfig {
                kp,
                ki,
                ..speed.config()
            };
            let scenario = Scenario {
                flow_cm_s: Schedule::new()
                    .then_hold(100.0, hold)
                    .then_hold(50.0, hold / 2.0)
                    .then_hold(150.0, hold),
                ..Scenario::steady(0.0, hold * 2.5)
            };
            // Low-gain loops settle more slowly; stretch the calibration
            // windows in proportion so the King fit sees settled points at
            // every grid corner, not just near the production gains.
            let (kp0, ki0) = (speed.config().kp, speed.config().ki);
            let cal_scale = (kp0 / kp).max(ki0 / ki);
            // Resolution, step response and the rail check all stream
            // (settled Welford, bounded series window, supply-code max).
            RunSpec::new(format!("kp{kp}-ki{ki}"), config, scenario, 0xA1)
                .with_calibration(Calibration::Field(super::calibration_recipe_scaled(
                    speed, 0xA1, cal_scale,
                )))
                .with_line_seed(0xA100 + i as u64)
                .with_windows(
                    Windows::settled(hold * 0.4, hold * 0.6)
                        .with_series(hold * 1.5 - 0.5, f64::INFINITY),
                )
                .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let outcomes = Campaign::new().try_run(&specs);
    let mut points = Vec::new();
    for (&(kp, ki), outcome) in grid.iter().zip(outcomes) {
        let reduced = match outcome {
            Ok(outcome) => outcome.reduced,
            // An unstable loop fails calibration (garbage points) — that
            // *is* the data point, not an error.
            Err(CoreError::Calibration { .. }) => {
                points.push(GainPoint {
                    kp,
                    ki,
                    response_s: None,
                    resolution_cm_s: f64::NAN,
                    railed: true,
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        let step = &reduced.series;
        points.push(GainPoint {
            kp,
            ki,
            response_s: metrics::rise_time_split(&step.ts, &step.ys, 50.0, 150.0),
            resolution_cm_s: reduced.settled.std_dev(),
            railed: reduced.supply_code_max >= 4095,
        });
    }
    Ok(PiGainResult { points, production })
}

impl core::fmt::Display for PiGainResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "A1 — PI gain design-space exploration (production gains: kp = {}, ki = {})\n",
            self.production.0, self.production.1
        )?;
        let mut t = Table::new(["kp", "ki", "step 10–90 % [s]", "±σ [cm/s]", "railed"]);
        for p in &self.points {
            t.row([
                format!("{}", p.kp),
                format!("{}", p.ki),
                p.response_s
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.2}", p.resolution_cm_s),
                format!("{}", p.railed),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "low gains: sluggish steps; high gains: noise amplification / rail excursions.\n\
             The production point sits on the knee — the exploration ISIF exists to run."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_gain_sweep_shows_the_tradeoff() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.points.len(), 6);
        // The slowest-gain point must respond more slowly than the
        // production-adjacent point (when both settled).
        let sluggish = &r.points[0];
        let production = &r.points[2];
        if let (Some(a), Some(b)) = (sluggish.response_s, production.response_s) {
            assert!(a >= b, "sluggish {a} s vs production {b} s");
        }
    }
}
