//! E9 — §2: King's-law nonlinearity and its compensation.
//!
//! "However, there are deviations from a linear dependence according to the
//! Kings Law … This nonlinearity must be compensated by a special signal
//! conditioning." We fit the calibration both ways — the proper King
//! inversion and a naive linear `v = a + b·U` model — and compare their
//! errors across the range.

use super::Speed;
use crate::table::Table;
use hotwire_core::calibration::CalPoint;
use hotwire_core::CoreError;
use hotwire_physics::{MafParams, SensorEnvironment};
use hotwire_rig::campaign::{self, Calibration, FieldCalibration};
use hotwire_rig::Campaign;
use hotwire_units::MetersPerSecond;

/// Model error at one verification point.
#[derive(Debug, Clone, Copy)]
pub struct InversionPoint {
    /// True flow, cm/s.
    pub true_cm_s: f64,
    /// King-inversion reading error, cm/s.
    pub king_error_cm_s: f64,
    /// Linear-model reading error, cm/s.
    pub linear_error_cm_s: f64,
}

/// E9 results.
#[derive(Debug, Clone)]
pub struct KingsLawResult {
    /// Fitted A (W/K).
    pub a: f64,
    /// Fitted B (W/(K·(m/s)ⁿ)).
    pub b: f64,
    /// Fitted exponent n.
    pub n: f64,
    /// RMS relative residual of the fit.
    pub fit_residual: f64,
    /// Verification points.
    pub points: Vec<InversionPoint>,
}

impl KingsLawResult {
    /// Worst |error| of the King inversion, cm/s.
    pub fn king_worst(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.king_error_cm_s.abs())
            .fold(0.0, f64::max)
    }

    /// Worst |error| of the linear model, cm/s.
    pub fn linear_worst(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.linear_error_cm_s.abs())
            .fold(0.0, f64::max)
    }
}

/// Runs E9.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<KingsLawResult, CoreError> {
    // Collect the calibration observations once (setpoints in parallel),
    // then fan the fitted calibration out to one meter replica per
    // verification velocity.
    let recipe = FieldCalibration {
        setpoints_cm_s: vec![10.0, 30.0, 60.0, 100.0, 150.0, 200.0, 245.0],
        settle_s: speed.seconds(1.5),
        average_s: speed.seconds(0.5),
        seed: 0xE9,
    };
    let calibration =
        super::shared_calibration_with(speed.config(), MafParams::nominal(), 0xE9, recipe)?;
    let Calibration::Points { ref points, .. } = calibration else {
        unreachable!("shared_calibration_with always returns Points");
    };
    let cal_points: Vec<CalPoint> = points.clone();
    let meter = campaign::build_meter(speed.config(), MafParams::nominal(), 0xE9, &calibration)?;
    let cal = *meter.calibration().expect("calibration installed");

    // Naive linear model v = a + b·G fitted on the same points.
    let n = cal_points.len() as f64;
    let sx: f64 = cal_points.iter().map(|p| p.conductance.get()).sum();
    let sy: f64 = cal_points.iter().map(|p| p.velocity.get()).sum();
    let sxx: f64 = cal_points.iter().map(|p| p.conductance.get().powi(2)).sum();
    let sxy: f64 = cal_points
        .iter()
        .map(|p| p.conductance.get() * p.velocity.get())
        .sum();
    let det = n * sxx - sx * sx;
    let lin_b = (n * sxy - sx * sy) / det;
    let lin_a = (sy * sxx - sx * sxy) / det;

    // Verify at untrained points: both models read the *same* measured
    // conductance, so their error difference isolates the nonlinearity.
    // The calibration maps conductance → Promag (bulk) velocity, so the
    // verification environment must present the probe with the same
    // local-velocity statistics the calibration saw; here we compare in
    // bulk units by feeding the probe the calibrated local equivalent.
    let velocities = [20.0, 45.0, 80.0, 125.0, 175.0, 230.0];
    let results = Campaign::new().map(&velocities, |_, &v| -> Result<InversionPoint, CoreError> {
        let mut meter =
            campaign::build_meter(speed.config(), MafParams::nominal(), 0xE9, &calibration)?;
        let env = SensorEnvironment {
            // Probe sees ~1.22× bulk in the turbulent DN50 line; apply the
            // same factor the field calibration absorbed.
            velocity: MetersPerSecond::from_cm_per_s(v * 1.224),
            ..SensorEnvironment::still_water()
        };
        let m = meter.run(speed.seconds(12.0), env).expect("loop ran");
        let g = m.conductance;
        let king_reading = cal.velocity_from_conductance(g).to_cm_per_s();
        let linear_reading = (lin_a + lin_b * g.get()) * 100.0;
        Ok(InversionPoint {
            true_cm_s: v,
            king_error_cm_s: king_reading - v,
            linear_error_cm_s: linear_reading - v,
        })
    });
    let points = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(KingsLawResult {
        a: cal.a,
        b: cal.b,
        n: cal.n,
        fit_residual: cal.rms_relative_residual(&cal_points),
        points,
    })
}

impl core::fmt::Display for KingsLawResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E9 / §2 — King's-law calibration and nonlinearity compensation\n"
        )?;
        writeln!(
            f,
            "fit: G = A + B·vⁿ with A = {:.4e} W/K, B = {:.4e}, n = {:.3} (rms residual {:.2} %)\n",
            self.a,
            self.b,
            self.n,
            self.fit_residual * 100.0
        )?;
        let mut t = Table::new(["true [cm/s]", "King err [cm/s]", "linear err [cm/s]"]);
        for p in &self.points {
            t.row([
                format!("{:.0}", p.true_cm_s),
                format!("{:+.2}", p.king_error_cm_s),
                format!("{:+.2}", p.linear_error_cm_s),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "worst |error|: King {:.2} cm/s, naive linear {:.2} cm/s",
            self.king_worst(),
            self.linear_worst()
        )?;
        writeln!(
            f,
            "paper: \"deviations from a linear dependence according to the Kings Law …\n\
             must be compensated by a special signal conditioning\""
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_king_beats_linear() {
        let r = run(Speed::Fast).unwrap();
        assert!((0.3..=0.7).contains(&r.n), "exponent {}", r.n);
        assert!(
            r.king_worst() < r.linear_worst(),
            "King {:.2} must beat linear {:.2}",
            r.king_worst(),
            r.linear_worst()
        );
        // The linear model's nonlinearity error is substantial across a 25:1
        // range (this is the paper's motivation for the King inversion).
        assert!(
            r.linear_worst() > 5.0,
            "linear worst {:.2}",
            r.linear_worst()
        );
    }
}
