//! E12 — §2 ablation: constant-temperature vs constant-current vs
//! constant-power under fluid-temperature change.
//!
//! "…the latter one \[CT\] maintains a fixed value of the sensing resistor
//! thus achieving more robustness respect to changes of the temperature of
//! the fluid itself."
//!
//! Each mode is calibrated at 15 °C, then the fluid ramps to 30 °C at
//! constant flow. CT's bridge tracks ambient through the Rt arm; CC and CP
//! have no compensation, so their readings drift with the fluid.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::{FlowMeterConfig, OperatingMode};
use hotwire_core::CoreError;
use hotwire_rig::campaign::Calibration;
use hotwire_rig::{Campaign, RecordPolicy, RunSpec, Scenario, Windows};

/// One mode's drift result.
#[derive(Debug, Clone)]
pub struct ModeDrift {
    /// Operating mode.
    pub mode: OperatingMode,
    /// Settled reading at 15 °C, cm/s.
    pub reading_15c: f64,
    /// Settled reading at 30 °C, cm/s.
    pub reading_30c: f64,
    /// Drift as % of the 15 °C reading.
    pub drift_pct: f64,
}

/// E12 results.
#[derive(Debug, Clone)]
pub struct ModesResult {
    /// CT, CC, CP drifts.
    pub modes: Vec<ModeDrift>,
}

impl ModesResult {
    /// The CT row.
    pub fn ct(&self) -> &ModeDrift {
        &self.modes[0]
    }
}

/// Runs E12. The three modes execute as one campaign, each calibrating its
/// own configuration.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<ModesResult, CoreError> {
    let duration = speed.seconds(120.0);
    let modes = [
        OperatingMode::ConstantTemperature,
        OperatingMode::ConstantCurrent,
        OperatingMode::ConstantPower,
    ];
    let specs: Vec<RunSpec> = modes
        .iter()
        .map(|&mode| {
            let config = FlowMeterConfig {
                mode,
                ..speed.config()
            };
            let scenario = Scenario::temperature_ramp(100.0, 15.0, 30.0, duration);
            // Settled windows: the last portion of the 15 °C hold and of
            // the 30 °C hold (holds are the first/last 20 % of the
            // scenario) — both stream, so no samples are stored.
            RunSpec::new(format!("{mode:?}"), config, scenario, 0xE12)
                .with_calibration(Calibration::Field(super::calibration_recipe(speed, 0xE12)))
                .with_sample_period(0.05)
                .with_windows(
                    Windows::none()
                        .with_extra(0.1 * duration, 0.2 * duration)
                        .with_extra(0.9 * duration, duration),
                )
                .with_record(RecordPolicy::MetricsOnly)
        })
        .collect();
    let outcomes = Campaign::new().run(&specs)?;
    Ok(ModesResult {
        modes: modes
            .iter()
            .zip(&outcomes)
            .map(|(&mode, outcome)| {
                let reading_15c = outcome.window(0).mean();
                let reading_30c = outcome.window(1).mean();
                ModeDrift {
                    mode,
                    reading_15c,
                    reading_30c,
                    drift_pct: (reading_30c - reading_15c) / reading_15c.abs().max(1e-9) * 100.0,
                }
            })
            .collect(),
    })
}

impl core::fmt::Display for ModesResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E12 / §2 — operating-mode robustness to fluid temperature (100 cm/s, 15 → 30 °C)\n"
        )?;
        let mut t = Table::new(["mode", "reading @15 °C", "reading @30 °C", "drift"]);
        for m in &self.modes {
            t.row([
                format!("{:?}", m.mode),
                format!("{:.1} cm/s", m.reading_15c),
                format!("{:.1} cm/s", m.reading_30c),
                format!("{:+.1} %", m.drift_pct),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: constant-temperature operation \"achiev[es] more robustness respect to\n\
             changes of the temperature of the fluid itself\" than CC/CP"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ct_most_robust() {
        let r = run(Speed::Fast).unwrap();
        let ct = r.ct().drift_pct.abs();
        let cc = r.modes[1].drift_pct.abs();
        let cp = r.modes[2].drift_pct.abs();
        assert!(
            ct < cc && ct < cp,
            "CT drift {ct:.1} % must beat CC {cc:.1} % and CP {cp:.1} %"
        );
    }
}
