//! M1 — sensing-modality head-to-head: CTA hot wire vs heat-pulse
//! time-of-flight.
//!
//! The paper's meter is a constant-temperature hot wire; the waterxchange
//! class of ultrasonic/thermal utility meters instead fires a discrete
//! heat pulse and times its arrival at downstream thermistors. Both
//! modalities now run behind the same [`Meter`] trait, so this experiment
//! puts them head-to-head on the three axes a deployment cares about:
//!
//! * **resolution** — settled ±σ across a healthy steady-flow fleet
//!   (population percentiles, % FS), exactly F2's definition;
//! * **power** — the trait's time-averaged [`Meter::power_draw`]: the CTA
//!   wire dissipates continuously, the heat-pulse heater fires ~2.5 % of
//!   the time;
//! * **fouling robustness** — the decode shift a uniform CaCO₃ step
//!   deposit induces, as a percentage of the clean reading. The CTA
//!   conflates the deposit's thermal barrier with a velocity change
//!   (gain error); time-of-flight only loses pulse *amplitude* while the
//!   peak timing — the measurand — barely moves.
//!
//! Both modalities run factory calibration (each reports probe-local
//! velocity), the same fleet template, the same seeds: every difference
//! in the table is the sensing physics, not the harness.
//!
//! [`Meter`]: hotwire_core::Meter
//! [`Meter::power_draw`]: hotwire_core::Meter::power_draw

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_core::Meter;
use hotwire_rig::fault::{FaultKind, FaultSchedule};
use hotwire_rig::fleet::{FleetSpec, LineVariation};
use hotwire_rig::{LineConfig, Modality, RunSpec, Scenario, Windows};

/// Steady demand for every fleet, cm/s.
const FLOW_CM_S: f64 = 100.0;
/// Per-line flow-demand jitter fraction.
const FLOW_JITTER: f64 = 0.03;
/// Uniform step deposit for the fouling fleets, µm of CaCO₃.
const FOULING_UM: f64 = 10.0;
/// Deposit onset, scenario seconds (before the settled window opens, so
/// the window measures the fouled steady state).
const FOULING_ONSET_S: f64 = 1.0;

/// One modality's numbers on the three axes.
#[derive(Debug, Clone)]
pub struct ModalityCase {
    /// Which modality the fleets ran.
    pub modality: Modality,
    /// Median line resolution (settled ±σ), % FS, healthy fleet.
    pub resolution_p50_pct_fs: f64,
    /// p99 line resolution, % FS, healthy fleet.
    pub resolution_p99_pct_fs: f64,
    /// Time-averaged probe power draw, mW.
    pub power_mw: f64,
    /// Median settled reading of the clean fleet, cm/s.
    pub clean_median_cm_s: f64,
    /// Median settled reading of the fouled fleet, cm/s.
    pub fouled_median_cm_s: f64,
    /// `100 · |fouled − clean| / clean` — the fouling-induced decode
    /// shift, % of the clean reading.
    pub fouling_shift_pct: f64,
    /// Lines in the fouled fleet whose health supervisor left `Healthy`
    /// at any point (the firmware noticed *something*, whether or not its
    /// decode moved).
    pub fouled_lines_degraded: usize,
}

/// M1 results: one case per modality, plus the shared scale.
#[derive(Debug, Clone)]
pub struct ModalityResult {
    /// CTA first, heat-pulse second.
    pub cases: Vec<ModalityCase>,
    /// Lines per fleet.
    pub lines: usize,
    /// Scenario seconds per line.
    pub duration_s: f64,
}

impl ModalityResult {
    /// The case for `modality`. Panics if it was not run.
    pub fn case(&self, modality: Modality) -> &ModalityCase {
        self.cases
            .iter()
            .find(|c| c.modality == modality)
            .expect("modality was run")
    }
}

/// The fleet scale at each fidelity: `(lines, scenario seconds)`.
pub fn scale(speed: Speed) -> (usize, f64) {
    match speed {
        Speed::Fast => (12, 6.0),
        Speed::Full => (100, 8.0),
    }
}

/// The steady-flow fleet template for `modality` (clean unless a fault
/// template is added). Public so the bit-identity gates in CI can pin
/// exactly the experiment's population.
pub fn fleet_spec(modality: Modality, lines: usize, duration_s: f64) -> FleetSpec {
    FleetSpec::new(
        format!("m1-{}", modality.name()),
        FlowMeterConfig::test_profile(),
        Scenario::steady(FLOW_CM_S, duration_s),
        0x4D31,
    )
    .with_config(LineConfig::new().with_modality(modality))
    .with_lines(lines)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(2.0, 0.0))
    .with_variation(LineVariation::new().with_flow_jitter(FLOW_JITTER))
}

/// The same template with a uniform step deposit on every line.
pub fn fouled_spec(modality: Modality, lines: usize, duration_s: f64) -> FleetSpec {
    let spec = fleet_spec(modality, lines, duration_s);
    let schedule = FaultSchedule::new(0).with_event(
        FOULING_ONSET_S,
        0.0,
        FaultKind::SteppedFouling {
            microns: FOULING_UM,
        },
    );
    spec.with_variation(
        LineVariation::new()
            .with_flow_jitter(FLOW_JITTER)
            .with_faults_every(1, 0, schedule),
    )
}

/// Median over the fleet's per-line settled means (exact path: m1 fleets
/// sit far below the sketch threshold).
fn median_settled(lines: &[hotwire_rig::fleet::LineSummary]) -> f64 {
    let mut means: Vec<f64> = lines.iter().map(|l| l.settled_mean).collect();
    means.sort_by(f64::total_cmp);
    let n = means.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        means[n / 2]
    } else {
        0.5 * (means[n / 2 - 1] + means[n / 2])
    }
}

fn run_modality(modality: Modality, lines: usize, duration_s: f64) -> Result<ModalityCase, String> {
    let fleet_err = |e: hotwire_rig::fleet::FleetError| e.to_string();
    let clean = fleet_spec(modality, lines, duration_s)
        .run()
        .map_err(fleet_err)?;
    let fouled = fouled_spec(modality, lines, duration_s)
        .run()
        .map_err(fleet_err)?;

    // Power: one campaign run per modality, read off the trait.
    let power = RunSpec::new(
        format!("m1-{}-power", modality.name()),
        FlowMeterConfig::test_profile(),
        Scenario::steady(FLOW_CM_S, duration_s.min(4.0)),
        0x4D31,
    )
    .with_config(LineConfig::new().with_modality(modality))
    .without_obs()
    .execute()
    .map_err(|e| e.to_string())?;

    let clean_median = median_settled(&clean.lines);
    let fouled_median = median_settled(&fouled.lines);
    Ok(ModalityCase {
        modality,
        resolution_p50_pct_fs: clean.aggregates.resolution_pct_fs.p50,
        resolution_p99_pct_fs: clean.aggregates.resolution_pct_fs.p99,
        power_mw: power.meter.power_draw().get() * 1e3,
        clean_median_cm_s: clean_median,
        fouled_median_cm_s: fouled_median,
        fouling_shift_pct: 100.0 * (fouled_median - clean_median).abs() / clean_median.abs(),
        fouled_lines_degraded: fouled
            .lines
            .iter()
            .filter(|l| l.health.counts[1..].iter().sum::<u64>() > 0)
            .count(),
    })
}

/// Runs M1: both modalities through identical fleet templates.
///
/// # Errors
///
/// Returns a rendered error if any fleet line or power run fails (fleet
/// and campaign failures are both possible, so the error is pre-joined).
pub fn run(speed: Speed) -> Result<ModalityResult, String> {
    let (lines, duration_s) = scale(speed);
    let cases = vec![
        run_modality(Modality::Cta, lines, duration_s)?,
        run_modality(Modality::HeatPulse, lines, duration_s)?,
    ];
    Ok(ModalityResult {
        cases,
        lines,
        duration_s,
    })
}

impl core::fmt::Display for ModalityResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "M1 — sensing modalities head-to-head: {} lines × {} s at {} cm/s,\n\
             fouling fleets carry a uniform {FOULING_UM} µm CaCO₃ step deposit\n",
            self.lines, self.duration_s, FLOW_CM_S
        )?;
        let mut t = Table::new([
            "modality",
            "res p50 [±% FS]",
            "res p99 [±% FS]",
            "power [mW]",
            "fouling shift [%]",
            "degraded",
        ]);
        for c in &self.cases {
            t.row([
                c.modality.name().to_string(),
                format!("{:.3}", c.resolution_p50_pct_fs),
                format!("{:.3}", c.resolution_p99_pct_fs),
                format!("{:.2}", c.power_mw),
                format!("{:.2}", c.fouling_shift_pct),
                format!("{}/{}", c.fouled_lines_degraded, self.lines),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "\nreading: the CTA wire resolves finer (continuous conductance readout) but\n\
             dissipates continuously and folds a deposit's thermal barrier straight into\n\
             its velocity estimate; the heat-pulse probe duty-cycles the heater and keeps\n\
             its decode pinned to pulse *timing*, which a thin deposit barely moves"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_head_to_head_separates_the_modalities() {
        let r = run(Speed::Fast).unwrap();
        let cta = r.case(Modality::Cta);
        let hp = r.case(Modality::HeatPulse);

        // Resolution: the continuous CTA readout resolves finer than the
        // once-per-cycle time-of-flight decode.
        assert!(cta.resolution_p50_pct_fs < hp.resolution_p50_pct_fs);
        assert!(
            hp.resolution_p50_pct_fs < 10.0,
            "heat-pulse resolution {:.2} % FS",
            hp.resolution_p50_pct_fs
        );

        // Power: the duty-cycled heater sits far below the always-on wire.
        assert!(
            hp.power_mw < 0.2 * cta.power_mw,
            "heat-pulse {:.2} mW vs CTA {:.2} mW",
            hp.power_mw,
            cta.power_mw
        );

        // Fouling: the deposit drags the CTA decode while the
        // time-of-flight reading barely moves.
        assert!(
            hp.fouling_shift_pct < cta.fouling_shift_pct,
            "heat-pulse shift {:.2} % vs CTA {:.2} %",
            hp.fouling_shift_pct,
            cta.fouling_shift_pct
        );

        // Both fleets actually read the setpoint (probe-local velocity).
        for c in &r.cases {
            assert!(
                (c.clean_median_cm_s - 122.4).abs() < 25.0,
                "{} clean median {:.1} cm/s",
                c.modality.name(),
                c.clean_median_cm_s
            );
        }
    }
}
