//! F4 — fleet maintenance: recalibration cost vs. population accuracy.
//!
//! A capillary deployment (§6) cannot send a technician to every meter,
//! so calibration upkeep must be a *policy*, not a visit: when does a
//! line re-zero its drift monitor, refit its installed fit, and spend
//! EEPROM wear persisting the result? This experiment sweeps the
//! [`maintain`](hotwire_rig::maintain) policies over a compressed
//! service season — a seasonal temperature excursion with CaCO₃ scale
//! stepping onto every third line (§4's fouling mechanism) — and maps
//! the frontier between the two fleet-scale currencies:
//!
//! * **cost** — maintenance actions per line, and persists per line
//!   (each persist burns a write cycle on both EEPROM slots),
//! * **accuracy** — the population's RMS-error percentiles over the
//!   whole season, drift and fouling included.
//!
//! Both sensing modalities run the identical policy code through the
//! trait-level calibration surface: the engine never knows whether it is
//! servicing a CTA bridge or a heat-pulse counter. `Scheduled` pays a
//! fixed persist bill whether or not anything drifted; `EventTriggered`
//! spends only on observed drift/temperature excursions; `Hybrid` adds a
//! slow clock as a backstop. The frontier table makes the trade legible:
//! accuracy per persist, not accuracy at any price.

use super::Speed;
use crate::table::Table;
use hotwire_core::config::FlowMeterConfig;
use hotwire_rig::fault::{FaultKind, FaultSchedule};
use hotwire_rig::fleet::{FleetError, FleetSpec, LineVariation};
use hotwire_rig::maintain::{Maintenance, MaintenanceCounters, Policy};
use hotwire_rig::{LineConfig, Modality, Scenario, Windows};

/// Steady demand every line's jittered schedule is derived from, cm/s.
const FLOW_CM_S: f64 = 100.0;
/// Per-line flow-demand jitter fraction.
const FLOW_JITTER: f64 = 0.04;
/// Seasonal water-temperature excursion, °C (winter → summer, e12's
/// thermal-compensation regime compressed into one run).
const TEMP_FROM_C: f64 = 12.0;
const TEMP_TO_C: f64 = 32.0;
/// Every `FOULING_STRIDE`-th line accumulates scale.
const FOULING_STRIDE: usize = 3;
/// Scale thickness per fouling step, µm (three steps land per season).
const FOULING_STEP_UM: f64 = 6.0;
/// Relative conductance drift that wakes the event-triggered policies.
const DRIFT_THRESHOLD: f64 = 0.02;
/// Water-temperature excursion that wakes the event-triggered policies, °C.
const TEMP_DELTA_C: f64 = 8.0;

/// The four policies under test, parameterized to the season length so
/// fast and full runs sweep the same *shape*. Public so the CI gates pin
/// exactly the experiment's policy grid.
pub fn policies(duration_s: f64) -> [(&'static str, Maintenance); 4] {
    let common = |m: Maintenance| {
        m.with_min_service_interval(duration_s * 0.02)
            .with_persist_min_interval(duration_s * 0.05)
    };
    [
        ("none", Maintenance::default()),
        (
            "scheduled",
            common(Maintenance::new(Policy::Scheduled {
                period_s: duration_s * 0.1,
            })),
        ),
        (
            "event_triggered",
            common(Maintenance::new(Policy::EventTriggered {
                on_degraded: true,
                drift_threshold: DRIFT_THRESHOLD,
                temp_delta_c: TEMP_DELTA_C,
            })),
        ),
        (
            "hybrid",
            common(Maintenance::new(Policy::Hybrid {
                period_s: duration_s * 0.35,
                on_degraded: true,
                drift_threshold: DRIFT_THRESHOLD,
                temp_delta_c: TEMP_DELTA_C,
            })),
        ),
    ]
}

/// The drifting fleet template one policy cell runs: seasonal
/// temperature ramp, fouling steps on every third line, maintenance
/// through the grouped [`LineConfig`] surface. Public so the bit-identity
/// gates exercise exactly the experiment's population.
pub fn fleet_spec(
    modality: Modality,
    maintenance: Maintenance,
    policy_name: &str,
    lines: usize,
    duration_s: f64,
) -> FleetSpec {
    let fouling = FaultSchedule::new(0)
        .with_event(
            duration_s * 0.30,
            0.0,
            FaultKind::SteppedFouling {
                microns: FOULING_STEP_UM,
            },
        )
        .with_event(
            duration_s * 0.55,
            0.0,
            FaultKind::SteppedFouling {
                microns: FOULING_STEP_UM,
            },
        )
        .with_event(
            duration_s * 0.80,
            0.0,
            FaultKind::SteppedFouling {
                microns: FOULING_STEP_UM,
            },
        );
    FleetSpec::new(
        format!("f4-{}-{}", policy_name, modality.name()),
        FlowMeterConfig::test_profile(),
        Scenario::temperature_ramp(FLOW_CM_S, TEMP_FROM_C, TEMP_TO_C, duration_s),
        0xF4,
    )
    .with_config(
        LineConfig::new()
            .with_modality(modality)
            .with_maintenance(maintenance),
    )
    .with_lines(lines)
    .with_sample_period(0.05)
    // Resolution over the stable winter plateau; error over the whole
    // season — the err percentiles are the accuracy axis.
    .with_windows(
        Windows::settled(duration_s * 0.05, duration_s * 0.18)
            .with_err(duration_s * 0.05, f64::INFINITY),
    )
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(FLOW_JITTER)
            .with_faults_every(FOULING_STRIDE, 1, fouling),
    )
}

/// One cell of the policy × modality frontier.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// Policy label from [`policies`].
    pub policy: &'static str,
    /// Sensing modality the policy serviced.
    pub modality: Modality,
    /// Fleet-summed maintenance counters.
    pub maintenance: MaintenanceCounters,
    /// Maintenance actions per line (re-zeros + refits + persists).
    pub actions_per_line: f64,
    /// EEPROM persists per line — the wear currency.
    pub persists_per_line: f64,
    /// Population median RMS error over the season, cm/s.
    pub err_p50_cm_s: f64,
    /// Population p99 RMS error over the season, cm/s.
    pub err_p99_cm_s: f64,
    /// Population median resolution over the winter plateau, % FS.
    pub resolution_p50_pct_fs: f64,
}

/// F4 results: the full frontier plus the scale it ran at.
#[derive(Debug, Clone)]
pub struct MaintenanceResult {
    /// One cell per policy × modality, policies in [`policies`] order,
    /// CTA before heat-pulse within each policy.
    pub cells: Vec<PolicyCell>,
    /// Lines per cell.
    pub lines: usize,
    /// Scenario seconds per line.
    pub duration_s: f64,
}

impl MaintenanceResult {
    /// The frontier cell for a policy label and modality.
    ///
    /// # Panics
    ///
    /// Panics when the pair is not in the grid — a typo in a caller, not
    /// a runtime condition.
    pub fn cell(&self, policy: &str, modality: Modality) -> &PolicyCell {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.modality == modality)
            .unwrap_or_else(|| panic!("no f4 cell {policy}/{}", modality.name()))
    }
}

/// The fleet scale at each fidelity: `(lines, scenario seconds)`.
pub fn scale(speed: Speed) -> (usize, f64) {
    match speed {
        Speed::Fast => (24, 20.0),
        Speed::Full => (120, 60.0),
    }
}

/// Runs F4 with the process-default job count.
///
/// # Errors
///
/// Returns [`FleetError`] if any cell's fleet cannot run (the error
/// names the failing line).
pub fn run(speed: Speed) -> Result<MaintenanceResult, FleetError> {
    let (lines, duration_s) = scale(speed);
    let mut cells = Vec::with_capacity(8);
    for (policy_name, maintenance) in policies(duration_s) {
        for modality in [Modality::Cta, Modality::HeatPulse] {
            let outcome =
                fleet_spec(modality, maintenance, policy_name, lines, duration_s).run()?;
            let a = &outcome.aggregates;
            let m = a.maintenance;
            cells.push(PolicyCell {
                policy: policy_name,
                modality,
                maintenance: m,
                actions_per_line: m.actions() as f64 / lines as f64,
                persists_per_line: m.persists as f64 / lines as f64,
                err_p50_cm_s: a.err_rms_cm_s.p50,
                err_p99_cm_s: a.err_rms_cm_s.p99,
                resolution_p50_pct_fs: a.resolution_pct_fs.p50,
            });
        }
    }
    Ok(MaintenanceResult {
        cells,
        lines,
        duration_s,
    })
}

impl core::fmt::Display for MaintenanceResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "F4 / §6 — fleet maintenance: {} lines × {} s per policy cell, \
             {}→{} °C season,\nCaCO₃ steps (3 × {} µm) on every {}rd line; \
             drift threshold {:.0} %, temp trigger {} °C\n",
            self.lines,
            self.duration_s,
            TEMP_FROM_C,
            TEMP_TO_C,
            FOULING_STEP_UM,
            FOULING_STRIDE,
            DRIFT_THRESHOLD * 100.0,
            TEMP_DELTA_C
        )?;
        let mut t = Table::new([
            "policy / modality",
            "actions/line",
            "persists/line",
            "err p50 [cm/s]",
            "err p99 [cm/s]",
            "res p50 [% FS]",
        ]);
        for c in &self.cells {
            t.row([
                format!("{} / {}", c.policy, c.modality.name()),
                format!("{:.2}", c.actions_per_line),
                format!("{:.2}", c.persists_per_line),
                format!("{:.2}", c.err_p50_cm_s),
                format!("{:.2}", c.err_p99_cm_s),
                format!("{:.3}", c.resolution_p50_pct_fs),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: §6's diffuse deployment makes calibration upkeep a fleet policy —\n\
             the frontier above prices accuracy in EEPROM write cycles per line"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_frontier_separates_the_policies() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.cells.len(), 8, "4 policies × 2 modalities");

        for modality in [Modality::Cta, Modality::HeatPulse] {
            let name = modality.name();
            // The no-maintenance baseline never acts.
            let none = r.cell("none", modality);
            assert_eq!(none.maintenance, MaintenanceCounters::default(), "{name}");

            // The clock-driven policy services every line, every period.
            let scheduled = r.cell("scheduled", modality);
            assert!(
                scheduled.actions_per_line >= 1.0,
                "{name}: scheduled policy barely acted: {:?}",
                scheduled.maintenance
            );

            // Accuracy-per-persist separation: the event policy spends
            // strictly fewer persists than the clock (it only pays on
            // observed drift/temperature), and both stay within the
            // persist rate-limit implied by the season.
            let event = r.cell("event_triggered", modality);
            assert!(
                event.maintenance.persists < scheduled.maintenance.persists,
                "{name}: event persists {} !< scheduled persists {}",
                event.maintenance.persists,
                scheduled.maintenance.persists
            );
            assert!(
                event.maintenance.actions() > 0,
                "{name}: the seasonal excursion must wake the event policy"
            );

            // Hybrid acts at least as often as pure event-triggered (it
            // carries the same triggers plus a backstop clock).
            let hybrid = r.cell("hybrid", modality);
            assert!(
                hybrid.maintenance.actions() >= event.maintenance.actions(),
                "{name}: hybrid {:?} vs event {:?}",
                hybrid.maintenance,
                event.maintenance
            );
        }
    }
}
