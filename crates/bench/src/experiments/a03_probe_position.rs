//! A3 — ablation: probe insertion position.
//!
//! §4: "The sensor head is set parallel to the flow and its profile has been
//! smoothed to introduce low perturbations"; §5: the rig carried "a
//! transparent section for monitoring the water flow and the correct
//! position of the sensor in the tube". This ablation quantifies *why* the
//! position had to be monitored: the probe samples the velocity profile at a
//! point, so a probe displaced from its calibration position reads the wrong
//! fraction of the bulk velocity.

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::fluid::Water;
use hotwire_physics::pipe::Pipe;
use hotwire_physics::{MafParams, SensorEnvironment};
use hotwire_rig::campaign;
use hotwire_rig::Campaign;
use hotwire_units::{Celsius, MetersPerSecond};

/// One probe position's outcome.
#[derive(Debug, Clone, Copy)]
pub struct PositionPoint {
    /// Radial position as a fraction of the pipe radius (0 = centreline).
    pub r_over_radius: f64,
    /// Settled reading at 100 cm/s true bulk flow, cm/s.
    pub reading_cm_s: f64,
    /// Error vs the bulk truth, % of reading.
    pub error_pct: f64,
}

/// A3 results.
#[derive(Debug, Clone)]
pub struct ProbePositionResult {
    /// Points from centreline outward.
    pub points: Vec<PositionPoint>,
}

/// Runs A3: the calibration (probe at the centreline) is collected once and
/// shared; each radial position then evaluates on its own identically-built
/// replica, concurrently.
///
/// # Errors
///
/// Returns [`CoreError`] if a meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<ProbePositionResult, CoreError> {
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xA3)?;
    let bulk = MetersPerSecond::from_cm_per_s(100.0);
    let pipe = Pipe::dn50();
    let water = Water::potable();
    let temperature = Celsius::new(15.0);
    let radii = [0.0, 0.2, 0.4, 0.6, 0.8];
    let results = Campaign::new().map(&radii, |_, &r| -> Result<PositionPoint, CoreError> {
        let mut meter =
            campaign::build_meter(speed.config(), MafParams::nominal(), 0xA3, &calibration)?;
        // The displaced probe sees the profile at radius r instead of the
        // centreline it was calibrated against.
        let local = pipe.local_mean_velocity_at(&water, temperature, bulk, r);
        let env = SensorEnvironment {
            velocity: local,
            ..SensorEnvironment::still_water()
        };
        let m = meter
            .run(speed.seconds(15.0), env)
            .expect("control loop ran");
        let reading = m.speed.to_cm_per_s();
        Ok(PositionPoint {
            r_over_radius: r,
            reading_cm_s: reading,
            error_pct: (reading - 100.0),
        })
    });
    let points = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(ProbePositionResult { points })
}

impl core::fmt::Display for ProbePositionResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "A3 — probe insertion position (calibrated at centreline, 100 cm/s bulk)\n"
        )?;
        let mut t = Table::new(["r/R", "reading [cm/s]", "error [% of bulk]"]);
        for p in &self.points {
            t.row([
                format!("{:.1}", p.r_over_radius),
                format!("{:.1}", p.reading_cm_s),
                format!("{:+.1}", p.error_pct),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "the 1/7-power profile is flat near the axis (a centred probe is forgiving)\n\
             but collapses toward the wall — the paper's transparent section existed to\n\
             verify \"the correct position of the sensor in the tube\""
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_position_sensitivity_shape() {
        let r = run(Speed::Fast).unwrap();
        assert_eq!(r.points.len(), 5);
        // Near the axis the error is small…
        assert!(
            r.points[0].error_pct.abs() < 10.0,
            "centreline error {:+.1} %",
            r.points[0].error_pct
        );
        assert!(
            r.points[1].error_pct.abs() < 12.0,
            "r/R=0.2 error {:+.1} %",
            r.points[1].error_pct
        );
        // …and grows sharply toward the wall (monotone under-read).
        let near_wall = r.points.last().unwrap();
        assert!(
            near_wall.error_pct < -10.0,
            "near-wall error {:+.1} % should under-read hard",
            near_wall.error_pct
        );
    }
}
