//! E8 — Table II: comparison against commercial devices.
//!
//! Paper: "Compared to commercial devices, as for example magnetic system
//! like Promag 50 (resolution lower than ±0.5 % respect to full scale), this
//! implementation features a slightly higher noise but dramatically reduces
//! the cost of more than one order of magnitude … achieves the same accuracy
//! of the turbine wheel devices with cost reduction and improved
//! reliability since no mechanical moving parts are exposed in water."

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::MafParams;
use hotwire_rig::scenario::{Scenario, Schedule};
use hotwire_rig::{metrics, Campaign, Channel, RunSpec};

/// One instrument's scorecard.
#[derive(Debug, Clone)]
pub struct InstrumentScore {
    /// Instrument name.
    pub name: &'static str,
    /// ±σ resolution at 100 cm/s, % FS.
    pub resolution_pct_fs: f64,
    /// RMS tracking error over the settled staircase, cm/s.
    pub rms_error_cm_s: f64,
    /// 10–90 % response through the 50→150 cm/s step, s.
    pub response_s: Option<f64>,
    /// Detects flow direction.
    pub directional: bool,
    /// Has moving parts exposed to the water.
    pub moving_parts: bool,
    /// Relative unit cost (Promag 50 ≡ 1.0; paper: MEMS is >10× cheaper).
    pub relative_cost: f64,
}

/// E8 results.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// MEMS, Promag, turbine scorecards.
    pub instruments: Vec<InstrumentScore>,
}

/// Runs E8.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<ComparisonResult, CoreError> {
    let dwell = speed.seconds(16.0);
    // Steady 100 for resolution, then a 50→150 step for response, then a
    // short staircase for tracking error.
    let flow = Schedule::new()
        .then_hold(100.0, dwell)
        .then_hold(50.0, dwell)
        .then_hold(150.0, dwell)
        .then_hold(250.0, dwell)
        .then_hold(25.0, dwell);
    let scenario = Scenario {
        flow_cm_s: flow,
        ..Scenario::steady(0.0, 5.0 * dwell)
    };
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xE8)?;
    let spec = RunSpec::new("instrument-comparison", speed.config(), scenario, 0xE8)
        .with_calibration(calibration);
    let outcomes = Campaign::new().run(&[spec])?;
    let trace = &outcomes[0].trace;

    // All three instruments reduce over the same stored trace — per-channel
    // columnar slices instead of striding row structs with a picker.
    let store = &trace.samples;
    let settled_pairs = |channel: Channel| -> Vec<(f64, f64)> {
        store
            .ts()
            .iter()
            .zip(store.truth())
            .zip(store.channel(channel))
            .filter(|((&t, _), _)| (t / dwell).fract() > 0.7)
            .map(|((_, &truth), &y)| (truth, y))
            .collect()
    };
    let step = store.window(2.0 * dwell - 0.5, 3.0 * dwell);
    let resolution_window = store.window(dwell * 0.5, dwell);

    let score =
        |name: &'static str, channel: Channel, directional: bool, moving: bool, cost: f64| {
            InstrumentScore {
                name,
                resolution_pct_fs: metrics::resolution(
                    &store.channel(channel)[resolution_window.clone()],
                ) / 250.0
                    * 100.0,
                rms_error_cm_s: metrics::rms_error(&settled_pairs(channel)),
                response_s: metrics::rise_time_split(
                    &store.ts()[step.clone()],
                    &store.channel(channel)[step.clone()],
                    50.0,
                    150.0,
                ),
                directional,
                moving_parts: moving,
                relative_cost: cost,
            }
        };

    Ok(ComparisonResult {
        instruments: vec![
            score("MEMS hot-wire (this work)", Channel::Dut, true, false, 0.08),
            score("Promag 50 (magnetic)", Channel::Promag, true, false, 1.0),
            score("turbine wheel", Channel::Turbine, false, true, 0.35),
        ],
    })
}

impl core::fmt::Display for ComparisonResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "E8 / Table II — comparison against commercial devices\n")?;
        let mut t = Table::new([
            "instrument",
            "resolution [%FS]",
            "rms err [cm/s]",
            "response [s]",
            "direction",
            "moving parts",
            "rel. cost",
        ]);
        for i in &self.instruments {
            t.row([
                i.name.to_string(),
                format!("±{:.3}", i.resolution_pct_fs),
                format!("{:.2}", i.rms_error_cm_s),
                i.response_s
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".into()),
                if i.directional { "yes" } else { "no" }.into(),
                if i.moving_parts { "yes" } else { "no" }.into(),
                format!("{:.2}×", i.relative_cost),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "paper: MEMS slightly noisier than the Promag 50 (< ±0.5 % FS) but >10× cheaper;\n\
             same accuracy class as turbine meters with no moving parts in the water"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_comparison_shape() {
        let r = run(Speed::Fast).unwrap();
        let mems = &r.instruments[0];
        let promag = &r.instruments[1];
        let turbine = &r.instruments[2];
        // Paper shape: Promag is at least as clean as the MEMS probe…
        assert!(
            promag.resolution_pct_fs <= mems.resolution_pct_fs + 0.3,
            "promag ±{:.3} vs mems ±{:.3}",
            promag.resolution_pct_fs,
            mems.resolution_pct_fs
        );
        // …the MEMS probe is dramatically cheaper…
        assert!(mems.relative_cost < 0.1 * promag.relative_cost + 1e-9);
        // …only the turbine has moving parts, and it has no direction.
        assert!(turbine.moving_parts && !mems.moving_parts);
        assert!(mems.directional && !turbine.directional);
    }
}
