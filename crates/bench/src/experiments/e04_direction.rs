//! E4 — Table I: "the flow direction was clearly detected".
//!
//! A bidirectional sweep; within each settled window the detected sign must
//! match the true sign (stagnant segments may report indeterminate).

use super::Speed;
use crate::table::Table;
use hotwire_core::CoreError;
use hotwire_physics::MafParams;
use hotwire_rig::{Campaign, RunSpec, Scenario};

/// One directional segment's outcome.
#[derive(Debug, Clone, Copy)]
pub struct DirectionSegment {
    /// True flow in the segment, cm/s.
    pub true_cm_s: f64,
    /// Fraction of settled samples whose detected sign matched.
    pub agreement: f64,
}

/// E4 results.
#[derive(Debug, Clone)]
pub struct DirectionResult {
    /// Per-segment agreement.
    pub segments: Vec<DirectionSegment>,
    /// Overall agreement over flowing segments.
    pub overall: f64,
}

/// Runs E4.
///
/// # Errors
///
/// Returns [`CoreError`] if the meter cannot be built or calibrated.
pub fn run(speed: Speed) -> Result<DirectionResult, CoreError> {
    let dwell = speed.seconds(10.0);
    let calibration = super::shared_calibration(speed.config(), MafParams::nominal(), speed, 0xE4)?;
    let spec = RunSpec::new(
        "direction-sweep",
        speed.config(),
        Scenario::direction_sweep(80.0, dwell),
        0xE4,
    )
    .with_calibration(calibration)
    .with_auto_zero(speed.seconds(2.0))
    .with_sample_period(0.05);
    let outcomes = Campaign::new().run(&[spec])?;
    let trace = &outcomes[0].trace;

    let levels = [80.0, 0.0, -80.0, 0.0, 80.0, -80.0];
    let mut segments = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    for (k, &level) in levels.iter().enumerate() {
        let t0 = k as f64 * dwell + 0.5 * dwell;
        let t1 = (k + 1) as f64 * dwell;
        // Columnar slice of the settled window — no per-sample refs.
        let window = trace.samples.dut_in(t0, t1);
        if window.is_empty() {
            continue;
        }
        let agree = window
            .iter()
            .filter(|&&dut| {
                if level > 0.0 {
                    dut > 0.0
                } else if level < 0.0 {
                    dut < 0.0
                } else {
                    true // stagnant: any report acceptable
                }
            })
            .count();
        if level != 0.0 {
            hits += agree;
            total += window.len();
        }
        segments.push(DirectionSegment {
            true_cm_s: level,
            agreement: agree as f64 / window.len() as f64,
        });
    }
    Ok(DirectionResult {
        segments,
        overall: hits as f64 / total.max(1) as f64,
    })
}

impl core::fmt::Display for DirectionResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "E4 / Table I — flow-direction detection (±80 cm/s sweep)\n"
        )?;
        let mut t = Table::new(["segment flow [cm/s]", "sign agreement"]);
        for s in &self.segments {
            t.row([
                format!("{:.0}", s.true_cm_s),
                format!("{:.0} %", s.agreement * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "overall agreement on flowing segments: {:.1} %   (paper: \"clearly detected\")",
            self.overall * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_direction_clearly_detected() {
        let r = run(Speed::Fast).unwrap();
        assert!(
            r.overall > 0.9,
            "direction agreement {:.2} below 'clearly detected'",
            r.overall
        );
    }
}
