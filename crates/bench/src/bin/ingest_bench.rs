//! `ingest_bench` — measures the telemetry ingest pipeline and guards it
//! against regressions.
//!
//! The load generator is the simulator itself: the F3 fleet template
//! (ADC faults + UART corruption on every 3rd line, fast AFE tier, 5 ms
//! telemetry cadence) is wiretapped once into a small corpus of captured
//! byte streams, which is then replayed across thousands of *virtual*
//! lines — so the measured phase is pure ingest (framing + CRC + record
//! parse + session state + census), with zero simulation cost inside the
//! timed region.
//!
//! Measurements, written to `BENCH_ingest.json`:
//!
//! * **throughput** — frames/s through the full parse+session+census
//!   pipeline at a pinned 2-job count (the gated headline), plus the
//!   process default (informational). The headline is hard-gated at
//!   ≥ 1 M frames/s;
//! * **jobs-invariance** — the merged ingest report at `--jobs` 1, 2 and
//!   3 must be bit-identical (hard gate, compared by digest);
//! * **accounting** — the byte ledger over the whole replay: every wire
//!   byte either decoded into a frame, was skipped hunting, or was
//!   counted discarded (hard gate).
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin ingest_bench
//! cargo run -p hotwire-bench --release --bin ingest_bench -- --smoke --out out.json
//! cargo run -p hotwire-bench --release --bin ingest_bench -- --smoke --check BENCH_ingest.json
//! ```
//!
//! `--check BASELINE` compares the freshly measured headline frames/s
//! against the committed baseline and exits non-zero if it regressed by
//! more than 10 %.

use hotwire_bench::experiments::f3_ingest;
use hotwire_core::config::{fnv1a64, AfeTier};
use hotwire_rig::ingest::{absorb, feed, IngestConfig, IngestReport, LineIngest, MeterSession};
use hotwire_rig::record::{HealthCensus, PolicyRecorder, RecordPolicy};
use hotwire_rig::{exec, Fidelity, IngestStats, LineConfig};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: ingest_bench [--smoke] [--out PATH] [--check BASELINE]
options:
  --smoke          scaled-down jobs-invariance replays for CI (512 virtual
                   lines instead of 4096); the headline replay keeps its
                   full 4096 lines so frames/s stays comparable with a
                   committed full baseline
  --out PATH       where to write the JSON report (default: BENCH_ingest.json)
  --check BASELINE compare against a committed BENCH_ingest.json; exit 1 if
                   the headline frames/s regressed more than 10 %";

/// Fraction of the baseline's throughput the fresh measurement may lose
/// before `--check` fails (the ISSUE's soak gate: a ≥ 10 % frames/s drop
/// is a regression).
const REGRESSION_TOLERANCE: f64 = 0.10;

/// The job count the gated headline is measured at — pinned so the number
/// is comparable across machines with different core counts.
const HEADLINE_JOBS: usize = 2;

/// Hard floor on the gated headline: the soak config must push at least
/// this many frames/s through parse + session + census.
const MIN_FRAMES_PER_S: f64 = 1_000_000.0;

/// Simulated lines wiretapped into the replay corpus.
const CORPUS_LINES: usize = 8;
/// Scenario seconds per corpus line.
const CORPUS_DURATION_S: f64 = 3.0;
/// Telemetry cadence of the corpus, seconds per record (5 ms ⇒ ~600
/// frames per corpus line).
const CORPUS_CADENCE_S: f64 = 0.005;

/// One wiretapped line of the corpus.
struct CapturedLine {
    wire: Vec<u8>,
    frames_sent: u64,
    truth: HealthCensus,
}

/// Wiretaps the F3 fleet template at bench scale: fast AFE tier and a
/// 5 ms telemetry cadence, every 3rd line corrupt.
fn capture_corpus() -> Result<Vec<CapturedLine>, String> {
    let spec = f3_ingest::fleet_spec(CORPUS_LINES, CORPUS_DURATION_S)
        .with_config(LineConfig::new().with_afe_tier(AfeTier::Fast))
        .with_sample_period(CORPUS_CADENCE_S);
    let lines: Vec<usize> = (0..CORPUS_LINES).collect();
    let captured = exec::parallel_map_indexed(&lines, exec::default_jobs(), |_, &line| {
        let run_spec = spec.line_spec(line);
        let mut recorder =
            PolicyRecorder::new(RecordPolicy::MetricsOnly, run_spec.reduction_plan());
        let (tail, _meter, wire) = run_spec
            .execute_wiretapped(&mut recorder)
            .map_err(|e| e.to_string())?;
        let (_, reduced) = recorder.finish();
        Ok::<CapturedLine, String>(CapturedLine {
            wire,
            frames_sent: tail.uart.frames_sent,
            truth: reduced.health_census,
        })
    });
    captured.into_iter().collect()
}

/// One replay measurement: `virtual_lines` sessions, line `i` fed corpus
/// stream `i % corpus.len()`, merged in line order.
struct Replay {
    report: IngestReport,
    frames_sent: u64,
    bytes: u64,
    wall_s: f64,
}

impl Replay {
    fn frames_per_s(&self) -> f64 {
        self.frames_sent as f64 / self.wall_s
    }

    /// The jobs-invariance witness: FNV-1a over the `Debug` rendering of
    /// every merged counter block.
    fn digest(&self) -> u64 {
        let r = &self.report;
        fnv1a64(
            format!(
                "{:?}|{:?}|{:?}|{:?}|{}|{}",
                r.stats, r.census, r.truth, r.fidelity, r.frames_sent, r.lines_silent
            )
            .as_bytes(),
        )
    }
}

/// Best-of-`rounds` replay (after one warmup pass): the replay is
/// deterministic, so every round produces the same report and the max
/// frames/s is the least noise-contaminated measurement — this keeps the
/// smoke and full headlines comparable on loaded CI machines.
fn best_replay(
    corpus: &[CapturedLine],
    virtual_lines: usize,
    jobs: usize,
    rounds: usize,
) -> Replay {
    let mut best = replay(corpus, virtual_lines, jobs); // warmup
    for _ in 0..rounds {
        let run = replay(corpus, virtual_lines, jobs);
        if run.frames_per_s() > best.frames_per_s() {
            best = run;
        }
    }
    best
}

fn replay(corpus: &[CapturedLine], virtual_lines: usize, jobs: usize) -> Replay {
    let config = IngestConfig {
        nominal_tick_gap: 0, // learned per session from the first gap
        ..IngestConfig::default()
    };
    let lines: Vec<usize> = (0..virtual_lines).collect();
    let start = Instant::now();
    let ingested = exec::parallel_map_indexed(&lines, jobs, |_, &line| {
        let source = &corpus[line % corpus.len()];
        let mut session = MeterSession::new(line, config);
        feed(&mut session, &source.wire, config.chunk_bytes);
        session.finish();
        LineIngest {
            line,
            stats: session.stats(),
            census: *session.census(),
            truth: source.truth,
            frames_sent: source.frames_sent,
            last_health: session.last_health(),
            alerts: session.alerts().to_vec(),
        }
    });
    let mut report = IngestReport {
        lines: virtual_lines,
        stats: IngestStats::default(),
        census: HealthCensus::default(),
        truth: HealthCensus::default(),
        frames_sent: 0,
        lines_silent: 0,
        fidelity: Fidelity::default(),
        sample_alerts: Vec::new(),
    };
    for line in &ingested {
        absorb(&mut report, line, config.alert_capacity);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let bytes: u64 = (0..virtual_lines)
        .map(|i| corpus[i % corpus.len()].wire.len() as u64)
        .sum();
    let frames_sent = report.frames_sent;
    Replay {
        report,
        frames_sent,
        bytes,
        wall_s,
    }
}

/// The byte-ledger gate over a merged report: every replayed wire byte is
/// accounted for by the decode counters (decoded frame bytes + hunting
/// skips + discards; sessions are flushed, so nothing stays in flight).
fn ledger_holds(r: &Replay) -> bool {
    let link = &r.report.stats.link;
    // Each decoded frame carried a RECORD-sized payload + 4 framing bytes;
    // malformed payloads still decoded as frames of their own length, so
    // reconstruct from good_frames only when lengths are uniform — here
    // every corpus frame is a 16-byte record, 20 wire bytes.
    let frame_bytes = link.good_frames * 20;
    r.bytes == link.resyncs + frame_bytes + link.discarded_bytes
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn replay_json(r: &Replay, jobs: usize) -> String {
    let s = &r.report.stats;
    format!(
        "{{\"jobs\": {jobs}, \"lines\": {}, \"frames_sent\": {}, \"records\": {}, \
         \"bytes\": {}, \"wall_s\": {}, \"frames_per_s\": {}, \"crc_errors\": {}, \
         \"recovered_frames\": {}, \"records_lost\": {}, \"alerts_raised\": {}, \
         \"detection_fidelity\": {}, \"digest\": \"{:016x}\"}}",
        r.report.lines,
        r.frames_sent,
        s.records.records,
        r.bytes,
        json_number(r.wall_s),
        json_number(r.frames_per_s()),
        s.link.crc_errors,
        s.link.recovered_frames,
        s.records_lost,
        s.alerts_raised,
        json_number(r.report.fidelity.detection_accuracy()),
        r.digest()
    )
}

/// Pulls `"headline_frames_per_s": <number>` out of a baseline report
/// without a JSON parser (the repo vendors no serde_json).
fn parse_headline(baseline: &str) -> Option<f64> {
    let key = "\"headline_frames_per_s\":";
    let at = baseline.find(key)? + key.len();
    let rest = baseline[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = "BENCH_ingest.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The headline replay is full-size in both modes — a short timed
    // region would systematically under-measure frames/s (thread-spawn
    // overhead dominates) and trip the 10 % gate without any regression.
    // Smoke only shrinks the three jobs-invariance replays.
    let virtual_lines = 4096;
    let invariance_lines = if smoke { 512 } else { virtual_lines };

    eprintln!(
        "ingest: wiretapping corpus ({CORPUS_LINES} lines × {CORPUS_DURATION_S} s at \
         {CORPUS_CADENCE_S} s cadence)…"
    );
    let corpus = match capture_corpus() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus capture failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let corpus_bytes: usize = corpus.iter().map(|c| c.wire.len()).sum();
    let corpus_frames: u64 = corpus.iter().map(|c| c.frames_sent).sum();
    eprintln!("  {corpus_frames} frames, {corpus_bytes} wire bytes captured");

    eprintln!("ingest: {virtual_lines} virtual lines at --jobs {HEADLINE_JOBS} (headline)…");
    let pinned = best_replay(&corpus, virtual_lines, HEADLINE_JOBS, 5);
    eprintln!(
        "  {:.2} M frames/s ({} frames, {} records, {:.3} s)",
        pinned.frames_per_s() / 1e6,
        pinned.frames_sent,
        pinned.report.stats.records.records,
        pinned.wall_s
    );

    // Hard gate: the soak config must sustain the headline floor.
    if pinned.frames_per_s() < MIN_FRAMES_PER_S {
        eprintln!(
            "ingest throughput below the hard floor: {:.0} frames/s < {:.0}",
            pinned.frames_per_s(),
            MIN_FRAMES_PER_S
        );
        return ExitCode::FAILURE;
    }

    // Hard gate: the merged report must be bit-identical at any job count.
    eprintln!("ingest: jobs-invariance ({invariance_lines} lines at --jobs 1/2/3)…");
    let d1 = replay(&corpus, invariance_lines, 1).digest();
    let d2 = replay(&corpus, invariance_lines, 2).digest();
    let d3 = replay(&corpus, invariance_lines, 3).digest();
    if d1 != d2 || d2 != d3 {
        eprintln!("ingest report DIVERGED across jobs: {d1:016x} / {d2:016x} / {d3:016x}");
        return ExitCode::FAILURE;
    }
    eprintln!("  identical bits: digest {d2:016x}");

    // Hard gate: the byte ledger closes over the whole replay.
    if !ledger_holds(&pinned) {
        let link = &pinned.report.stats.link;
        eprintln!(
            "byte ledger broken: {} bytes != resyncs {} + frames {}×20 + discarded {}",
            pinned.bytes, link.resyncs, link.good_frames, link.discarded_bytes
        );
        return ExitCode::FAILURE;
    }
    eprintln!("  byte ledger closed over {} bytes", pinned.bytes);

    let default_jobs = exec::default_jobs();
    eprintln!("ingest: same replay at --jobs {default_jobs} (informational)…");
    let auto = best_replay(&corpus, virtual_lines, default_jobs, 1);
    eprintln!("  {:.2} M frames/s", auto.frames_per_s() / 1e6);

    let headline = pinned.frames_per_s();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"headline_frames_per_s\": {},\n  \
         \"headline_jobs\": {HEADLINE_JOBS},\n  \"corpus\": {{\"lines\": {CORPUS_LINES}, \
         \"seconds_per_line\": {CORPUS_DURATION_S}, \"cadence_s\": {CORPUS_CADENCE_S}, \
         \"frames\": {corpus_frames}, \"bytes\": {corpus_bytes}}},\n  \"replay\": {{\n    \
         \"pinned_jobs\": {},\n    \"default_jobs\": {}\n  }},\n  \
         \"jobs_invariance_digest\": \"{:016x}\",\n  \
         \"default_jobs_resolved\": {default_jobs}\n}}\n",
        json_number(headline),
        replay_json(&pinned, HEADLINE_JOBS),
        replay_json(&auto, default_jobs),
        d2,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(expected) = parse_headline(&baseline) else {
            eprintln!("baseline {baseline_path} has no headline_frames_per_s");
            return ExitCode::FAILURE;
        };
        let floor = expected * (1.0 - REGRESSION_TOLERANCE);
        if headline < floor {
            eprintln!(
                "ingest throughput regressed: {headline:.0} frames/s vs baseline \
                 {expected:.0} (floor {floor:.0})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput check passed: {headline:.0} frames/s vs baseline {expected:.0}");
    }
    ExitCode::SUCCESS
}
