//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin repro -- all
//! cargo run -p hotwire-bench --release --bin repro -- e1 e5
//! cargo run -p hotwire-bench --release --bin repro -- --fast e2
//! ```

use hotwire_bench::experiments::{self, Speed};
use std::process::ExitCode;

const USAGE: &str = "usage: repro [--fast] <experiment…|all>
experiments:
  e1   Fig. 11 — water-speed staircase vs Promag 50
  e2   Table I — resolution across the range
  e3   Table I — repeatability
  e4   Table I — flow-direction detection
  e5   Fig. 7  — bubble generation vs drive scheme
  e6   Fig. 8  — CaCO₃ deposition vs passivation
  e7   §5      — pressure robustness (0–3 bar, 7 bar peaks)
  e8   Table II— comparison vs Promag 50 and turbine wheel
  e9   §2      — King's-law calibration / nonlinearity
  e10  §4      — output-filter bandwidth ablation
  e11  §7      — battery autonomy
  e12  §2      — CT vs CC vs CP under fluid-temperature change
  a1   ablation — PI gain design-space exploration
  a2   ablation — decimation-ratio sweep
  a3   ablation — probe insertion position";

fn dispatch(id: &str, speed: Speed) -> Result<String, Box<dyn std::error::Error>> {
    Ok(match id {
        "e1" => experiments::e01_staircase::run(speed)?.to_string(),
        "e2" => experiments::e02_resolution::run(speed)?.to_string(),
        "e3" => experiments::e03_repeatability::run(speed)?.to_string(),
        "e4" => experiments::e04_direction::run(speed)?.to_string(),
        "e5" => experiments::e05_bubbles::run(speed)?.to_string(),
        "e6" => experiments::e06_fouling::run(speed)?.to_string(),
        "e7" => experiments::e07_pressure::run(speed)?.to_string(),
        "e8" => experiments::e08_comparison::run(speed)?.to_string(),
        "e9" => experiments::e09_kings_law::run(speed)?.to_string(),
        "e10" => experiments::e10_filter::run(speed)?.to_string(),
        "e11" => experiments::e11_power::run(speed)?.to_string(),
        "e12" => experiments::e12_modes::run(speed)?.to_string(),
        "a1" => experiments::a01_pi_gains::run(speed)?.to_string(),
        "a2" => experiments::a02_decimation::run(speed)?.to_string(),
        "a3" => experiments::a03_probe_position::run(speed)?.to_string(),
        other => return Err(format!("unknown experiment `{other}`\n{USAGE}").into()),
    })
}

const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
];

fn main() -> ExitCode {
    let mut speed = Speed::Full;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fast" => speed = Speed::Fast,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    for id in &ids {
        let started = std::time::Instant::now();
        match dispatch(id, speed) {
            Ok(report) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
                println!(
                    "[{id} completed in {:.1} s]\n",
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("{id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
