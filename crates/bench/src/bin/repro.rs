//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Experiments are independent, so `repro` runs the requested set through
//! the same deterministic campaign executor the experiments themselves use
//! internally ([`hotwire_rig::Campaign`]): reports print in request order
//! and are bit-for-bit identical for any `--jobs` value.
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin repro -- all
//! cargo run -p hotwire-bench --release --bin repro -- --jobs 4 all
//! cargo run -p hotwire-bench --release --bin repro -- e1 e5
//! cargo run -p hotwire-bench --release --bin repro -- --fast --json out.json e2
//! ```

use hotwire_bench::experiments::{self, Speed};
use hotwire_rig::obs::{self, ScopeObs};
use hotwire_rig::{exec, Campaign, Histogram};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: repro [--fast] [--jobs N] [--json PATH] [--no-obs] <experiment…|all>
options:
  --fast       scaled-down scenarios (the integration-test profile)
  --jobs N     worker threads for campaigns (default: all cores; 1 = serial)
  --json PATH  also write wall-clock + headline metrics + observability
               (counters, histograms, samples/s) as JSON
  --no-obs     skip run instrumentation (for measuring its overhead;
               results are identical either way, by construction)
experiments:
  e1   Fig. 11 — water-speed staircase vs Promag 50
  e2   Table I — resolution across the range
  e3   Table I — repeatability
  e4   Table I — flow-direction detection
  e5   Fig. 7  — bubble generation vs drive scheme
  e6   Fig. 8  — CaCO₃ deposition vs passivation
  e7   §5      — pressure robustness (0–3 bar, 7 bar peaks)
  e8   Table II— comparison vs Promag 50 and turbine wheel
  e9   §2      — King's-law calibration / nonlinearity
  e10  §4      — output-filter bandwidth ablation
  e11  §7      — battery autonomy
  e12  §2      — CT vs CC vs CP under fluid-temperature change
  a1   ablation — PI gain design-space exploration
  a2   ablation — decimation-ratio sweep
  a3   ablation — probe insertion position
  f1   §6      — fault-injection matrix: detection / worst error / recovery
  f2   §6      — fleet simulation: population percentiles / health census
  f3   §6      — telemetry ingest: wire-derived census / detection fidelity
  f4   §6      — fleet maintenance: recalibration cost vs population accuracy
  m1   modality — CTA vs heat-pulse time-of-flight: resolution / power / fouling";

/// One experiment's rendered report plus its headline numbers for `--json`.
struct Report {
    text: String,
    metrics: Vec<(&'static str, f64)>,
}

fn dispatch(id: &str, speed: Speed) -> Result<Report, String> {
    let err = |e: hotwire_core::CoreError| e.to_string();
    Ok(match id {
        "e1" => {
            let r = experiments::e01_staircase::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    ("dut_rms_cm_s", r.dut_rms_cm_s),
                    ("linearity_pct_fs", r.linearity_pct_fs),
                    ("hysteresis_pct_fs", r.hysteresis_pct_fs),
                ],
                text: r.to_string(),
            }
        }
        "e2" => {
            let r = experiments::e02_resolution::run(speed).map_err(err)?;
            let worst = r
                .points
                .iter()
                .map(|p| p.resolution_pct_fs)
                .fold(0.0, f64::max);
            Report {
                metrics: vec![("worst_resolution_pct_fs", worst)],
                text: r.to_string(),
            }
        }
        "e3" => {
            let r = experiments::e03_repeatability::run(speed).map_err(err)?;
            Report {
                metrics: vec![("repeatability_pct_fs", r.repeatability_pct_fs)],
                text: r.to_string(),
            }
        }
        "e4" => {
            let r = experiments::e04_direction::run(speed).map_err(err)?;
            Report {
                metrics: vec![("direction_agreement", r.overall)],
                text: r.to_string(),
            }
        }
        "e5" => {
            let r = experiments::e05_bubbles::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    ("naive_peak_coverage", r.cases[0].peak_coverage),
                    ("reduced_peak_coverage", r.cases[1].peak_coverage),
                    ("pulsed_peak_coverage", r.cases[2].peak_coverage),
                ],
                text: r.to_string(),
            }
        }
        "e6" => {
            let r = experiments::e06_fouling::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    ("realistic_bare_um", r.realistic_bare_um),
                    ("realistic_passivated_um", r.realistic_passivated_um),
                ],
                text: r.to_string(),
            }
        }
        "e7" => {
            let r = experiments::e07_pressure::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    (
                        "paper_worst_deviation_cm_s",
                        r.cases[0].worst_deviation_cm_s,
                    ),
                    ("paper_peak_coverage", r.cases[0].peak_coverage),
                ],
                text: r.to_string(),
            }
        }
        "e8" => {
            let r = experiments::e08_comparison::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    ("mems_resolution_pct_fs", r.instruments[0].resolution_pct_fs),
                    ("mems_rms_error_cm_s", r.instruments[0].rms_error_cm_s),
                ],
                text: r.to_string(),
            }
        }
        "e9" => {
            let r = experiments::e09_kings_law::run(speed).map_err(err)?;
            Report {
                metrics: vec![
                    ("king_worst_cm_s", r.king_worst()),
                    ("linear_worst_cm_s", r.linear_worst()),
                    ("king_exponent_n", r.n),
                ],
                text: r.to_string(),
            }
        }
        "e10" => {
            let r = experiments::e10_filter::run(speed).map_err(err)?;
            let narrow = r
                .points
                .last()
                .ok_or_else(|| "e10: filter sweep produced no points".to_string())?;
            Report {
                metrics: vec![("narrowest_resolution_cm_s", narrow.resolution_cm_s)],
                text: r.to_string(),
            }
        }
        "e11" => {
            let r = experiments::e11_power::run(speed).map_err(err)?;
            Report {
                metrics: vec![("typical_autonomy_days", r.typical().autonomy_days)],
                text: r.to_string(),
            }
        }
        "e12" => {
            let r = experiments::e12_modes::run(speed).map_err(err)?;
            Report {
                metrics: vec![("ct_drift_pct", r.ct().drift_pct)],
                text: r.to_string(),
            }
        }
        "a1" => {
            let r = experiments::a01_pi_gains::run(speed).map_err(err)?;
            let railed = r.points.iter().filter(|p| p.railed).count();
            Report {
                metrics: vec![("railed_gain_points", railed as f64)],
                text: r.to_string(),
            }
        }
        "a2" => {
            let r = experiments::a02_decimation::run(speed).map_err(err)?;
            let silicon = r
                .points
                .iter()
                .find(|p| p.ratio == 256)
                .or_else(|| r.points.last())
                .ok_or_else(|| "a2: decimation sweep produced no points".to_string())?;
            Report {
                metrics: vec![("r256_resolution_cm_s", silicon.resolution_cm_s)],
                text: r.to_string(),
            }
        }
        "a3" => {
            let r = experiments::a03_probe_position::run(speed).map_err(err)?;
            let wall = r
                .points
                .last()
                .ok_or_else(|| "a3: position sweep produced no points".to_string())?;
            Report {
                metrics: vec![("near_wall_error_pct", wall.error_pct)],
                text: r.to_string(),
            }
        }
        "f1" => {
            let r = experiments::f1_faults::run(speed).map_err(err)?;
            let worst = r
                .cases
                .iter()
                .map(|c| c.worst_error_cm_s)
                .fold(0.0, f64::max);
            Report {
                metrics: vec![
                    ("stuck_adc_detect_s", r.case("adc stuck").detect_s),
                    ("stuck_adc_recover_s", r.case("adc stuck").recover_s),
                    ("eeprom_detect_s", r.case("eeprom bit flip").detect_s),
                    (
                        "uart_frames_lost",
                        r.case("uart corruption").frames_lost as f64,
                    ),
                    ("worst_error_cm_s", worst),
                ],
                text: r.to_string(),
            }
        }
        "f2" => {
            let r = experiments::f2_fleet::run(speed).map_err(|e| e.to_string())?;
            let a = &r.outcome.aggregates;
            Report {
                metrics: vec![
                    ("fleet_lines", a.lines as f64),
                    ("resolution_p50_pct_fs", a.resolution_pct_fs.p50),
                    ("resolution_p99_pct_fs", a.resolution_pct_fs.p99),
                    ("repeatability_pct_fs", a.repeatability_pct_fs),
                    ("lines_faulted", a.lines_faulted as f64),
                    ("trace_heap_bytes", a.trace_heap_bytes as f64),
                ],
                text: r.to_string(),
            }
        }
        "f3" => {
            let r = experiments::f3_ingest::run(speed).map_err(err)?;
            let rep = &r.report;
            Report {
                metrics: vec![
                    ("ingest_lines", rep.lines as f64),
                    ("detection_fidelity", rep.fidelity.detection_accuracy()),
                    ("delivery_ratio", rep.delivery_ratio()),
                    ("frames_sent", rep.frames_sent as f64),
                    ("records_decoded", rep.stats.records.records as f64),
                    ("records_lost", rep.stats.records_lost as f64),
                    ("crc_errors", rep.stats.link.crc_errors as f64),
                    ("recovered_frames", rep.stats.link.recovered_frames as f64),
                    ("alerts_raised", rep.stats.alerts_raised as f64),
                ],
                text: r.to_string(),
            }
        }
        "f4" => {
            let r = experiments::f4_maintenance::run(speed).map_err(|e| e.to_string())?;
            let cell = |policy: &str, modality| r.cell(policy, modality);
            let cta = hotwire_rig::Modality::Cta;
            let hp = hotwire_rig::Modality::HeatPulse;
            Report {
                metrics: vec![
                    ("f4_none_cta_err_p99_cm_s", cell("none", cta).err_p99_cm_s),
                    ("f4_none_hp_err_p99_cm_s", cell("none", hp).err_p99_cm_s),
                    (
                        "f4_scheduled_cta_persists_per_line",
                        cell("scheduled", cta).persists_per_line,
                    ),
                    (
                        "f4_scheduled_cta_err_p99_cm_s",
                        cell("scheduled", cta).err_p99_cm_s,
                    ),
                    (
                        "f4_event_cta_persists_per_line",
                        cell("event_triggered", cta).persists_per_line,
                    ),
                    (
                        "f4_event_cta_err_p99_cm_s",
                        cell("event_triggered", cta).err_p99_cm_s,
                    ),
                    (
                        "f4_hybrid_cta_actions_per_line",
                        cell("hybrid", cta).actions_per_line,
                    ),
                    (
                        "f4_hybrid_hp_actions_per_line",
                        cell("hybrid", hp).actions_per_line,
                    ),
                    ("f4_hybrid_hp_err_p99_cm_s", cell("hybrid", hp).err_p99_cm_s),
                ],
                text: r.to_string(),
            }
        }
        "m1" => {
            let r = experiments::m1_modality::run(speed)?;
            let cta = r.case(hotwire_rig::Modality::Cta);
            let hp = r.case(hotwire_rig::Modality::HeatPulse);
            Report {
                metrics: vec![
                    ("m1_cta_resolution_p50_pct_fs", cta.resolution_p50_pct_fs),
                    ("m1_hp_resolution_p50_pct_fs", hp.resolution_p50_pct_fs),
                    ("m1_cta_power_mw", cta.power_mw),
                    ("m1_hp_power_mw", hp.power_mw),
                    ("m1_cta_fouling_shift_pct", cta.fouling_shift_pct),
                    ("m1_hp_fouling_shift_pct", hp.fouling_shift_pct),
                ],
                text: r.to_string(),
            }
        }
        other => return Err(format!("unknown experiment `{other}`")),
    })
}

const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
    "f1", "f2", "f3", "f4", "m1",
];

/// Minimal JSON string escaping (we have no JSON dependency by design).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite f64 as JSON; NaN/∞ become `null` (JSON has no spelling for them).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Flat counters as a JSON object, in the stable `as_pairs` order.
fn json_counters(c: &obs::Counters) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in c.as_pairs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {value}"));
    }
    out.push('}');
    out
}

/// A histogram as a JSON object; the bucket layout travels with the counts
/// so consumers can reconstruct edges without out-of-band knowledge.
fn json_histogram(h: &Histogram) -> String {
    let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
    format!(
        "{{\"lo\": {}, \"bucket_width\": {}, \"counts\": [{}], \
         \"underflow\": {}, \"overflow\": {}, \"total\": {}, \"mean\": {}}}",
        h.lo,
        h.bucket_width,
        counts.join(", "),
        h.underflow,
        h.overflow,
        h.total,
        json_number(h.mean())
    )
}

/// One registry scope (or the cross-experiment total) as a JSON object.
/// `wall_s` and `samples_per_s` are profiling — everything else is
/// deterministic and jobs-invariant.
fn json_scope(s: &ScopeObs) -> String {
    format!(
        "{{\"campaigns\": {}, \"runs\": {}, \"wall_s\": {}, \"samples_per_s\": {}, \
         \"counters\": {}, \"pi_output\": {}, \"latency_ticks\": {}}}",
        s.campaigns,
        s.runs,
        json_number(s.wall_s),
        json_number(s.samples_per_s()),
        json_counters(&s.counters),
        json_histogram(&s.pi_output),
        json_histogram(&s.latency_ticks)
    )
}

/// Folds every experiment scope into one cross-experiment aggregate.
fn registry_total(registry: &BTreeMap<String, ScopeObs>) -> ScopeObs {
    let mut total = ScopeObs::default();
    for s in registry.values() {
        total.campaigns += s.campaigns;
        total.runs += s.runs;
        total.counters.merge(&s.counters);
        total.pi_output.merge(&s.pi_output);
        total.latency_ticks.merge(&s.latency_ticks);
        total.wall_s += s.wall_s;
    }
    total
}

fn write_json(
    path: &str,
    speed: Speed,
    jobs: usize,
    rows: &[(String, Result<Report, String>, f64)],
    registry: &BTreeMap<String, ScopeObs>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"speed\": \"{}\",\n",
        match speed {
            Speed::Full => "full",
            Speed::Fast => "fast",
        }
    ));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, result, wall_s)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_s\": {}, ",
            json_escape(id),
            json_number(*wall_s)
        ));
        match result {
            Ok(report) => {
                out.push_str("\"ok\": true, \"metrics\": {");
                for (j, (name, value)) in report.metrics.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "\"{}\": {}",
                        json_escape(name),
                        json_number(*value)
                    ));
                }
                out.push_str("}}");
            }
            Err(e) => {
                out.push_str(&format!(
                    "\"ok\": false, \"error\": \"{}\"}}",
                    json_escape(e)
                ));
            }
        }
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"obs\": {\n");
    out.push_str(&format!(
        "    \"total\": {},\n",
        json_scope(&registry_total(registry))
    ));
    out.push_str("    \"per_experiment\": {\n");
    for (i, (label, scope)) in registry.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {}{}\n",
            json_escape(label),
            json_scope(scope),
            if i + 1 < registry.len() { "," } else { "" }
        ));
    }
    out.push_str("    }\n");
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let mut speed = Speed::Full;
    let mut json_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => speed = Speed::Fast,
            "--no-obs" => obs::set_default_enabled(false),
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Some(n) = jobs {
        exec::set_default_jobs(n);
    }
    let jobs = exec::default_jobs();

    // Fan the experiments themselves across the campaign executor. Inner
    // campaigns nest harmlessly (scoped threads, no global pool) and the
    // index-ordered merge keeps reports in request order regardless of
    // which experiment finishes first. The obs scope is installed inside
    // the closure because it is thread-local and the closure runs on a
    // worker thread: every campaign an experiment executes records its
    // merged observability under that experiment's id.
    let rows: Vec<(String, Result<Report, String>, f64)> = Campaign::new().map(&ids, |_, id| {
        let started = std::time::Instant::now();
        let result = obs::scoped(id, || dispatch(id, speed));
        (id.clone(), result, started.elapsed().as_secs_f64())
    });
    let registry = obs::take_registry();

    let mut failed = false;
    for (id, result, wall_s) in &rows {
        match result {
            Ok(report) => {
                println!("{}", "=".repeat(78));
                println!("{}", report.text);
                println!("[{id} completed in {wall_s:.1} s]\n");
            }
            Err(e) => {
                eprintln!("{id}: {e}");
                failed = true;
            }
        }
    }
    let total = registry_total(&registry);
    if total.runs > 0 {
        println!(
            "[obs] {} campaigns, {} runs, {} modulator steps, {:.2} Msteps/s aggregate",
            total.campaigns,
            total.runs,
            total.counters.modulator_steps,
            total.samples_per_s() / 1e6
        );
    }
    if let Some(path) = &json_path {
        if let Err(e) = write_json(path, speed, jobs, &rows, &registry) {
            eprintln!("--json {path}: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
