//! `fleet_bench` — measures the fleet engine and guards it against
//! regressions.
//!
//! Measurements, written to `BENCH_fleet.json`:
//!
//! * **throughput** — the F2 fleet population (seed-diverse lines, ±5 %
//!   demand jitter, faults on every 10th line) executed end to end:
//!   lines/s and streamed samples/s, at a pinned 2-job count (the gated
//!   headline, comparable across machines with ≥ 2 cores), again at the
//!   process default, and once more on the opt-in fast AFE tier (both
//!   informational);
//! * **memory** — retained bytes per line: small fleets keep one compact
//!   [`LineSummary`] per line and **zero** trace bytes (`MetricsOnly` is
//!   forced by the engine); the run fails outright if the measured trace
//!   heap is non-zero;
//! * **scale** — a large fast-tier fleet (100 k lines full, 2 k smoke)
//!   run as independent shards on the sketch path: per-shard accumulator
//!   heap stays fixed (gated below 64 KiB) and no per-line summaries are
//!   retained, demonstrating O(shard) memory at any population size;
//! * **sharded equivalence** — the headline population re-run as shards
//!   and merged must reproduce the monolithic aggregates bit for bit
//!   (hard gate, compared by digest);
//! * **mixed-modality equivalence** — a fleet mixing heat-pulse DUT
//!   lines with Promag reference comparators (every modality behind the
//!   generic `Meter` engine) must be jobs-invariant and reproduce its
//!   monolithic bits when run as shards and merged (hard gate);
//! * **maintenance overhead** — the headline population re-run with the
//!   F4 hybrid maintenance policy live on every line must hold lines/s
//!   within 10 % of the unmaintained headline (hard gate): policy
//!   evaluation is a per-tick comparison, not a second physics pass.
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin fleet_bench
//! cargo run -p hotwire-bench --release --bin fleet_bench -- --smoke --out out.json
//! cargo run -p hotwire-bench --release --bin fleet_bench -- --smoke --check BENCH_fleet.json
//! ```
//!
//! `--check BASELINE` compares the freshly measured pinned-jobs lines/s
//! against the committed baseline and exits non-zero if it regressed by
//! more than 30 %.
//!
//! # Kill-and-resume smoke
//!
//! `--checkpoint PATH` switches to the checkpoint exercise instead of the
//! measurements: the smoke fleet runs with a checkpoint file at `PATH`.
//! With `--kill-after-lines N` the process **hard-exits** (code 86, no
//! cleanup) at the first batch boundary covering ≥ N lines — a real
//! process death with a checkpoint left on disk. A second invocation
//! without the kill flag resumes from that checkpoint, finishes, and
//! verifies the resumed aggregates are bit-identical to a fresh
//! uninterrupted run (hard gate):
//!
//! ```sh
//! fleet_bench --smoke --checkpoint ck.txt --kill-after-lines 24; test $? -eq 86
//! fleet_bench --smoke --checkpoint ck.txt --out resume.json
//! ```

use hotwire_bench::experiments::{f2_fleet, f4_maintenance};
use hotwire_core::config::{fnv1a64, AfeTier, FlowMeterConfig};
use hotwire_rig::fleet::{FleetOutcome, FleetSpec, LineSummary, LineVariation};
use hotwire_rig::{LineConfig, Modality, ReferenceKind, Scenario, Windows};
use std::ops::ControlFlow;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: fleet_bench [--smoke] [--out PATH] [--check BASELINE]
                   [--checkpoint PATH [--kill-after-lines N]]
options:
  --smoke            scaled-down fleets for CI (64-line headline, 2k-line
                     sharded scale run; same scenario seconds per line so
                     lines/s is comparable)
  --out PATH         where to write the JSON report (default: BENCH_fleet.json)
  --check BASELINE   compare against a committed BENCH_fleet.json; exit 1 if
                     the pinned-jobs lines/s regressed more than 30 %
  --checkpoint PATH  run the kill-and-resume exercise against PATH instead of
                     the measurements (resumes if PATH already holds a
                     checkpoint; verifies resumed == uninterrupted bits)
  --kill-after-lines N
                     with --checkpoint: hard-exit (code 86) at the first
                     checkpointed batch boundary covering >= N lines";

/// Fraction of the baseline's throughput the fresh measurement may lose
/// before `--check` fails.  The committed baseline is a full 1000-line
/// run; the CI check is a 64-line smoke run whose parallel straggler
/// tail (the last lines of the only batch leave one worker idle) costs
/// ~20 % of the amortized full-run lines/s before any real regression,
/// on top of shared-runner noise — hence the wide band.  The gate
/// catches structural throughput losses; the zero-trace-memory gate
/// below stays exact.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// Fraction of the unmaintained headline a hybrid-maintained run of the
/// same population may lose before the maintenance gate fails. Policy
/// evaluation is a per-tick comparison plus the occasional re-zero/refit
/// — a second physics pass it is not, and this band keeps it that way.
/// Both runs are measured back to back in the same process, so the band
/// absorbs scheduler noise, not drift between machines.
const MAINTENANCE_OVERHEAD_BAND: f64 = 0.10;

/// The job count the gated headline is measured at — pinned so the
/// number is comparable across machines with different core counts.
const HEADLINE_JOBS: usize = 2;

/// Exit code of a deliberate `--kill-after-lines` process death, so the
/// CI wrapper can tell "killed as requested" from a real failure.
const KILL_EXIT: u8 = 86;

/// Shards the large scale run splits into.
const SCALE_SHARDS: usize = 8;

/// Shards the mixed-modality gate splits into — small so the reference
/// stride crosses shard boundaries.
const MIXED_SHARDS: usize = 3;

/// Hard ceiling on one shard accumulator's heap (two bounded sketches
/// plus the incidence map) — the O(shard) memory gate.
const SHARD_HEAP_CEILING_BYTES: usize = 64 * 1024;

/// One fleet execution's measurement.
struct FleetRun {
    lines: usize,
    samples: u64,
    wall_s: f64,
    trace_heap_bytes: usize,
    summary_bytes_per_line: usize,
    /// FNV-1a over the outcome's `Debug` rendering — the bit-identity
    /// witness the sharded-equivalence and kill-resume gates compare.
    digest: u64,
    /// Fleet-summed maintenance actions — 0 for unmaintained runs, and
    /// the non-vacuity witness for the maintenance overhead gate.
    maintenance_actions: u64,
}

impl FleetRun {
    fn lines_per_s(&self) -> f64 {
        self.lines as f64 / self.wall_s
    }

    fn samples_per_s(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// Retained bytes for one line's summary: the struct itself plus its
/// fault-kind label list (static strs — only the pointers are heap).
fn summary_bytes(s: &LineSummary) -> usize {
    std::mem::size_of::<LineSummary>()
        + s.fault_kinds.capacity() * std::mem::size_of::<&'static str>()
}

/// The bit-identity witness: FNV-1a over the full `Debug` rendering
/// (aggregates *and* any retained per-line summaries — floats render
/// exactly, so equal digests mean equal bits).
fn outcome_digest(outcome: &FleetOutcome) -> u64 {
    fnv1a64(format!("{outcome:?}").as_bytes())
}

fn measure(lines: usize, duration_s: f64, jobs: usize, tier: AfeTier) -> Result<FleetRun, String> {
    let spec =
        f2_fleet::fleet_spec(lines, duration_s).with_config(LineConfig::new().with_afe_tier(tier));
    measure_spec(&spec, jobs)
}

fn measure_spec(spec: &FleetSpec, jobs: usize) -> Result<FleetRun, String> {
    let start = Instant::now();
    let outcome: FleetOutcome = spec.run_jobs(jobs).map_err(|e| e.to_string())?;
    let wall_s = start.elapsed().as_secs_f64();
    let retained: usize = outcome.lines.iter().map(summary_bytes).sum();
    Ok(FleetRun {
        lines: outcome.aggregates.lines,
        samples: outcome.aggregates.total_samples,
        wall_s,
        trace_heap_bytes: outcome.trace_heap_bytes(),
        summary_bytes_per_line: retained / outcome.aggregates.lines.max(1),
        digest: outcome_digest(&outcome),
        maintenance_actions: outcome.aggregates.maintenance.actions(),
    })
}

/// The mixed-modality population: heat-pulse DUT lines with every 4th
/// line replaced by a Promag reference comparator — two sensing physics
/// plus a truth channel through one generic `Meter` engine.
fn mixed_modality_spec(lines: usize, duration_s: f64) -> FleetSpec {
    FleetSpec::new(
        "bench-mixed-modality",
        FlowMeterConfig::test_profile(),
        Scenario::steady(100.0, duration_s),
        0x4D31_F1EE,
    )
    .with_config(LineConfig::new().with_modality(Modality::HeatPulse))
    .with_lines(lines)
    .with_sample_period(0.05)
    .with_windows(Windows::settled(1.0, 2.0))
    .with_variation(
        LineVariation::new()
            .with_flow_jitter(0.03)
            .with_references_every(4, 3, ReferenceKind::Promag),
    )
}

/// Hard gate: the mixed-modality fleet must be jobs-invariant and
/// shard-merge to the monolithic bits — the generic engine owes every
/// modality the same determinism contract the CTA fleet has. Returns the
/// witnessed digest, or an error string for `main` to report.
fn mixed_modality_gate(lines: usize, duration_s: f64) -> Result<u64, String> {
    let spec = mixed_modality_spec(lines, duration_s);
    let serial = spec.run_jobs(1).map_err(|e| e.to_string())?;
    let digest = outcome_digest(&serial);
    let parallel = spec.run_jobs(HEADLINE_JOBS).map_err(|e| e.to_string())?;
    let parallel_digest = outcome_digest(&parallel);
    if parallel_digest != digest {
        return Err(format!(
            "mixed-modality fleet diverged across jobs: \
             {parallel_digest:016x} at --jobs {HEADLINE_JOBS} vs {digest:016x} serial"
        ));
    }
    let sharded = spec
        .run_sharded(MIXED_SHARDS, HEADLINE_JOBS)
        .map_err(|e| e.to_string())?;
    let sharded_digest = outcome_digest(&sharded);
    if sharded_digest != digest {
        return Err(format!(
            "mixed-modality sharded merge diverged: {sharded_digest:016x} vs \
             monolithic {digest:016x}"
        ));
    }
    Ok(digest)
}

/// The large sketch-path fleet, run shard by shard: measures throughput
/// and the *peak shard accumulator heap* — the number that stays fixed
/// while the line count scales.
struct ScaleRun {
    lines: usize,
    samples: u64,
    wall_s: f64,
    max_shard_heap_bytes: usize,
    retained_summaries: usize,
    digest: u64,
}

fn measure_sharded(spec: &FleetSpec, shards: usize, jobs: usize) -> Result<ScaleRun, String> {
    let start = Instant::now();
    let mut max_heap = 0usize;
    let mut acc: Option<hotwire_rig::fleet::ShardAggregates> = None;
    for shard in spec.shards(shards) {
        let part = shard.run_jobs(jobs).map_err(|e| e.to_string())?;
        max_heap = max_heap.max(part.heap_bytes());
        match &mut acc {
            None => acc = Some(part),
            Some(acc) => acc.merge(&part).map_err(|e| e.to_string())?,
        }
    }
    let acc = acc.ok_or("no shards ran")?;
    let wall_s = start.elapsed().as_secs_f64();
    let retained_summaries = acc.summaries.len();
    let aggregates = acc.finalize(
        spec.config.full_scale.to_cm_per_s(),
        spec.scenario.duration_s * spec.lines as f64,
    );
    let digest = fnv1a64(format!("{aggregates:?}").as_bytes());
    Ok(ScaleRun {
        lines: aggregates.lines,
        samples: aggregates.total_samples,
        wall_s,
        max_shard_heap_bytes: max_heap,
        retained_summaries,
        digest,
    })
}

/// The `--checkpoint` exercise: run (or resume) the smoke-scale fleet
/// with a checkpoint file, optionally hard-killing the process at a
/// covered batch boundary, and on completion verify the resumed bits
/// against a fresh uninterrupted run.
fn checkpoint_exercise(
    smoke: bool,
    path: &str,
    kill_after_lines: Option<usize>,
    out_path: &str,
) -> ExitCode {
    let (lines, duration_s) = if smoke { (64, 2.0) } else { (256, 2.0) };
    // Small batches so checkpoints land at several boundaries, fast tier
    // so the exercise stays a smoke test.
    let spec = f2_fleet::fleet_spec(lines, duration_s)
        .with_config(LineConfig::new().with_afe_tier(AfeTier::Fast))
        .with_batch_size(8);
    let ck_path = std::path::Path::new(path);
    eprintln!(
        "checkpoint exercise: {lines} lines × {duration_s} s, checkpoint at {path} \
         (interval: every batch)"
    );
    let outcome = spec.run_checkpointed_with(ck_path, 1, HEADLINE_JOBS, |progress| {
        eprintln!(
            "  checkpointed {}/{} lines",
            progress.completed_lines, progress.total_lines
        );
        if let Some(kill) = kill_after_lines {
            if progress.completed_lines >= kill {
                // A real process death: no unwinding, no cleanup — the
                // durable state is whatever the atomic checkpoint write
                // left on disk.
                eprintln!("  killing the process as requested (exit {KILL_EXIT})");
                std::process::exit(KILL_EXIT as i32);
            }
        }
        ControlFlow::Continue(())
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("checkpointed fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The resumed (or fresh) checkpointed run must be bit-identical to an
    // uninterrupted in-memory run of the same spec.
    let fresh = match spec.run_jobs(HEADLINE_JOBS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("uninterrupted reference run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let resumed_digest = outcome_digest(&outcome);
    let fresh_digest = outcome_digest(&fresh);
    if resumed_digest != fresh_digest {
        eprintln!(
            "kill-and-resume equivalence FAILED: resumed digest {resumed_digest:016x} != \
             uninterrupted {fresh_digest:016x}"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("kill-and-resume equivalence passed: digest {resumed_digest:016x}");
    let json = format!(
        "{{\n  \"checkpoint\": {{\n    \"lines\": {lines},\n    \"path\": {path:?},\n    \
         \"aggregates_digest\": \"{resumed_digest:016x}\",\n    \"matches_uninterrupted\": true\n  }}\n}}\n"
    );
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn run_json(run: &FleetRun, jobs: usize) -> String {
    format!(
        "{{\"jobs\": {jobs}, \"lines\": {}, \"samples\": {}, \"wall_s\": {}, \"lines_per_s\": {}, \
         \"samples_per_s\": {}, \"trace_heap_bytes\": {}, \"summary_bytes_per_line\": {}, \
         \"digest\": \"{:016x}\"}}",
        run.lines,
        run.samples,
        json_number(run.wall_s),
        json_number(run.lines_per_s()),
        json_number(run.samples_per_s()),
        run.trace_heap_bytes,
        run.summary_bytes_per_line,
        run.digest
    )
}

/// Pulls `"headline_lines_per_s": <number>` out of a baseline report
/// without a JSON parser (the repo vendors no serde_json).
fn parse_headline(baseline: &str) -> Option<f64> {
    let key = "\"headline_lines_per_s\":";
    let at = baseline.find(key)? + key.len();
    let rest = baseline[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = "BENCH_fleet.json".to_string();
    let mut check_path: Option<String> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut kill_after_lines: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match args.next() {
                Some(path) => checkpoint_path = Some(path),
                None => {
                    eprintln!("--checkpoint needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--kill-after-lines" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => kill_after_lines = Some(n),
                None => {
                    eprintln!("--kill-after-lines needs a line count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if kill_after_lines.is_some() && checkpoint_path.is_none() {
        eprintln!("--kill-after-lines requires --checkpoint\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = checkpoint_path {
        return checkpoint_exercise(smoke, &path, kill_after_lines, &out_path);
    }

    // Same scenario seconds per line in both modes so lines/s stays
    // comparable between a committed full baseline and a smoke check.
    let (lines, duration_s) = if smoke { (64, 8.0) } else { (1000, 8.0) };

    eprintln!("fleet: {lines} lines × {duration_s} s at --jobs {HEADLINE_JOBS} (headline)…");
    let pinned = match measure(lines, duration_s, HEADLINE_JOBS, AfeTier::Exact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pinned-jobs fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s, {} trace bytes, {} summary bytes/line",
        pinned.lines_per_s(),
        pinned.samples_per_s(),
        pinned.trace_heap_bytes,
        pinned.summary_bytes_per_line
    );

    // Hard gate: the same population run as shards and merged must be
    // the monolithic run, bit for bit.
    eprintln!("fleet: sharded-merge equivalence ({SCALE_SHARDS} shards)…");
    let spec = f2_fleet::fleet_spec(lines, duration_s);
    match spec.run_sharded(SCALE_SHARDS, HEADLINE_JOBS) {
        Ok(sharded) => {
            let digest = outcome_digest(&sharded);
            if digest != pinned.digest {
                eprintln!(
                    "sharded merge DIVERGED from monolithic: {digest:016x} vs {:016x}",
                    pinned.digest
                );
                return ExitCode::FAILURE;
            }
            eprintln!("  identical bits: digest {digest:016x}");
        }
        Err(e) => {
            eprintln!("sharded fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Hard gate: a fleet mixing heat-pulse DUTs with Promag reference
    // lines owes the same bit-identity contract through the generic
    // `Meter` engine — jobs-invariant and shard-mergeable.
    let (mixed_lines, mixed_duration_s) = if smoke { (16, 2.0) } else { (48, 4.0) };
    eprintln!(
        "fleet: mixed-modality equivalence ({mixed_lines} heat-pulse/Promag lines, \
         {MIXED_SHARDS} shards)…"
    );
    let mixed_digest = match mixed_modality_gate(mixed_lines, mixed_duration_s) {
        Ok(digest) => {
            eprintln!("  identical bits: digest {digest:016x}");
            digest
        }
        Err(e) => {
            eprintln!("mixed-modality equivalence FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let default_jobs = hotwire_rig::exec::default_jobs();
    eprintln!("fleet: same population at --jobs {default_jobs} (informational)…");
    let auto = match measure(lines, duration_s, default_jobs, AfeTier::Exact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("default-jobs fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s",
        auto.lines_per_s(),
        auto.samples_per_s()
    );

    eprintln!(
        "fleet: same population on the fast AFE tier at --jobs {HEADLINE_JOBS} (informational)…"
    );
    let fast = match measure(lines, duration_s, HEADLINE_JOBS, AfeTier::Fast) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fast-tier fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s ({:.1}× the exact headline)",
        fast.lines_per_s(),
        fast.samples_per_s(),
        fast.lines_per_s() / pinned.lines_per_s()
    );

    // Hard gate: the same population with the F4 hybrid maintenance
    // policy live on every line must hold throughput within the band of
    // the unmaintained headline — the policy engine is a per-tick
    // comparison, not a second physics pass.
    eprintln!("fleet: maintained population (F4 hybrid policy) at --jobs {HEADLINE_JOBS} (gated)…");
    let [_, _, _, (_, hybrid)] = f4_maintenance::policies(duration_s);
    let maintained_spec = f2_fleet::fleet_spec(lines, duration_s)
        .with_config(LineConfig::new().with_maintenance(hybrid));
    let mut maintained = match measure_spec(&maintained_spec, HEADLINE_JOBS) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("maintained fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s, {} maintenance actions",
        maintained.lines_per_s(),
        maintained.samples_per_s(),
        maintained.maintenance_actions
    );
    if maintained.maintenance_actions == 0 {
        eprintln!("maintained fleet never serviced a line — the overhead gate is vacuous");
        return ExitCode::FAILURE;
    }
    let maintained_floor = pinned.lines_per_s() * (1.0 - MAINTENANCE_OVERHEAD_BAND);
    if maintained.lines_per_s() < maintained_floor {
        // One re-measure sheds transient scheduler noise; genuine engine
        // overhead reproduces and still fails below.
        eprintln!("  below the floor — re-measuring once…");
        match measure_spec(&maintained_spec, HEADLINE_JOBS) {
            Ok(r) if r.lines_per_s() > maintained.lines_per_s() => maintained = r,
            Ok(_) => {}
            Err(e) => {
                eprintln!("maintained fleet re-run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if maintained.lines_per_s() < maintained_floor {
        eprintln!(
            "maintenance overhead out of band: {:.1} lines/s maintained vs {:.1} \
             unmaintained (floor {maintained_floor:.1})",
            maintained.lines_per_s(),
            pinned.lines_per_s()
        );
        return ExitCode::FAILURE;
    }

    // The O(shard) scale run: a large fast-tier fleet on the sketch path,
    // run shard by shard. Peak shard heap must stay under the fixed
    // ceiling and nothing per-line may be retained.
    let (scale_lines, scale_duration_s) = if smoke { (2000, 2.0) } else { (100_000, 2.0) };
    eprintln!(
        "fleet: scale run — {scale_lines} lines × {scale_duration_s} s fast tier, \
         {SCALE_SHARDS} shards, sketch path…"
    );
    let scale_spec = f2_fleet::fleet_spec(scale_lines, scale_duration_s)
        .with_config(LineConfig::new().with_afe_tier(AfeTier::Fast))
        .with_exact_threshold(0);
    let scale = match measure_sharded(&scale_spec, SCALE_SHARDS, HEADLINE_JOBS) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scale fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s, peak shard heap {} bytes, {} retained summaries",
        scale.lines as f64 / scale.wall_s,
        scale.samples as f64 / scale.wall_s,
        scale.max_shard_heap_bytes,
        scale.retained_summaries
    );
    if scale.retained_summaries != 0 {
        eprintln!(
            "scale fleet retained {} per-line summaries (sketch path must retain none)",
            scale.retained_summaries
        );
        return ExitCode::FAILURE;
    }
    if scale.max_shard_heap_bytes > SHARD_HEAP_CEILING_BYTES {
        eprintln!(
            "scale fleet shard heap {} bytes exceeds the O(shard) ceiling {}",
            scale.max_shard_heap_bytes, SHARD_HEAP_CEILING_BYTES
        );
        return ExitCode::FAILURE;
    }

    // The memory contract is a hard gate, not a trend: MetricsOnly fleets
    // must hold zero trace bytes at any scale.
    if pinned.trace_heap_bytes != 0 || auto.trace_heap_bytes != 0 || fast.trace_heap_bytes != 0 {
        eprintln!(
            "fleet leaked trace memory: {} / {} / {} bytes (expected 0 under MetricsOnly)",
            pinned.trace_heap_bytes, auto.trace_heap_bytes, fast.trace_heap_bytes
        );
        return ExitCode::FAILURE;
    }

    let headline = pinned.lines_per_s();
    // Both runs carry their own `jobs` field: `pinned_jobs` is the gated
    // headline at the fixed HEADLINE_JOBS count, `default_jobs` the
    // informational run at the resolved process default.
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"headline_lines_per_s\": {},\n  \
         \"headline_jobs\": {HEADLINE_JOBS},\n  \"fleet\": {{\n    \"sim_seconds_per_line\": {},\n    \
         \"pinned_jobs\": {},\n    \"default_jobs\": {},\n    \"fast_tier\": {}\n  }},\n  \
         \"sharded_equivalence\": {{\"shards\": {SCALE_SHARDS}, \"digest\": \"{:016x}\"}},\n  \
         \"mixed_modality\": {{\"lines\": {mixed_lines}, \"shards\": {MIXED_SHARDS}, \
         \"sim_seconds_per_line\": {}, \"digest\": \"{mixed_digest:016x}\"}},\n  \
         \"maintenance\": {{\"policy\": \"hybrid\", \"actions\": {}, \"lines_per_s\": {}, \
         \"overhead_band\": {MAINTENANCE_OVERHEAD_BAND}, \"headline_ratio\": {}}},\n  \
         \"large_fleet\": {{\"lines\": {}, \"shards\": {SCALE_SHARDS}, \"sim_seconds_per_line\": {}, \
         \"wall_s\": {}, \"lines_per_s\": {}, \"samples_per_s\": {}, \"max_shard_heap_bytes\": {}, \
         \"retained_summaries\": {}, \"aggregates_digest\": \"{:016x}\"}},\n  \
         \"fast_tier_speedup\": {},\n  \"default_jobs_resolved\": {default_jobs}\n}}\n",
        json_number(headline),
        json_number(duration_s),
        run_json(&pinned, HEADLINE_JOBS),
        run_json(&auto, default_jobs),
        run_json(&fast, HEADLINE_JOBS),
        pinned.digest,
        json_number(mixed_duration_s),
        maintained.maintenance_actions,
        json_number(maintained.lines_per_s()),
        json_number(maintained.lines_per_s() / pinned.lines_per_s()),
        scale.lines,
        json_number(scale_duration_s),
        json_number(scale.wall_s),
        json_number(scale.lines as f64 / scale.wall_s),
        json_number(scale.samples as f64 / scale.wall_s),
        scale.max_shard_heap_bytes,
        scale.retained_summaries,
        scale.digest,
        json_number(fast.lines_per_s() / pinned.lines_per_s()),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(expected) = parse_headline(&baseline) else {
            eprintln!("baseline {baseline_path} has no headline_lines_per_s");
            return ExitCode::FAILURE;
        };
        let floor = expected * (1.0 - REGRESSION_TOLERANCE);
        if headline < floor {
            eprintln!(
                "fleet throughput regressed: {headline:.1} lines/s vs baseline \
                 {expected:.1} (floor {floor:.1})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput check passed: {headline:.1} lines/s vs baseline {expected:.1}");
    }
    ExitCode::SUCCESS
}
