//! `fleet_bench` — measures the fleet engine and guards it against
//! regressions.
//!
//! Two measurements, written to `BENCH_fleet.json`:
//!
//! * **throughput** — the F2 fleet population (seed-diverse lines, ±5 %
//!   demand jitter, faults on every 10th line) executed end to end:
//!   lines/s and streamed samples/s, at a pinned 2-job count (the gated
//!   headline, comparable across machines with ≥ 2 cores), again at the
//!   process default, and once more on the opt-in fast AFE tier (both
//!   informational);
//! * **memory** — retained bytes per line: the fleet keeps one compact
//!   [`LineSummary`] per line and **zero** trace bytes (`MetricsOnly` is
//!   forced by the engine); the run fails outright if the measured trace
//!   heap is non-zero.
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin fleet_bench
//! cargo run -p hotwire-bench --release --bin fleet_bench -- --smoke --out out.json
//! cargo run -p hotwire-bench --release --bin fleet_bench -- --smoke --check BENCH_fleet.json
//! ```
//!
//! `--check BASELINE` compares the freshly measured pinned-jobs lines/s
//! against the committed baseline and exits non-zero if it regressed by
//! more than 30 %.

use hotwire_bench::experiments::f2_fleet;
use hotwire_core::config::AfeTier;
use hotwire_rig::fleet::{FleetOutcome, LineSummary};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: fleet_bench [--smoke] [--out PATH] [--check BASELINE]
options:
  --smoke          scaled-down fleet for CI (64 lines instead of 1000,
                   same scenario seconds per line so lines/s is comparable)
  --out PATH       where to write the JSON report (default: BENCH_fleet.json)
  --check BASELINE compare against a committed BENCH_fleet.json; exit 1 if the
                   pinned-jobs lines/s regressed more than 30 %";

/// Fraction of the baseline's throughput the fresh measurement may lose
/// before `--check` fails.  The committed baseline is a full 1000-line
/// run; the CI check is a 64-line smoke run whose parallel straggler
/// tail (the last lines of the only batch leave one worker idle) costs
/// ~20 % of the amortized full-run lines/s before any real regression,
/// on top of shared-runner noise — hence the wide band.  The gate
/// catches structural throughput losses; the zero-trace-memory gate
/// below stays exact.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// The job count the gated headline is measured at — pinned so the
/// number is comparable across machines with different core counts.
const HEADLINE_JOBS: usize = 2;

/// One fleet execution's measurement.
struct FleetRun {
    lines: usize,
    samples: u64,
    wall_s: f64,
    trace_heap_bytes: usize,
    summary_bytes_per_line: usize,
}

impl FleetRun {
    fn lines_per_s(&self) -> f64 {
        self.lines as f64 / self.wall_s
    }

    fn samples_per_s(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// Retained bytes for one line's summary: the struct itself plus its
/// fault-kind label list (static strs — only the pointers are heap).
fn summary_bytes(s: &LineSummary) -> usize {
    std::mem::size_of::<LineSummary>()
        + s.fault_kinds.capacity() * std::mem::size_of::<&'static str>()
}

fn measure(lines: usize, duration_s: f64, jobs: usize, tier: AfeTier) -> Result<FleetRun, String> {
    let spec = f2_fleet::fleet_spec(lines, duration_s).with_afe_tier(tier);
    let start = Instant::now();
    let outcome: FleetOutcome = spec.run_jobs(jobs).map_err(|e| e.to_string())?;
    let wall_s = start.elapsed().as_secs_f64();
    let retained: usize = outcome.lines.iter().map(summary_bytes).sum();
    Ok(FleetRun {
        lines: outcome.aggregates.lines,
        samples: outcome.aggregates.total_samples,
        wall_s,
        trace_heap_bytes: outcome.trace_heap_bytes(),
        summary_bytes_per_line: retained / outcome.aggregates.lines.max(1),
    })
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn run_json(run: &FleetRun, jobs: usize) -> String {
    format!(
        "{{\"jobs\": {jobs}, \"lines\": {}, \"samples\": {}, \"wall_s\": {}, \"lines_per_s\": {}, \
         \"samples_per_s\": {}, \"trace_heap_bytes\": {}, \"summary_bytes_per_line\": {}}}",
        run.lines,
        run.samples,
        json_number(run.wall_s),
        json_number(run.lines_per_s()),
        json_number(run.samples_per_s()),
        run.trace_heap_bytes,
        run.summary_bytes_per_line
    )
}

/// Pulls `"headline_lines_per_s": <number>` out of a baseline report
/// without a JSON parser (the repo vendors no serde_json).
fn parse_headline(baseline: &str) -> Option<f64> {
    let key = "\"headline_lines_per_s\":";
    let at = baseline.find(key)? + key.len();
    let rest = baseline[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = "BENCH_fleet.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Same scenario seconds per line in both modes so lines/s stays
    // comparable between a committed full baseline and a smoke check.
    let (lines, duration_s) = if smoke { (64, 8.0) } else { (1000, 8.0) };

    eprintln!("fleet: {lines} lines × {duration_s} s at --jobs {HEADLINE_JOBS} (headline)…");
    let pinned = match measure(lines, duration_s, HEADLINE_JOBS, AfeTier::Exact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pinned-jobs fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s, {} trace bytes, {} summary bytes/line",
        pinned.lines_per_s(),
        pinned.samples_per_s(),
        pinned.trace_heap_bytes,
        pinned.summary_bytes_per_line
    );

    let default_jobs = hotwire_rig::exec::default_jobs();
    eprintln!("fleet: same population at --jobs {default_jobs} (informational)…");
    let auto = match measure(lines, duration_s, default_jobs, AfeTier::Exact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("default-jobs fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s",
        auto.lines_per_s(),
        auto.samples_per_s()
    );

    eprintln!(
        "fleet: same population on the fast AFE tier at --jobs {HEADLINE_JOBS} (informational)…"
    );
    let fast = match measure(lines, duration_s, HEADLINE_JOBS, AfeTier::Fast) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fast-tier fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {:.1} lines/s, {:.0} samples/s ({:.1}× the exact headline)",
        fast.lines_per_s(),
        fast.samples_per_s(),
        fast.lines_per_s() / pinned.lines_per_s()
    );

    // The memory contract is a hard gate, not a trend: MetricsOnly fleets
    // must hold zero trace bytes at any scale.
    if pinned.trace_heap_bytes != 0 || auto.trace_heap_bytes != 0 || fast.trace_heap_bytes != 0 {
        eprintln!(
            "fleet leaked trace memory: {} / {} / {} bytes (expected 0 under MetricsOnly)",
            pinned.trace_heap_bytes, auto.trace_heap_bytes, fast.trace_heap_bytes
        );
        return ExitCode::FAILURE;
    }

    let headline = pinned.lines_per_s();
    // Both runs carry their own `jobs` field: `pinned_jobs` is the gated
    // headline at the fixed HEADLINE_JOBS count, `default_jobs` the
    // informational run at the resolved process default.
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"headline_lines_per_s\": {},\n  \
         \"headline_jobs\": {HEADLINE_JOBS},\n  \"fleet\": {{\n    \"sim_seconds_per_line\": {},\n    \
         \"pinned_jobs\": {},\n    \"default_jobs\": {},\n    \"fast_tier\": {}\n  }},\n  \
         \"fast_tier_speedup\": {},\n  \"default_jobs_resolved\": {default_jobs}\n}}\n",
        json_number(headline),
        json_number(duration_s),
        run_json(&pinned, HEADLINE_JOBS),
        run_json(&auto, default_jobs),
        run_json(&fast, HEADLINE_JOBS),
        json_number(fast.lines_per_s() / pinned.lines_per_s()),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(expected) = parse_headline(&baseline) else {
            eprintln!("baseline {baseline_path} has no headline_lines_per_s");
            return ExitCode::FAILURE;
        };
        let floor = expected * (1.0 - REGRESSION_TOLERANCE);
        if headline < floor {
            eprintln!(
                "fleet throughput regressed: {headline:.1} lines/s vs baseline \
                 {expected:.1} (floor {floor:.1})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput check passed: {headline:.1} lines/s vs baseline {expected:.1}");
    }
    ExitCode::SUCCESS
}
