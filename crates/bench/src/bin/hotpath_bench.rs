//! `hotpath_bench` — measures the modulator-rate hot path and guards the
//! SoA block walk against regressions.
//!
//! Three measurements of the same water-station meter on a steady line,
//! written to `BENCH_hotpath.json` as modulator-equivalent samples/s:
//!
//! * **scalar** — one [`FlowMeter::step`] call per modulator tick (the
//!   historical per-sample path, kept as the alignment/fallback path);
//! * **block** — one [`FlowMeter::step_frame`] call per decimation frame
//!   (the default `AfeTier::Exact` tier, bit-identical to scalar);
//! * **fast** — `step_frame` under the opt-in `AfeTier::Fast` tier
//!   (quasi-static once-per-frame AFE, bounded-error).
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin hotpath_bench
//! cargo run -p hotwire-bench --release --bin hotpath_bench -- --smoke --out out.json
//! cargo run -p hotwire-bench --release --bin hotpath_bench -- --smoke --check BENCH_hotpath.json
//! ```
//!
//! `--check BASELINE` gates the *speedup ratios* (block/scalar and
//! fast/scalar), not the absolute samples/s: ratios transfer between
//! machines, absolute throughput does not.

use hotwire_core::config::AfeTier;
use hotwire_core::{FlowMeter, FlowMeterConfig};
use hotwire_physics::{MafParams, SensorEnvironment};
use hotwire_units::MetersPerSecond;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: hotpath_bench [--smoke] [--out PATH] [--check BASELINE]
options:
  --smoke          scaled-down frame count for CI
  --out PATH       where to write the JSON report (default: BENCH_hotpath.json)
  --check BASELINE compare against a committed BENCH_hotpath.json; exit 1 if a
                   speedup ratio regressed more than 30 %";

/// Fraction of a baseline speedup ratio the fresh measurement may lose
/// before `--check` fails.  The gated quantities are *ratios* between
/// tiers measured in the same process, so machine speed cancels out —
/// but scheduling noise on shared CI runners still swings the block
/// ratio by ±15 % run to run, hence the wide band.  The gate exists to
/// catch structural regressions (an accidental de-fusing of the AFE
/// chain halves the block ratio; losing the fast tier's table drops its
/// ratio by 100×), not single-digit drift.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// Seed shared by all three meters so they regulate the same plant.
const SEED: u64 = 0x407_7A7;

/// The steady mid-range flow every tier is measured at.
fn bench_env() -> SensorEnvironment {
    SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(120.0),
        ..SensorEnvironment::still_water()
    }
}

/// A settled water-station meter on the requested tier.
fn settled_meter(tier: AfeTier, warmup_frames: u64) -> FlowMeter {
    let config = FlowMeterConfig {
        afe_tier: tier,
        ..FlowMeterConfig::water_station()
    };
    let mut meter =
        FlowMeter::new(config, MafParams::nominal(), SEED).expect("water-station config is valid");
    let env = bench_env();
    for _ in 0..warmup_frames {
        let _ = meter.step_frame(env);
    }
    meter
}

/// One tier's measurement: wall seconds for `frames` decimation frames.
struct TierRun {
    wall_s: f64,
    samples: u64,
}

impl TierRun {
    fn samples_per_s(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// Measures `frames` frames through per-tick [`FlowMeter::step`] calls.
fn measure_scalar(frames: u64, warmup_frames: u64) -> TierRun {
    let mut meter = settled_meter(AfeTier::Exact, warmup_frames);
    let env = bench_env();
    let ticks = frames * u64::from(meter.ticks_per_frame());
    let start = Instant::now();
    let mut controls = 0u64;
    for _ in 0..ticks {
        if meter.step(env).is_some() {
            controls += 1;
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(controls, frames, "every frame must yield one measurement");
    TierRun {
        wall_s,
        samples: ticks,
    }
}

/// Measures `frames` frames through [`FlowMeter::step_frame`] on `tier`.
fn measure_frames(tier: AfeTier, frames: u64, warmup_frames: u64) -> TierRun {
    let mut meter = settled_meter(tier, warmup_frames);
    let env = bench_env();
    let ticks = frames * u64::from(meter.ticks_per_frame());
    let start = Instant::now();
    let mut supply_sum = 0i64;
    for _ in 0..frames {
        supply_sum += i64::from(meter.step_frame(env).supply_code);
    }
    let wall_s = start.elapsed().as_secs_f64();
    assert!(supply_sum > 0, "the loop must keep regulating");
    TierRun {
        wall_s,
        samples: ticks,
    }
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn tier_json(run: &TierRun) -> String {
    format!(
        "{{\"samples\": {}, \"wall_s\": {}, \"samples_per_s\": {}}}",
        run.samples,
        json_number(run.wall_s),
        json_number(run.samples_per_s())
    )
}

/// Pulls `"<key>": <number>` out of a baseline report without a JSON
/// parser (the repo vendors no serde_json).
fn parse_number(baseline: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = baseline.find(&needle)? + needle.len();
    let rest = baseline[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    // 0.5 s of scenario warm-up settles the CTA loop; the measured window
    // is the same number of frames for every tier so the ratios compare
    // identical work.
    let (frames, warmup_frames) = if smoke { (1_000, 500) } else { (8_000, 500) };

    eprintln!("hotpath: {frames} water-station frames per tier (warm-up {warmup_frames})…");
    let scalar = measure_scalar(frames, warmup_frames);
    eprintln!("  scalar  {:>12.0} samples/s", scalar.samples_per_s());
    let block = measure_frames(AfeTier::Exact, frames, warmup_frames);
    eprintln!("  block   {:>12.0} samples/s", block.samples_per_s());
    let fast = measure_frames(AfeTier::Fast, frames, warmup_frames);
    eprintln!("  fast    {:>12.0} samples/s", fast.samples_per_s());

    let block_speedup = block.samples_per_s() / scalar.samples_per_s();
    let fast_speedup = fast.samples_per_s() / scalar.samples_per_s();
    eprintln!("  speedups: block {block_speedup:.2}×, fast {fast_speedup:.2}×");

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"profile\": \"water_station\",\n  \
         \"frames\": {frames},\n  \"scalar\": {},\n  \"block\": {},\n  \"fast\": {},\n  \
         \"block_speedup\": {},\n  \"fast_speedup\": {}\n}}\n",
        tier_json(&scalar),
        tier_json(&block),
        tier_json(&fast),
        json_number(block_speedup),
        json_number(fast_speedup),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, fresh) in [
            ("block_speedup", block_speedup),
            ("fast_speedup", fast_speedup),
        ] {
            let Some(expected) = parse_number(&baseline, name) else {
                eprintln!("baseline {baseline_path} has no {name}");
                return ExitCode::FAILURE;
            };
            let floor = expected * (1.0 - REGRESSION_TOLERANCE);
            if fresh < floor {
                eprintln!(
                    "hot-path {name} regressed: {fresh:.2}× vs baseline {expected:.2}× \
                     (floor {floor:.2}×)"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("{name} check passed: {fresh:.2}× vs baseline {expected:.2}×");
        }
    }
    ExitCode::SUCCESS
}
