//! `record_bench` — measures the streaming record path and guards it
//! against regressions.
//!
//! Three measurements, written to `BENCH_record.json`:
//!
//! * **record path** — synthetic samples pushed straight through a
//!   [`PolicyRecorder`], `Full` vs `MetricsOnly`: the recorder's own
//!   throughput and the trace memory each policy holds;
//! * **end to end** — one identical co-simulation spec executed under both
//!   policies: wall clock, recorded samples/s and peak trace bytes;
//! * **endurance** — a ≥ 10 h simulated deployment under
//!   [`RecordPolicy::MetricsOnly`]: the trace store must stay at 0 bytes
//!   no matter how many samples stream by (the paper's months-long
//!   water-station logging, in miniature).
//!
//! ```sh
//! cargo run -p hotwire-bench --release --bin record_bench
//! cargo run -p hotwire-bench --release --bin record_bench -- --smoke --out out.json
//! cargo run -p hotwire-bench --release --bin record_bench -- --smoke --check BENCH_record.json
//! ```
//!
//! `--check BASELINE` compares the freshly measured record-path throughput
//! against the committed baseline and exits non-zero if it regressed by
//! more than 10 %.

use hotwire_core::config::FlowMeterConfig;
use hotwire_core::HealthState;
use hotwire_rig::{
    PolicyRecorder, RecordPolicy, Recorder, ReductionPlan, RunSpec, Scenario, TraceSample, Windows,
};
use hotwire_units::Hertz;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: record_bench [--smoke] [--out PATH] [--check BASELINE]
options:
  --smoke          scaled-down sizes for CI (0.5 h endurance, 200k synthetic samples)
  --out PATH       where to write the JSON report (default: BENCH_record.json)
  --check BASELINE compare against a committed BENCH_record.json; exit 1 if the
                   record-path samples/s regressed more than 10 %";

/// Fraction of the baseline's throughput the fresh measurement may lose
/// before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// One policy's record-path measurement.
struct PathRun {
    samples: u64,
    wall_s: f64,
    trace_heap_bytes: usize,
}

impl PathRun {
    fn samples_per_s(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// A deterministic synthetic sample — exercises every column, costs
/// nothing to produce.
fn synthetic_sample(i: u64) -> TraceSample {
    let t = i as f64 * 0.01;
    TraceSample {
        t,
        true_cm_s: 100.0 + (i % 23) as f64,
        dut_cm_s: 100.0 + (i % 19) as f64 * 0.5,
        promag_cm_s: 100.0 + (i % 17) as f64 * 0.25,
        turbine_cm_s: 100.0 + (i % 13) as f64 * 0.125,
        supply_code: 1800 + (i % 101) as u32,
        bubble_coverage: (i % 7) as f64 * 0.01,
        fouling_um: (i % 5) as f64 * 0.1,
        fault: i % 257 == 0,
        health: HealthState::Healthy,
    }
}

/// Pushes `n` synthetic samples through a [`PolicyRecorder`] with a full
/// reduction plan and times the loop.
fn bench_record_path(policy: RecordPolicy, n: u64) -> PathRun {
    let plan = ReductionPlan {
        settle: (1.0, f64::INFINITY),
        windows: vec![(0.25 * n as f64 * 0.01, 0.75 * n as f64 * 0.01)],
        series: Some((0.0, 2.0)),
        err: Some((1.0, f64::INFINITY)),
    };
    let mut recorder = PolicyRecorder::new(policy, plan);
    recorder.reserve(match policy {
        RecordPolicy::MetricsOnly => 0,
        _ => n as usize,
    });
    let start = Instant::now();
    for i in 0..n {
        recorder.record(&synthetic_sample(i));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let (store, reduced) = recorder.finish();
    let run = PathRun {
        samples: reduced.samples,
        wall_s,
        trace_heap_bytes: store.heap_bytes(),
    };
    std::hint::black_box((store, reduced));
    run
}

/// A low-rate config for long simulated deployments: 1 kHz modulator,
/// decimate by 2 — the same 500 Hz control rate as the test profile at
/// 1/32 the modulator cost.
fn endurance_config() -> FlowMeterConfig {
    FlowMeterConfig {
        modulator_rate: Hertz::new(1000.0),
        decimation: 2,
        ..FlowMeterConfig::test_profile()
    }
}

/// Executes one spec and reports recorded samples/s plus trace memory.
fn bench_spec(spec: RunSpec) -> Result<PathRun, String> {
    let start = Instant::now();
    let outcome = spec.execute().map_err(|e| e.to_string())?;
    let wall_s = start.elapsed().as_secs_f64();
    Ok(PathRun {
        samples: outcome.reduced.samples,
        wall_s,
        trace_heap_bytes: outcome.trace.samples.heap_bytes(),
    })
}

/// The shared end-to-end / endurance spec shape: steady 100 cm/s line,
/// 10 ms trace cadence, settled statistics after 30 s.
fn endurance_spec(policy: RecordPolicy, duration_s: f64) -> RunSpec {
    RunSpec::new(
        "endurance",
        endurance_config(),
        Scenario::steady(100.0, duration_s),
        0xBE7C,
    )
    .with_sample_period(0.01)
    .with_windows(Windows::settled(30.0, 0.0).with_err(30.0, f64::INFINITY))
    .with_record(policy)
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn path_json(run: &PathRun) -> String {
    format!(
        "{{\"samples\": {}, \"wall_s\": {}, \"samples_per_s\": {}, \"trace_heap_bytes\": {}}}",
        run.samples,
        json_number(run.wall_s),
        json_number(run.samples_per_s()),
        run.trace_heap_bytes
    )
}

/// Pulls `"headline_samples_per_s": <number>` out of a baseline report
/// without a JSON parser (the repo vendors no serde_json).
fn parse_headline(baseline: &str) -> Option<f64> {
    let key = "\"headline_samples_per_s\":";
    let at = baseline.find(key)? + key.len();
    let rest = baseline[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = "BENCH_record.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => {
                    eprintln!("--check needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let synthetic_n: u64 = if smoke { 200_000 } else { 2_000_000 };
    let end_to_end_s = if smoke { 120.0 } else { 600.0 };
    let endurance_s = if smoke { 1_800.0 } else { 36_000.0 };

    // 1. Record path: the recorder alone, synthetic samples.
    eprintln!("record path: {synthetic_n} synthetic samples per policy…");
    let path_full = bench_record_path(RecordPolicy::Full, synthetic_n);
    let path_metrics = bench_record_path(RecordPolicy::MetricsOnly, synthetic_n);
    eprintln!(
        "  full        {:>12.0} samples/s, {} trace bytes",
        path_full.samples_per_s(),
        path_full.trace_heap_bytes
    );
    eprintln!(
        "  metrics-only{:>12.0} samples/s, {} trace bytes",
        path_metrics.samples_per_s(),
        path_metrics.trace_heap_bytes
    );

    // 2. End to end: one identical spec, both policies.
    eprintln!("end to end: {end_to_end_s} s simulated under each policy…");
    let e2e_full = match bench_spec(endurance_spec(RecordPolicy::Full, end_to_end_s)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("end-to-end Full run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let e2e_metrics = match bench_spec(endurance_spec(RecordPolicy::MetricsOnly, end_to_end_s)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("end-to-end MetricsOnly run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  full         {:.2} s wall, {} trace bytes",
        e2e_full.wall_s, e2e_full.trace_heap_bytes
    );
    eprintln!(
        "  metrics-only {:.2} s wall, {} trace bytes",
        e2e_metrics.wall_s, e2e_metrics.trace_heap_bytes
    );

    // 3. Endurance: hours of simulated deployment, O(1) trace memory.
    eprintln!(
        "endurance: {:.2} h simulated under MetricsOnly…",
        endurance_s / 3600.0
    );
    let endurance = match bench_spec(endurance_spec(RecordPolicy::MetricsOnly, endurance_s)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("endurance run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  {} samples in {:.2} s wall, {} trace bytes",
        endurance.samples, endurance.wall_s, endurance.trace_heap_bytes
    );
    if endurance.trace_heap_bytes != 0 {
        eprintln!(
            "endurance run leaked trace memory: {} bytes (expected 0 under MetricsOnly)",
            endurance.trace_heap_bytes
        );
        return ExitCode::FAILURE;
    }

    let headline = path_metrics.samples_per_s();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"headline_samples_per_s\": {},\n  \"record_path\": {{\n    \
         \"synthetic_samples\": {synthetic_n},\n    \"full\": {},\n    \"metrics_only\": {},\n    \
         \"metrics_only_speedup\": {}\n  }},\n  \"end_to_end\": {{\n    \"sim_seconds\": {},\n    \
         \"full\": {},\n    \"metrics_only\": {}\n  }},\n  \"endurance\": {{\n    \
         \"sim_hours\": {},\n    \"policy\": \"MetricsOnly\",\n    {}\n  }}\n}}\n",
        json_number(headline),
        path_json(&path_full),
        path_json(&path_metrics),
        json_number(path_metrics.samples_per_s() / path_full.samples_per_s()),
        json_number(end_to_end_s),
        path_json(&e2e_full),
        path_json(&e2e_metrics),
        json_number(endurance_s / 3600.0),
        path_json(&endurance)
            .trim_start_matches('{')
            .trim_end_matches('}'),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(expected) = parse_headline(&baseline) else {
            eprintln!("baseline {baseline_path} has no headline_samples_per_s");
            return ExitCode::FAILURE;
        };
        let floor = expected * (1.0 - REGRESSION_TOLERANCE);
        if headline < floor {
            eprintln!(
                "record-path throughput regressed: {headline:.0} samples/s vs baseline \
                 {expected:.0} (floor {floor:.0})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput check passed: {headline:.0} samples/s vs baseline {expected:.0}");
    }
    ExitCode::SUCCESS
}
