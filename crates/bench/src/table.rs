//! Minimal fixed-width table formatting for experiment reports.

use std::fmt::Write as _;

/// A simple right-aligned fixed-width table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (missing cells render empty; extras are kept).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", h, width = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "speed"]);
        t.row(["1", "10.5"]);
        t.row(["22", "3"]);
        let s = t.to_string();
        assert!(s.contains("a  speed"));
        assert!(s.contains("22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["x"]);
        t.row(["1", "extra"]);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }
}
