//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5), plus supporting ablations. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Each experiment lives in [`experiments`] as a `run(Speed) -> …Result`
//! function whose result type implements `Display` (the paper-style table).
//! The `repro` binary dispatches on experiment ids; integration tests call
//! the same functions in [`Speed::Fast`] mode.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod table;

pub use experiments::Speed;
