//! Criterion benchmarks of the assembled instrument: how many modulator
//! ticks per second the co-simulation sustains, and the cost of one full
//! control tick (256 modulator ticks at the silicon decimation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hotwire_core::{FlowMeter, FlowMeterConfig};
use hotwire_physics::{MafParams, SensorEnvironment};
use hotwire_units::MetersPerSecond;

fn env() -> SensorEnvironment {
    SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(100.0),
        ..SensorEnvironment::still_water()
    }
}

fn bench_modulator_tick(c: &mut Criterion) {
    let mut meter =
        FlowMeter::new(FlowMeterConfig::water_station(), MafParams::nominal(), 1).unwrap();
    // Warm the loop up to the operating point first.
    meter.run(0.1, env());
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(1));
    group.bench_function("flow_meter_modulator_tick", |b| {
        b.iter(|| meter.step(env()))
    });
    group.finish();
}

fn bench_control_tick(c: &mut Criterion) {
    let config = FlowMeterConfig::water_station();
    let decimation = config.decimation as u64;
    let mut meter = FlowMeter::new(config, MafParams::nominal(), 2).unwrap();
    meter.run(0.1, env());
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(decimation));
    group.bench_function("flow_meter_control_tick_r256", |b| {
        b.iter(|| {
            let mut m = None;
            while m.is_none() {
                m = meter.step(env());
            }
            m
        })
    });
    group.finish();
}

fn bench_one_simulated_second(c: &mut Criterion) {
    let mut meter =
        FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 3).unwrap();
    meter.run(0.1, env());
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("test_profile_one_simulated_second", |b| {
        b.iter(|| meter.run(1.0, env()))
    });
    group.finish();
}

criterion_group!(
    pipeline,
    bench_modulator_tick,
    bench_control_tick,
    bench_one_simulated_second
);
criterion_main!(pipeline);
