//! Criterion micro-benchmarks of the simulator's hot kernels.
//!
//! These bound the wall-clock cost of the experiments: the full pipeline
//! steps the ΣΔ modulator 256 000 times per simulated second, so the
//! per-sample kernels below are the budget that matters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotwire_afe::adc::SigmaDeltaModulator;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_dsp::cic::CicDecimator;
use hotwire_dsp::fix::Q16;
use hotwire_dsp::iir::{Biquad, BiquadCoeffs, SinglePoleLp};
use hotwire_dsp::pi::PiController;
use hotwire_dsp::SineGenerator;
use hotwire_physics::{KingsLaw, MafDie, MafParams, SensorEnvironment};
use hotwire_units::{KelvinDelta, MetersPerSecond, Ohms, Seconds, Volts, Watts};
use rand::SeedableRng;

fn bench_sigma_delta(c: &mut Criterion) {
    let mut adc = SigmaDeltaModulator::new(Volts::new(2.5)).unwrap();
    c.bench_function("sigma_delta_push", |b| {
        b.iter(|| adc.push(black_box(Volts::new(0.73))))
    });
}

fn bench_cic(c: &mut Criterion) {
    let mut cic = CicDecimator::new(3, 256).unwrap();
    c.bench_function("cic3_r256_push", |b| b.iter(|| cic.push(black_box(1))));
}

fn bench_biquad(c: &mut Criterion) {
    let coeffs = BiquadCoeffs::butterworth_lowpass(100.0, 1000.0).unwrap();
    let mut biquad = Biquad::from_coeffs(&coeffs).unwrap();
    c.bench_function("biquad_push", |b| b.iter(|| biquad.push(black_box(12345))));
}

fn bench_single_pole(c: &mut Criterion) {
    let mut lp = SinglePoleLp::design(0.1, 1000.0).unwrap();
    c.bench_function("single_pole_0p1hz_push", |b| {
        b.iter(|| lp.push(black_box(2048)))
    });
}

fn bench_pi(c: &mut Criterion) {
    let mut pi = PiController::new(Q16::from_f64(0.02), Q16::from_f64(0.005), 410, 4095).unwrap();
    c.bench_function("pi_update", |b| b.iter(|| pi.update(black_box(-150))));
}

fn bench_dds(c: &mut Criterion) {
    let mut dds = SineGenerator::new(1000.0, 256_000.0).unwrap();
    c.bench_function("dds_next_sample", |b| b.iter(|| dds.next_sample()));
}

fn bench_king_inversion(c: &mut Criterion) {
    let king = KingsLaw::water_default();
    let p = king.power(MetersPerSecond::new(1.0), KelvinDelta::new(15.0));
    c.bench_function("king_velocity_from_power", |b| {
        b.iter(|| king.velocity_from_power(black_box(p), KelvinDelta::new(15.0)))
    });
}

fn bench_bridge_solve(c: &mut Criterion) {
    let bridge = BridgeConfig::for_operating_point(Ohms::new(51.75), Ohms::new(1965.0)).unwrap();
    c.bench_function("bridge_solve", |b| {
        b.iter(|| {
            bridge.solve(
                black_box(Volts::new(3.0)),
                black_box(Ohms::new(51.7)),
                black_box(Ohms::new(1965.2)),
            )
        })
    });
}

fn bench_die_step(c: &mut Criterion) {
    let mut die = MafDie::in_potable_water(MafParams::nominal());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let env = SensorEnvironment {
        velocity: MetersPerSecond::new(1.0),
        ..SensorEnvironment::still_water()
    };
    let dt = Seconds::from_micros(3.9);
    c.bench_function("maf_die_step", |b| {
        b.iter(|| {
            die.step(
                dt,
                black_box(Watts::new(0.015)),
                black_box(Watts::new(0.015)),
                env,
                &mut rng,
            )
        })
    });
}

criterion_group!(
    kernels,
    bench_sigma_delta,
    bench_cic,
    bench_biquad,
    bench_single_pole,
    bench_pi,
    bench_dds,
    bench_king_inversion,
    bench_bridge_solve,
    bench_die_step,
);
criterion_main!(kernels);
