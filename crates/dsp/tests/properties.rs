//! Property-based tests of the fixed-point DSP blocks: quantization error
//! bounds, saturation correctness, filter stability under arbitrary input.

use hotwire_dsp::cic::CicDecimator;
use hotwire_dsp::despike::{Median5, MovingAverage};
use hotwire_dsp::fir::{design_lowpass, quantize_q15, Window};
use hotwire_dsp::fix::{saturate_bits, saturate_i32, Q15, Q16, Q30};
use hotwire_dsp::iir::{Biquad, BiquadCoeffs, SinglePoleLp};
use hotwire_dsp::pi::PiController;
use hotwire_dsp::FirFilter;
use proptest::prelude::*;

proptest! {
    #[test]
    fn q15_round_trip_error_bounded(x in -65_000.0f64..65_000.0) {
        let q = Q15::from_f64(x);
        prop_assert!((q.to_f64() - x).abs() <= 0.5 / 32_768.0 + 1e-12);
    }

    #[test]
    fn q30_multiplication_tracks_f64(a in -1.9f64..1.9, b in -1.0f64..1.0) {
        let qa = Q30::from_f64(a);
        let qb = Q30::from_f64(b);
        let exact = a * b;
        if exact.abs() < 1.9 {
            prop_assert!((qa.mul(qb).to_f64() - exact).abs() < 1e-8);
        }
    }

    #[test]
    fn fixed_add_matches_saturating_i64(a in any::<i32>(), b in any::<i32>()) {
        let qa = Q16::from_raw(a);
        let qb = Q16::from_raw(b);
        let expected = saturate_i32(a as i64 + b as i64);
        prop_assert_eq!(qa.add(qb).raw(), expected);
    }

    #[test]
    fn saturate_bits_is_idempotent_and_bounded(x in any::<i64>(), bits in 2u32..=62) {
        let s = saturate_bits(x, bits);
        prop_assert_eq!(saturate_bits(s, bits), s);
        prop_assert!(s < (1i64 << (bits - 1)));
        prop_assert!(s >= -(1i64 << (bits - 1)));
    }

    #[test]
    fn cic_is_linear_and_bounded(signal in prop::collection::vec(-1i32..=1, 256..1024)) {
        let mut a = CicDecimator::new(3, 32).unwrap();
        let mut b = CicDecimator::new(3, 32).unwrap();
        for &x in &signal {
            if let (Some(ya), Some(yb)) = (a.push(x), b.push(-x)) {
                // Negation symmetry (linearity) and gain bound.
                prop_assert_eq!(ya, -yb);
                prop_assert!(ya.abs() <= a.gain());
            }
        }
    }

    #[test]
    fn fir_output_bounded_by_input_extremes(
        xs in prop::collection::vec(-30_000i32..=30_000, 64..256),
        cutoff in 0.05f64..0.45,
    ) {
        // A positive-ish low-pass keeps output within ~±(max|x|·Σ|h|).
        let taps = design_lowpass(21, cutoff, Window::Hamming).unwrap();
        let l1: f64 = taps.iter().map(|c| c.abs()).sum();
        let mut fir = FirFilter::new(quantize_q15(&taps)).unwrap();
        let bound = (30_000.0 * l1 * 1.01 + 2.0) as i32;
        for &x in &xs {
            let y = fir.push(x);
            prop_assert!(y.abs() <= bound, "y={y} bound={bound}");
        }
    }

    #[test]
    fn biquad_never_diverges_on_bounded_input(
        xs in prop::collection::vec(-30_000i32..=30_000, 64..512),
        fc in 1.0f64..400.0,
    ) {
        let coeffs = BiquadCoeffs::butterworth_lowpass(fc, 1000.0).unwrap();
        let mut biquad = Biquad::from_coeffs(&coeffs).unwrap();
        for &x in &xs {
            let y = biquad.push(x);
            // A Butterworth LP has peak gain 1: output bounded by ~2× input
            // extreme including transient overshoot.
            prop_assert!(y.abs() <= 70_000, "y={y}");
        }
    }

    #[test]
    fn single_pole_output_between_input_extremes(
        xs in prop::collection::vec(-20_000i32..=20_000, 32..512),
        fc in 0.05f64..400.0,
    ) {
        let mut lp = SinglePoleLp::design(fc, 1000.0).unwrap();
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        for &x in &xs {
            let y = lp.push(x);
            prop_assert!(y >= lo.min(0) - 1 && y <= hi.max(0) + 1, "y={y} in [{lo},{hi}]");
        }
    }

    #[test]
    fn median5_output_is_a_recent_sample(xs in prop::collection::vec(any::<i32>(), 1..64)) {
        let mut m = Median5::new();
        let mut history: Vec<i32> = Vec::new();
        for &x in &xs {
            history.push(x);
            let y = m.push(x);
            let window_start = history.len().saturating_sub(5);
            prop_assert!(
                history[window_start..].contains(&y),
                "median {y} not among last 5 inputs"
            );
        }
    }

    #[test]
    fn moving_average_within_window_extremes(
        xs in prop::collection::vec(-1_000_000i32..=1_000_000, 1..128),
        len in 1usize..16,
    ) {
        let mut avg = MovingAverage::new(len).unwrap();
        let mut history: Vec<i32> = Vec::new();
        for &x in &xs {
            history.push(x);
            let y = avg.push(x);
            let start = history.len().saturating_sub(len);
            let w = &history[start..];
            let lo = *w.iter().min().unwrap();
            let hi = *w.iter().max().unwrap();
            prop_assert!(y >= lo - 1 && y <= hi + 1, "avg {y} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn pi_output_always_clamped(
        errors in prop::collection::vec(-1_000_000i32..=1_000_000, 1..256),
        kp in 0.0f64..4.0,
        ki in 0.0f64..1.0,
    ) {
        prop_assume!(kp > 0.0 || ki > 0.0);
        let mut pi = PiController::new(
            hotwire_dsp::fix::Q16::from_f64(kp),
            hotwire_dsp::fix::Q16::from_f64(ki),
            0,
            4095,
        ).unwrap();
        for &e in &errors {
            let u = pi.update(e);
            prop_assert!((0..=4095).contains(&u));
        }
    }

    #[test]
    fn fir_design_always_unit_dc(taps in 3usize..128, cutoff in 0.01f64..0.49) {
        let h = design_lowpass(taps, cutoff, Window::Blackman).unwrap();
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
