//! The PI controller closing the constant-temperature loop.
//!
//! The paper: "Closed loop is implemented by software-emulated IPs which
//! feature reference subtraction, PI controller and feedback actuation
//! directly to supply the two bridges." This is that software IP, written the
//! way it runs on an integer core: Q16.16 gains, 64-bit integrator,
//! conditional anti-windup, output clamped to the DAC range.

use crate::error::DspError;
use crate::fix::{saturate_i32, Q16};

/// A discrete-time PI controller with clamped output and anti-windup.
///
/// `u[k] = clamp(Kp·e[k] + Σ Ki·e[j])`, with the integrator frozen whenever
/// the output is pinned at a rail and the error would push it further out
/// (conditional integration).
///
/// ```
/// use hotwire_dsp::pi::PiController;
/// use hotwire_dsp::fix::Q16;
///
/// let mut pi = PiController::new(Q16::from_f64(0.5), Q16::from_f64(0.01), 0, 4095)?;
/// // A persistent positive error drives the output up…
/// let mut u = 0;
/// for _ in 0..100 { u = pi.update(100); }
/// assert!(u > 100);
/// // …but never past the rail.
/// for _ in 0..100_000 { u = pi.update(100_000); }
/// assert_eq!(u, 4095);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PiController {
    kp: Q16,
    ki: Q16,
    out_min: i32,
    out_max: i32,
    /// Integrator in Q16.16-extended precision.
    integrator: i64,
}

impl PiController {
    /// Creates a controller with proportional gain `kp`, per-sample integral
    /// gain `ki`, and output clamps `[out_min, out_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] if `out_min >= out_max` or either
    /// gain is negative.
    pub fn new(kp: Q16, ki: Q16, out_min: i32, out_max: i32) -> Result<Self, DspError> {
        if out_min >= out_max {
            return Err(DspError::InvalidConfig {
                name: "out_min/out_max",
                constraint: "out_min must be strictly below out_max",
            });
        }
        if kp.raw() < 0 || ki.raw() < 0 {
            return Err(DspError::InvalidConfig {
                name: "kp/ki",
                constraint: "gains must be non-negative",
            });
        }
        Ok(PiController {
            kp,
            ki,
            out_min,
            out_max,
            integrator: 0,
        })
    }

    /// Proportional gain.
    #[inline]
    pub fn kp(&self) -> Q16 {
        self.kp
    }

    /// Integral gain (per sample).
    #[inline]
    pub fn ki(&self) -> Q16 {
        self.ki
    }

    /// Output clamp range.
    #[inline]
    pub fn output_range(&self) -> (i32, i32) {
        (self.out_min, self.out_max)
    }

    /// Runs one control step on error `e` (setpoint − measurement) and
    /// returns the clamped actuator command.
    pub fn update(&mut self, e: i32) -> i32 {
        let p = self.kp.raw() as i64 * e as i64; // Q16.16
        let i_step = self.ki.raw() as i64 * e as i64;
        let unclamped = (p + self.integrator + i_step) >> 16;
        let clamped = saturate_i32(unclamped).clamp(self.out_min, self.out_max);
        // Conditional integration: accept the integrator step only if it does
        // not push the output further past an already-hit rail.
        let pushing_out = (unclamped > self.out_max as i64 && e > 0)
            || (unclamped < self.out_min as i64 && e < 0);
        if !pushing_out {
            self.integrator += i_step;
        }
        clamped
    }

    /// Presets the integrator so the next zero-error output equals `u`
    /// (bumpless start at a known operating point).
    pub fn preset_output(&mut self, u: i32) {
        self.integrator = (u.clamp(self.out_min, self.out_max) as i64) << 16;
    }

    /// Clears the integrator.
    pub fn reset(&mut self) {
        self.integrator = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pi(kp: f64, ki: f64) -> PiController {
        PiController::new(Q16::from_f64(kp), Q16::from_f64(ki), -10_000, 10_000).unwrap()
    }

    #[test]
    fn proportional_action() {
        let mut c = pi(2.0, 0.0);
        assert_eq!(c.update(100), 200);
        assert_eq!(c.update(-50), -100);
        assert_eq!(c.update(0), 0);
    }

    #[test]
    fn integral_accumulates() {
        let mut c = pi(0.0, 0.1);
        let mut last = 0;
        for _ in 0..10 {
            last = c.update(100);
        }
        // 10 samples × 0.1 × 100 = 100.
        assert!((last - 100).abs() <= 1, "integ {last}");
    }

    #[test]
    fn zero_error_holds_output() {
        let mut c = pi(1.0, 0.05);
        for _ in 0..50 {
            c.update(200);
        }
        let held = c.update(0);
        for _ in 0..100 {
            assert_eq!(c.update(0), held);
        }
    }

    #[test]
    fn output_clamps_and_recovers() {
        let mut c = pi(1.0, 0.5);
        for _ in 0..10_000 {
            assert!(c.update(1_000_000) <= 10_000);
        }
        assert_eq!(c.update(1_000_000), 10_000);
        // Anti-windup: after the error flips, the output must leave the rail
        // promptly rather than unwinding a huge integrator.
        let mut steps = 0;
        while c.update(-1000) >= 10_000 && steps < 100 {
            steps += 1;
        }
        assert!(
            steps < 20,
            "took {steps} steps to leave the rail — wound up"
        );
    }

    #[test]
    fn closed_loop_settles_on_first_order_plant() {
        // Plant: y += 0.1·(u − y); controller drives y to the setpoint.
        let mut c = pi(0.8, 0.2);
        let mut y = 0.0f64;
        let setpoint = 3000.0;
        for _ in 0..500 {
            let u = c.update((setpoint - y) as i32) as f64;
            y += 0.1 * (u - y);
        }
        assert!(
            (y - setpoint).abs() < 10.0,
            "loop settled at {y} instead of {setpoint}"
        );
    }

    #[test]
    fn preset_output_is_bumpless() {
        let mut c = pi(1.0, 0.1);
        c.preset_output(5000);
        assert_eq!(c.update(0), 5000);
    }

    #[test]
    fn reset_clears() {
        let mut c = pi(0.0, 1.0);
        c.update(100);
        c.reset();
        assert_eq!(c.update(0), 0);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(PiController::new(Q16::from_f64(1.0), Q16::from_f64(1.0), 10, 10).is_err());
        assert!(PiController::new(Q16::from_f64(-1.0), Q16::from_f64(1.0), 0, 10).is_err());
        assert!(PiController::new(Q16::from_f64(1.0), Q16::from_f64(-1.0), 0, 10).is_err());
    }
}
