//! Direct digital synthesis sine generator — ISIF's "sine wave generator" IP.
//!
//! A 32-bit phase accumulator indexes a quarter-wave Q15 lookup table.
//! Used for AC sensor excitation and as the local oscillator of the
//! [`crate::demod`] I/Q demodulator.

use crate::error::DspError;

/// Quarter-wave LUT length (must be a power of two).
const QUARTER_LEN: usize = 256;

/// Quarter-wave sine table in Q15, generated at first use.
fn quarter_table() -> &'static [i16; QUARTER_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[i16; QUARTER_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i16; QUARTER_LEN];
        for (i, v) in t.iter_mut().enumerate() {
            // Sample at bin centres to make the quarter symmetric.
            let phi = (i as f64 + 0.5) / QUARTER_LEN as f64 * core::f64::consts::FRAC_PI_2;
            *v = (phi.sin() * 32767.0).round() as i16;
        }
        t
    })
}

/// A 32-bit phase-accumulator sine generator with Q15 output.
///
/// ```
/// use hotwire_dsp::dds::SineGenerator;
///
/// // 1 kHz tone at a 256 kHz sample rate.
/// let mut dds = SineGenerator::new(1000.0, 256_000.0)?;
/// let first: Vec<i16> = (0..4).map(|_| dds.next_sample()).collect();
/// assert!(first[0] >= 0 && first[3] > first[0]); // rising from phase 0
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SineGenerator {
    phase: u32,
    increment: u32,
}

impl SineGenerator {
    /// Creates a generator producing `frequency` at `sample_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] unless
    /// `0 < frequency < sample_rate / 2`.
    pub fn new(frequency: f64, sample_rate: f64) -> Result<Self, DspError> {
        if !(frequency > 0.0 && frequency < sample_rate / 2.0) {
            return Err(DspError::InvalidConfig {
                name: "frequency",
                constraint: "must lie strictly between 0 and half the sample rate",
            });
        }
        let increment = (frequency / sample_rate * 2f64.powi(32)).round() as u32;
        Ok(SineGenerator {
            phase: 0,
            increment,
        })
    }

    /// Phase increment per sample (frequency-tuning word).
    #[inline]
    pub fn tuning_word(&self) -> u32 {
        self.increment
    }

    /// Sine of the current phase without advancing (Q15).
    pub fn sample_at_phase(phase: u32) -> i16 {
        let table = quarter_table();
        // Top 2 bits select the quadrant, next 8 bits the table index.
        let quadrant = (phase >> 30) & 0b11;
        let idx = ((phase >> 22) & (QUARTER_LEN as u32 - 1)) as usize;
        match quadrant {
            0 => table[idx],
            1 => table[QUARTER_LEN - 1 - idx],
            2 => -table[idx],
            _ => -table[QUARTER_LEN - 1 - idx],
        }
    }

    /// Returns the next sine sample and advances the phase.
    pub fn next_sample(&mut self) -> i16 {
        let y = Self::sample_at_phase(self.phase);
        self.phase = self.phase.wrapping_add(self.increment);
        y
    }

    /// Returns the next (sine, cosine) pair and advances the phase — the I/Q
    /// local oscillator.
    pub fn next_iq(&mut self) -> (i16, i16) {
        let s = Self::sample_at_phase(self.phase);
        let c = Self::sample_at_phase(self.phase.wrapping_add(1 << 30));
        self.phase = self.phase.wrapping_add(self.increment);
        (s, c)
    }

    /// Resets the phase to zero.
    pub fn reset(&mut self) {
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_spans_q15() {
        let mut dds = SineGenerator::new(1000.0, 64_000.0).unwrap();
        let samples: Vec<i16> = (0..64).map(|_| dds.next_sample()).collect();
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        assert!(max > 32_700, "peak {max}");
        assert!(min < -32_700, "trough {min}");
    }

    #[test]
    fn frequency_via_zero_crossings() {
        let fs = 100_000.0;
        let f = 1250.0;
        let mut dds = SineGenerator::new(f, fs).unwrap();
        let n = 100_000;
        let mut crossings = 0;
        let mut prev = dds.next_sample();
        for _ in 1..n {
            let s = dds.next_sample();
            if prev < 0 && s >= 0 {
                crossings += 1;
            }
            prev = s;
        }
        let measured = crossings as f64 * fs / n as f64;
        assert!(
            (measured - f).abs() < f * 0.01,
            "measured {measured} Hz vs {f} Hz"
        );
    }

    #[test]
    fn mean_is_near_zero() {
        let mut dds = SineGenerator::new(997.0, 50_000.0).unwrap();
        let sum: i64 = (0..500_000).map(|_| dds.next_sample() as i64).sum();
        let mean = sum as f64 / 500_000.0;
        assert!(mean.abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn iq_is_quadrature() {
        let mut dds = SineGenerator::new(500.0, 64_000.0).unwrap();
        // I·I + Q·Q ≈ const for all phases.
        for _ in 0..1000 {
            let (s, c) = dds.next_iq();
            let mag = (s as f64).hypot(c as f64);
            assert!(
                (mag - 32_767.0).abs() < 350.0,
                "magnitude {mag} not constant"
            );
        }
    }

    #[test]
    fn quadrant_symmetry() {
        // sin(θ) == −sin(θ+π)
        for k in 0..16u32 {
            let phase = k << 27;
            let a = SineGenerator::sample_at_phase(phase);
            let b = SineGenerator::sample_at_phase(phase.wrapping_add(1 << 31));
            assert_eq!(a, -b, "phase {phase:#x}");
        }
    }

    #[test]
    fn reset_restores_phase() {
        let mut dds = SineGenerator::new(1000.0, 64_000.0).unwrap();
        let first = dds.next_sample();
        dds.next_sample();
        dds.reset();
        assert_eq!(dds.next_sample(), first);
    }

    #[test]
    fn rejects_bad_frequency() {
        assert!(SineGenerator::new(0.0, 64_000.0).is_err());
        assert!(SineGenerator::new(40_000.0, 64_000.0).is_err());
    }
}
