//! Error type for DSP-block construction.

/// Errors produced when configuring a DSP block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// A configuration value was outside the supported range.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint, e.g. `"must lie in 1..=6"`.
        constraint: &'static str,
    },
    /// A filter design request was unrealizable (e.g. cutoff above Nyquist).
    UnrealizableDesign {
        /// What went wrong.
        reason: &'static str,
    },
}

impl core::fmt::Display for DspError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DspError::InvalidConfig { name, constraint } => {
                write!(f, "invalid configuration for `{name}`: {constraint}")
            }
            DspError::UnrealizableDesign { reason } => {
                write!(f, "unrealizable filter design: {reason}")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DspError::InvalidConfig {
            name: "order",
            constraint: "must lie in 1..=6",
        };
        assert!(e.to_string().contains("order"));
        let e = DspError::UnrealizableDesign {
            reason: "cutoff above nyquist",
        };
        assert!(e.to_string().contains("nyquist"));
    }
}
