//! I/Q demodulator — ISIF's "channel demodulator" IP.
//!
//! Mixes the input against a DDS local oscillator and low-passes both arms,
//! recovering amplitude and phase of a carrier-borne sensor signal (used on
//! ISIF for AC-excited sensors; included here for platform completeness and
//! used by the rig's lock-in diagnostics).

use crate::dds::SineGenerator;
use crate::error::DspError;
use crate::iir::SinglePoleLp;

/// Amplitude/phase demodulator: mixer pair + single-pole low-pass arms.
///
/// ```
/// use hotwire_dsp::demod::IqDemodulator;
///
/// let fs = 64_000.0;
/// let mut demod = IqDemodulator::new(1000.0, fs, 50.0)?;
/// // Feed a full-scale 1 kHz tone; the magnitude settles near Q15 half
/// // scale (mixer halves the amplitude).
/// let mut mag = 0.0;
/// let mut dds = hotwire_dsp::dds::SineGenerator::new(1000.0, fs)?;
/// for _ in 0..20_000 {
///     let x = dds.next_sample() as i32;
///     let (i, q) = demod.push(x);
///     mag = ((i as f64).powi(2) + (q as f64).powi(2)).sqrt();
/// }
/// assert!((mag / 16_384.0 - 1.0).abs() < 0.05);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IqDemodulator {
    lo: SineGenerator,
    lp_i: SinglePoleLp,
    lp_q: SinglePoleLp,
}

impl IqDemodulator {
    /// Creates a demodulator for carrier `carrier_hz` at sample rate `fs`,
    /// with arm bandwidth `bandwidth_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError`] if the carrier or bandwidth is unrealizable at
    /// `fs`.
    pub fn new(carrier_hz: f64, fs: f64, bandwidth_hz: f64) -> Result<Self, DspError> {
        Ok(IqDemodulator {
            lo: SineGenerator::new(carrier_hz, fs)?,
            lp_i: SinglePoleLp::design(bandwidth_hz, fs)?,
            lp_q: SinglePoleLp::design(bandwidth_hz, fs)?,
        })
    }

    /// Pushes one sample; returns the filtered `(I, Q)` baseband pair.
    pub fn push(&mut self, x: i32) -> (i32, i32) {
        let (s, c) = self.lo.next_iq();
        // Mix in Q15: x·sin >> 15.
        let i_mix = ((x as i64 * s as i64) >> 15) as i32;
        let q_mix = ((x as i64 * c as i64) >> 15) as i32;
        (self.lp_i.push(i_mix), self.lp_q.push(q_mix))
    }

    /// Magnitude of a baseband pair (integer hypot).
    pub fn magnitude(i: i32, q: i32) -> i32 {
        (i as f64).hypot(q as f64).round() as i32
    }

    /// Resets oscillator phase and both arms.
    pub fn reset(&mut self) {
        self.lo.reset();
        self.lp_i.reset();
        self.lp_q.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dds::SineGenerator;

    #[test]
    fn recovers_carrier_amplitude() {
        let fs = 64_000.0;
        let mut demod = IqDemodulator::new(2000.0, fs, 100.0).unwrap();
        let mut tone = SineGenerator::new(2000.0, fs).unwrap();
        let mut mag = 0;
        for _ in 0..30_000 {
            let x = (tone.next_sample() as i32) / 2; // half-scale tone
            let (i, q) = demod.push(x);
            mag = IqDemodulator::magnitude(i, q);
        }
        // Mixer halves the amplitude: expect ~ 32768/2/2 = 8192.
        assert!((mag - 8192).abs() < 500, "magnitude {mag}");
    }

    #[test]
    fn rejects_off_carrier_tone() {
        let fs = 64_000.0;
        let mut demod = IqDemodulator::new(2000.0, fs, 20.0).unwrap();
        let mut tone = SineGenerator::new(7000.0, fs).unwrap();
        let mut mag = 0;
        for i in 0..30_000 {
            let x = tone.next_sample() as i32;
            let (ii, qq) = demod.push(x);
            if i > 20_000 {
                mag = mag.max(IqDemodulator::magnitude(ii, qq));
            }
        }
        assert!(mag < 600, "off-carrier leakage {mag}");
    }

    #[test]
    fn zero_input_zero_output() {
        let mut demod = IqDemodulator::new(1000.0, 64_000.0, 50.0).unwrap();
        for _ in 0..1000 {
            let (i, q) = demod.push(0);
            assert_eq!((i, q), (0, 0));
        }
    }

    #[test]
    fn reset_restarts_cleanly() {
        let mut demod = IqDemodulator::new(1000.0, 64_000.0, 50.0).unwrap();
        for _ in 0..100 {
            demod.push(10_000);
        }
        demod.reset();
        let (i, q) = demod.push(0);
        assert_eq!((i, q), (0, 0));
    }

    #[test]
    fn magnitude_helper() {
        assert_eq!(IqDemodulator::magnitude(3, 4), 5);
        assert_eq!(IqDemodulator::magnitude(-3, 4), 5);
        assert_eq!(IqDemodulator::magnitude(0, 0), 0);
    }
}
