//! IIR filters: Butterworth biquad design and fixed-point runtime engines.
//!
//! Two engines are provided, matching the two places the paper uses IIR
//! filtering:
//!
//! * [`Biquad`] — second-order section with Q30 coefficients, direct-form II
//!   transposed, for the channel low-pass after decimation;
//! * [`SinglePoleLp`] — the very-low-frequency output smoother ("further
//!   filtering with an IIR filter down to the bandwidth of 0.1 Hz in order to
//!   improve the sensitivity"), kept in extended precision because a 0.1 Hz
//!   corner at a 1 kHz sample rate has a coefficient of ~6·10⁻⁴ that would
//!   dead-band a plain 32-bit state.

use crate::error::DspError;
use crate::fix::{saturate_i32, Q30};

/// Floating-point biquad coefficients (`b0 + b1·z⁻¹ + b2·z⁻²` over
/// `1 + a1·z⁻¹ + a2·z⁻²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiquadCoeffs {
    /// Numerator taps.
    pub b: [f64; 3],
    /// Denominator taps `a1`, `a2` (with `a0` normalized to 1).
    pub a: [f64; 2],
}

impl BiquadCoeffs {
    /// Designs a second-order Butterworth low-pass with corner `fc` at sample
    /// rate `fs`, via the bilinear transform with pre-warping.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnrealizableDesign`] unless `0 < fc < fs/2`.
    pub fn butterworth_lowpass(fc: f64, fs: f64) -> Result<Self, DspError> {
        if !(fc > 0.0 && fc < fs / 2.0 && fs > 0.0) {
            return Err(DspError::UnrealizableDesign {
                reason: "corner must lie strictly between 0 and nyquist",
            });
        }
        let k = (core::f64::consts::PI * fc / fs).tan();
        let sqrt2 = core::f64::consts::SQRT_2;
        let norm = 1.0 / (1.0 + sqrt2 * k + k * k);
        let b0 = k * k * norm;
        Ok(BiquadCoeffs {
            b: [b0, 2.0 * b0, b0],
            a: [2.0 * (k * k - 1.0) * norm, (1.0 - sqrt2 * k + k * k) * norm],
        })
    }

    /// Magnitude response at frequency `f` for sample rate `fs`.
    pub fn magnitude(&self, f: f64, fs: f64) -> f64 {
        let w = core::f64::consts::TAU * f / fs;
        let num = complex_poly(&[self.b[0], self.b[1], self.b[2]], w);
        let den = complex_poly(&[1.0, self.a[0], self.a[1]], w);
        (num.0 * num.0 + num.1 * num.1).sqrt() / (den.0 * den.0 + den.1 * den.1).sqrt()
    }

    /// `true` if both poles lie inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for 2nd order: |a2| < 1 and |a1| < 1 + a2.
        self.a[1].abs() < 1.0 && self.a[0].abs() < 1.0 + self.a[1]
    }
}

fn complex_poly(c: &[f64; 3], w: f64) -> (f64, f64) {
    let (mut re, mut im) = (0.0, 0.0);
    for (i, &ci) in c.iter().enumerate() {
        re += ci * (w * i as f64).cos();
        im -= ci * (w * i as f64).sin();
    }
    (re, im)
}

/// A fixed-point biquad (direct-form II transposed, Q30 coefficients,
/// 64-bit state).
///
/// ```
/// use hotwire_dsp::iir::{Biquad, BiquadCoeffs};
///
/// let coeffs = BiquadCoeffs::butterworth_lowpass(100.0, 1000.0)?;
/// let mut biquad = Biquad::from_coeffs(&coeffs)?;
/// let mut y = 0;
/// for _ in 0..200 { y = biquad.push(10_000); }
/// assert!((y - 10_000).abs() <= 2); // unit DC gain
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Biquad {
    b: [Q30; 3],
    a: [Q30; 2],
    // DF2T state registers in Q30-extended precision.
    s1: i64,
    s2: i64,
}

impl Biquad {
    /// Quantizes floating coefficients to Q30. Coefficients must fit ±2
    /// (true for any stable low-pass/band-pass normalized section).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnrealizableDesign`] if the design is unstable or
    /// any coefficient saturates the Q2.30 range.
    pub fn from_coeffs(c: &BiquadCoeffs) -> Result<Self, DspError> {
        if !c.is_stable() {
            return Err(DspError::UnrealizableDesign {
                reason: "biquad poles outside unit circle",
            });
        }
        let q = |x: f64| -> Result<Q30, DspError> {
            let v = Q30::from_f64(x);
            if v.is_saturated() {
                Err(DspError::UnrealizableDesign {
                    reason: "coefficient exceeds Q2.30 range",
                })
            } else {
                Ok(v)
            }
        };
        Ok(Biquad {
            b: [q(c.b[0])?, q(c.b[1])?, q(c.b[2])?],
            a: [q(c.a[0])?, q(c.a[1])?],
            s1: 0,
            s2: 0,
        })
    }

    /// Pushes one sample through the section.
    pub fn push(&mut self, x: i32) -> i32 {
        let x = x as i64;
        // y = b0·x + s1 (state holds Q30-scaled partial sums).
        let y_wide = self.b[0].raw() as i64 * x + self.s1;
        let y = (y_wide + (1 << 29)) >> 30;
        self.s1 = self.b[1].raw() as i64 * x - self.a[0].raw() as i64 * y + self.s2;
        self.s2 = self.b[2].raw() as i64 * x - self.a[1].raw() as i64 * y;
        saturate_i32(y)
    }

    /// Clears the state registers.
    pub fn reset(&mut self) {
        self.s1 = 0;
        self.s2 = 0;
    }
}

/// A single-pole low-pass `y += α·(x − y)` with extended-precision state,
/// for sub-hertz corners at kilohertz sample rates.
///
/// ```
/// use hotwire_dsp::iir::SinglePoleLp;
///
/// let mut lp = SinglePoleLp::design(0.1, 1000.0)?; // the paper's 0.1 Hz
/// let mut y = 0;
/// for _ in 0..20_000 { y = lp.push(1_000_000); }
/// assert!((y - 1_000_000).abs() < 5_000); // converges to DC within ~2τ
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SinglePoleLp {
    /// α in Q30.
    alpha: Q30,
    /// State `y` in Q30-extended precision (value · 2³⁰).
    state: i64,
}

impl SinglePoleLp {
    /// Designs the pole for a −3 dB corner `fc` at sample rate `fs` using the
    /// exact mapping `α = 1 − exp(−2π·fc/fs)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnrealizableDesign`] unless `0 < fc < fs/2`.
    pub fn design(fc: f64, fs: f64) -> Result<Self, DspError> {
        if !(fc > 0.0 && fc < fs / 2.0 && fs > 0.0) {
            return Err(DspError::UnrealizableDesign {
                reason: "corner must lie strictly between 0 and nyquist",
            });
        }
        let alpha = 1.0 - (-core::f64::consts::TAU * fc / fs).exp();
        Ok(SinglePoleLp {
            alpha: Q30::from_f64(alpha),
            state: 0,
        })
    }

    /// The quantized α coefficient.
    #[inline]
    pub fn alpha(&self) -> Q30 {
        self.alpha
    }

    /// Pushes one sample; returns the smoothed output.
    pub fn push(&mut self, x: i32) -> i32 {
        let x_ext = (x as i64) << 30;
        let err = x_ext - self.state;
        // α·err without losing the low bits: α is Q30, err is Q30-extended;
        // multiply in i128 then drop 30 bits.
        let delta = ((self.alpha.raw() as i128 * err as i128) >> 30) as i64;
        self.state += delta;
        saturate_i32((self.state + (1 << 29)) >> 30)
    }

    /// Jumps the state directly to `y` (loop pre-charging).
    pub fn preset(&mut self, y: i32) {
        self.state = (y as i64) << 30;
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterworth_design_matches_textbook() {
        let c = BiquadCoeffs::butterworth_lowpass(100.0, 1000.0).unwrap();
        assert!(c.is_stable());
        // DC gain exactly 1.
        let dc = (c.b[0] + c.b[1] + c.b[2]) / (1.0 + c.a[0] + c.a[1]);
        assert!((dc - 1.0).abs() < 1e-12);
        // −3 dB at the corner.
        let g = c.magnitude(100.0, 1000.0);
        assert!(
            (g - core::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "corner gain {g}"
        );
        // −12 dB/octave beyond: one octave above the corner ≈ −12.3 dB.
        let g2 = c.magnitude(200.0, 1000.0);
        assert!(g2 < 0.3, "octave-up gain {g2}");
    }

    #[test]
    fn biquad_fixed_point_tracks_float() {
        let c = BiquadCoeffs::butterworth_lowpass(50.0, 1000.0).unwrap();
        let mut fx = Biquad::from_coeffs(&c).unwrap();
        // Float reference (DF2T).
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        let mut max_err = 0.0f64;
        for i in 0..2000 {
            let x = (10_000.0 * (core::f64::consts::TAU * 20.0 * i as f64 / 1000.0).sin()) as i32;
            let yf = c.b[0] * x as f64 + s1;
            s1 = c.b[1] * x as f64 - c.a[0] * yf + s2;
            s2 = c.b[2] * x as f64 - c.a[1] * yf;
            let yq = fx.push(x) as f64;
            max_err = max_err.max((yq - yf).abs());
        }
        assert!(max_err < 4.0, "fixed-vs-float max error {max_err} counts");
    }

    #[test]
    fn biquad_dc_convergence() {
        let c = BiquadCoeffs::butterworth_lowpass(100.0, 1000.0).unwrap();
        let mut b = Biquad::from_coeffs(&c).unwrap();
        let mut y = 0;
        for _ in 0..500 {
            y = b.push(-24_000);
        }
        assert!((y + 24_000).abs() <= 2, "dc out {y}");
    }

    #[test]
    fn biquad_attenuates_stopband_tone() {
        let c = BiquadCoeffs::butterworth_lowpass(10.0, 1000.0).unwrap();
        let mut b = Biquad::from_coeffs(&c).unwrap();
        let mut peak = 0i32;
        for i in 0..5000 {
            let x = (20_000.0 * (core::f64::consts::TAU * 200.0 * i as f64 / 1000.0).sin()) as i32;
            let y = b.push(x);
            if i > 1000 {
                peak = peak.max(y.abs());
            }
        }
        // 200 Hz through a 10 Hz 2nd-order LP: ~ (10/200)² = −52 dB ideal;
        // allow a few counts of fixed-point rounding noise on top.
        assert!(peak < 160, "stopband peak {peak}");
    }

    #[test]
    fn unstable_coeffs_rejected() {
        let unstable = BiquadCoeffs {
            b: [1.0, 0.0, 0.0],
            a: [-2.1, 1.2],
        };
        assert!(!unstable.is_stable());
        assert!(Biquad::from_coeffs(&unstable).is_err());
    }

    #[test]
    fn single_pole_time_constant() {
        // 0.1 Hz at 1 kHz: τ = fs/(2π·fc) ≈ 1592 samples. After exactly τ
        // samples of a unit step the output is 1 − e⁻¹ ≈ 63.2 %.
        let mut lp = SinglePoleLp::design(0.1, 1000.0).unwrap();
        let tau = (1000.0 / (core::f64::consts::TAU * 0.1)).round() as usize;
        let mut y = 0;
        for _ in 0..tau {
            y = lp.push(1_000_000);
        }
        let frac = y as f64 / 1_000_000.0;
        assert!((frac - 0.632).abs() < 0.01, "step fraction {frac}");
    }

    #[test]
    fn single_pole_no_deadband_at_tiny_alpha() {
        // A plain 32-bit state would stall: α·err < 1 count. The extended
        // state must keep integrating a 10-count step.
        let mut lp = SinglePoleLp::design(0.1, 1000.0).unwrap();
        let mut y = 0;
        for _ in 0..100_000 {
            y = lp.push(10);
        }
        assert_eq!(y, 10, "deadband detected: y={y}");
    }

    #[test]
    fn single_pole_preset_and_reset() {
        let mut lp = SinglePoleLp::design(1.0, 1000.0).unwrap();
        lp.preset(5000);
        assert_eq!(lp.push(5000), 5000);
        lp.reset();
        assert_eq!(lp.push(0), 0);
    }

    #[test]
    fn single_pole_smooths_noise() {
        // White ±1000-count noise through the 0.1 Hz pole: variance shrinks
        // by ≈ α/(2−α) ≈ 3.1e-4 → rms from ~577 to ~10 counts.
        let mut lp = SinglePoleLp::design(0.1, 1000.0).unwrap();
        let mut seed = 0x12345u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as i32 % 2001) - 1000
        };
        let mut sum2 = 0f64;
        let n = 50_000;
        for i in 0..n + 10_000 {
            let y = lp.push(rand());
            if i >= 10_000 {
                sum2 += (y as f64) * (y as f64);
            }
        }
        let rms = (sum2 / n as f64).sqrt();
        assert!(rms < 30.0, "smoothed rms {rms}");
    }

    #[test]
    fn rejects_bad_corners() {
        assert!(BiquadCoeffs::butterworth_lowpass(0.0, 1000.0).is_err());
        assert!(BiquadCoeffs::butterworth_lowpass(600.0, 1000.0).is_err());
        assert!(SinglePoleLp::design(0.0, 1000.0).is_err());
        assert!(SinglePoleLp::design(500.0, 1000.0).is_err());
    }
}
