//! Polyphase decimating FIR — the second decimation stage after the CIC.
//!
//! A CIC gets the rate down cheaply but droops; the classic follow-up is a
//! modest FIR that (a) compensates the droop and (b) decimates a further
//! small factor. The polyphase arrangement computes each output from one
//! sub-filter pass instead of filtering at the high rate and discarding —
//! `M×` fewer MACs, which on a LEON-class core is the difference between a
//! software IP fitting its tick budget or not.

use crate::error::DspError;
use crate::fix::{saturate_i32, Q15};

/// A decimate-by-`M` polyphase FIR with Q15 coefficients.
///
/// ```
/// use hotwire_dsp::decimate::PolyphaseDecimator;
/// use hotwire_dsp::fir::{design_lowpass, quantize_q15, Window};
///
/// // Decimate by 4 with a half-band-ish prototype.
/// let taps = quantize_q15(&design_lowpass(32, 0.1, Window::Hamming)?);
/// let mut dec = PolyphaseDecimator::new(taps, 4)?;
/// let mut outputs = 0;
/// for _ in 0..64 {
///     if dec.push(1000).is_some() {
///         outputs += 1;
///     }
/// }
/// assert_eq!(outputs, 16);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolyphaseDecimator {
    /// Phase sub-filters: `phases[p][k] = h[k·M + p]`.
    phases: Vec<Vec<Q15>>,
    /// Per-phase delay lines (shared input history, stored per phase).
    delay: Vec<Vec<i32>>,
    factor: usize,
    /// Input phase counter.
    phase: usize,
}

impl PolyphaseDecimator {
    /// Builds a decimator from prototype taps and factor `M` (≥ 2). The tap
    /// count must be a multiple of `M`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for `M < 2` or a tap count not
    /// divisible by `M`.
    pub fn new(taps: Vec<Q15>, factor: usize) -> Result<Self, DspError> {
        if factor < 2 {
            return Err(DspError::InvalidConfig {
                name: "factor",
                constraint: "must be at least 2",
            });
        }
        if taps.is_empty() || taps.len() % factor != 0 {
            return Err(DspError::InvalidConfig {
                name: "taps",
                constraint: "tap count must be a non-zero multiple of the factor",
            });
        }
        let sub_len = taps.len() / factor;
        let mut phases = vec![Vec::with_capacity(sub_len); factor];
        for (k, &t) in taps.iter().enumerate() {
            phases[k % factor].push(t);
        }
        Ok(PolyphaseDecimator {
            delay: vec![vec![0; sub_len]; factor],
            phases,
            factor,
            phase: 0,
        })
    }

    /// Decimation factor `M`.
    #[inline]
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Pushes one high-rate sample; every `M` samples returns one filtered
    /// low-rate output.
    pub fn push(&mut self, x: i32) -> Option<i32> {
        // Input with index n goes to phase p = n mod M; its sub-filter is
        // phases[p] operating on every M-th input.
        let p = self.phase;
        let line = &mut self.delay[p];
        line.rotate_right(1);
        line[0] = x;
        self.phase += 1;
        if self.phase < self.factor {
            return None;
        }
        self.phase = 0;
        // Output: sum over all phases of their dot products. Polyphase
        // identity: y[m] = Σ_p Σ_k h[kM+p]·x[mM−kM−p].
        let mut acc: i64 = 0;
        for (p, sub) in self.phases.iter().enumerate() {
            // The most recent sample of phase p is x[mM + (M−1−p)]... our
            // per-phase delay lines hold that phase's samples, newest first.
            let line = &self.delay[self.factor - 1 - p];
            for (k, &c) in sub.iter().enumerate() {
                acc += line[k] as i64 * c.raw() as i64;
            }
        }
        Some(saturate_i32((acc + (1 << 14)) >> 15))
    }

    /// Clears all delay lines.
    pub fn reset(&mut self) {
        for line in &mut self.delay {
            line.fill(0);
        }
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::{design_lowpass, quantize_q15, Window};

    fn prototype(taps: usize, cutoff: f64) -> Vec<Q15> {
        quantize_q15(&design_lowpass(taps, cutoff, Window::Hamming).unwrap())
    }

    #[test]
    fn output_cadence() {
        let mut d = PolyphaseDecimator::new(prototype(32, 0.1), 4).unwrap();
        let outs = (0..400).filter(|&i| d.push(i).is_some()).count();
        assert_eq!(outs, 100);
    }

    #[test]
    fn dc_gain_preserved() {
        let mut d = PolyphaseDecimator::new(prototype(32, 0.1), 4).unwrap();
        let mut last = 0;
        for _ in 0..200 {
            if let Some(y) = d.push(20_000) {
                last = y;
            }
        }
        assert!((last - 20_000).abs() <= 8, "dc out {last}");
    }

    #[test]
    fn matches_filter_then_discard_reference() {
        // The polyphase output must equal filtering at full rate with the
        // same prototype and keeping every M-th output.
        let taps = prototype(24, 0.08);
        let factor = 4;
        let mut poly = PolyphaseDecimator::new(taps.clone(), factor).unwrap();
        let mut reference = crate::FirFilter::new(taps).unwrap();
        let signal: Vec<i32> = (0..240).map(|i| ((i * 37) % 2001) - 1000).collect();
        let mut poly_out = Vec::new();
        let mut ref_out = Vec::new();
        for (i, &x) in signal.iter().enumerate() {
            if let Some(y) = poly.push(x) {
                poly_out.push(y);
            }
            let y = reference.push(x);
            if i % factor == factor - 1 {
                ref_out.push(y);
            }
        }
        assert_eq!(poly_out.len(), ref_out.len());
        for (a, b) in poly_out.iter().zip(&ref_out) {
            assert!((a - b).abs() <= 1, "polyphase {a} vs reference {b}");
        }
    }

    #[test]
    fn attenuates_aliasing_band() {
        // A tone just above the post-decimation Nyquist must be crushed
        // before decimation folds it down.
        let taps = prototype(48, 0.1);
        let mut d = PolyphaseDecimator::new(taps, 4).unwrap();
        let mut peak = 0i32;
        for i in 0..2000 {
            // f = 0.2 of input rate — folds to 0.8 of output Nyquist.
            let x = (20_000.0 * (core::f64::consts::TAU * 0.2 * i as f64).sin()) as i32;
            if let Some(y) = d.push(x) {
                if i > 400 {
                    peak = peak.max(y.abs());
                }
            }
        }
        assert!(peak < 600, "alias leakage {peak}");
    }

    #[test]
    fn reset_clears() {
        let mut d = PolyphaseDecimator::new(prototype(16, 0.1), 4).unwrap();
        for _ in 0..40 {
            d.push(30_000);
        }
        d.reset();
        let mut first = None;
        for _ in 0..4 {
            if let Some(y) = d.push(0) {
                first = Some(y);
            }
        }
        assert_eq!(first, Some(0));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(PolyphaseDecimator::new(prototype(16, 0.1), 1).is_err());
        assert!(PolyphaseDecimator::new(prototype(15, 0.1), 4).is_err());
        assert!(PolyphaseDecimator::new(Vec::new(), 4).is_err());
    }
}
