//! Goertzel single-bin DFT — the cheap spectral probe of the IP library.
//!
//! A full FFT has no place on a LEON-class core at kilohertz rates, but a
//! Goertzel recursion computes one frequency bin in two multiplies per
//! sample. The rig's diagnostics use it to quantify how much pump-induced
//! periodic ripple or bubble-cycle tone sits on the conditioned output.

use crate::error::DspError;

/// A single-bin Goertzel analyzer over fixed-length blocks.
///
/// ```
/// use hotwire_dsp::goertzel::Goertzel;
///
/// let fs = 1000.0;
/// let mut g = Goertzel::new(50.0, fs, 200)?;
/// let mut power = None;
/// for i in 0..400 {
///     let x = (core::f64::consts::TAU * 50.0 * i as f64 / fs).sin() * 1000.0;
///     if let Some(p) = g.push(x as i32) {
///         power = Some(p);
///     }
/// }
/// // A full block of on-bin tone has magnitude ≈ N/2 · amplitude.
/// let magnitude = power.unwrap().sqrt();
/// assert!((magnitude - 100.0 * 1000.0).abs() < 5_000.0);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Goertzel {
    coeff: f64,
    block: usize,
    s1: f64,
    s2: f64,
    n: usize,
}

impl Goertzel {
    /// Creates an analyzer for `frequency` at sample rate `fs` over blocks
    /// of `block` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] unless `0 < frequency < fs/2` and
    /// `block ≥ 8`.
    pub fn new(frequency: f64, fs: f64, block: usize) -> Result<Self, DspError> {
        if !(frequency > 0.0 && frequency < fs / 2.0) {
            return Err(DspError::InvalidConfig {
                name: "frequency",
                constraint: "must lie strictly between 0 and fs/2",
            });
        }
        if block < 8 {
            return Err(DspError::InvalidConfig {
                name: "block",
                constraint: "must be at least 8 samples",
            });
        }
        let omega = core::f64::consts::TAU * frequency / fs;
        Ok(Goertzel {
            coeff: 2.0 * omega.cos(),
            block,
            s1: 0.0,
            s2: 0.0,
            n: 0,
        })
    }

    /// Block length.
    #[inline]
    pub fn block_len(&self) -> usize {
        self.block
    }

    /// Pushes one sample; at each block boundary returns the bin *power*
    /// (squared magnitude) and restarts.
    pub fn push(&mut self, x: i32) -> Option<f64> {
        let s0 = x as f64 + self.coeff * self.s1 - self.s2;
        self.s2 = self.s1;
        self.s1 = s0;
        self.n += 1;
        if self.n < self.block {
            return None;
        }
        let power = self.s1 * self.s1 + self.s2 * self.s2 - self.coeff * self.s1 * self.s2;
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.n = 0;
        Some(power)
    }

    /// Clears the recursion mid-block.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.n = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, amp: f64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| (amp * (core::f64::consts::TAU * f * i as f64 / fs).sin()) as i32)
            .collect()
    }

    fn bin_magnitude(g: &mut Goertzel, samples: &[i32]) -> f64 {
        let mut last = 0.0;
        for &x in samples {
            if let Some(p) = g.push(x) {
                last = p;
            }
        }
        last.sqrt()
    }

    #[test]
    fn on_bin_tone_detected() {
        let fs = 1000.0;
        let mut g = Goertzel::new(100.0, fs, 100).unwrap();
        let mag = bin_magnitude(&mut g, &tone(100.0, fs, 2000.0, 300));
        // N/2 · amplitude = 50 · 2000.
        assert!((mag - 100_000.0).abs() < 5_000.0, "magnitude {mag}");
    }

    #[test]
    fn off_bin_tone_rejected() {
        let fs = 1000.0;
        let mut g = Goertzel::new(100.0, fs, 100).unwrap();
        // 250 Hz lands exactly on another bin of a 100-sample block → deep null.
        let mag = bin_magnitude(&mut g, &tone(250.0, fs, 2000.0, 300));
        assert!(mag < 3_000.0, "off-bin leakage {mag}");
    }

    #[test]
    fn dc_does_not_leak_into_ac_bin() {
        let fs = 1000.0;
        let mut g = Goertzel::new(100.0, fs, 100).unwrap();
        let samples = vec![5000i32; 300];
        let mag = bin_magnitude(&mut g, &samples);
        assert!(mag < 1_000.0, "dc leakage {mag}");
    }

    #[test]
    fn emits_once_per_block() {
        let mut g = Goertzel::new(100.0, 1000.0, 50).unwrap();
        let count = (0..500).filter(|_| g.push(1).is_some()).count();
        assert_eq!(count, 10);
    }

    #[test]
    fn reset_restarts_block() {
        let mut g = Goertzel::new(100.0, 1000.0, 50).unwrap();
        for _ in 0..25 {
            g.push(100);
        }
        g.reset();
        let count = (0..49).filter(|_| g.push(0).is_some()).count();
        assert_eq!(count, 0, "reset must restart the block");
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Goertzel::new(0.0, 1000.0, 100).is_err());
        assert!(Goertzel::new(600.0, 1000.0, 100).is_err());
        assert!(Goertzel::new(100.0, 1000.0, 4).is_err());
    }
}
