//! FIR filters: windowed-sinc low-pass design and a Q15 direct-form engine.
//!
//! ISIF's digital section carries hardware FIR IPs with software twins. The
//! design path (floating point, done once at configuration time on the host
//! or the LEON core) produces Q15 coefficients; the runtime path is an
//! integer MAC loop identical to the hardware datapath.

use crate::error::DspError;
use crate::fix::{saturate_i32, Q15};

/// Window functions for FIR design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// Rectangular (no) window — narrowest transition, worst sidelobes.
    Rectangular,
    /// Hamming window — −53 dB sidelobes.
    Hamming,
    /// Blackman window — −74 dB sidelobes.
    Blackman,
}

impl Window {
    /// Window weight at tap `i` of `n`.
    fn weight(self, i: usize, n: usize) -> f64 {
        let x = i as f64 / (n - 1) as f64;
        let tau = core::f64::consts::TAU;
        match self {
            Window::Rectangular => 1.0,
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }
}

/// Designs a windowed-sinc low-pass prototype with unit DC gain.
///
/// `cutoff` is the −6 dB corner as a fraction of the sample rate
/// (`0 < cutoff < 0.5`); `taps` must be ≥ 3.
///
/// # Errors
///
/// Returns [`DspError::UnrealizableDesign`] for a cutoff outside `(0, 0.5)`
/// or fewer than 3 taps.
pub fn design_lowpass(taps: usize, cutoff: f64, window: Window) -> Result<Vec<f64>, DspError> {
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::UnrealizableDesign {
            reason: "cutoff must lie strictly between 0 and 0.5 of the sample rate",
        });
    }
    if taps < 3 {
        return Err(DspError::UnrealizableDesign {
            reason: "a low-pass needs at least 3 taps",
        });
    }
    let mid = (taps - 1) as f64 / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (core::f64::consts::TAU * cutoff * t).sin() / (core::f64::consts::PI * t)
            };
            sinc * window.weight(i, taps)
        })
        .collect();
    // Normalize to exactly unit DC gain.
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    Ok(h)
}

/// Quantizes a floating-point tap set to Q15, preserving DC gain as closely
/// as the format allows.
pub fn quantize_q15(taps: &[f64]) -> Vec<Q15> {
    taps.iter().map(|&c| Q15::from_f64(c)).collect()
}

/// Designs a CIC droop-compensation filter: an inverse-sinc-shaped FIR that
/// flattens the passband of an order-`n` CIC decimating by `r`, up to
/// `passband` (fraction of the *decimated* rate, `< 0.5`).
///
/// Design method: frequency sampling of the ideal inverse response
/// `[sin(πf/r)/(r·sin(πf/r²))]⁻ⁿ ≈ [sinc(f/r… )]⁻ⁿ` on a fine grid, windowed
/// back to `taps` coefficients, and normalized to unit DC gain.
///
/// # Errors
///
/// Returns [`DspError::UnrealizableDesign`] for a passband outside
/// `(0, 0.5)` or fewer than 5 taps.
pub fn design_cic_compensator(
    taps: usize,
    cic_order: usize,
    passband: f64,
) -> Result<Vec<f64>, DspError> {
    if !(passband > 0.0 && passband < 0.5) {
        return Err(DspError::UnrealizableDesign {
            reason: "compensator passband must lie strictly between 0 and 0.5",
        });
    }
    if taps < 5 || taps % 2 == 0 {
        return Err(DspError::UnrealizableDesign {
            reason: "compensator needs an odd tap count of at least 5",
        });
    }
    // Ideal target on a dense grid: inverse of the CIC's sinc^N droop inside
    // the passband (in decimated-rate frequencies the droop is
    // [sinc(f)]^N with sinc(f) = sin(πf)/(πf)), flat zero beyond.
    let grid = 1024usize;
    let mid = (taps - 1) as f64 / 2.0;
    let mut h = vec![0.0f64; taps];
    // Inverse DFT of the (real, even) target response.
    for (k, hk) in h.iter_mut().enumerate() {
        let t = k as f64 - mid;
        let mut acc = 0.0;
        for g in 0..grid {
            let f = g as f64 / (2 * grid) as f64; // 0 .. 0.5
                                                  // Inverse sinc^N over the whole band: bounded ((π/2)^N at
                                                  // Nyquist), so no sharp transition fights the window. The
                                                  // passband parameter only controls verification, not the target.
            let x = core::f64::consts::PI * f;
            let sinc = if x.abs() < 1e-12 { 1.0 } else { x.sin() / x };
            let target = sinc.powi(-(cic_order as i32));
            let weight = if g == 0 { 0.5 } else { 1.0 };
            acc += weight * target * (core::f64::consts::TAU * f * t).cos();
        }
        // Hamming window against frequency-sampling ripple.
        let w = 0.54 - 0.46 * (core::f64::consts::TAU * k as f64 / (taps - 1) as f64).cos();
        *hk = acc * w;
    }
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    Ok(h)
}

/// A direct-form FIR filter with Q15 coefficients and a 64-bit accumulator —
/// the hardware datapath.
///
/// ```
/// use hotwire_dsp::fir::{design_lowpass, quantize_q15, Window};
/// use hotwire_dsp::FirFilter;
///
/// let taps = design_lowpass(31, 0.1, Window::Hamming)?;
/// let mut fir = FirFilter::new(quantize_q15(&taps))?;
/// // DC passes at unit gain (±Q15 quantization).
/// let mut y = 0;
/// for _ in 0..31 {
///     y = fir.push(1000);
/// }
/// assert!((y - 1000).abs() <= 2);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter {
    coeffs: Vec<Q15>,
    delay: Vec<i32>,
    head: usize,
}

impl FirFilter {
    /// Creates a filter from Q15 coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] if no coefficients are given.
    pub fn new(coeffs: Vec<Q15>) -> Result<Self, DspError> {
        if coeffs.is_empty() {
            return Err(DspError::InvalidConfig {
                name: "coeffs",
                constraint: "must contain at least one tap",
            });
        }
        let n = coeffs.len();
        Ok(FirFilter {
            coeffs,
            delay: vec![0; n],
            head: 0,
        })
    }

    /// Number of taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` if the filter has no taps (never true for a constructed
    /// filter).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The filter's group delay in samples (linear phase: `(N−1)/2`).
    #[inline]
    pub fn group_delay(&self) -> f64 {
        (self.coeffs.len() as f64 - 1.0) / 2.0
    }

    /// Pushes one sample and returns the filtered output, saturated to `i32`.
    pub fn push(&mut self, x: i32) -> i32 {
        self.delay[self.head] = x;
        let n = self.coeffs.len();
        let mut acc: i64 = 0;
        let mut idx = self.head;
        for c in &self.coeffs {
            acc += self.delay[idx] as i64 * c.raw() as i64;
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.head = (self.head + 1) % n;
        saturate_i32((acc + (1 << 14)) >> 15)
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.fill(0);
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_has_unit_dc_gain() {
        let taps = design_lowpass(63, 0.2, Window::Hamming).unwrap();
        let sum: f64 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn design_is_symmetric() {
        let taps = design_lowpass(33, 0.15, Window::Blackman).unwrap();
        for i in 0..taps.len() / 2 {
            assert!(
                (taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-12,
                "tap {i}"
            );
        }
    }

    #[test]
    fn frequency_response_shape() {
        let taps = design_lowpass(101, 0.1, Window::Blackman).unwrap();
        let gain = |f: f64| -> f64 {
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &c) in taps.iter().enumerate() {
                let phi = core::f64::consts::TAU * f * i as f64;
                re += c * phi.cos();
                im -= c * phi.sin();
            }
            (re * re + im * im).sqrt()
        };
        assert!((gain(0.0) - 1.0).abs() < 1e-9, "DC gain {}", gain(0.0));
        assert!(gain(0.05) > 0.9, "passband {}", gain(0.05));
        assert!(gain(0.2) < 1e-3, "stopband {}", gain(0.2));
        assert!(gain(0.4) < 1e-3, "deep stopband {}", gain(0.4));
    }

    #[test]
    fn window_sidelobe_ordering() {
        // Blackman's stopband is deeper than Hamming's which beats
        // rectangular, at the same length and cutoff.
        let stop_gain = |w: Window| {
            let taps = design_lowpass(63, 0.1, w).unwrap();
            let f = 0.3;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &c) in taps.iter().enumerate() {
                let phi = core::f64::consts::TAU * f * i as f64;
                re += c * phi.cos();
                im -= c * phi.sin();
            }
            (re * re + im * im).sqrt()
        };
        let r = stop_gain(Window::Rectangular);
        let h = stop_gain(Window::Hamming);
        let b = stop_gain(Window::Blackman);
        assert!(b < h && h < r, "blackman {b} hamming {h} rect {r}");
    }

    #[test]
    fn quantized_filter_passes_dc() {
        let taps = design_lowpass(31, 0.25, Window::Hamming).unwrap();
        let mut fir = FirFilter::new(quantize_q15(&taps)).unwrap();
        let mut last = 0;
        for _ in 0..100 {
            last = fir.push(20_000);
        }
        assert!((last - 20_000).abs() <= 4, "dc out {last}");
    }

    #[test]
    fn impulse_response_replays_coefficients() {
        let coeffs = vec![
            Q15::from_f64(0.5),
            Q15::from_f64(0.25),
            Q15::from_f64(-0.125),
        ];
        let mut fir = FirFilter::new(coeffs.clone()).unwrap();
        let out: Vec<i32> = [32768, 0, 0, 0].iter().map(|&x| fir.push(x)).collect();
        assert_eq!(out[0], 16384);
        assert_eq!(out[1], 8192);
        assert_eq!(out[2], -4096);
        assert_eq!(out[3], 0);
    }

    #[test]
    fn linearity_in_fixed_point() {
        let taps = quantize_q15(&design_lowpass(15, 0.2, Window::Hamming).unwrap());
        let mut a = FirFilter::new(taps.clone()).unwrap();
        let mut b = FirFilter::new(taps).unwrap();
        let xs: Vec<i32> = (0..200).map(|i| ((i * 37) % 1001) - 500).collect();
        for &x in &xs {
            let y1 = a.push(x);
            let y2 = b.push(2 * x);
            // Fixed-point rounding allows ±1 count of nonlinearity per tap.
            assert!((y2 - 2 * y1).abs() <= 2, "y1={y1} y2={y2}");
        }
    }

    #[test]
    fn reset_clears_history() {
        let taps = quantize_q15(&design_lowpass(15, 0.2, Window::Hamming).unwrap());
        let mut fir = FirFilter::new(taps).unwrap();
        for _ in 0..20 {
            fir.push(30_000);
        }
        fir.reset();
        assert_eq!(fir.push(0), 0);
    }

    #[test]
    fn group_delay() {
        let taps = quantize_q15(&design_lowpass(31, 0.2, Window::Hamming).unwrap());
        let fir = FirFilter::new(taps).unwrap();
        assert_eq!(fir.group_delay(), 15.0);
        assert_eq!(fir.len(), 31);
        assert!(!fir.is_empty());
    }

    #[test]
    fn rejects_bad_designs() {
        assert!(design_lowpass(31, 0.0, Window::Hamming).is_err());
        assert!(design_lowpass(31, 0.5, Window::Hamming).is_err());
        assert!(design_lowpass(2, 0.1, Window::Hamming).is_err());
        assert!(FirFilter::new(Vec::new()).is_err());
        assert!(design_cic_compensator(33, 3, 0.0).is_err());
        assert!(design_cic_compensator(33, 3, 0.6).is_err());
        assert!(design_cic_compensator(3, 3, 0.2).is_err());
        assert!(design_cic_compensator(32, 3, 0.2).is_err());
    }

    /// Magnitude response of real taps at normalized frequency `f`.
    fn mag(taps: &[f64], f: f64) -> f64 {
        let (mut re, mut im) = (0.0, 0.0);
        for (i, &c) in taps.iter().enumerate() {
            let phi = core::f64::consts::TAU * f * i as f64;
            re += c * phi.cos();
            im -= c * phi.sin();
        }
        (re * re + im * im).sqrt()
    }

    #[test]
    fn cic_compensator_flattens_droop() {
        // Order-3 CIC droop at f (decimated-rate units): sinc(f)³. Combined
        // with the compensator the passband must be flat within ±0.5 dB
        // where the bare droop is several dB.
        let comp = design_cic_compensator(33, 3, 0.25).unwrap();
        assert!(
            (comp.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "unit DC gain"
        );
        let droop = |f: f64| {
            let x = core::f64::consts::PI * f;
            (x.sin() / x).powi(3)
        };
        for &f in &[0.05, 0.1, 0.15, 0.2, 0.25] {
            let combined = droop(f) * mag(&comp, f);
            let bare_db = 20.0 * droop(f).log10();
            let combined_db = 20.0 * combined.log10();
            assert!(
                combined_db.abs() < 0.5,
                "at f={f}: bare {bare_db:.2} dB, compensated {combined_db:.2} dB"
            );
        }
        // The droop is genuinely significant at the band edge (> 2.5 dB).
        assert!(20.0 * droop(0.25).log10() < -2.0);
    }

    #[test]
    fn cic_compensator_runs_in_q15() {
        let comp = quantize_q15(&design_cic_compensator(33, 3, 0.25).unwrap());
        let mut fir = FirFilter::new(comp).unwrap();
        let mut y = 0;
        for _ in 0..100 {
            y = fir.push(10_000);
        }
        assert!((y - 10_000).abs() <= 16, "dc through compensator: {y}");
    }
}
