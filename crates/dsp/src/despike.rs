//! Despiking and smoothing helpers.
//!
//! Bubble detachment produces isolated spikes in the conditioned signal
//! (paper §4); a short median kills them without the phase lag of a low-pass.
//! The boxcar moving average is the cheap smoother used by the telemetry
//! path.

use crate::error::DspError;

/// A 5-sample sliding median — removes up to two consecutive outliers.
///
/// ```
/// use hotwire_dsp::despike::Median5;
///
/// let mut m = Median5::new();
/// // A single spike in an otherwise flat stream never reaches the output.
/// let out: Vec<i32> = [10, 10, 9000, 10, 10, 10, 10].iter().map(|&x| m.push(x)).collect();
/// assert!(out.iter().all(|&y| y <= 10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Median5 {
    window: [i32; 5],
    filled: usize,
    head: usize,
}

impl Median5 {
    /// Creates an empty median window.
    pub fn new() -> Self {
        Median5::default()
    }

    /// Pushes a sample and returns the median of the last five (fewer during
    /// warm-up).
    pub fn push(&mut self, x: i32) -> i32 {
        self.window[self.head] = x;
        self.head = (self.head + 1) % 5;
        if self.filled < 5 {
            self.filled += 1;
        }
        let mut buf = [0i32; 5];
        buf[..self.filled].copy_from_slice(
            &{
                let mut tmp = [0i32; 5];
                for (i, t) in tmp.iter_mut().take(self.filled).enumerate() {
                    // Oldest-to-newest order does not matter for a median.
                    *t = self.window[(self.head + 5 - self.filled + i) % 5];
                }
                tmp
            }[..self.filled],
        );
        let slice = &mut buf[..self.filled];
        slice.sort_unstable();
        slice[self.filled / 2]
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        *self = Median5::default();
    }
}

/// A boxcar moving average with a 64-bit running sum.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: Vec<i32>,
    head: usize,
    filled: usize,
    sum: i64,
}

impl MovingAverage {
    /// Creates an averager over `len` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] if `len` is zero.
    pub fn new(len: usize) -> Result<Self, DspError> {
        if len == 0 {
            return Err(DspError::InvalidConfig {
                name: "len",
                constraint: "must be at least 1",
            });
        }
        Ok(MovingAverage {
            buf: vec![0; len],
            head: 0,
            filled: 0,
            sum: 0,
        })
    }

    /// Window length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if the window length is zero (never for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes a sample and returns the mean of the window contents
    /// (round-half-away-from-zero).
    pub fn push(&mut self, x: i32) -> i32 {
        if self.filled == self.buf.len() {
            self.sum -= self.buf[self.head] as i64;
        } else {
            self.filled += 1;
        }
        self.buf[self.head] = x;
        self.sum += x as i64;
        self.head = (self.head + 1) % self.buf.len();
        let n = self.filled as i64;
        let half = if self.sum >= 0 { n / 2 } else { -(n / 2) };
        ((self.sum + half) / n) as i32
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.buf.fill(0);
        self.head = 0;
        self.filled = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_kills_single_spike() {
        let mut m = Median5::new();
        for _ in 0..5 {
            m.push(100);
        }
        assert_eq!(m.push(50_000), 100);
        assert_eq!(m.push(100), 100);
    }

    #[test]
    fn median_kills_double_spike() {
        let mut m = Median5::new();
        for _ in 0..5 {
            m.push(100);
        }
        m.push(50_000);
        assert_eq!(m.push(50_000), 100);
    }

    #[test]
    fn median_tracks_steps() {
        let mut m = Median5::new();
        for _ in 0..5 {
            m.push(0);
        }
        for _ in 0..5 {
            m.push(1000);
        }
        assert_eq!(m.push(1000), 1000);
    }

    #[test]
    fn median_warm_up() {
        let mut m = Median5::new();
        assert_eq!(m.push(7), 7);
        assert_eq!(m.push(9), 9); // median of [7,9] (upper of two)
        assert_eq!(m.push(8), 8);
    }

    #[test]
    fn median_reset() {
        let mut m = Median5::new();
        m.push(100);
        m.push(200);
        m.reset();
        assert_eq!(m.push(5), 5);
    }

    #[test]
    fn moving_average_of_constant() {
        let mut avg = MovingAverage::new(8).unwrap();
        let mut y = 0;
        for _ in 0..20 {
            y = avg.push(1234);
        }
        assert_eq!(y, 1234);
    }

    #[test]
    fn moving_average_converges_on_step() {
        let mut avg = MovingAverage::new(4).unwrap();
        for _ in 0..4 {
            avg.push(0);
        }
        assert_eq!(avg.push(400), 100);
        assert_eq!(avg.push(400), 200);
        assert_eq!(avg.push(400), 300);
        assert_eq!(avg.push(400), 400);
    }

    #[test]
    fn moving_average_warmup_uses_partial_window() {
        let mut avg = MovingAverage::new(10).unwrap();
        assert_eq!(avg.push(100), 100);
        assert_eq!(avg.push(200), 150);
    }

    #[test]
    fn moving_average_negative_values() {
        let mut avg = MovingAverage::new(2).unwrap();
        avg.push(-100);
        assert_eq!(avg.push(-300), -200);
    }

    #[test]
    fn moving_average_reset_and_len() {
        let mut avg = MovingAverage::new(3).unwrap();
        avg.push(99);
        avg.reset();
        assert_eq!(avg.push(3), 3);
        assert_eq!(avg.len(), 3);
        assert!(!avg.is_empty());
    }

    #[test]
    fn zero_length_rejected() {
        assert!(MovingAverage::new(0).is_err());
    }
}
