//! Saturating Q-format fixed-point arithmetic.
//!
//! ISIF's digital IPs and the LEON software peripherals compute in two's
//! complement integers; [`Fx`] reproduces that bit-exactly: an `i32` holding
//! `value · 2^FRAC`, with all arithmetic saturating at the `i32` rails (the
//! hardware behaviour of the DSP datapath) and multiplication carried out in
//! a 64-bit intermediate with round-half-up, as a MAC unit would.
//!
//! ```
//! use hotwire_dsp::fix::Q15;
//!
//! let a = Q15::from_f64(0.5);
//! let b = Q15::from_f64(0.25);
//! assert!((a.mul(b).to_f64() - 0.125).abs() < 1e-4);
//! // Saturation instead of wrap-around (Q17.15 tops out at 65536):
//! let big = Q15::from_f64(1.0e6);
//! assert_eq!(big, Q15::MAX);
//! ```

/// A fixed-point number with `FRAC` fractional bits stored in an `i32`.
///
/// `FRAC` must be ≤ 31 (enforced at compile time via the `from_f64` scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Fx<const FRAC: u32>(i32);

/// Q17.15: ±65536 range, 2⁻¹⁵ ≈ 3.05·10⁻⁵ resolution — FIR coefficients and
/// audio-rate samples.
pub type Q15 = Fx<15>;
/// Q16.16: ±32768 range — controller gains.
pub type Q16 = Fx<16>;
/// Q2.30: ±2 range, 9.3·10⁻¹⁰ resolution — IIR coefficients.
pub type Q30 = Fx<30>;

#[allow(clippy::should_implement_trait)] // saturating ops deliberately named add/sub/mul/div/neg
impl<const FRAC: u32> Fx<FRAC> {
    /// The largest representable value.
    pub const MAX: Self = Fx(i32::MAX);
    /// The smallest (most negative) representable value.
    pub const MIN: Self = Fx(i32::MIN);
    /// Zero.
    pub const ZERO: Self = Fx(0);
    /// One (saturates to `MAX` if `FRAC == 31`).
    pub const ONE: Self = Fx(if FRAC >= 31 { i32::MAX } else { 1 << FRAC });

    /// Builds from a raw two's-complement word.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Fx(raw)
    }

    /// The raw two's-complement word.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Quantizes an `f64`, rounding to nearest and saturating at the rails.
    ///
    /// `NaN` saturates to zero — the DSP datapath has no quiet-NaN code, so
    /// a poisoned upstream value must map to *something*; zero is the choice
    /// the hardware's clamp network makes. Debug builds assert so the
    /// upstream source gets caught instead of laundered.
    pub fn from_f64(x: f64) -> Self {
        debug_assert!(!x.is_nan(), "Fx::<{FRAC}>::from_f64 called with NaN");
        if x.is_nan() {
            return Fx(0);
        }
        let scaled = x * (1u64 << FRAC) as f64;
        if scaled >= i32::MAX as f64 {
            Fx(i32::MAX)
        } else if scaled <= i32::MIN as f64 {
            Fx(i32::MIN)
        } else {
            Fx(scaled.round() as i32)
        }
    }

    /// The represented value as `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u64 << FRAC) as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-MIN` saturates to `MAX`).
    #[inline]
    pub fn neg(self) -> Self {
        Fx(self.0.checked_neg().unwrap_or(i32::MAX))
    }

    /// Saturating multiplication with round-half-up in a 64-bit intermediate,
    /// as the hardware MAC computes it.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        // FRAC == 0 (integer format) has no half-LSB to add — and the naive
        // `1 << (FRAC - 1)` rounding bias would shift by u32::MAX.
        let half = if FRAC == 0 { 0 } else { 1i64 << (FRAC - 1) };
        let rounded = (wide + half) >> FRAC;
        Fx(saturate_i32(rounded))
    }

    /// Multiplies by a fixed-point value with a *different* Q format,
    /// returning `self`'s format — the common "sample × coefficient" MAC.
    #[inline]
    pub fn mul_q<const F2: u32>(self, rhs: Fx<F2>) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        let half = if F2 == 0 { 0 } else { 1i64 << (F2 - 1) };
        let rounded = (wide + half) >> F2;
        Fx(saturate_i32(rounded))
    }

    /// Saturating division (rounds toward nearest).
    ///
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    #[inline]
    pub fn div(self, rhs: Self) -> Self {
        let num = (self.0 as i64) << FRAC;
        let half = (rhs.0 as i64).abs() / 2 * (num.signum() * (rhs.0 as i64).signum());
        Fx(saturate_i32((num + half) / rhs.0 as i64))
    }

    /// Absolute value, saturating (`|MIN|` → `MAX`).
    #[inline]
    pub fn abs(self) -> Self {
        Fx(self.0.checked_abs().unwrap_or(i32::MAX))
    }

    /// `true` if the value sits at either saturation rail.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.0 == i32::MAX || self.0 == i32::MIN
    }
}

impl<const FRAC: u32> core::fmt::Display for Fx<FRAC> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}q{}", self.to_f64(), FRAC)
    }
}

/// Clamps a 64-bit intermediate to the `i32` rails — the saturation logic at
/// the output of every hardware accumulator.
#[inline]
pub fn saturate_i32(x: i64) -> i32 {
    x.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Clamps a 128-bit-safe accumulator to an arbitrary signed bit width
/// (`bits ≤ 63`), used by wide datapaths (CIC output registers).
#[inline]
pub fn saturate_bits(x: i64, bits: u32) -> i64 {
    debug_assert!((1..=63).contains(&bits));
    let max = (1i64 << (bits - 1)) - 1;
    x.clamp(-max - 1, max)
}

/// A flat struct-of-arrays scratch block: `lanes` contiguous runs of `depth`
/// elements in a single allocation.
///
/// The modulator-rate hot path stages one decimation frame of per-channel
/// signals (analog differentials, pre-drawn noise, modulator bits) in one of
/// these instead of interleaved per-tick structs: each lane is a contiguous
/// slice the block kernels (the ΣΔ modulator's `step_block`,
/// [`CicDecimator::push_block`](crate::cic::CicDecimator::push_block), the
/// in-amp/anti-alias block walks) can stream over, which is what lets the
/// compiler keep filter state in registers and vectorize the arithmetic.
#[derive(Debug, Clone)]
pub struct SoaBlock<T> {
    data: Vec<T>,
    lanes: usize,
    depth: usize,
}

impl<T: Copy + Default> SoaBlock<T> {
    /// Allocates a block of `lanes` × `depth` default-initialized elements.
    pub fn new(lanes: usize, depth: usize) -> Self {
        SoaBlock {
            data: vec![T::default(); lanes * depth],
            lanes,
            depth,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Elements per lane.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Reuses the allocation for a new geometry, growing only if needed.
    /// Contents are unspecified afterwards (lanes are scratch, not state).
    pub fn reshape(&mut self, lanes: usize, depth: usize) {
        let need = lanes * depth;
        if self.data.len() < need {
            self.data.resize(need, T::default());
        }
        self.lanes = lanes;
        self.depth = depth;
    }

    /// Overwrites every element of every lane.
    pub fn fill(&mut self, value: T) {
        self.data[..self.lanes * self.depth].fill(value);
    }

    /// One lane as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    #[inline]
    pub fn lane(&self, lane: usize) -> &[T] {
        assert!(lane < self.lanes);
        &self.data[lane * self.depth..(lane + 1) * self.depth]
    }

    /// One lane as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    #[inline]
    pub fn lane_mut(&mut self, lane: usize) -> &mut [T] {
        assert!(lane < self.lanes);
        &mut self.data[lane * self.depth..(lane + 1) * self.depth]
    }

    /// Two distinct lanes at once, the first mutable — the shape the
    /// "transform lane A in place, reading lane B" kernels need (e.g.
    /// amplify a differential lane consuming a pre-drawn noise lane).
    ///
    /// # Panics
    ///
    /// Panics if the lanes are equal or out of range.
    pub fn lane_mut_and_ref(&mut self, a: usize, b: usize) -> (&mut [T], &[T]) {
        assert!(a != b && a < self.lanes && b < self.lanes);
        let depth = self.depth;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * depth);
            (&mut lo[a * depth..(a + 1) * depth], &hi[..depth])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * depth);
            (&mut hi[..depth], &lo[b * depth..(b + 1) * depth])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_accuracy() {
        for &x in &[0.0, 0.5, -0.25, 0.999, -0.999, 0.123456] {
            let q = Q15::from_f64(x);
            assert!((q.to_f64() - x).abs() <= 1.0 / 32768.0, "x={x}");
        }
    }

    #[test]
    fn one_constant() {
        assert_eq!(Q15::ONE.raw(), 1 << 15);
        assert!((Q15::ONE.to_f64() - 1.0).abs() < 1e-12);
        assert_eq!(Fx::<31>::ONE.raw(), i32::MAX);
    }

    #[test]
    fn addition_saturates() {
        let a = Q15::MAX;
        let b = Q15::from_f64(1.0);
        assert_eq!(a.add(b), Q15::MAX);
        assert_eq!(Q15::MIN.sub(b), Q15::MIN);
    }

    #[test]
    fn multiplication_accuracy() {
        let a = Q30::from_f64(core::f64::consts::FRAC_1_SQRT_2);
        let b = Q30::from_f64(core::f64::consts::FRAC_1_SQRT_2);
        assert!((a.mul(b).to_f64() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn multiplication_saturates() {
        let a = Q15::from_f64(65535.0);
        assert_eq!(a.mul(a), Q15::MAX);
        let n = Q15::from_f64(-65535.0);
        assert_eq!(n.mul(a), Q15::MIN);
    }

    #[test]
    fn mixed_format_mac() {
        let sample = Q15::from_f64(0.5);
        let coeff = Q30::from_f64(0.25);
        let y = sample.mul_q(coeff);
        assert!((y.to_f64() - 0.125).abs() < 1e-4);
    }

    #[test]
    fn division() {
        let a = Q16::from_f64(1.0);
        let b = Q16::from_f64(4.0);
        assert!((a.div(b).to_f64() - 0.25).abs() < 1e-4);
        let c = Q16::from_f64(-1.0);
        assert!((c.div(b).to_f64() + 0.25).abs() < 1e-4);
    }

    #[test]
    fn negation_and_abs_saturate() {
        assert_eq!(Q15::MIN.neg(), Q15::MAX);
        assert_eq!(Q15::MIN.abs(), Q15::MAX);
        assert_eq!(Q15::from_f64(-0.5).abs(), Q15::from_f64(0.5));
    }

    #[test]
    fn integer_format_mul_has_no_rounding_bias() {
        // Regression: Fx<0> (pure integer) used to compute the rounding
        // term as `1 << (FRAC - 1)` — a shift by u32::MAX.
        type Int = Fx<0>;
        assert_eq!(
            Int::from_f64(6.0).mul(Int::from_f64(7.0)),
            Int::from_f64(42.0)
        );
        assert_eq!(
            Int::from_f64(-6.0).mul(Int::from_f64(7.0)),
            Int::from_f64(-42.0)
        );
        assert_eq!(Int::MAX.mul(Int::MAX), Int::MAX);
        assert_eq!(Int::ONE.raw(), 1);
        // Mixed-format MAC with a zero-fraction coefficient.
        let sample = Q15::from_f64(0.5);
        let gain = Fx::<0>::from_f64(3.0);
        assert!((sample.mul_q(gain).to_f64() - 1.5).abs() < 1e-4);
    }

    #[test]
    fn from_f64_nan_saturates_to_zero() {
        // Regression: NaN used to quantize silently (`NaN.round() as i32`
        // → 0). It still maps to zero, but explicitly — and debug builds
        // trap it at the boundary.
        #[cfg(debug_assertions)]
        {
            let caught = std::panic::catch_unwind(|| Q15::from_f64(f64::NAN));
            assert!(caught.is_err(), "debug build must assert on NaN");
        }
        #[cfg(not(debug_assertions))]
        {
            assert_eq!(Q15::from_f64(f64::NAN), Q15::ZERO);
            assert_eq!(Fx::<0>::from_f64(f64::NAN), Fx::<0>::ZERO);
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q15::from_f64(1e9), Q15::MAX);
        assert_eq!(Q15::from_f64(-1e9), Q15::MIN);
        assert!(Q15::from_f64(1e9).is_saturated());
    }

    #[test]
    fn saturate_helpers() {
        assert_eq!(saturate_i32(i64::MAX), i32::MAX);
        assert_eq!(saturate_i32(i64::MIN), i32::MIN);
        assert_eq!(saturate_i32(42), 42);
        assert_eq!(saturate_bits(1 << 40, 24), (1 << 23) - 1);
        assert_eq!(saturate_bits(-(1 << 40), 24), -(1 << 23));
        assert_eq!(saturate_bits(1000, 24), 1000);
    }

    #[test]
    fn display_shows_format() {
        let s = format!("{}", Q15::from_f64(0.5));
        assert!(s.contains("q15"), "{s}");
    }
}
