//! Fixed-point DSP IP library mirroring the ISIF digital section.
//!
//! The ISIF platform's digital signal processing is "composed by dedicated
//! IPs optimized for low power consumption such as ΣΔ modulator and channel
//! demodulators, DAC controllers, filters (FIR and IIR) and sine wave
//! generator", with an exactly-matching library of *software* peripherals run
//! on the LEON core. This crate is that IP library: every block is
//! integer/fixed-point exactly as silicon (or LEON assembly) would compute
//! it, because the quantization of these blocks is what bounds the
//! measurement resolution the paper reports.
//!
//! Blocks:
//!
//! * [`fix`] — saturating Q-format arithmetic ([`fix::Fx`], [`fix::Q15`], …)
//! * [`cic`] — CIC decimator for the ΣΔ bitstream
//! * [`fir`] — windowed-sinc FIR design + Q15 direct-form filter
//! * [`iir`] — Butterworth biquad design + Q30 fixed-point biquads and the
//!   single-pole 0.1 Hz output filter
//! * [`pi`] — the PI controller closing the constant-temperature loop
//! * [`dds`] — phase-accumulator sine generator
//! * [`demod`] — I/Q demodulator (mixer + low-pass)
//! * [`despike`] — median despiker and moving-average smoother
//!
//! # Example: decimating a ΣΔ bitstream
//!
//! ```
//! use hotwire_dsp::cic::CicDecimator;
//!
//! let mut cic = CicDecimator::new(3, 64)?;
//! let mut out = Vec::new();
//! // A constant +1 bitstream decimates to full scale.
//! for _ in 0..640 {
//!     if let Some(y) = cic.push(1) {
//!         out.push(y);
//!     }
//! }
//! assert_eq!(out.len(), 10);
//! assert_eq!(*out.last().unwrap(), cic.gain());
//! # Ok::<(), hotwire_dsp::DspError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cic;
pub mod dds;
pub mod decimate;
pub mod demod;
pub mod despike;
pub mod error;
pub mod fir;
pub mod fix;
pub mod goertzel;
pub mod iir;
pub mod pi;

pub use cic::CicDecimator;
pub use dds::SineGenerator;
pub use decimate::PolyphaseDecimator;
pub use demod::IqDemodulator;
pub use despike::{Median5, MovingAverage};
pub use error::DspError;
pub use fir::FirFilter;
pub use fix::{Fx, Q15, Q16, Q30};
pub use goertzel::Goertzel;
pub use iir::{Biquad, SinglePoleLp};
pub use pi::PiController;
