//! CIC (cascaded integrator-comb) decimator — the first stage after the ΣΔ
//! modulator.
//!
//! The paper: "The digital section decimates the ΣΔ ADC output and low-pass
//! filters". A CIC is the canonical multiplier-free decimator for a 1-bit
//! oversampled stream: `N` integrators at the modulator rate, decimation by
//! `R`, then `N` combs at the low rate. DC gain is `R^N`; with a 1-bit input
//! and `N ≤ 6`, `R ≤ 4096` the 64-bit accumulators never overflow, so the
//! classic modular-arithmetic trick is exact here.

use crate::error::DspError;

/// Maximum supported CIC order.
pub const MAX_ORDER: usize = 6;

/// A CIC decimator of order `N` and decimation ratio `R` (differential delay
/// fixed at 1).
///
/// ```
/// use hotwire_dsp::cic::CicDecimator;
///
/// let mut cic = CicDecimator::new(2, 8)?;
/// // Feed an alternating ±1 stream: decimated output averages to ~0.
/// let mut last = None;
/// for i in 0..64 {
///     if let Some(y) = cic.push(if i % 2 == 0 { 1 } else { -1 }) {
///         last = Some(y);
///     }
/// }
/// assert!(last.unwrap().abs() <= cic.gain() / 8);
/// # Ok::<(), hotwire_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CicDecimator {
    order: usize,
    ratio: u32,
    integrators: [i64; MAX_ORDER],
    combs: [i64; MAX_ORDER],
    phase: u32,
}

impl CicDecimator {
    /// Creates a CIC with the given order (1..=6) and decimation ratio
    /// (2..=4096).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for an unsupported order or ratio.
    pub fn new(order: usize, ratio: u32) -> Result<Self, DspError> {
        if !(1..=MAX_ORDER).contains(&order) {
            return Err(DspError::InvalidConfig {
                name: "order",
                constraint: "must lie in 1..=6",
            });
        }
        if !(2..=4096).contains(&ratio) {
            return Err(DspError::InvalidConfig {
                name: "ratio",
                constraint: "must lie in 2..=4096",
            });
        }
        Ok(CicDecimator {
            order,
            ratio,
            integrators: [0; MAX_ORDER],
            combs: [0; MAX_ORDER],
            phase: 0,
        })
    }

    /// Filter order `N`.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Decimation ratio `R`.
    #[inline]
    pub fn ratio(&self) -> u32 {
        self.ratio
    }

    /// DC gain `R^N`: a constant input `x` produces output `x · gain()`.
    pub fn gain(&self) -> i64 {
        (self.ratio as i64).pow(self.order as u32)
    }

    /// Number of output bits needed: `input_bits + N·log2(R)`.
    pub fn output_bits(&self, input_bits: u32) -> u32 {
        input_bits + self.order as u32 * (32 - (self.ratio - 1).leading_zeros())
    }

    /// Pushes one high-rate sample; returns a decimated output every `R`
    /// samples.
    pub fn push(&mut self, x: i32) -> Option<i64> {
        let mut acc = x as i64;
        for stage in self.integrators.iter_mut().take(self.order) {
            *stage = stage.wrapping_add(acc);
            acc = *stage;
        }
        self.phase += 1;
        if self.phase < self.ratio {
            return None;
        }
        self.phase = 0;
        let mut y = acc;
        for stage in self.combs.iter_mut().take(self.order) {
            let prev = *stage;
            *stage = y;
            y = y.wrapping_sub(prev);
        }
        Some(y)
    }

    /// Pushes a block of high-rate samples, appending every decimated output
    /// produced along the way to `out`. Bit-identical to calling
    /// [`push`](Self::push) per element — the integrator/comb arrays and the
    /// phase counter are hoisted into locals so the inner walk stays in
    /// registers instead of bouncing through `&mut self` per tick.
    ///
    /// Feeding exactly `ratio()` samples from a frame-aligned phase (phase
    /// 0) yields exactly one output.
    pub fn push_block(&mut self, xs: &[i32], out: &mut Vec<i64>) {
        let order = self.order;
        let ratio = self.ratio;
        let mut integrators = self.integrators;
        let mut combs = self.combs;
        let mut phase = self.phase;
        for &x in xs {
            let mut acc = x as i64;
            for stage in integrators.iter_mut().take(order) {
                *stage = stage.wrapping_add(acc);
                acc = *stage;
            }
            phase += 1;
            if phase < ratio {
                continue;
            }
            phase = 0;
            let mut y = acc;
            for stage in combs.iter_mut().take(order) {
                let prev = *stage;
                *stage = y;
                y = y.wrapping_sub(prev);
            }
            out.push(y);
        }
        self.integrators = integrators;
        self.combs = combs;
        self.phase = phase;
    }

    /// The current intra-frame phase: number of samples accepted since the
    /// last decimated output, in `0..ratio()`. Phase 0 means the next
    /// `ratio()` pushes produce exactly one output on the last push.
    #[inline]
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Clears all integrator and comb state.
    pub fn reset(&mut self) {
        self.integrators = [0; MAX_ORDER];
        self.combs = [0; MAX_ORDER];
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cic: &mut CicDecimator, input: impl Iterator<Item = i32>) -> Vec<i64> {
        input.filter_map(|x| cic.push(x)).collect()
    }

    #[test]
    fn dc_gain_is_r_to_the_n() {
        for (order, ratio) in [(1usize, 4u32), (2, 8), (3, 64), (4, 16)] {
            let mut cic = CicDecimator::new(order, ratio).unwrap();
            let settle = ratio as usize * (order + 2);
            let out = collect(&mut cic, std::iter::repeat(1).take(settle * 4));
            let expected = (ratio as i64).pow(order as u32);
            assert_eq!(*out.last().unwrap(), expected, "N={order} R={ratio}");
            assert_eq!(cic.gain(), expected);
        }
    }

    #[test]
    fn zero_in_zero_out() {
        let mut cic = CicDecimator::new(3, 32).unwrap();
        let out = collect(&mut cic, std::iter::repeat(0).take(320));
        assert!(out.iter().all(|&y| y == 0));
    }

    #[test]
    fn output_cadence() {
        let mut cic = CicDecimator::new(2, 16).unwrap();
        let out = collect(&mut cic, std::iter::repeat(1).take(160));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn linearity() {
        let signal: Vec<i32> = (0..1024).map(|i| ((i * 7) % 13) - 6).collect();
        let mut a = CicDecimator::new(3, 16).unwrap();
        let mut b = CicDecimator::new(3, 16).unwrap();
        let out1 = collect(&mut a, signal.iter().copied());
        let out3 = collect(&mut b, signal.iter().map(|&x| 3 * x));
        for (y1, y3) in out1.iter().zip(&out3) {
            assert_eq!(*y3, 3 * *y1);
        }
    }

    #[test]
    fn attenuates_high_frequency() {
        // Nyquist-rate tone (+1,-1,...) vs DC: CIC must crush the tone.
        let mut cic_dc = CicDecimator::new(3, 64).unwrap();
        let mut cic_ny = CicDecimator::new(3, 64).unwrap();
        let n = 64 * 32;
        let dc = collect(&mut cic_dc, std::iter::repeat(1).take(n));
        let ny = collect(&mut cic_ny, (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }));
        let dc_level = *dc.last().unwrap();
        let ny_level = ny.iter().skip(4).map(|y| y.abs()).max().unwrap();
        assert!(
            ny_level < dc_level / 1000,
            "nyquist leakage {ny_level} vs dc {dc_level}"
        );
    }

    #[test]
    fn one_bit_stream_density_recovered() {
        // A 75 %-ones bitstream (+1/−1) has mean 0.5.
        let mut cic = CicDecimator::new(3, 128).unwrap();
        let n = 128 * 64;
        let out = collect(&mut cic, (0..n).map(|i| if i % 4 != 3 { 1 } else { -1 }));
        let level = *out.last().unwrap() as f64 / cic.gain() as f64;
        assert!((level - 0.5).abs() < 0.01, "level {level}");
    }

    #[test]
    fn output_bits_estimate() {
        let cic = CicDecimator::new(3, 256).unwrap();
        assert_eq!(cic.output_bits(1), 1 + 3 * 8);
    }

    #[test]
    fn reset_clears_state() {
        let mut cic = CicDecimator::new(2, 8).unwrap();
        collect(&mut cic, std::iter::repeat(1).take(80));
        cic.reset();
        let out = collect(&mut cic, std::iter::repeat(0).take(80));
        assert!(out.iter().all(|&y| y == 0));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(CicDecimator::new(0, 8).is_err());
        assert!(CicDecimator::new(7, 8).is_err());
        assert!(CicDecimator::new(3, 1).is_err());
        assert!(CicDecimator::new(3, 8192).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn push_block_is_bit_identical_to_scalar_push(
                // Full-range i32 samples exercise the wrapping accumulator
                // arithmetic far beyond the ±1 bitstream the ΣΔ feeds it.
                xs in proptest::collection::vec(i32::MIN..=i32::MAX, 1..600),
                order in 1usize..=6,
                ratio in 2u32..=64,
                split in 0usize..600
            ) {
                let mut scalar = CicDecimator::new(order, ratio).unwrap();
                let mut block = scalar.clone();
                let expected: Vec<i64> =
                    xs.iter().filter_map(|&x| scalar.push(x)).collect();
                // An arbitrary mid-block split: integrator/comb state and
                // the decimation phase must carry across the seam.
                let mut out = Vec::new();
                let cut = split % xs.len();
                block.push_block(&xs[..cut], &mut out);
                block.push_block(&xs[cut..], &mut out);
                prop_assert_eq!(&out, &expected);
                prop_assert_eq!(block.integrators, scalar.integrators);
                prop_assert_eq!(block.combs, scalar.combs);
                prop_assert_eq!(block.phase(), scalar.phase());
            }
        }
    }
}
