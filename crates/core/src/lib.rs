//! Constant-temperature hot-wire conditioning firmware — the contribution of
//! *"Hot Wire Anemometric MEMS Sensor for Water Flow Monitoring"* (Melani et
//! al., DATE 2008).
//!
//! The signal chain this crate implements (paper Fig. 5):
//!
//! ```text
//!            ┌────────────── ISIF platform ───────────────┐
//! MAF die →  bridge → in-amp → AA LPF → ΣΔ → CIC ──┐      │
//!   ↑                                              ▼      │
//!   └── supply DAC ←── PI ←── reference subtraction ┘      │
//!                      │                                   │
//!                      └→ King inversion → 0.1 Hz IIR → v  │
//! ```
//!
//! * [`cta`] — the closed loop: reference subtraction, PI controller,
//!   feedback actuation to the bridge supply (constant-temperature mode).
//! * [`modes`] — the constant-current and constant-power baseline drives the
//!   paper contrasts in §2.
//! * [`pulsed`] — the pulsed-voltage driving scheme that suppresses bubble
//!   formation (§4, Fig. 7).
//! * [`calibration`] — King's-law fitting and inversion, with EEPROM
//!   persistence.
//! * [`direction`] — flow-direction detection from the dual-heater
//!   differential.
//! * [`output`] — despike + 0.1 Hz smoothing + unit conversion.
//! * [`faults`] — bubble/fouling detectors and watchdog wiring.
//! * [`health`] — the graceful-degradation supervisor turning detections
//!   into reactions (pulsed fallback, re-zero, soft reset, EEPROM
//!   fallback).
//! * [`obs`] — tick-stamped observability events ([`obs::ObsEvent`]) and the
//!   [`obs::Observer`] sink trait the firmware emits them through; the crate
//!   stays dependency-free while the rig collects structured telemetry.
//! * [`power`] — the duty-cycled power budget of the §7 battery-operated
//!   probe.
//! * [`flow_meter`] — [`FlowMeter`], the assembled instrument
//!   (die + platform + firmware), stepped sample-by-sample.
//!
//! # Threading contract
//!
//! [`FlowMeter`] (and everything it owns) is [`Send`]: a meter can be moved
//! into a worker thread. Each *run* of a meter is single-threaded and
//! bit-for-bit deterministic under its seed; `hotwire_rig`'s campaign
//! executor exploits the `Send` bound to execute independent runs in
//! parallel without changing any result.
//!
//! # Quickstart
//!
//! ```
//! use hotwire_core::{FlowMeter, FlowMeterConfig};
//! use hotwire_physics::{MafParams, SensorEnvironment};
//! use hotwire_units::MetersPerSecond;
//!
//! let mut meter = FlowMeter::new(FlowMeterConfig::water_station(), MafParams::nominal(), 42)?;
//! let env = SensorEnvironment {
//!     velocity: MetersPerSecond::from_cm_per_s(100.0),
//!     ..SensorEnvironment::still_water()
//! };
//! // Run 0.2 simulated seconds and take the last conditioned measurement.
//! let m = meter.run(0.2, env).expect("control loop produced measurements");
//! assert!(m.velocity.get() >= 0.0);
//! # Ok::<(), hotwire_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod burst;
pub mod calibration;
pub mod config;
pub mod cta;
pub mod direction;
pub mod error;
pub mod faults;
pub mod flow_meter;
pub mod health;
pub mod heat_pulse;
pub mod meter;
pub mod modes;
pub mod obs;
pub mod output;
pub mod power;
pub mod pulsed;
pub mod telemetry;

pub use burst::{BurstConfig, BurstController, BurstReading};
pub use calibration::{KingCalibration, TempCorrect};
pub use config::{FlowMeterConfig, OperatingMode};
pub use error::CoreError;
pub use flow_meter::{FlowMeter, Measurement};
pub use health::{HealthMonitor, HealthState, RecoveryAction};
pub use heat_pulse::{HeatPulseCalibration, HeatPulseConfig, HeatPulseMeter};
pub use meter::Meter;
pub use obs::{CalSlot, EventKind, ObsEvent, Observer};
pub use telemetry::{RecordDecodeStats, RecordError, TelemetryRecord};
