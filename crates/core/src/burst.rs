//! Burst-mode (deep-sleep) operation — the §7 battery-powered probe's
//! firmware.
//!
//! The ASIC's one-year autonomy comes from waking every couple of minutes,
//! measuring for ~2 s, and deep-sleeping in between. A 0.1 Hz output filter
//! cannot settle in 2 s, so burst firmware conditions differently: it lets
//! the CTA loop settle (tens of milliseconds — the thermal loop is fast),
//! then *boxcar-averages* the instantaneous King decode over the remainder
//! of the burst. This module implements that schedule and accounts for the
//! energy each burst costs.

use crate::flow_meter::FlowMeter;
use crate::CoreError;
use hotwire_physics::SensorEnvironment;
use hotwire_units::{MetersPerSecond, Seconds, Watts};

/// Burst schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurstConfig {
    /// Loop settle time at the start of the burst (discarded).
    pub settle: Seconds,
    /// Averaging window after settling.
    pub measure: Seconds,
    /// Electronics draw while awake, on top of the bridge power.
    pub electronics_active: Watts,
    /// Draw while deep-sleeping.
    pub sleep_draw: Watts,
}

impl BurstConfig {
    /// The §7 profile: 0.3 s settle + 0.7 s averaging (a 1 s burst), 12 mW
    /// awake electronics, 25 µW sleep. The CTA loop settles in tens of
    /// milliseconds, so a 1 s burst is generous; keeping it short matters
    /// because the two driven bridges burn ~150 mW while awake.
    pub fn asic_default() -> Self {
        BurstConfig {
            settle: Seconds::new(0.3),
            measure: Seconds::new(0.7),
            electronics_active: Watts::new(0.012),
            sleep_draw: Watts::new(25e-6),
        }
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for non-positive durations.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.settle.get() <= 0.0 || self.measure.get() <= 0.0 {
            return Err(CoreError::Config {
                reason: "burst settle and measure durations must be positive",
            });
        }
        Ok(())
    }
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig::asic_default()
    }
}

/// One burst's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstReading {
    /// Boxcar-averaged speed over the measurement window.
    pub speed: MetersPerSecond,
    /// Standard deviation of the instantaneous decode inside the window
    /// (turbulence + noise at full bandwidth).
    pub spread: MetersPerSecond,
    /// Energy consumed by the burst (bridges + awake electronics), joules.
    pub energy_j: f64,
    /// Burst duration.
    pub duration: Seconds,
}

impl BurstReading {
    /// Mean power over the burst.
    pub fn average_power(&self) -> Watts {
        Watts::new(self.energy_j / self.duration.get())
    }
}

/// Burst-mode wrapper around a [`FlowMeter`].
#[derive(Debug)]
pub struct BurstController {
    meter: FlowMeter,
    config: BurstConfig,
}

impl BurstController {
    /// Wraps a (calibrated) meter in the burst schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an invalid schedule.
    pub fn new(meter: FlowMeter, config: BurstConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(BurstController { meter, config })
    }

    /// The wrapped meter.
    #[inline]
    pub fn meter(&self) -> &FlowMeter {
        &self.meter
    }

    /// Unwraps the meter.
    pub fn into_meter(self) -> FlowMeter {
        self.meter
    }

    /// The schedule.
    #[inline]
    pub fn config(&self) -> &BurstConfig {
        &self.config
    }

    /// Executes one wake→settle→measure→sleep burst at the given
    /// environment and returns the reading.
    pub fn measure_once(&mut self, env: SensorEnvironment) -> BurstReading {
        let dt = self.meter.config().modulator_rate.period().get();
        let settle_steps = (self.config.settle.get() / dt).round() as u64;
        let measure_steps = (self.config.measure.get() / dt).round() as u64;

        let mut energy = 0.0;
        for _ in 0..settle_steps {
            self.meter.step(env);
            energy += self.meter.bridge_power_draw().get() * dt;
        }
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut n = 0u64;
        for _ in 0..measure_steps {
            let tick = self.meter.step(env);
            energy += self.meter.bridge_power_draw().get() * dt;
            if tick.is_some() {
                let v = self.meter.instantaneous_speed().get();
                sum += v;
                sum2 += v * v;
                n += 1;
            }
        }
        let duration = self.config.settle + self.config.measure;
        energy += self.config.electronics_active.get() * duration.get();
        let mean = sum / n.max(1) as f64;
        let var = (sum2 / n.max(1) as f64 - mean * mean).max(0.0);
        BurstReading {
            speed: MetersPerSecond::new(mean),
            spread: MetersPerSecond::new(var.sqrt()),
            energy_j: energy,
            duration,
        }
    }

    /// Average power of a burst-every-`interval` duty cycle, given one
    /// representative reading.
    pub fn duty_cycle_power(&self, reading: &BurstReading, interval: Seconds) -> Watts {
        let sleep_time = (interval.get() - reading.duration.get()).max(0.0);
        Watts::new((reading.energy_j + self.config.sleep_draw.get() * sleep_time) / interval.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowMeterConfig;
    use hotwire_physics::MafParams;

    fn controller() -> BurstController {
        let meter = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 11)
            .expect("meter builds");
        BurstController::new(meter, BurstConfig::asic_default()).expect("valid schedule")
    }

    fn env(v_cm_s: f64) -> SensorEnvironment {
        SensorEnvironment {
            velocity: hotwire_units::MetersPerSecond::from_cm_per_s(v_cm_s),
            ..SensorEnvironment::still_water()
        }
    }

    #[test]
    fn burst_reading_lands_near_truth() {
        let mut c = controller();
        let reading = c.measure_once(env(100.0));
        let cm = reading.speed.to_cm_per_s();
        assert!(
            (cm - 100.0).abs() < 20.0,
            "2 s burst read {cm:.1} cm/s at 100 true"
        );
        assert!(reading.spread.get() >= 0.0);
    }

    #[test]
    fn burst_energy_is_tens_of_millijoules() {
        let mut c = controller();
        let reading = c.measure_once(env(100.0));
        // ~1 s × (two bridges ~150 mW + 12 mW electronics) → 0.1–0.25 J.
        assert!(
            (0.05..0.3).contains(&reading.energy_j),
            "burst energy {} J",
            reading.energy_j
        );
        let avg = reading.average_power().get();
        assert!((0.05..0.3).contains(&avg), "burst avg power {avg} W");
    }

    #[test]
    fn duty_cycle_power_supports_year_autonomy() {
        let mut c = controller();
        let reading = c.measure_once(env(100.0));
        let avg = c.duty_cycle_power(&reading, Seconds::new(180.0));
        // 15 Wh × 0.85 at this draw must exceed a year.
        let hours = 15.0 * 0.85 / avg.get() / 3600.0 * 3600.0; // Wh / W = h
        assert!(
            hours > 365.0 * 24.0,
            "autonomy {:.0} h at {:.3} mW",
            hours,
            avg.to_milliwatts()
        );
    }

    #[test]
    fn consecutive_bursts_are_consistent() {
        let mut c = controller();
        let a = c.measure_once(env(150.0)).speed.to_cm_per_s();
        let b = c.measure_once(env(150.0)).speed.to_cm_per_s();
        assert!((a - b).abs() < 10.0, "bursts disagree: {a:.1} vs {b:.1}");
    }

    #[test]
    fn rejects_bad_schedule() {
        let meter = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 1)
            .expect("meter builds");
        let bad = BurstConfig {
            settle: Seconds::ZERO,
            ..BurstConfig::asic_default()
        };
        assert!(BurstController::new(meter, bad).is_err());
    }
}
