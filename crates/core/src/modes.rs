//! Baseline operating modes and the wire-state estimator.
//!
//! §2 of the paper contrasts three drives: constant current, constant power
//! and constant temperature. CC and CP are "simple circuit implementations";
//! CT "maintains a fixed value of the sensing resistor thus achieving more
//! robustness respect to changes of the temperature of the fluid itself".
//! This module implements the two baselines so experiment E12 can reproduce
//! that claim quantitatively.
//!
//! Both baselines need what CT gets for free from the bridge: an estimate of
//! the wire's resistance/temperature. [`WireStateEstimator`] recovers it
//! from the bridge-differential code and the commanded supply voltage, using
//! *nominal* (calibration-time) values for the reference branch — which is
//! precisely why these modes drift when the fluid temperature moves.

use crate::config::FlowMeterConfig;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_physics::resistor::Rtd;
use hotwire_units::{Celsius, Ohms, ThermalConductance, Volts, Watts};

/// Firmware-side estimate of the wire's electrical/thermal state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireState {
    /// Estimated heater resistance.
    pub resistance: Ohms,
    /// Estimated wire temperature (from the nominal RTD law).
    pub temperature: Celsius,
    /// Estimated electrical power in the wire.
    pub power: Watts,
    /// Estimated wire-to-fluid conductance, using the *assumed* fluid
    /// temperature.
    pub conductance: ThermalConductance,
}

/// Recovers the wire state from `(code, supply)` using nominal constants.
#[derive(Debug, Clone, Copy)]
pub struct WireStateEstimator {
    r_series_heater: Ohms,
    /// Nominal reference-branch ratio `Rt/(R2+Rt)` frozen at calibration.
    ref_ratio: f64,
    /// Nominal heater RTD law.
    heater_rtd: Rtd,
    /// Assumed (calibration-time) fluid temperature.
    assumed_fluid: Celsius,
    /// Channel scale: volts of bridge differential per output code.
    volts_per_code: f64,
}

impl WireStateEstimator {
    /// Builds the estimator from the bridge design and firmware config.
    /// `volts_per_code` is the input-referred LSB of the acquisition channel.
    pub fn new(
        bridge: &BridgeConfig,
        heater_rtd: Rtd,
        reference_rtd: &Rtd,
        config: &FlowMeterConfig,
        volts_per_code: Volts,
    ) -> Self {
        let rt_cal = reference_rtd.resistance(config.calibration_temperature);
        WireStateEstimator {
            r_series_heater: bridge.r_series_heater,
            ref_ratio: rt_cal.get() / (bridge.r_series_reference.get() + rt_cal.get()),
            heater_rtd,
            assumed_fluid: config.calibration_temperature,
            volts_per_code: volts_per_code.get(),
        }
    }

    /// Estimates the wire state from a bridge-differential code and the
    /// commanded supply.
    ///
    /// Returns `None` when the supply is too low for a meaningful estimate
    /// (the divider becomes singular as `U → 0`).
    pub fn estimate(&self, code: i32, supply: Volts) -> Option<WireState> {
        let u = supply.get();
        if u < 0.05 {
            return None;
        }
        let v_diff = code as f64 * self.volts_per_code;
        let v_ref_mid = u * self.ref_ratio;
        let v_mid = (v_diff + v_ref_mid).clamp(0.0, u * 0.999);
        let i = (u - v_mid) / self.r_series_heater.get();
        if i <= 0.0 {
            return None;
        }
        let rh = Ohms::new(v_mid / i);
        let temperature = self.heater_rtd.temperature(rh);
        let power = Watts::new(i * i * rh.get());
        let overheat = (temperature - self.assumed_fluid).get();
        let conductance = if overheat > 0.5 {
            ThermalConductance::new(power.get() / overheat)
        } else {
            ThermalConductance::ZERO
        };
        Some(WireState {
            resistance: rh,
            temperature,
            power,
            conductance,
        })
    }
}

/// The constant-current baseline: a fixed supply code (the bridge's series
/// arm makes heater current nearly constant as `Rh` moves a few per cent).
#[derive(Debug, Clone, Copy)]
pub struct ConstantCurrentDrive {
    code: u32,
}

impl ConstantCurrentDrive {
    /// Picks the fixed code that reaches the design overheat at the
    /// calibration point (fluid at `calibration_temperature`, velocity
    /// `v_design`), given the expected conductance there.
    pub fn design(
        config: &FlowMeterConfig,
        rh_star: Ohms,
        bridge: &BridgeConfig,
        expected_conductance: ThermalConductance,
        dac_vref: Volts,
        dac_max_code: u32,
    ) -> Self {
        // P = G·ΔT; U = √(P·(R1+Rh*)²/Rh*).
        let p = expected_conductance.get() * config.overheat.get();
        let rtot = bridge.r_series_heater.get() + rh_star.get();
        let u = (p * rtot * rtot / rh_star.get()).sqrt();
        let code = ((u / dac_vref.get()) * dac_max_code as f64).round() as u32;
        ConstantCurrentDrive {
            code: code.min(dac_max_code),
        }
    }

    /// The fixed supply code.
    #[inline]
    pub fn code(&self) -> u32 {
        self.code
    }
}

/// The constant-power baseline: integrating supply adjustment holding the
/// estimated wire power at a setpoint.
#[derive(Debug, Clone, Copy)]
pub struct ConstantPowerDrive {
    target: Watts,
    code: u32,
    max_code: u32,
    /// Integral gain: codes per watt of power error per tick.
    gain: f64,
}

impl ConstantPowerDrive {
    /// Creates a CP drive holding `target` wire power, starting from
    /// `initial_code`.
    pub fn new(target: Watts, initial_code: u32, max_code: u32) -> Self {
        ConstantPowerDrive {
            target,
            code: initial_code.min(max_code),
            max_code,
            gain: 2000.0,
        }
    }

    /// The power setpoint.
    #[inline]
    pub fn target(&self) -> Watts {
        self.target
    }

    /// Updates the drive from the latest wire-power estimate; returns the
    /// next supply code.
    pub fn update(&mut self, measured: Watts) -> u32 {
        let error = self.target.get() - measured.get();
        let next = self.code as f64 + self.gain * error;
        self.code = next.clamp(100.0, self.max_code as f64) as u32;
        self.code
    }

    /// The current supply code.
    #[inline]
    pub fn code(&self) -> u32 {
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_physics::KingsLaw;
    use hotwire_units::MetersPerSecond;

    fn setup() -> (FlowMeterConfig, BridgeConfig, Ohms, WireStateEstimator) {
        let cfg = FlowMeterConfig::water_station();
        let heater = Rtd::heater();
        let reference = Rtd::ambient_reference();
        let bridge = cfg.design_bridge(&heater, &reference).unwrap();
        let rh_star = cfg.target_heater_resistance(&heater);
        let est = WireStateEstimator::new(
            &bridge,
            heater,
            &reference,
            &cfg,
            Volts::new(2.5 / 32768.0 / 50.0),
        );
        (cfg, bridge, rh_star, est)
    }

    #[test]
    fn estimator_recovers_balanced_state() {
        let (cfg, _bridge, rh_star, est) = setup();
        // At balance the code is zero and the wire sits at Rh*.
        let state = est.estimate(0, Volts::new(3.0)).unwrap();
        assert!(
            (state.resistance - rh_star).abs().get() < 0.01,
            "Rh {} vs {}",
            state.resistance,
            rh_star
        );
        let t_expected = cfg.calibration_temperature + cfg.overheat;
        assert!((state.temperature.get() - t_expected.get()).abs() < 0.1);
        // Power: equal arms → U²/(4Rh*).
        let p_expected = 9.0 / (4.0 * rh_star.get());
        assert!((state.power.get() - p_expected).abs() / p_expected < 0.01);
        // Conductance = P/ΔT.
        assert!((state.conductance.get() - p_expected / 15.0).abs() / (p_expected / 15.0) < 0.05);
    }

    #[test]
    fn estimator_sees_off_balance_codes() {
        let (_, _, rh_star, est) = setup();
        // A positive code means a hotter (higher-R) wire.
        let hot = est.estimate(4000, Volts::new(3.0)).unwrap();
        let cold = est.estimate(-4000, Volts::new(3.0)).unwrap();
        assert!(hot.resistance > rh_star);
        assert!(cold.resistance < rh_star);
        assert!(hot.temperature > cold.temperature);
    }

    #[test]
    fn estimator_rejects_dead_supply() {
        let (.., est) = setup();
        assert!(est.estimate(0, Volts::ZERO).is_none());
        assert!(est.estimate(0, Volts::new(0.01)).is_none());
    }

    #[test]
    fn cc_design_reaches_plausible_code() {
        let (cfg, bridge, rh_star, _) = setup();
        let king = KingsLaw::water_default();
        let g = king.conductance(MetersPerSecond::new(1.0));
        let cc = ConstantCurrentDrive::design(&cfg, rh_star, &bridge, g, Volts::new(5.0), 4095);
        // Expected supply ≈ √(G·15·(2Rh*)²/Rh*) ≈ 2.7 V → code ≈ 2230.
        assert!((1500..3200).contains(&cc.code()), "cc code {}", cc.code());
    }

    #[test]
    fn cp_drive_converges_on_static_plant() {
        // Plant: P = (U·k)² with k chosen so code 2000 → 30 mW.
        let mut cp = ConstantPowerDrive::new(Watts::new(0.030), 1000, 4095);
        let mut code = cp.code();
        for _ in 0..500 {
            let u = code as f64 * 5.0 / 4095.0;
            let p = u * u * 0.030 / (2000.0f64 * 5.0 / 4095.0).powi(2);
            code = cp.update(Watts::new(p));
        }
        assert!(
            (code as i64 - 2000).unsigned_abs() < 60,
            "cp settled at {code}"
        );
    }

    #[test]
    fn cp_drive_clamps() {
        let mut cp = ConstantPowerDrive::new(Watts::new(10.0), 100, 4095);
        for _ in 0..100 {
            cp.update(Watts::ZERO);
        }
        assert_eq!(cp.code(), 4095);
        let mut cp = ConstantPowerDrive::new(Watts::ZERO, 4000, 4095);
        for _ in 0..100 {
            cp.update(Watts::new(1.0));
        }
        assert_eq!(cp.code(), 100);
    }
}
