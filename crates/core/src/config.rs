//! Firmware configuration: operating point, loop gains, drive scheme.

use crate::CoreError;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_physics::resistor::Rtd;
use hotwire_units::{Celsius, Hertz, KelvinDelta, MetersPerSecond, Ohms};

/// The anemometer operating mode (paper §2).
///
/// "The anemometer principle features three main different operating modes:
/// constant current, constant power, or constant temperature. The former two
/// feature simple circuit implementation while the latter … achiev\[es\] more
/// robustness respect to changes of the temperature of the fluid itself."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OperatingMode {
    /// Constant-temperature: the Wheatstone bridge + PI loop holds the wire
    /// at a fixed overheat above ambient (the paper's implementation).
    ConstantTemperature,
    /// Constant-current baseline: fixed drive, velocity from the wire's
    /// temperature depression.
    ConstantCurrent,
    /// Constant-power baseline: drive adjusted to hold electrical power,
    /// velocity from the wire's temperature depression.
    ConstantPower,
}

/// Fidelity tier of the analog-front-end co-simulation.
///
/// The exact tier simulates every ΣΔ modulator tick (bridge solve, die
/// thermal step, in-amp/anti-alias/modulator/CIC chain) and is bit-identical
/// whether it runs through the scalar [`step`](crate::FlowMeter::step) path
/// or the batched [`step_frame`](crate::FlowMeter::step_frame) path. The
/// fast tier replaces the per-tick AFE with one quasi-static bridge solve and
/// DC code per control frame plus a single coarse die step — a bounded-error
/// approximation for fleet-scale studies, with the error pinned by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AfeTier {
    /// Every modulator tick simulated; bit-identical scalar/block paths.
    Exact,
    /// One quasi-static AFE evaluation per control frame (approximate).
    Fast,
}

/// Pulsed-drive settings (paper §4: "a pulsed voltage driving technique
/// instead of continuous sensor biasing").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PulsedConfig {
    /// Pulse period in control ticks.
    pub period_ticks: u32,
    /// Fraction of the period the heater is driven, `(0, 1]`.
    pub duty: f64,
}

impl PulsedConfig {
    /// 100 ms period, 25 % duty at a 1 kHz control rate.
    pub fn water_default() -> Self {
        PulsedConfig {
            period_ticks: 100,
            duty: 0.25,
        }
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for a zero period or a duty outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.period_ticks == 0 {
            return Err(CoreError::Config {
                reason: "pulse period must be at least one tick",
            });
        }
        if !(self.duty > 0.0 && self.duty <= 1.0) {
            return Err(CoreError::Config {
                reason: "pulse duty must lie in (0, 1]",
            });
        }
        Ok(())
    }

    /// Number of ON ticks per period (at least 1).
    pub fn on_ticks(&self) -> u32 {
        ((self.period_ticks as f64 * self.duty).round() as u32).max(1)
    }
}

/// Complete firmware configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowMeterConfig {
    /// Operating mode.
    pub mode: OperatingMode,
    /// ΣΔ modulator clock.
    pub modulator_rate: Hertz,
    /// Decimation ratio (modulator rate → control rate).
    pub decimation: u32,
    /// Design overheat of the wire above the fluid.
    pub overheat: KelvinDelta,
    /// Fluid temperature at which the bridge was designed/calibrated.
    pub calibration_temperature: Celsius,
    /// PI proportional gain (code/code).
    pub kp: f64,
    /// PI integral gain per control sample.
    pub ki: f64,
    /// Minimum supply-DAC code (keeps the loop observable at startup).
    pub supply_code_min: u32,
    /// Output-filter corner (the paper's 0.1 Hz sensitivity filter).
    pub output_filter: Hertz,
    /// Full-scale velocity (paper: 250 cm/s).
    pub full_scale: MetersPerSecond,
    /// Optional pulsed-drive schedule.
    pub pulsed: Option<PulsedConfig>,
    /// Fluid-temperature compensation of the King calibration (CT mode
    /// only): the firmware tracks the fluid temperature through the `Rt`
    /// bridge arm and property-scales `A`/`B`. The paper's system monitors
    /// "a temperature sensor for tracking thermal flow variation".
    pub temperature_compensation: bool,
    /// Direction-detector deadband in channel codes.
    pub direction_deadband: i32,
    /// Analog-front-end fidelity tier used by the frame path
    /// ([`FlowMeter::step_frame`](crate::FlowMeter::step_frame)); the scalar
    /// [`step`](crate::FlowMeter::step) path is always exact.
    pub afe_tier: AfeTier,
}

impl FlowMeterConfig {
    /// The paper's water-station configuration: constant-temperature mode,
    /// 256 kHz modulator decimated to a 1 kHz control rate, 15 K overheat
    /// (reduced for water), 0.1 Hz output filter, 250 cm/s full scale,
    /// continuous drive.
    pub fn water_station() -> Self {
        FlowMeterConfig {
            mode: OperatingMode::ConstantTemperature,
            modulator_rate: Hertz::from_kilohertz(256.0),
            decimation: 256,
            overheat: KelvinDelta::new(15.0),
            calibration_temperature: Celsius::new(15.0),
            kp: 0.02,
            ki: 0.005,
            supply_code_min: 410,
            output_filter: Hertz::new(0.1),
            full_scale: MetersPerSecond::from_cm_per_s(250.0),
            pulsed: None,
            // Must exceed the worst-case in-amp offset seen by the
            // direction channel (0.2 mV input-referred ≈ 130 codes);
            // auto-zeroing (`FlowMeter::auto_zero_direction`) lets tighter
            // deadbands be used.
            direction_deadband: 250,
            temperature_compensation: true,
            afe_tier: AfeTier::Exact,
        }
    }

    /// The same loop with the pulsed drive enabled (the paper's bubble
    /// mitigation).
    pub fn water_station_pulsed() -> Self {
        FlowMeterConfig {
            pulsed: Some(PulsedConfig::water_default()),
            ..FlowMeterConfig::water_station()
        }
    }

    /// An "air-style" configuration with the original 40 K overheat — the
    /// naive port that grows bubbles in water (used by experiment E5).
    pub fn air_style_overheat() -> Self {
        FlowMeterConfig {
            overheat: KelvinDelta::new(40.0),
            ..FlowMeterConfig::water_station()
        }
    }

    /// A faster test profile: 32 kHz modulator, decimate by 64 → 500 Hz
    /// control rate, 1 Hz output filter. Dynamically equivalent shape at a
    /// fraction of the simulation cost; unit tests use this.
    pub fn test_profile() -> Self {
        FlowMeterConfig {
            modulator_rate: Hertz::from_kilohertz(32.0),
            decimation: 64,
            output_filter: Hertz::new(1.0),
            ..FlowMeterConfig::water_station()
        }
    }

    /// The control (decimated) sample rate.
    pub fn control_rate(&self) -> Hertz {
        Hertz::new(self.modulator_rate.get() / self.decimation as f64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for non-positive rates/overheat, a
    /// decimation outside the CIC's range, silly gains, or an invalid pulse
    /// schedule.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.modulator_rate.get() <= 0.0 {
            return Err(CoreError::Config {
                reason: "modulator rate must be positive",
            });
        }
        if !(2..=4096).contains(&self.decimation) {
            return Err(CoreError::Config {
                reason: "decimation must lie in 2..=4096",
            });
        }
        if self.overheat.get() <= 0.0 || self.overheat.get() > 100.0 {
            return Err(CoreError::Config {
                reason: "overheat must lie in (0, 100] kelvin",
            });
        }
        if self.kp < 0.0 || self.ki < 0.0 || (self.kp == 0.0 && self.ki == 0.0) {
            return Err(CoreError::Config {
                reason: "pi gains must be non-negative and not both zero",
            });
        }
        if self.output_filter.get() <= 0.0
            || self.output_filter.get() >= self.control_rate().get() / 2.0
        {
            return Err(CoreError::Config {
                reason: "output filter corner must lie below the control nyquist",
            });
        }
        if self.full_scale.get() <= 0.0 {
            return Err(CoreError::Config {
                reason: "full scale must be positive",
            });
        }
        if let Some(p) = &self.pulsed {
            p.validate()?;
        }
        Ok(())
    }

    /// Designs the Wheatstone bridge for this configuration: the heater
    /// branch gets an equal series arm (`R1 = Rh*`), the reference branch is
    /// scaled so the balance lands on the overheated resistance at the
    /// calibration temperature.
    pub fn design_bridge(&self, heater: &Rtd, reference: &Rtd) -> Result<BridgeConfig, CoreError> {
        let rh_star = self.target_heater_resistance(heater);
        let rt_cal = reference.resistance(self.calibration_temperature);
        Ok(BridgeConfig::for_operating_point(rh_star, rt_cal)?)
    }

    /// The heater resistance the loop regulates to at the calibration
    /// temperature.
    pub fn target_heater_resistance(&self, heater: &Rtd) -> Ohms {
        heater.resistance(self.calibration_temperature + self.overheat)
    }

    /// A stable 64-bit fingerprint of the configuration (FNV-1a over the
    /// canonical `Debug` rendering, whose `f64` formatting round-trips).
    /// Two configs fingerprint equal iff they would build bit-identical
    /// meters; fleet checkpoints use this to refuse resuming under a
    /// different spec.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("{self:?}").as_bytes())
    }
}

/// FNV-1a over `bytes` — the workspace's stable, dependency-free hash for
/// config fingerprints and meter state digests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Default for FlowMeterConfig {
    fn default() -> Self {
        FlowMeterConfig::water_station()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_station_validates() {
        assert!(FlowMeterConfig::water_station().validate().is_ok());
        assert!(FlowMeterConfig::water_station_pulsed().validate().is_ok());
        assert!(FlowMeterConfig::air_style_overheat().validate().is_ok());
        assert!(FlowMeterConfig::test_profile().validate().is_ok());
    }

    #[test]
    fn control_rate_derivation() {
        let cfg = FlowMeterConfig::water_station();
        assert!((cfg.control_rate().get() - 1000.0).abs() < 1e-9);
        let test = FlowMeterConfig::test_profile();
        assert!((test.control_rate().get() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn bridge_design_hits_overheat_target() {
        let cfg = FlowMeterConfig::water_station();
        let heater = Rtd::heater();
        let reference = Rtd::ambient_reference();
        let bridge = cfg.design_bridge(&heater, &reference).unwrap();
        let rt_cal = reference.resistance(cfg.calibration_temperature);
        let rh_star = bridge.balance_heater_resistance(rt_cal);
        let t_regulated = heater.temperature(rh_star);
        let overheat = t_regulated - cfg.calibration_temperature;
        assert!(
            (overheat.get() - 15.0).abs() < 0.01,
            "designed overheat {overheat}"
        );
    }

    #[test]
    fn bridge_tracks_ambient() {
        // The whole point of the Rt arm: at a different fluid temperature the
        // balance point still implies ≈ the same overheat.
        let cfg = FlowMeterConfig::water_station();
        let heater = Rtd::heater();
        let reference = Rtd::ambient_reference();
        let bridge = cfg.design_bridge(&heater, &reference).unwrap();
        for fluid in [5.0, 15.0, 25.0, 35.0] {
            let rt = reference.resistance(Celsius::new(fluid));
            let rh_star = bridge.balance_heater_resistance(rt);
            let overheat = heater.temperature(rh_star) - Celsius::new(fluid);
            // The ratio compensation carries a second-order α²·ΔT·(T−T_cal)
            // term: ~±1.1 K at ±20 °C from the calibration point.
            assert!(
                (overheat.get() - 15.0).abs() < 1.2,
                "overheat {overheat} at fluid {fluid} °C"
            );
        }
    }

    #[test]
    fn pulsed_config_on_ticks() {
        let p = PulsedConfig {
            period_ticks: 100,
            duty: 0.25,
        };
        assert_eq!(p.on_ticks(), 25);
        let tiny = PulsedConfig {
            period_ticks: 10,
            duty: 0.01,
        };
        assert_eq!(tiny.on_ticks(), 1, "duty rounds up to one tick");
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = FlowMeterConfig::water_station();
        let b = FlowMeterConfig::water_station();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = FlowMeterConfig::water_station();
        c.kp += 1e-9;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = FlowMeterConfig::water_station();
        d.afe_tier = AfeTier::Fast;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = FlowMeterConfig::water_station();
        cfg.decimation = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = FlowMeterConfig::water_station();
        cfg.overheat = KelvinDelta::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = FlowMeterConfig::water_station();
        cfg.kp = 0.0;
        cfg.ki = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FlowMeterConfig::water_station();
        cfg.output_filter = Hertz::new(600.0);
        assert!(cfg.validate().is_err());

        let mut cfg = FlowMeterConfig::water_station();
        cfg.pulsed = Some(PulsedConfig {
            period_ticks: 0,
            duty: 0.5,
        });
        assert!(cfg.validate().is_err());

        let mut cfg = FlowMeterConfig::water_station();
        cfg.pulsed = Some(PulsedConfig {
            period_ticks: 10,
            duty: 1.5,
        });
        assert!(cfg.validate().is_err());
    }
}
