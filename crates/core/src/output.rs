//! The output conditioning pipeline.
//!
//! "This output signal requires further filtering (with an IIR filter down
//! to the bandwidth of 0.1 Hz) in order to improve the sensitivity." (§4)
//!
//! The pipeline runs at the control rate on the PI's supply-code output:
//! a 5-tap median (kills the discrete spikes of bubble-detachment events)
//! followed by the paper's very-low-bandwidth IIR smoother.

use crate::CoreError;
use hotwire_dsp::despike::Median5;
use hotwire_dsp::iir::SinglePoleLp;
use hotwire_units::Hertz;

/// Median despike + 0.1 Hz IIR smoothing of the supply code.
#[derive(Debug, Clone)]
pub struct OutputPipeline {
    median: Median5,
    smoother: SinglePoleLp,
    /// Latest smoothed code.
    smoothed: i32,
    /// Latest despiked (median) code — the fast reference the spike monitor
    /// compares raw samples against.
    despiked: i32,
    warmed_up: bool,
}

impl OutputPipeline {
    /// Creates the pipeline for corner `corner` at control rate
    /// `control_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dsp`] for an unrealizable corner.
    pub fn new(corner: Hertz, control_rate: Hertz) -> Result<Self, CoreError> {
        Ok(OutputPipeline {
            median: Median5::new(),
            smoother: SinglePoleLp::design(corner.get(), control_rate.get())?,
            smoothed: 0,
            despiked: 0,
            warmed_up: false,
        })
    }

    /// Pushes one control-rate supply code; returns the conditioned code.
    pub fn push(&mut self, code: i32) -> i32 {
        let despiked = self.median.push(code);
        self.despiked = despiked;
        if !self.warmed_up {
            // Pre-charge the smoother so the 0.1 Hz corner does not impose a
            // multi-second power-on ramp from zero.
            self.smoother.preset(despiked);
            self.warmed_up = true;
        }
        self.smoothed = self.smoother.push(despiked);
        self.smoothed
    }

    /// The latest conditioned code without pushing a new sample.
    #[inline]
    pub fn value(&self) -> i32 {
        self.smoothed
    }

    /// The latest despiked (pre-smoothing) code. Tracks ramps within a
    /// couple of ticks, so `raw − despiked` isolates genuine spikes.
    #[inline]
    pub fn despiked(&self) -> i32 {
        self.despiked
    }

    /// Clears all state (next sample re-precharges).
    pub fn reset(&mut self) {
        self.median.reset();
        self.smoother.reset();
        self.smoothed = 0;
        self.despiked = 0;
        self.warmed_up = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(corner: f64) -> OutputPipeline {
        OutputPipeline::new(Hertz::new(corner), Hertz::new(1000.0)).unwrap()
    }

    #[test]
    fn precharges_to_first_sample() {
        let mut p = pipeline(0.1);
        assert_eq!(p.push(2000), 2000, "no multi-second power-on ramp");
    }

    #[test]
    fn constant_input_passes() {
        let mut p = pipeline(0.1);
        let mut y = 0;
        for _ in 0..100 {
            y = p.push(1234);
        }
        assert_eq!(y, 1234);
        assert_eq!(p.value(), 1234);
    }

    #[test]
    fn spikes_are_removed() {
        let mut p = pipeline(0.1);
        for _ in 0..10 {
            p.push(2000);
        }
        // A two-tick bubble-detachment spike.
        p.push(3500);
        let y = p.push(3500);
        assert!((y - 2000).abs() <= 1, "spike leaked: {y}");
    }

    #[test]
    fn slow_steps_do_pass() {
        let mut p = pipeline(10.0); // faster corner for the test
        for _ in 0..10 {
            p.push(1000);
        }
        let mut y = 0;
        for _ in 0..2000 {
            y = p.push(2000);
        }
        assert!((y - 2000).abs() <= 1, "step blocked: {y}");
    }

    #[test]
    fn narrow_filter_smooths_noise() {
        let mut narrow = pipeline(0.1);
        let mut wide = pipeline(50.0);
        let mut seed = 1u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 200) as i32 - 100
        };
        let (mut var_narrow, mut var_wide) = (0.0f64, 0.0f64);
        for i in 0..20_000 {
            let x = 2000 + rand();
            let yn = narrow.push(x) - 2000;
            let yw = wide.push(x) - 2000;
            if i > 5000 {
                var_narrow += (yn as f64).powi(2);
                var_wide += (yw as f64).powi(2);
            }
        }
        assert!(
            var_narrow < 0.05 * var_wide,
            "0.1 Hz filter did not improve sensitivity: {var_narrow} vs {var_wide}"
        );
    }

    #[test]
    fn reset_reprimes() {
        let mut p = pipeline(0.1);
        p.push(5000);
        p.reset();
        assert_eq!(p.value(), 0);
        assert_eq!(p.push(100), 100);
    }
}
