//! The battery power budget of the §7 probe.
//!
//! "The dedicated asic, currently in fab, features advanced low power
//! techniques with deep sleep mode for a considerable power saving allowing
//! the whole system to be supplied by rechargeable batteries (4 alkaline AA)
//! that guarantees autonomy of one year for a typical sensor usage."
//!
//! Experiment E11 reproduces that claim with this duty-cycled energy model.

use crate::CoreError;
use hotwire_units::{Seconds, Watts};

/// Energy capacity of four alkaline AA cells in watt-hours
/// (4 × 1.5 V × 2.5 Ah).
pub const FOUR_AA_WH: f64 = 15.0;

/// One operating state of the probe's duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PowerState {
    /// Human-readable state name.
    pub name: &'static str,
    /// Total draw in this state (heater + analog + digital).
    pub draw: Watts,
    /// Time spent in this state per cycle.
    pub duration: Seconds,
}

/// A repeating duty cycle of power states.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DutyCycle {
    states: Vec<PowerState>,
}

impl DutyCycle {
    /// Builds a duty cycle from its states.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if no states are given or any duration
    /// is non-positive.
    pub fn new(states: Vec<PowerState>) -> Result<Self, CoreError> {
        if states.is_empty() {
            return Err(CoreError::Config {
                reason: "duty cycle needs at least one state",
            });
        }
        if states.iter().any(|s| s.duration.get() <= 0.0) {
            return Err(CoreError::Config {
                reason: "power-state durations must be positive",
            });
        }
        Ok(DutyCycle { states })
    }

    /// "Typical sensor usage" per §7: a 1 s measurement burst every three
    /// minutes — ample for network-level leak monitoring — deep sleep
    /// (~25 µW) otherwise, plus a daily 5 s telemetry window at 40 mW. The
    /// burst draw (~160 mW) is what the two driven Wheatstone bridges plus
    /// awake electronics actually cost (see `hotwire_core::burst`).
    pub fn typical_usage() -> Self {
        DutyCycle::new(vec![
            PowerState {
                name: "measure",
                draw: Watts::new(0.160),
                duration: Seconds::new(1.0),
            },
            PowerState {
                name: "sleep",
                draw: Watts::new(25e-6),
                duration: Seconds::new(179.0),
            },
            PowerState {
                name: "telemetry",
                draw: Watts::new(0.040),
                // 5 s/day amortized into the 180 s cycle.
                duration: Seconds::new(5.0 * 180.0 / 86_400.0),
            },
        ])
        .expect("static duty cycle is valid")
    }

    /// Continuous operation (no deep sleep) — the pre-ASIC prototype.
    pub fn continuous(draw: Watts) -> Self {
        DutyCycle::new(vec![PowerState {
            name: "measure",
            draw,
            duration: Seconds::new(1.0),
        }])
        .expect("single state is valid")
    }

    /// The states of the cycle.
    pub fn states(&self) -> &[PowerState] {
        &self.states
    }

    /// Cycle period.
    pub fn period(&self) -> Seconds {
        self.states.iter().map(|s| s.duration).sum()
    }

    /// Time-averaged power draw.
    pub fn average_power(&self) -> Watts {
        let energy: f64 = self
            .states
            .iter()
            .map(|s| s.draw.get() * s.duration.get())
            .sum();
        Watts::new(energy / self.period().get())
    }

    /// Autonomy in hours on a battery of `capacity_wh` watt-hours, with a
    /// 15 % derating for alkaline self-discharge and low-temperature loss.
    pub fn autonomy_hours(&self, capacity_wh: f64) -> f64 {
        capacity_wh * 0.85 / self.average_power().get()
    }

    /// Autonomy in days on four AA cells.
    pub fn autonomy_days_on_4aa(&self) -> f64 {
        self.autonomy_hours(FOUR_AA_WH) / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_usage_reaches_a_year() {
        let cycle = DutyCycle::typical_usage();
        let days = cycle.autonomy_days_on_4aa();
        assert!(
            days > 365.0,
            "autonomy {days:.0} days — paper claims one year"
        );
        assert!(
            days < 5.0 * 365.0,
            "autonomy {days:.0} days implausibly long"
        );
    }

    #[test]
    fn continuous_operation_dies_in_days() {
        let cycle = DutyCycle::continuous(Watts::new(0.160));
        let days = cycle.autonomy_days_on_4aa();
        assert!(days < 5.0, "continuous autonomy {days:.1} days");
    }

    #[test]
    fn average_power_weighted_by_duration() {
        let cycle = DutyCycle::new(vec![
            PowerState {
                name: "a",
                draw: Watts::new(1.0),
                duration: Seconds::new(1.0),
            },
            PowerState {
                name: "b",
                draw: Watts::new(0.0),
                duration: Seconds::new(3.0),
            },
        ])
        .unwrap();
        assert!((cycle.average_power().get() - 0.25).abs() < 1e-12);
        assert!((cycle.period().get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_interval_trades_autonomy() {
        // Halving the measurement rate roughly doubles sleep-dominated
        // autonomy… until sleep power floors it.
        let fast = DutyCycle::new(vec![
            PowerState {
                name: "measure",
                draw: Watts::new(0.160),
                duration: Seconds::new(1.0),
            },
            PowerState {
                name: "sleep",
                draw: Watts::new(25e-6),
                duration: Seconds::new(29.0),
            },
        ])
        .unwrap();
        let slow = DutyCycle::new(vec![
            PowerState {
                name: "measure",
                draw: Watts::new(0.160),
                duration: Seconds::new(1.0),
            },
            PowerState {
                name: "sleep",
                draw: Watts::new(25e-6),
                duration: Seconds::new(119.0),
            },
        ])
        .unwrap();
        let ratio = slow.autonomy_days_on_4aa() / fast.autonomy_days_on_4aa();
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejects_bad_cycles() {
        assert!(DutyCycle::new(vec![]).is_err());
        assert!(DutyCycle::new(vec![PowerState {
            name: "zero",
            draw: Watts::new(1.0),
            duration: Seconds::ZERO,
        }])
        .is_err());
    }
}
