//! The constant-temperature closed loop.
//!
//! "Closed loop is implemented by software-emulated IPs which feature
//! reference subtraction, PI controller and feedback actuation directly to
//! supply the two bridges. Since the driving scheme … keeps constant
//! temperature, the digital output of the PI controller, which represents
//! the voltage supplied to the two bridges, is proportional to the water
//! flow." (§4)
//!
//! [`CtaLoop`] is that software IP: it consumes the decimated bridge-error
//! code from the input channel and produces the supply-DAC code.
//! [`ConductanceEstimator`] is its observer: it converts the commanded
//! supply voltage back into the wire-to-fluid thermal conductance that
//! King's law maps to velocity.

use crate::config::FlowMeterConfig;
use crate::CoreError;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_dsp::fix::Q16;
use hotwire_dsp::pi::PiController;
use hotwire_units::{Ohms, ThermalConductance, Volts, Watts};

/// Largest supply-DAC code (12-bit).
pub const SUPPLY_CODE_MAX: i32 = 4095;

/// The reference-subtraction + PI software IP.
#[derive(Debug, Clone)]
pub struct CtaLoop {
    pi: PiController,
}

impl CtaLoop {
    /// Builds the loop from the firmware configuration.
    ///
    /// The PI output is clamped to `[supply_code_min, 4095]`; the lower
    /// clamp keeps the bridge observable (a fully-off bridge produces no
    /// error signal, so the loop could never start).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dsp`] for unrepresentable gains or an empty
    /// clamp range.
    pub fn new(config: &FlowMeterConfig) -> Result<Self, CoreError> {
        let mut pi = PiController::new(
            Q16::from_f64(config.kp),
            Q16::from_f64(config.ki),
            config.supply_code_min as i32,
            SUPPLY_CODE_MAX,
        )?;
        // Bumpless start at the minimum observable supply.
        pi.preset_output(config.supply_code_min as i32);
        Ok(CtaLoop { pi })
    }

    /// Runs one control step on the decimated bridge code and returns the
    /// next supply-DAC code.
    ///
    /// Sign convention: the channel measures `V(heater mid) − V(reference
    /// mid)`, which is *positive when the wire is hotter than the setpoint* —
    /// so the loop error is the negated code (reference subtraction with a
    /// zero setpoint).
    pub fn update(&mut self, bridge_code: i32) -> u32 {
        let error = bridge_code.saturating_neg();
        self.pi.update(error) as u32
    }

    /// Presets the actuator output (used when resuming from pulsed-off
    /// phases).
    pub fn preset_output(&mut self, code: u32) {
        self.pi.preset_output(code as i32);
    }

    /// Declared LEON cycle cost of one loop iteration (reference
    /// subtraction + PI in integer arithmetic).
    pub const CYCLE_COST: u32 = 120;
}

/// Observer converting the commanded supply into wire conductance.
#[derive(Debug, Clone, Copy)]
pub struct ConductanceEstimator {
    /// Series resistance in the heater branch.
    r_series: Ohms,
    /// Series resistance in the reference branch.
    r_series_ref: Ohms,
    /// The regulated heater resistance at the calibration temperature.
    rh_star: Ohms,
    /// Design overheat at the calibration temperature.
    overheat_k: f64,
    /// Nominal heater RTD law (for the ambient-aware balance).
    heater_rtd: hotwire_physics::resistor::Rtd,
    /// Nominal reference RTD law.
    reference_rtd: hotwire_physics::resistor::Rtd,
    /// Number of heater bridges the supply feeds (the paper drives two).
    bridges: f64,
}

impl ConductanceEstimator {
    /// Builds the observer from the bridge design and configuration.
    pub fn new(
        bridge: &BridgeConfig,
        rh_star: Ohms,
        config: &FlowMeterConfig,
        bridges: u32,
    ) -> Self {
        ConductanceEstimator {
            r_series: bridge.r_series_heater,
            r_series_ref: bridge.r_series_reference,
            rh_star,
            overheat_k: config.overheat.get(),
            heater_rtd: hotwire_physics::resistor::Rtd::heater(),
            reference_rtd: hotwire_physics::resistor::Rtd::ambient_reference(),
            bridges: bridges as f64,
        }
    }

    /// Heater power (per heater) at a commanded supply voltage, assuming the
    /// loop holds the wire at balance.
    pub fn heater_power(&self, supply: Volts) -> Watts {
        let i = supply / (self.r_series + self.rh_star);
        Watts::from_joule_heating(i, self.rh_star)
    }

    /// Wire-to-fluid conductance (per heater) implied by the supply voltage,
    /// using the calibration-temperature balance point.
    pub fn conductance(&self, supply: Volts) -> ThermalConductance {
        ThermalConductance::new(self.heater_power(supply).get() / self.overheat_k)
    }

    /// Ambient-aware conductance: at fluid temperatures away from the
    /// calibration point, the ratio bridge regulates to a slightly different
    /// resistance and overheat (a second-order `α²` effect worth ~+5 % per
    /// 15 K). The firmware knows the bridge arithmetic, so it can evaluate
    /// the true balance at the *measured* fluid temperature.
    pub fn conductance_at_ambient(
        &self,
        supply: Volts,
        fluid: hotwire_units::Celsius,
    ) -> ThermalConductance {
        let rt = self.reference_rtd.resistance(fluid);
        let rh_star_t = Ohms::new(self.r_series.get() * rt.get() / self.r_series_ref.get());
        let i = supply / (self.r_series + rh_star_t);
        let p = Watts::from_joule_heating(i, rh_star_t);
        let overheat = (self.heater_rtd.temperature(rh_star_t) - fluid).get();
        if overheat <= 0.5 {
            return ThermalConductance::ZERO;
        }
        ThermalConductance::new(p.get() / overheat)
    }

    /// Total electrical power drawn by all driven bridges at this supply
    /// (heater + series arm + reference branch), for the power budget.
    pub fn total_bridge_power(&self, supply: Volts, r_series_ref: Ohms, rt: Ohms) -> Watts {
        let branch_heater = Watts::from_voltage_across(supply, self.r_series + self.rh_star);
        let branch_ref = Watts::from_voltage_across(supply, r_series_ref + rt);
        (branch_heater + branch_ref) * self.bridges
    }

    /// Static small-signal loop gain (code out per code of error in) at an
    /// operating supply, for PI-gain sanity checks.
    ///
    /// Chain: DAC code→volts (`dac_lsb`) → supply→power (`2U·∂P/∂U²`) →
    /// power→overheat (`1/G`) → overheat→resistance (`α·R₀`) →
    /// resistance→bridge differential (`U·R₁/(R₁+Rh)²`) → volts→ADC code
    /// (`gain/vref·2¹⁵`). The PI proportional gain multiplies this figure;
    /// the product should sit well below ~1 for comfortable phase margin
    /// given the loop's one-sample transport delay.
    #[allow(clippy::too_many_arguments)] // each factor is one physical stage
    pub fn static_loop_gain(
        &self,
        supply: Volts,
        wire_conductance: ThermalConductance,
        heater_alpha_r0: f64,
        dac_lsb: Volts,
        inamp_gain: f64,
        adc_vref: Volts,
    ) -> f64 {
        let u = supply.get();
        let rtot = self.r_series.get() + self.rh_star.get();
        let k_power = self.rh_star.get() / (rtot * rtot); // P = U²·k
        let du_dcode = dac_lsb.get();
        let dp_du = 2.0 * u * k_power;
        let dt_dp = 1.0 / wire_conductance.get();
        let dr_dt = heater_alpha_r0;
        let dv_dr = u * self.r_series.get() / (rtot * rtot);
        let dcode_dv = inamp_gain / adc_vref.get() * 32768.0;
        du_dcode * dp_du * dt_dp * dr_dt * dv_dr * dcode_dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowMeterConfig;
    use hotwire_physics::resistor::Rtd;

    fn setup() -> (FlowMeterConfig, BridgeConfig, Ohms) {
        let cfg = FlowMeterConfig::water_station();
        let heater = Rtd::heater();
        let bridge = cfg
            .design_bridge(&heater, &Rtd::ambient_reference())
            .unwrap();
        let rh_star = cfg.target_heater_resistance(&heater);
        (cfg, bridge, rh_star)
    }

    #[test]
    fn loop_starts_at_minimum_supply() {
        let (cfg, ..) = setup();
        let mut cta = CtaLoop::new(&cfg).unwrap();
        assert_eq!(cta.update(0), cfg.supply_code_min);
    }

    #[test]
    fn cold_wire_raises_supply() {
        let (cfg, ..) = setup();
        let mut cta = CtaLoop::new(&cfg).unwrap();
        // Wire colder than setpoint → negative bridge code.
        let mut code = 0;
        for _ in 0..50 {
            code = cta.update(-5000);
        }
        assert!(code > cfg.supply_code_min, "supply did not rise: {code}");
    }

    #[test]
    fn hot_wire_lowers_supply() {
        let (cfg, ..) = setup();
        let mut cta = CtaLoop::new(&cfg).unwrap();
        cta.preset_output(3000);
        let mut code = 3000;
        for _ in 0..50 {
            code = cta.update(8000);
        }
        assert!(code < 3000, "supply did not fall: {code}");
    }

    #[test]
    fn supply_clamps_to_dac_range() {
        let (cfg, ..) = setup();
        let mut cta = CtaLoop::new(&cfg).unwrap();
        for _ in 0..10_000 {
            let code = cta.update(-30_000);
            assert!(code <= SUPPLY_CODE_MAX as u32);
        }
        assert_eq!(cta.update(-30_000), SUPPLY_CODE_MAX as u32);
        for _ in 0..10_000 {
            let code = cta.update(30_000);
            assert!(code >= cfg.supply_code_min);
        }
    }

    #[test]
    fn estimator_power_magnitude() {
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        // Equal arms: heater sees U/2 → P = U²/(4·Rh*).
        let p = est.heater_power(Volts::new(3.0));
        let expected = 9.0 / (4.0 * rh_star.get());
        assert!((p.get() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn estimator_conductance_scales_with_power() {
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        let g1 = est.conductance(Volts::new(1.5));
        let g2 = est.conductance(Volts::new(3.0));
        // G ∝ U².
        assert!((g2.get() / g1.get() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ambient_aware_conductance_matches_design_at_calibration() {
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        let u = Volts::new(3.0);
        let g_design = est.conductance(u);
        let g_ambient = est.conductance_at_ambient(u, cfg.calibration_temperature);
        assert!(
            (g_design.get() - g_ambient.get()).abs() / g_design.get() < 0.01,
            "design {} vs ambient-aware {}",
            g_design.get(),
            g_ambient.get()
        );
    }

    #[test]
    fn ambient_aware_conductance_corrects_second_order_overheat() {
        // At +15 K fluid the ratio bridge regulates ≈ 15.8 K overheat; the
        // naive estimator divides by 15.0 and over-reads by ~5 %. The
        // ambient-aware estimator removes that bias.
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        let u = Volts::new(3.0);
        let warm = hotwire_units::Celsius::new(30.0);
        let g_naive = est.conductance(u);
        let g_aware = est.conductance_at_ambient(u, warm);
        let ratio = g_naive.get() / g_aware.get();
        assert!(
            (1.02..1.12).contains(&ratio),
            "expected ~5 % naive over-read, got ratio {ratio}"
        );
    }

    #[test]
    fn ambient_aware_conductance_finite_across_wide_band() {
        // The ratio bridge keeps the overheat positive (it *grows* ~0.05 K/K
        // of ambient), so the estimator must stay positive and finite over
        // any plausible — and implausible — fluid estimate.
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        for t in [-20.0, 0.0, 15.0, 40.0, 90.0] {
            let g = est.conductance_at_ambient(Volts::new(3.0), hotwire_units::Celsius::new(t));
            assert!(
                g.get().is_finite() && g.get() > 0.0,
                "G {} at {t} °C",
                g.get()
            );
        }
    }

    #[test]
    fn static_loop_gain_supports_the_production_pi_gains() {
        // At the mid-range operating point the static plant gain is O(10);
        // with kp = 0.02 the proportional loop gain lands near 0.2–0.5 —
        // comfortably stable against the one-sample delay, which is exactly
        // why those defaults were chosen.
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        let g = est.static_loop_gain(
            Volts::new(2.7),
            hotwire_units::ThermalConductance::new(2.3e-3),
            hotwire_physics::resistor::Rtd::heater().sensitivity(),
            Volts::new(5.0 / 4095.0),
            50.0,
            Volts::new(2.5),
        );
        assert!((5.0..60.0).contains(&g), "static plant gain {g}");
        let loop_gain = g * cfg.kp;
        assert!(
            (0.05..1.0).contains(&loop_gain),
            "proportional loop gain {loop_gain}"
        );
    }

    #[test]
    fn total_power_includes_reference_branch() {
        let (cfg, bridge, rh_star) = setup();
        let est = ConductanceEstimator::new(&bridge, rh_star, &cfg, 2);
        let total = est.total_bridge_power(
            Volts::new(3.0),
            bridge.r_series_reference,
            Ohms::new(1965.0),
        );
        // Two bridges, heater branch ≈ 87 mW each + ref branch ≈ 2.3 mW each.
        assert!(total.get() > 0.15 && total.get() < 0.25, "total {total}");
    }
}
