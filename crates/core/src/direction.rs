//! Flow-direction detection from the dual-heater differential.
//!
//! "The fluid picks up heat at the first resistor and transfers this to the
//! second resistor. The results are different cooling effects on the two
//! resistors. This difference can be taken for the measurement of
//! directionality." (§2) — and §5 reports "the flow direction was clearly
//! detected".
//!
//! The detector consumes the decimated code of the `V(mid A) − V(mid B)`
//! channel. For positive flow (A upstream), the downstream heater B is
//! pre-heated, runs hotter, has the larger resistance and the higher
//! midpoint — so the channel code is *negative* for positive flow. A
//! deadband plus an up/down confidence counter gives hysteresis against
//! turbulence noise.

/// Detected flow direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FlowDirection {
    /// Flow from heater A towards heater B (positive velocity).
    Forward,
    /// Flow from heater B towards heater A (negative velocity).
    Reverse,
    /// No confident direction (stagnant flow or inside the deadband).
    Indeterminate,
}

impl FlowDirection {
    /// Signed multiplier: +1, −1, or 0.
    pub fn signum(self) -> f64 {
        match self {
            FlowDirection::Forward => 1.0,
            FlowDirection::Reverse => -1.0,
            FlowDirection::Indeterminate => 0.0,
        }
    }
}

/// Hysteretic direction detector.
#[derive(Debug, Clone)]
pub struct DirectionDetector {
    deadband: i32,
    confidence: i32,
    /// Confidence needed to switch state.
    threshold: i32,
    state: FlowDirection,
}

impl DirectionDetector {
    /// Creates a detector with the given code deadband; `threshold` control
    /// ticks of consistent evidence are required to declare a direction.
    pub fn new(deadband: i32, threshold: i32) -> Self {
        DirectionDetector {
            deadband: deadband.abs(),
            confidence: 0,
            threshold: threshold.max(1),
            state: FlowDirection::Indeterminate,
        }
    }

    /// The current detected direction.
    #[inline]
    pub fn direction(&self) -> FlowDirection {
        self.state
    }

    /// Consumes one decimated `mid A − mid B` code and returns the updated
    /// direction.
    pub fn update(&mut self, diff_code: i32) -> FlowDirection {
        // Negative code → B hotter → forward flow.
        let evidence = if diff_code <= -self.deadband {
            1
        } else if diff_code >= self.deadband {
            -1
        } else {
            0
        };
        match evidence {
            1 => self.confidence = (self.confidence + 1).min(self.threshold),
            -1 => self.confidence = (self.confidence - 1).max(-self.threshold),
            _ => {
                // Decay towards indeterminate.
                self.confidence -= self.confidence.signum();
            }
        }
        if self.confidence >= self.threshold {
            self.state = FlowDirection::Forward;
        } else if self.confidence <= -self.threshold {
            self.state = FlowDirection::Reverse;
        } else if self.confidence == 0 {
            self.state = FlowDirection::Indeterminate;
        }
        self.state
    }

    /// Resets to indeterminate.
    pub fn reset(&mut self) {
        self.confidence = 0;
        self.state = FlowDirection::Indeterminate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> DirectionDetector {
        DirectionDetector::new(60, 5)
    }

    #[test]
    fn forward_flow_detected() {
        let mut d = detector();
        for _ in 0..5 {
            d.update(-500);
        }
        assert_eq!(d.direction(), FlowDirection::Forward);
        assert_eq!(d.direction().signum(), 1.0);
    }

    #[test]
    fn reverse_flow_detected() {
        let mut d = detector();
        for _ in 0..5 {
            d.update(500);
        }
        assert_eq!(d.direction(), FlowDirection::Reverse);
        assert_eq!(d.direction().signum(), -1.0);
    }

    #[test]
    fn deadband_stays_indeterminate() {
        let mut d = detector();
        for _ in 0..100 {
            d.update(30);
            d.update(-30);
        }
        assert_eq!(d.direction(), FlowDirection::Indeterminate);
        assert_eq!(d.direction().signum(), 0.0);
    }

    #[test]
    fn single_glitch_does_not_flip() {
        let mut d = detector();
        for _ in 0..20 {
            d.update(-500);
        }
        assert_eq!(d.update(500), FlowDirection::Forward, "one opposing tick");
        for _ in 0..3 {
            d.update(-500);
        }
        assert_eq!(d.direction(), FlowDirection::Forward);
    }

    #[test]
    fn sustained_reversal_flips() {
        let mut d = detector();
        for _ in 0..10 {
            d.update(-500);
        }
        assert_eq!(d.direction(), FlowDirection::Forward);
        let mut flipped_after = 0;
        for i in 1..=30 {
            if d.update(500) == FlowDirection::Reverse {
                flipped_after = i;
                break;
            }
        }
        assert!(
            (5..=15).contains(&flipped_after),
            "flip took {flipped_after} ticks"
        );
    }

    #[test]
    fn decay_to_indeterminate_when_flow_stops() {
        let mut d = detector();
        for _ in 0..10 {
            d.update(-500);
        }
        let mut cleared = false;
        for _ in 0..20 {
            if d.update(0) == FlowDirection::Indeterminate {
                cleared = true;
                break;
            }
        }
        assert!(cleared, "direction latched after flow stopped");
    }

    #[test]
    fn reset() {
        let mut d = detector();
        for _ in 0..10 {
            d.update(-500);
        }
        d.reset();
        assert_eq!(d.direction(), FlowDirection::Indeterminate);
    }
}
