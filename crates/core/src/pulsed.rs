//! The pulsed-voltage driving scheme.
//!
//! "The first problem [bubble generation] can be overcome adopting a pulsed
//! voltage driving technique instead of continuous sensor biasing in
//! conjunction with reduced overtemperature of the heating element." (§4)
//!
//! The scheduler divides time into periods of `period_ticks` control ticks;
//! for the first `duty` fraction the heater is driven and the CTA loop runs,
//! for the rest the supply drops to the keep-alive floor and the loop
//! freezes. Measurements are taken only in the *settled* tail of the ON
//! phase (after the thermal + loop transient of the pulse edge has died).

use crate::config::PulsedConfig;

/// The phase of the pulse schedule at one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PulsePhase {
    /// Heater driven; `settled` marks the tail of the ON window where the
    /// loop output is trustworthy.
    On {
        /// Whether the pulse transient has settled enough to measure.
        settled: bool,
    },
    /// Heater at the keep-alive floor; loop frozen, output held.
    Off,
}

/// Tick-driven pulse scheduler.
#[derive(Debug, Clone)]
pub struct PulsedScheduler {
    config: PulsedConfig,
    tick: u32,
    on_ticks: u32,
    /// First ON tick considered settled.
    settle_ticks: u32,
}

impl PulsedScheduler {
    /// Creates a scheduler; the first 60 % of each ON window is treated as
    /// transient, the rest as settled measurement time.
    pub fn new(config: PulsedConfig) -> Self {
        let on_ticks = config.on_ticks();
        let settle_ticks = ((on_ticks as f64) * 0.6).ceil() as u32;
        PulsedScheduler {
            config,
            tick: 0,
            on_ticks,
            settle_ticks,
        }
    }

    /// The schedule configuration.
    #[inline]
    pub fn config(&self) -> &PulsedConfig {
        &self.config
    }

    /// Advances one control tick and returns the phase for that tick.
    pub fn advance(&mut self) -> PulsePhase {
        let phase = if self.tick < self.on_ticks {
            PulsePhase::On {
                settled: self.tick >= self.settle_ticks,
            }
        } else {
            PulsePhase::Off
        };
        self.tick = (self.tick + 1) % self.config.period_ticks;
        phase
    }

    /// Fraction of time the heater is driven.
    pub fn duty(&self) -> f64 {
        self.on_ticks as f64 / self.config.period_ticks as f64
    }

    /// Restarts the schedule at the beginning of an ON phase.
    pub fn reset(&mut self) {
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(period: u32, duty: f64) -> PulsedScheduler {
        PulsedScheduler::new(PulsedConfig {
            period_ticks: period,
            duty,
        })
    }

    #[test]
    fn phase_sequence() {
        let mut s = sched(10, 0.4); // 4 ON, 6 OFF
        let phases: Vec<PulsePhase> = (0..10).map(|_| s.advance()).collect();
        assert!(matches!(phases[0], PulsePhase::On { settled: false }));
        assert!(matches!(phases[2], PulsePhase::On { .. }));
        assert!(matches!(phases[3], PulsePhase::On { settled: true }));
        assert!(matches!(phases[4], PulsePhase::Off));
        assert!(matches!(phases[9], PulsePhase::Off));
    }

    #[test]
    fn schedule_repeats() {
        let mut s = sched(10, 0.4);
        let first: Vec<PulsePhase> = (0..10).map(|_| s.advance()).collect();
        let second: Vec<PulsePhase> = (0..10).map(|_| s.advance()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn duty_accounting() {
        let s = sched(100, 0.25);
        assert!((s.duty() - 0.25).abs() < 1e-9);
        // Settled measurement time exists.
        let mut s = sched(100, 0.25);
        let settled = (0..100)
            .filter(|_| matches!(s.advance(), PulsePhase::On { settled: true }))
            .count();
        assert!(settled >= 5, "settled ticks {settled}");
    }

    #[test]
    fn full_duty_never_off() {
        let mut s = sched(10, 1.0);
        for _ in 0..30 {
            assert!(matches!(s.advance(), PulsePhase::On { .. }));
        }
    }

    #[test]
    fn tiny_duty_still_gets_one_on_tick() {
        let mut s = sched(100, 0.001);
        let on = (0..100)
            .filter(|_| matches!(s.advance(), PulsePhase::On { .. }))
            .count();
        assert_eq!(on, 1);
    }

    #[test]
    fn reset_restarts_period() {
        let mut s = sched(10, 0.4);
        for _ in 0..7 {
            s.advance();
        }
        s.reset();
        assert!(matches!(s.advance(), PulsePhase::On { settled: false }));
    }
}
