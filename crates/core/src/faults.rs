//! Runtime fault detectors: bubbles, fouling drift, loop health.
//!
//! §6 motivates diffuse deployment with self-diagnosis: "allowing also any
//! malfunction behavior … to be immediately localized and isolated". The
//! firmware watches its own conditioned signal for the two liquid-specific
//! failure signatures of §4:
//!
//! * **bubble activity** — detachment events appear as isolated spikes of
//!   the supply code; a spike-rate monitor flags them;
//! * **fouling drift** — scale growth reads as a slow monotonic sensitivity
//!   loss; comparing the zero-flow (or any steady) conductance against its
//!   long-term baseline flags it.

/// Health flags raised by the detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultFlags {
    /// Spike rate above threshold: bubbles are forming/detaching.
    pub bubble_activity: bool,
    /// Long-term conductance fell below the drift threshold: probable scale.
    pub fouling_suspected: bool,
    /// The control loop pinned at a rail for a sustained period.
    pub loop_saturated: bool,
}

impl FaultFlags {
    /// `true` if any flag is raised.
    pub fn any(&self) -> bool {
        self.bubble_activity || self.fouling_suspected || self.loop_saturated
    }
}

/// An injected failure of the CTA acquisition channel, applied to the
/// decimated control code before the firmware sees it (the campaign layer's
/// ADC fault-injection hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcFault {
    /// The converter output is frozen at a fixed code (stuck comparator /
    /// dead modulator). Frozen codes starve the watchdog: healthy ΣΔ output
    /// always carries noise, so a long identical-code streak is the
    /// firmware's freeze discriminator.
    Stuck(i32),
    /// A constant offset is added to every code (reference drift, leakage).
    Offset(i32),
}

impl AdcFault {
    /// Applies the fault to a converted code.
    pub fn apply(self, code: i32) -> i32 {
        match self {
            AdcFault::Stuck(c) => c,
            AdcFault::Offset(o) => code.saturating_add(o),
        }
    }
}

/// Spike detector: counts control samples deviating from the despiked
/// output by more than a threshold, over a sliding window, and tracks how
/// many *consecutive* windows were spike-active. A single violent flow
/// transition dirties one window; bubble activity keeps firing window after
/// window — that persistence is the discriminator.
#[derive(Debug, Clone)]
pub struct SpikeMonitor {
    threshold: i32,
    window: u32,
    /// Windowed rate above which a window counts as spike-active.
    rate_threshold: f64,
    count_in_window: u32,
    tick: u32,
    last_rate: f64,
    active_streak: u32,
}

impl SpikeMonitor {
    /// Creates a monitor flagging deviations beyond `threshold` codes,
    /// reporting a rate every `window` ticks; a window is *active* when its
    /// rate exceeds `rate_threshold`.
    pub fn new(threshold: i32, window: u32, rate_threshold: f64) -> Self {
        SpikeMonitor {
            threshold: threshold.abs().max(1),
            window: window.max(1),
            rate_threshold,
            count_in_window: 0,
            tick: 0,
            last_rate: 0.0,
            active_streak: 0,
        }
    }

    /// Feeds the raw and despiked codes for one tick; returns the spike rate
    /// (spikes per tick) for the last completed window.
    pub fn update(&mut self, raw: i32, despiked: i32) -> f64 {
        if (raw - despiked).abs() > self.threshold {
            self.count_in_window += 1;
        }
        self.tick += 1;
        if self.tick >= self.window {
            self.last_rate = self.count_in_window as f64 / self.window as f64;
            if self.last_rate > self.rate_threshold {
                self.active_streak = self.active_streak.saturating_add(1);
            } else {
                self.active_streak = 0;
            }
            self.tick = 0;
            self.count_in_window = 0;
        }
        self.last_rate
    }

    /// The most recent windowed spike rate.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.last_rate
    }

    /// `true` once at least `windows` consecutive windows were spike-active.
    pub fn sustained(&self, windows: u32) -> bool {
        self.active_streak >= windows
    }

    /// Clears all window state (diagnostic reset).
    pub fn reset(&mut self) {
        self.count_in_window = 0;
        self.tick = 0;
        self.last_rate = 0.0;
        self.active_streak = 0;
    }
}

/// Slow-drift monitor comparing a conditioned value against an exponentially
/// aged baseline.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    baseline: Option<f64>,
    /// Baseline time constant in updates.
    tau_updates: f64,
    /// Relative deviation that raises the flag.
    threshold: f64,
    /// The most recent observed value (re-zero anchor).
    last_value: Option<f64>,
    /// The most recent relative deviation.
    last_deviation: f64,
}

impl DriftMonitor {
    /// Creates a monitor with baseline time constant `tau_updates` and
    /// relative flag threshold `threshold` (e.g. 0.05 = 5 %).
    pub fn new(tau_updates: f64, threshold: f64) -> Self {
        DriftMonitor {
            baseline: None,
            tau_updates: tau_updates.max(1.0),
            threshold: threshold.abs(),
            last_value: None,
            last_deviation: 0.0,
        }
    }

    /// Feeds one steady-state observation; returns the relative deviation
    /// from the (slowly updated) baseline.
    pub fn update(&mut self, value: f64) -> f64 {
        self.last_value = Some(value);
        let dev = match &mut self.baseline {
            None => {
                self.baseline = Some(value);
                0.0
            }
            Some(b) => {
                let dev = (value - *b) / b.abs().max(1e-12);
                // The baseline ages slowly so genuine drift is visible
                // against it before being absorbed.
                *b += (value - *b) / self.tau_updates;
                dev
            }
        };
        self.last_deviation = dev;
        dev
    }

    /// Whether the latest deviation magnitude breaches the threshold.
    pub fn is_drifting(&self, deviation: f64) -> bool {
        deviation.abs() > self.threshold
    }

    /// The most recent relative deviation (0 before the first update and
    /// after a [`re_zero`](Self::re_zero)).
    #[inline]
    pub fn deviation(&self) -> f64 {
        self.last_deviation
    }

    /// The aged baseline, if one has been seeded (state-digest
    /// introspection).
    #[inline]
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// The most recently observed value, if any (state-digest
    /// introspection).
    #[inline]
    pub fn last_value(&self) -> Option<f64> {
        self.last_value
    }

    /// Accepts the most recently observed value as the new baseline and
    /// clears the deviation — the maintenance-policy re-zero. A monitor
    /// that has never observed a value keeps its empty baseline, so
    /// re-zeroing under zero drift is an exact no-op (the property the
    /// `properties` proptest pins at digest level).
    pub fn re_zero(&mut self) {
        if let Some(v) = self.last_value {
            self.baseline = Some(v);
        }
        self.last_deviation = 0.0;
    }
}

/// Saturation monitor: flags the loop when the actuator sits at a rail for
/// `limit` consecutive ticks.
#[derive(Debug, Clone)]
pub struct SaturationMonitor {
    min: u32,
    max: u32,
    consecutive: u32,
    limit: u32,
}

impl SaturationMonitor {
    /// Creates a monitor for actuator range `[min, max]` with the given
    /// consecutive-tick limit.
    pub fn new(min: u32, max: u32, limit: u32) -> Self {
        SaturationMonitor {
            min,
            max,
            consecutive: 0,
            limit: limit.max(1),
        }
    }

    /// Feeds one actuator code; returns `true` while saturation persists
    /// beyond the limit.
    pub fn update(&mut self, code: u32) -> bool {
        if code <= self.min || code >= self.max {
            self.consecutive = self.consecutive.saturating_add(1);
        } else {
            self.consecutive = 0;
        }
        self.consecutive >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_monitor_counts_outliers() {
        let mut m = SpikeMonitor::new(50, 100, 0.002);
        for i in 0..100 {
            let raw = if i % 10 == 0 { 2300 } else { 2000 };
            m.update(raw, 2000);
        }
        assert!((m.rate() - 0.1).abs() < 1e-9, "rate {}", m.rate());
    }

    #[test]
    fn spike_monitor_quiet_signal() {
        let mut m = SpikeMonitor::new(50, 100, 0.002);
        for _ in 0..200 {
            m.update(2010, 2000);
        }
        assert_eq!(m.rate(), 0.0);
        assert!(!m.sustained(1));
    }

    #[test]
    fn spike_monitor_persistence_discriminates() {
        let mut m = SpikeMonitor::new(50, 100, 0.002);
        // One dirty window (a flow transition): not sustained.
        for i in 0..100 {
            let raw = if i < 10 { 3000 } else { 2000 };
            m.update(raw, 2000);
        }
        for _ in 0..100 {
            m.update(2000, 2000);
        }
        assert!(!m.sustained(2), "single dirty window must not sustain");
        // Recurring spikes (bubbles): sustained after two windows.
        for i in 0..200 {
            let raw = if i % 40 == 0 { 2400 } else { 2000 };
            m.update(raw, 2000);
        }
        assert!(m.sustained(2), "recurring spikes must sustain");
    }

    #[test]
    fn drift_monitor_flags_slow_loss() {
        let mut m = DriftMonitor::new(1e5, 0.05);
        let mut dev = 0.0;
        // 1 % loss per 100 updates → after ~1000 updates, ~10 % below
        // the (slow) baseline.
        for i in 0..1000 {
            let value = 1.0 - 1e-4 * i as f64;
            dev = m.update(value);
        }
        assert!(m.is_drifting(dev), "deviation {dev} not flagged");
        assert!(dev < 0.0, "loss must read negative");
    }

    #[test]
    fn drift_monitor_tolerates_noise() {
        let mut m = DriftMonitor::new(1000.0, 0.05);
        let mut flagged = false;
        for i in 0..5000 {
            let noise = if i % 2 == 0 { 0.005 } else { -0.005 };
            let dev = m.update(1.0 + noise);
            flagged |= m.is_drifting(dev);
        }
        assert!(!flagged, "±0.5 % noise must not flag a 5 % threshold");
    }

    #[test]
    fn drift_monitor_re_zero_adopts_last_value() {
        let mut m = DriftMonitor::new(100.0, 0.05);
        // Fresh monitor: re-zero with nothing observed is inert.
        m.re_zero();
        assert_eq!(m.deviation(), 0.0);
        assert_eq!(m.update(1.0), 0.0, "first update seeds the baseline");
        for _ in 0..50 {
            m.update(0.8);
        }
        assert!(m.deviation() < -0.05, "deviation {}", m.deviation());
        m.re_zero();
        assert_eq!(m.deviation(), 0.0);
        // The new baseline is the last observed value: the next identical
        // observation reads exactly zero deviation.
        assert_eq!(m.update(0.8), 0.0);
    }

    #[test]
    fn drift_monitor_zero_drift_re_zero_is_identity() {
        // The core of the digest-level no-op proptest: with the latest
        // deviation exactly zero, re-zero changes nothing observable.
        let mut m = DriftMonitor::new(10.0, 0.05);
        m.update(2.5);
        assert_eq!(m.deviation(), 0.0);
        let before = format!("{m:?}");
        m.re_zero();
        assert_eq!(format!("{m:?}"), before);
    }

    #[test]
    fn saturation_monitor_needs_persistence() {
        let mut m = SaturationMonitor::new(410, 4095, 10);
        for _ in 0..9 {
            assert!(!m.update(4095));
        }
        assert!(m.update(4095), "10th consecutive railed tick must flag");
        assert!(!m.update(2000), "recovery clears immediately");
        assert!(!m.update(4095));
    }

    #[test]
    fn flags_aggregate() {
        let mut f = FaultFlags::default();
        assert!(!f.any());
        f.fouling_suspected = true;
        assert!(f.any());
    }
}
