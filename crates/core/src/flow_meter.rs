//! The assembled instrument: MAF die + ISIF platform + conditioning
//! firmware, co-simulated sample-by-sample.
//!
//! [`FlowMeter::step`] advances exactly one ΣΔ modulator tick:
//!
//! 1. the current supply-DAC voltage drives both Wheatstone bridges;
//! 2. the resulting Joule power heats the die (physics step);
//! 3. the bridge differentials enter the two input channels
//!    (channel 0: average-vs-reference for the CTA loop, channel 1:
//!    heater-A-vs-heater-B for direction);
//! 4. every `decimation` ticks the channels emit 16-bit codes and the
//!    control tick runs: pulse scheduling, the mode driver (CT/CC/CP),
//!    output conditioning, King inversion, direction and fault detection.
//!
//! The simulation is two-rate: everything in item 4 happens once per
//! decimation frame, while items 1–3 repeat every modulator tick with
//! piecewise-constant analog inputs (the supply code only changes on control
//! ticks). [`FlowMeter::step_frame`] exploits that structure — it batches a
//! whole frame of the modulator-rate inner loop through flat per-channel
//! block kernels, bit-identical to `decimation` scalar steps at the default
//! [`AfeTier::Exact`], or through a quasi-static once-per-frame AFE
//! evaluation at the opt-in approximate [`AfeTier::Fast`].

use crate::calibration::{CalPoint, KingCalibration};
use crate::config::{AfeTier, FlowMeterConfig, OperatingMode, PulsedConfig};
use crate::cta::{ConductanceEstimator, CtaLoop, SUPPLY_CODE_MAX};
use crate::direction::{DirectionDetector, FlowDirection};
use crate::faults::{AdcFault, DriftMonitor, FaultFlags, SaturationMonitor, SpikeMonitor};
use crate::health::{HealthMonitor, HealthState, RecoveryAction};
use crate::modes::{ConstantCurrentDrive, ConstantPowerDrive, WireStateEstimator};
use crate::obs::{CalSlot, EventKind, ObsEvent, Observer};
use crate::output::OutputPipeline;
use crate::pulsed::{PulsePhase, PulsedScheduler};
use crate::CoreError;
use hotwire_afe::bridge::BridgeConfig;
use hotwire_dsp::fix::SoaBlock;
use hotwire_isif::channel::{AnalogInput, ChannelConfig};
use hotwire_isif::IsifPlatform;
use hotwire_physics::kings_law::KingsLaw;
use hotwire_physics::sensor::HeaterId;
use hotwire_physics::{MafDie, MafParams, SensorEnvironment};
use hotwire_units::{MetersPerSecond, Ohms, Seconds, ThermalConductance, Volts, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index of the CTA control channel on the platform.
pub const CTRL_CHANNEL: usize = 0;
/// Index of the direction channel on the platform.
pub const DIR_CHANNEL: usize = 1;
/// Index of the fluid-temperature channel (the `Rt` arm readout).
pub const TEMP_CHANNEL: usize = 2;

/// Consecutive identical control codes after which the firmware declares
/// the acquisition front end frozen and stops kicking the watchdog. A
/// healthy ΣΔ channel always carries noise — even at zero differential the
/// modulator dithers — so a long identical-code streak cannot occur in
/// normal operation.
pub const FROZEN_CODE_LIMIT: u32 = 8;

/// Drift-monitor baseline time constant in control-tick updates.
const DRIFT_TAU_UPDATES: f64 = 1e6;
/// Drift-monitor relative deviation threshold.
const DRIFT_THRESHOLD: f64 = 0.05;

/// One conditioned measurement, produced at the control rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Signed velocity (direction applied).
    pub velocity: MetersPerSecond,
    /// Velocity magnitude from the King inversion of the conditioned signal.
    pub speed: MetersPerSecond,
    /// Detected flow direction.
    pub direction: FlowDirection,
    /// Raw supply-DAC code commanded this tick.
    pub supply_code: u32,
    /// Despiked + 0.1 Hz-filtered code (supply code in CT mode, bridge code
    /// in CC/CP modes).
    pub conditioned_code: i32,
    /// Wire-to-fluid conductance implied by the conditioned signal.
    pub conductance: ThermalConductance,
    /// Electrical power in one heater.
    pub wire_power: Watts,
    /// Health flags.
    pub faults: FaultFlags,
    /// Aggregate health state from the graceful-degradation supervisor.
    pub health: HealthState,
    /// Control-tick index since start.
    pub tick: u64,
}

/// Number of per-frame scratch lanes (one per acquisition channel, indexed
/// by the channel constants above).
const CHANNEL_LANES: usize = 3;

/// Reusable scratch for the batched frame walk: a struct-of-arrays block
/// with one lane per channel for the bridge differentials and the pre-drawn
/// noise sequence, plus bitstream/code buffers for the block kernels.
/// Allocated once per meter and reused so the hot loop never allocates.
#[derive(Debug)]
struct FrameScratch {
    diffs: SoaBlock<f64>,
    noises: SoaBlock<f64>,
    bits: Vec<i32>,
    codes: Vec<i32>,
}

impl FrameScratch {
    fn new() -> Self {
        FrameScratch {
            diffs: SoaBlock::new(0, 0),
            noises: SoaBlock::new(0, 0),
            bits: Vec::new(),
            codes: Vec::new(),
        }
    }

    fn prepare(&mut self, depth: usize) {
        self.diffs.reshape(CHANNEL_LANES, depth);
        self.noises.reshape(CHANNEL_LANES, depth);
        self.bits.resize(depth, 0);
    }
}

/// Mode-specific driver state.
#[derive(Debug)]
#[allow(clippy::enum_variant_names)] // the paper's mode names all begin "Constant"
enum ModeDriver {
    ConstantTemperature(CtaLoop),
    ConstantCurrent(ConstantCurrentDrive),
    ConstantPower(ConstantPowerDrive),
}

/// The assembled flow meter.
///
/// `FlowMeter` is [`Send`]: every component it owns (die, platform,
/// filters, seeded RNG) is plain owned data, so a meter can be moved into a
/// worker thread and independent co-simulation runs can execute in
/// parallel. Each individual run remains strictly single-threaded — the
/// parallelism lives one layer up, in `hotwire_rig`'s campaign executor.
#[derive(Debug)]
pub struct FlowMeter {
    config: FlowMeterConfig,
    build_seed: u64,
    die: MafDie,
    platform: IsifPlatform,
    bridge: BridgeConfig,
    rh_star: Ohms,
    driver: ModeDriver,
    estimator: ConductanceEstimator,
    wire_estimator: WireStateEstimator,
    output: OutputPipeline,
    direction: DirectionDetector,
    pulsed: Option<PulsedScheduler>,
    calibration: Option<KingCalibration>,
    spikes: SpikeMonitor,
    drift: DriftMonitor,
    saturation: SaturationMonitor,
    rng: StdRng,
    dt: Seconds,
    control_tick: u64,
    /// Control tick at which the active calibration was installed or last
    /// refit — the zero point of [`calibration_age`](Self::calibration_age).
    cal_tick: u64,
    last_dir_code: i32,
    /// Learned zero-flow offset of the supply-normalized direction metric
    /// (codes per volt). Both the die-mismatch offset and the coupling
    /// signal scale with the bridge supply, so the metric `code/U` makes a
    /// single-point auto-zero valid across the whole operating range.
    dir_offset_per_volt: f64,
    /// Latest decimated temperature-channel code.
    last_temp_code: i32,
    /// Smoothed firmware estimate of the fluid temperature.
    fluid_temp_estimate: f64,
    /// Zero-point correction of the estimate, learned at field calibration
    /// (absorbs the ±1.5 % reference-resistor tolerance).
    temp_estimate_offset: f64,
    /// Nominal reference-branch ratio at the calibration temperature.
    ref_ratio_cal: f64,
    /// Input-referred volts per channel LSB.
    volts_per_code: f64,
    /// Supply code held across pulsed-off phases.
    last_on_code: u32,
    last_measurement: Option<Measurement>,
    /// Conductance from the most recent *valid* (settled, driven) control
    /// tick — what calibration and burst averaging consume. Pulsed-off
    /// phases hold the previous value instead of reading a dead bridge.
    instant_conductance: ThermalConductance,
    fault_latch: FaultFlags,
    /// Control ticks to ignore for fault latching (startup transient).
    fault_warmup_ticks: u64,
    /// Consecutive settled measurement ticks (resets at every pulsed-off
    /// phase); spike monitoring arms only once a short streak has passed so
    /// pulse-resume transients don't read as bubble events.
    settled_streak: u32,
    /// The graceful-degradation supervisor.
    health: HealthMonitor,
    /// Injected ADC fault on the CTA channel (campaign fault injection).
    adc_fault: Option<AdcFault>,
    /// Consecutive identical control codes (freeze discriminator).
    frozen_code_streak: u32,
    /// The previous control code, for the freeze discriminator.
    last_raw_ctrl_code: i32,
    /// Installed observability sink, if any. Observation never feeds back
    /// into control: a meter computes bit-identical measurements with or
    /// without an observer.
    observer: Option<Box<dyn Observer>>,
    /// Previous saturation-monitor verdict, for edge detection.
    was_saturated: bool,
    /// Modulator ticks into the current decimation frame (0 = aligned with
    /// the channels' CIC phase, so a whole frame may run batched).
    mod_phase: u32,
    /// Scratch buffers for the batched frame walk.
    frame: FrameScratch,
}

impl FlowMeter {
    /// Builds the instrument around a die with the given parameters,
    /// deterministic under `seed`.
    ///
    /// The meter starts with a *factory calibration* derived from the die's
    /// design model (the Kramers-derived King's law at the calibration
    /// temperature); [`calibrate`](Self::calibrate) replaces it with a field
    /// calibration against a reference meter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the configuration or any platform block is
    /// invalid.
    pub fn new(
        config: FlowMeterConfig,
        maf_params: MafParams,
        seed: u64,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        maf_params.validate()?;
        let die = MafDie::in_potable_water(maf_params);
        let mut platform = IsifPlatform::new(config.modulator_rate)?;
        let default_channel = ChannelConfig::maf_bridge();
        let channel_config = ChannelConfig {
            decimation: config.decimation,
            // Keep the anti-alias corner realizable when tests run the
            // modulator slower than the 256 kHz silicon clock.
            antialias_corner: hotwire_units::Hertz::new(
                default_channel
                    .antialias_corner
                    .get()
                    .min(config.modulator_rate.get() / 8.0),
            ),
            ..default_channel
        };
        platform.configure_channel(CTRL_CHANNEL, channel_config)?;
        platform.configure_channel(DIR_CHANNEL, channel_config)?;
        platform.configure_channel(TEMP_CHANNEL, channel_config)?;

        let heater_nominal = maf_params.heater;
        let reference_nominal = maf_params.reference;
        let bridge = config.design_bridge(&heater_nominal, &reference_nominal)?;
        let rh_star = config.target_heater_resistance(&heater_nominal);
        let estimator = ConductanceEstimator::new(&bridge, rh_star, &config, 2);
        let volts_per_code = {
            // Input-referred LSB of the acquisition channel.
            Volts::new(channel_config.vref.get() / 32768.0 / channel_config.inamp.gain)
        };
        let wire_estimator = WireStateEstimator::new(
            &bridge,
            heater_nominal,
            &reference_nominal,
            &config,
            volts_per_code,
        );
        let rt_cal = reference_nominal.resistance(config.calibration_temperature);
        let ref_ratio_cal = rt_cal.get() / (bridge.r_series_reference.get() + rt_cal.get());

        // Factory calibration from the design model.
        let king = KingsLaw::from_kramers(
            die.fluid(),
            config.calibration_temperature,
            maf_params.geometry,
        );
        let factory = KingCalibration {
            a: king.a() * 1.0,
            b: king.b() * 1.0,
            n: king.n(),
            overheat: config.overheat,
        };

        let driver = match config.mode {
            OperatingMode::ConstantTemperature => {
                ModeDriver::ConstantTemperature(CtaLoop::new(&config)?)
            }
            OperatingMode::ConstantCurrent => {
                let g = king.conductance(MetersPerSecond::new(1.0));
                ModeDriver::ConstantCurrent(ConstantCurrentDrive::design(
                    &config,
                    rh_star,
                    &bridge,
                    g,
                    Volts::new(5.0),
                    SUPPLY_CODE_MAX as u32,
                ))
            }
            OperatingMode::ConstantPower => {
                let g = king.conductance(MetersPerSecond::new(1.0));
                let target = Watts::new(g.get() * config.overheat.get());
                ModeDriver::ConstantPower(ConstantPowerDrive::new(
                    target,
                    1500,
                    SUPPLY_CODE_MAX as u32,
                ))
            }
        };

        let control_rate = config.control_rate();
        let output = OutputPipeline::new(config.output_filter, control_rate)?;
        let mut meter = FlowMeter {
            direction: DirectionDetector::new(config.direction_deadband, 8),
            pulsed: config.pulsed.map(PulsedScheduler::new),
            calibration: Some(factory),
            // Threshold sized ~5σ above the turbulence-driven supply swing
            // so the flag reacts to detachment events, not ordinary flow
            // noise.
            spikes: SpikeMonitor::new(150, control_rate.get() as u32, 0.002),
            drift: DriftMonitor::new(DRIFT_TAU_UPDATES, DRIFT_THRESHOLD),
            saturation: SaturationMonitor::new(
                config.supply_code_min,
                SUPPLY_CODE_MAX as u32,
                control_rate.get() as u32 / 2,
            ),
            rng: StdRng::seed_from_u64(seed),
            dt: config.modulator_rate.period(),
            control_tick: 0,
            cal_tick: 0,
            last_dir_code: 0,
            dir_offset_per_volt: 0.0,
            last_temp_code: 0,
            fluid_temp_estimate: config.calibration_temperature.get(),
            temp_estimate_offset: 0.0,
            ref_ratio_cal,
            volts_per_code: volts_per_code.get(),
            last_on_code: config.supply_code_min,
            last_measurement: None,
            instant_conductance: ThermalConductance::ZERO,
            fault_latch: FaultFlags::default(),
            fault_warmup_ticks: (3.0 * control_rate.get()) as u64,
            settled_streak: 0,
            // Escalate Degraded → Faulted after 5 s of continuous fault;
            // each recovery stage needs 0.5 s of quiet monitors.
            health: HealthMonitor::new(
                (5.0 * control_rate.get()) as u64,
                (0.5 * control_rate.get()) as u64,
            ),
            adc_fault: None,
            frozen_code_streak: 0,
            last_raw_ctrl_code: i32::MIN,
            observer: None,
            was_saturated: false,
            mod_phase: 0,
            frame: FrameScratch::new(),
            build_seed: seed,
            config,
            die,
            platform,
            bridge,
            rh_star,
            driver,
            estimator,
            wire_estimator,
            output,
        };
        meter.platform.set_supply_code(meter.config.supply_code_min);
        Ok(meter)
    }

    /// The firmware configuration.
    #[inline]
    pub fn config(&self) -> &FlowMeterConfig {
        &self.config
    }

    /// The seed this meter was built with. Together with
    /// [`config`](Self::config) and the die's
    /// [`params`](hotwire_physics::MafDie::params), this fully determines
    /// the instrument: `FlowMeter::new(*m.config(), *m.die().params(),
    /// m.build_seed())` reconstructs a bit-identical cold replica —
    /// what the campaign layer uses to fan calibration setpoints out across
    /// threads.
    #[inline]
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Adopts an externally learned fluid-temperature estimate (°C, raw —
    /// before zero correction).
    ///
    /// The parallel field-calibration procedure converges the temperature
    /// channel on *replica* meters; the fitted calibration is then installed
    /// into the original instrument, which never ran the setpoints itself.
    /// Transferring the replicas' estimate first lets
    /// [`calibrate`](Self::calibrate) learn the same zero offset the serial
    /// procedure would have (absorbing the reference resistor's ±1.5 %
    /// manufacturing tolerance).
    pub fn adopt_fluid_estimate(&mut self, estimate: hotwire_units::Celsius) {
        self.fluid_temp_estimate = estimate.get();
    }

    /// The simulated die (inspection of bubbles, fouling, temperatures).
    #[inline]
    pub fn die(&self) -> &MafDie {
        &self.die
    }

    /// Mutable die access (fault injection, aging).
    #[inline]
    pub fn die_mut(&mut self) -> &mut MafDie {
        &mut self.die
    }

    /// The platform (EEPROM, registers, scheduler).
    #[inline]
    pub fn platform_mut(&mut self) -> &mut IsifPlatform {
        &mut self.platform
    }

    /// The active calibration.
    #[inline]
    pub fn calibration(&self) -> Option<&KingCalibration> {
        self.calibration.as_ref()
    }

    /// The latest measurement, if a control tick has completed.
    #[inline]
    pub fn last_measurement(&self) -> Option<&Measurement> {
        self.last_measurement.as_ref()
    }

    /// The designed Wheatstone bridge.
    #[inline]
    pub fn bridge(&self) -> &BridgeConfig {
        &self.bridge
    }

    /// The heater resistance the loop regulates to at the calibration
    /// temperature.
    #[inline]
    pub fn regulated_resistance(&self) -> Ohms {
        self.rh_star
    }

    /// One modulator tick of co-simulation; returns a measurement on control
    /// ticks.
    pub fn step(&mut self, env: SensorEnvironment) -> Option<Measurement> {
        self.mod_phase += 1;
        if self.mod_phase == self.config.decimation {
            self.mod_phase = 0;
        }
        // --- analog domain at the modulator rate ---
        let supply = self.platform.supply_voltage();
        let rh_a = self.die.heater_resistance(HeaterId::A);
        let rh_b = self.die.heater_resistance(HeaterId::B);
        let rt = self.die.reference_resistance();
        let out_a = self.bridge.solve(supply, rh_a, rt);
        let out_b = self.bridge.solve(supply, rh_b, rt);
        self.die.step(
            self.dt,
            out_a.heater_power,
            out_b.heater_power,
            env,
            &mut self.rng,
        );

        let ctrl_diff = (out_a.differential + out_b.differential) * 0.5;
        let dir_diff = out_a.differential - out_b.differential;
        // Chip self-heating above the 25 °C characterization point: the die
        // runs near the fluid temperature.
        let overtemp = env.fluid_temperature.get() - 25.0;

        let dir_code = {
            let chan = self
                .platform
                .channel_mut(DIR_CHANNEL)
                .expect("configured in new()");
            chan.sample(AnalogInput::Differential(dir_diff), overtemp, &mut self.rng)
        };
        if let Some(code) = dir_code {
            self.last_dir_code = code;
        }
        // Temperature channel: the Rt-arm midpoint against its
        // calibration-time divider ratio.
        let temp_diff = out_a.reference_mid - supply * self.ref_ratio_cal;
        let temp_code = {
            let chan = self
                .platform
                .channel_mut(TEMP_CHANNEL)
                .expect("configured in new()");
            chan.sample(
                AnalogInput::Differential(temp_diff),
                overtemp,
                &mut self.rng,
            )
        };
        if let Some(code) = temp_code {
            self.last_temp_code = code;
        }
        let ctrl_code = {
            let chan = self
                .platform
                .channel_mut(CTRL_CHANNEL)
                .expect("configured in new()");
            chan.sample(
                AnalogInput::Differential(ctrl_diff),
                overtemp,
                &mut self.rng,
            )
        };
        let code = ctrl_code?;
        // Injected acquisition faults corrupt the code before the firmware
        // sees it — the firmware's own supervision has to catch them.
        let code = match self.adc_fault {
            Some(fault) => fault.apply(code),
            None => code,
        };

        // --- digital domain at the control rate ---
        Some(self.control_step(code, supply))
    }

    /// Modulator ticks into the current decimation frame: 0 means the meter
    /// is frame-aligned and [`step_frame`](Self::step_frame) may run.
    #[inline]
    pub fn frame_phase(&self) -> u32 {
        self.mod_phase
    }

    /// Modulator ticks per control frame (the decimation ratio).
    #[inline]
    pub fn ticks_per_frame(&self) -> u32 {
        self.config.decimation
    }

    /// Advances one full decimation frame — `decimation` modulator ticks —
    /// and returns the control-tick measurement the frame ends on.
    ///
    /// At the default [`AfeTier::Exact`] the result is bit-identical to
    /// calling [`step`](Self::step) `decimation` times with the same
    /// environment: the frame walk pre-draws every RNG value in the scalar
    /// draw order (die step, then one noise draw each for the direction,
    /// temperature and control channels per tick) before running the
    /// per-channel block kernels, whose floating-point chains are mutually
    /// independent. At [`AfeTier::Fast`] the AFE is instead evaluated
    /// quasi-statically once per frame — a bounded-error approximation for
    /// fleet-scale studies.
    ///
    /// Analog inputs are held piecewise-constant across the frame, exactly
    /// as the scalar path sees them: the supply code only changes on control
    /// ticks, and the environment is whatever the caller passes.
    ///
    /// # Panics
    ///
    /// Panics if the meter is not frame-aligned
    /// ([`frame_phase`](Self::frame_phase) != 0).
    pub fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
        assert_eq!(
            self.mod_phase, 0,
            "step_frame requires frame alignment (frame_phase() == 0)"
        );
        match self.config.afe_tier {
            AfeTier::Exact => self.step_frame_exact(env),
            AfeTier::Fast => self.step_frame_fast(env),
        }
    }

    /// The exact frame walk: phase 1 runs the physics and pre-draws the
    /// noise lanes tick by tick (preserving the scalar RNG order), phase 2
    /// runs each channel's flat block kernel over its lane.
    fn step_frame_exact(&mut self, env: SensorEnvironment) -> Measurement {
        let depth = self.config.decimation as usize;
        self.frame.prepare(depth);
        let supply = self.platform.supply_voltage();
        let overtemp = env.fluid_temperature.get() - 25.0;

        for k in 0..depth {
            let rh_a = self.die.heater_resistance(HeaterId::A);
            let rh_b = self.die.heater_resistance(HeaterId::B);
            let rt = self.die.reference_resistance();
            let out_a = self.bridge.solve(supply, rh_a, rt);
            let out_b = self.bridge.solve(supply, rh_b, rt);
            self.die.step(
                self.dt,
                out_a.heater_power,
                out_b.heater_power,
                env,
                &mut self.rng,
            );
            self.frame.diffs.lane_mut(CTRL_CHANNEL)[k] =
                ((out_a.differential + out_b.differential) * 0.5).get();
            self.frame.diffs.lane_mut(DIR_CHANNEL)[k] =
                (out_a.differential - out_b.differential).get();
            self.frame.diffs.lane_mut(TEMP_CHANNEL)[k] =
                (out_a.reference_mid - supply * self.ref_ratio_cal).get();
            // Scalar noise draw order within a tick: direction, temperature,
            // control. The draws interleave with the die's across ticks, but
            // each channel's own f64 chain only sees its own sequence.
            for lane in [DIR_CHANNEL, TEMP_CHANNEL, CTRL_CHANNEL] {
                let chan = self
                    .platform
                    .channel_mut(lane)
                    .expect("configured in new()");
                self.frame.noises.lane_mut(lane)[k] = chan.draw_noise(&mut self.rng);
            }
        }

        // Frame-aligned channels emit exactly one code per block.
        let dir_code = self.sample_lane(DIR_CHANNEL, overtemp);
        self.last_dir_code = dir_code;
        let temp_code = self.sample_lane(TEMP_CHANNEL, overtemp);
        self.last_temp_code = temp_code;
        let code = self.sample_lane(CTRL_CHANNEL, overtemp);
        let code = match self.adc_fault {
            Some(fault) => fault.apply(code),
            None => code,
        };
        self.control_step(code, supply)
    }

    /// Runs one channel's block kernel over its scratch lane and returns the
    /// single decimated code a frame-aligned block produces.
    fn sample_lane(&mut self, lane: usize, overtemp: f64) -> i32 {
        self.frame.codes.clear();
        let chan = self
            .platform
            .channel_mut(lane)
            .expect("configured in new()");
        chan.sample_block(
            self.frame.diffs.lane(lane),
            self.frame.noises.lane(lane),
            &mut self.frame.bits,
            overtemp,
            &mut self.frame.codes,
        );
        debug_assert_eq!(self.frame.codes.len(), 1, "frame-aligned block");
        self.frame.codes[0]
    }

    /// The fast-tier frame: one bridge solve pair, one coarse die step
    /// spanning the frame (exponential Euler is exact for constant drive),
    /// and one quasi-static DC code per channel. Each `dc_code` call draws
    /// one noise sample, so codes stay dithered and the frozen-code watchdog
    /// discriminator still sees a live front end.
    fn step_frame_fast(&mut self, env: SensorEnvironment) -> Measurement {
        let supply = self.platform.supply_voltage();
        let rh_a = self.die.heater_resistance(HeaterId::A);
        let rh_b = self.die.heater_resistance(HeaterId::B);
        let rt = self.die.reference_resistance();
        let out_a = self.bridge.solve(supply, rh_a, rt);
        let out_b = self.bridge.solve(supply, rh_b, rt);
        let frame_dt = Seconds::new(self.dt.get() * self.config.decimation as f64);
        self.die.step(
            frame_dt,
            out_a.heater_power,
            out_b.heater_power,
            env,
            &mut self.rng,
        );

        let ctrl_diff = (out_a.differential + out_b.differential) * 0.5;
        let dir_diff = out_a.differential - out_b.differential;
        let temp_diff = out_a.reference_mid - supply * self.ref_ratio_cal;
        let overtemp = env.fluid_temperature.get() - 25.0;

        let dir_code = {
            let chan = self
                .platform
                .channel_mut(DIR_CHANNEL)
                .expect("configured in new()");
            chan.dc_code(dir_diff, overtemp, &mut self.rng)
        };
        self.last_dir_code = dir_code;
        let temp_code = {
            let chan = self
                .platform
                .channel_mut(TEMP_CHANNEL)
                .expect("configured in new()");
            chan.dc_code(temp_diff, overtemp, &mut self.rng)
        };
        self.last_temp_code = temp_code;
        let code = {
            let chan = self
                .platform
                .channel_mut(CTRL_CHANNEL)
                .expect("configured in new()");
            chan.dc_code(ctrl_diff, overtemp, &mut self.rng)
        };
        let code = match self.adc_fault {
            Some(fault) => fault.apply(code),
            None => code,
        };
        self.control_step(code, supply)
    }

    /// Decodes the fluid temperature from the temperature channel: the
    /// reference midpoint ratio `x = Rt/(R2+Rt)` is recovered from the
    /// measured deviation, inverted to `Rt`, and converted through the
    /// nominal RTD law, then smoothed (the fluid changes slowly).
    fn update_fluid_estimate(&mut self, supply: Volts) {
        let u = supply.get();
        if u < 0.2 {
            return; // pulsed-off or startup: hold the estimate
        }
        let x = self.ref_ratio_cal + self.last_temp_code as f64 * self.volts_per_code / u;
        if !(0.01..0.99).contains(&x) {
            return;
        }
        let rt = self.bridge.r_series_reference.get() * x / (1.0 - x);
        let t = self
            .wire_estimator_reference_rtd()
            .temperature(hotwire_units::Ohms::new(rt))
            .get();
        // Reject implausible decodes (transients) and clamp to the station's
        // plausible band around the calibration temperature.
        let cal = self.config.calibration_temperature.get();
        if t.is_finite() && (cal - 20.0..cal + 25.0).contains(&t) {
            // Single-pole smoothing, τ ≈ 20 control ticks.
            self.fluid_temp_estimate += 0.05 * (t - self.fluid_temp_estimate);
        }
    }

    /// Nominal reference RTD law (firmware knowledge; tolerance is absorbed
    /// by calibration).
    fn wire_estimator_reference_rtd(&self) -> hotwire_physics::resistor::Rtd {
        // The nominal law; stored implicitly via MafParams defaults.
        hotwire_physics::resistor::Rtd::ambient_reference()
    }

    /// The firmware's current fluid-temperature estimate (zero-corrected).
    pub fn fluid_temperature_estimate(&self) -> hotwire_units::Celsius {
        hotwire_units::Celsius::new(self.fluid_temp_estimate - self.temp_estimate_offset)
    }

    fn control_step(&mut self, code: i32, supply: Volts) -> Measurement {
        self.control_tick += 1;
        let phase = self
            .pulsed
            .as_mut()
            .map(|p| p.advance())
            .unwrap_or(PulsePhase::On { settled: true });

        let (supply_code, measure_now) = match phase {
            PulsePhase::Off => {
                // Heater unbiased; loop frozen.
                self.platform.set_supply_code(0);
                (0, false)
            }
            PulsePhase::On { settled } => {
                let was_off = self.platform.supply_code() == 0;
                if was_off {
                    // Resume bumplessly at the last operating point.
                    if let ModeDriver::ConstantTemperature(cta) = &mut self.driver {
                        cta.preset_output(self.last_on_code);
                    }
                    self.platform.set_supply_code(self.last_on_code);
                }
                let next = match &mut self.driver {
                    ModeDriver::ConstantTemperature(cta) => cta.update(code),
                    ModeDriver::ConstantCurrent(cc) => cc.code(),
                    ModeDriver::ConstantPower(cp) => {
                        let power = self
                            .wire_estimator
                            .estimate(code, supply)
                            .map(|s| s.power)
                            .unwrap_or(Watts::ZERO);
                        cp.update(power)
                    }
                };
                self.platform.set_supply_code(next);
                self.last_on_code = next;
                (next, settled)
            }
        };

        // The fluid-temperature estimate and the instantaneous conductance
        // only update on trustworthy (settled, driven) ticks — pulse
        // transients would poison them.
        if measure_now {
            self.update_fluid_estimate(supply);
            if self.config.mode == OperatingMode::ConstantTemperature {
                let u = self.platform.supply_dac().convert(supply_code);
                self.instant_conductance = if self.config.temperature_compensation {
                    self.estimator
                        .conductance_at_ambient(u, self.fluid_temperature_estimate())
                } else {
                    self.estimator.conductance(u)
                };
            }
        }

        // Condition the flow-bearing signal.
        let raw_signal = match self.config.mode {
            OperatingMode::ConstantTemperature => supply_code as i32,
            _ => code,
        };
        let conditioned = if measure_now {
            self.output.push(raw_signal)
        } else {
            self.output.value()
        };

        // Fault monitors. Spikes are judged against the *despiked* (median)
        // reference, which tracks setpoint ramps within two ticks — so only
        // genuinely short events (bubble detachments) count. A short settled
        // streak is required after each pulsed resume so the median's stale
        // history doesn't read as an event.
        if measure_now {
            self.settled_streak = self.settled_streak.saturating_add(1);
        } else {
            self.settled_streak = 0;
        }
        let spike_rate = if measure_now && self.settled_streak > 4 {
            self.spikes.update(raw_signal, self.output.despiked())
        } else {
            self.spikes.rate()
        };
        let saturated = self.saturation.update(supply_code.max(1));
        if saturated != self.was_saturated {
            self.was_saturated = saturated;
            self.observe(if saturated {
                EventKind::PiSaturationEnter
            } else {
                EventKind::PiSaturationExit
            });
        }

        // Conductance + velocity from the conditioned signal.
        let (conductance, wire_power) = match self.config.mode {
            OperatingMode::ConstantTemperature => {
                let u = self
                    .platform
                    .supply_dac()
                    .convert(conditioned.clamp(0, SUPPLY_CODE_MAX) as u32);
                let g = if self.config.temperature_compensation {
                    self.estimator
                        .conductance_at_ambient(u, self.fluid_temperature_estimate())
                } else {
                    self.estimator.conductance(u)
                };
                (g, self.estimator.heater_power(u))
            }
            _ => {
                let state = self.wire_estimator.estimate(conditioned, supply);
                (
                    state
                        .map(|s| s.conductance)
                        .unwrap_or(ThermalConductance::ZERO),
                    state.map(|s| s.power).unwrap_or(Watts::ZERO),
                )
            }
        };
        let speed = self
            .calibration
            .as_ref()
            .map(|c| {
                if self.config.temperature_compensation
                    && self.config.mode == OperatingMode::ConstantTemperature
                {
                    c.compensated_for(
                        self.fluid_temperature_estimate(),
                        self.config.calibration_temperature,
                    )
                    .velocity_from_conductance(conductance)
                } else {
                    c.velocity_from_conductance(conductance)
                }
            })
            .unwrap_or(MetersPerSecond::ZERO);

        let direction = if measure_now {
            let u = supply.get().max(0.2);
            let metric = self.last_dir_code as f64 / u - self.dir_offset_per_volt;
            self.direction.update(metric.round() as i32)
        } else {
            self.direction.direction()
        };
        let velocity = match direction {
            FlowDirection::Reverse => -speed,
            _ => speed,
        };

        // The drift baseline must not be seeded from the startup ramp, so
        // the monitor only runs after the fault warm-up window.
        let drift_dev = if measure_now && self.control_tick > self.fault_warmup_ticks {
            self.drift.update(conductance.get().max(1e-12))
        } else {
            0.0
        };
        let _ = spike_rate;
        let faults = FaultFlags {
            bubble_activity: self.spikes.sustained(2),
            fouling_suspected: self.drift.is_drifting(drift_dev) && drift_dev < 0.0,
            loop_saturated: saturated,
        };
        // Hold off latching until the startup transient has cleared: the
        // supply ramp from the observable floor to the operating point looks
        // like a spike burst to the monitors.
        if self.control_tick > self.fault_warmup_ticks {
            self.fault_latch.bubble_activity |= faults.bubble_activity;
            self.fault_latch.fouling_suspected |= faults.fouling_suspected;
            self.fault_latch.loop_saturated |= faults.loop_saturated;
        }

        // Watchdog supervision. The firmware kicks only while the control
        // code keeps moving: a healthy ΣΔ channel always carries noise, so
        // a long identical-code streak means the acquisition front end is
        // frozen — the kick stops and the ISIF watchdog expires, which the
        // supervisor below turns into a soft reset.
        if code == self.last_raw_ctrl_code {
            self.frozen_code_streak = self.frozen_code_streak.saturating_add(1);
        } else {
            self.frozen_code_streak = 0;
        }
        self.last_raw_ctrl_code = code;
        if self.frozen_code_streak < FROZEN_CODE_LIMIT {
            self.platform.watchdog_mut().kick();
        }
        self.platform.watchdog_mut().tick();
        let watchdog_expired = self.platform.watchdog_mut().take_expiry();
        if watchdog_expired {
            self.observe(EventKind::WatchdogExpired);
        }

        // Graceful degradation: feed the supervisor the same warmup-gated
        // flags the latch uses, and apply at most one reaction per tick.
        let gated_faults = if self.control_tick > self.fault_warmup_ticks {
            faults
        } else {
            FaultFlags::default()
        };
        match self.health.update(gated_faults, watchdog_expired) {
            RecoveryAction::None => {}
            RecoveryAction::EngagePulsedDrive => {
                // §4's bubble mitigation: switch to the pulsed drive so the
                // wall spends most of its time below the outgassing onset.
                if self.pulsed.is_none() {
                    self.pulsed = Some(PulsedScheduler::new(PulsedConfig::water_default()));
                }
            }
            RecoveryAction::ReZero => {
                // Accept the post-fouling conductance as the new baseline
                // instead of flagging the same drift forever.
                self.drift.re_zero();
            }
            RecoveryAction::SoftReset => {
                self.spikes.reset();
                self.frozen_code_streak = 0;
                self.platform.watchdog_mut().kick();
            }
        }
        // Poll the supervisor's collapsed edge once per tick. This runs
        // whether or not an observer is installed: `take_transition` only
        // advances the supervisor's *observed* state, never its behaviour.
        if let Some((from, to)) = self.health.take_transition() {
            self.observe(EventKind::HealthTransition { from, to });
        }

        let m = Measurement {
            velocity,
            speed,
            direction,
            supply_code,
            conditioned_code: conditioned,
            conductance,
            wire_power,
            faults,
            health: self.health.state(),
            tick: self.control_tick,
        };
        self.last_measurement = Some(m);
        m
    }

    /// Drives `steps` modulator ticks through the fastest available path —
    /// scalar ticks until the frame boundary, whole batched frames, scalar
    /// remainder — invoking `on_control` after every completed control tick.
    /// Bit-identical to an all-scalar walk at the exact tier.
    fn drive(
        &mut self,
        steps: u64,
        env: SensorEnvironment,
        mut on_control: impl FnMut(&mut Self, Measurement),
    ) {
        let mut remaining = steps;
        while remaining > 0 && self.mod_phase != 0 {
            if let Some(m) = self.step(env) {
                on_control(self, m);
            }
            remaining -= 1;
        }
        let frame = self.config.decimation as u64;
        while remaining >= frame {
            let m = self.step_frame(env);
            on_control(self, m);
            remaining -= frame;
        }
        for _ in 0..remaining {
            if let Some(m) = self.step(env) {
                on_control(self, m);
            }
        }
    }

    /// Runs `seconds` of simulated time at a constant environment and
    /// returns the final measurement (if at least one control tick ran).
    pub fn run(&mut self, seconds: f64, env: SensorEnvironment) -> Option<Measurement> {
        let steps = (seconds / self.dt.get()).round() as u64;
        let mut last = None;
        self.drive(steps, env, |_, m| last = Some(m));
        last
    }

    /// The instantaneous (unconditioned) conductance implied by the present
    /// supply code — used by calibration, which averages externally.
    pub fn instantaneous_conductance(&self) -> ThermalConductance {
        match self.config.mode {
            OperatingMode::ConstantTemperature => self.instant_conductance,
            _ => self
                .last_measurement
                .map(|m| m.conductance)
                .unwrap_or(ThermalConductance::ZERO),
        }
    }

    /// The instantaneous (unconditioned) speed decode — what burst-mode
    /// operation averages over its short measurement window instead of
    /// waiting for the 0.1 Hz filter.
    pub fn instantaneous_speed(&self) -> MetersPerSecond {
        let g = self.instantaneous_conductance();
        match self.calibration.as_ref() {
            Some(c)
                if self.config.temperature_compensation
                    && self.config.mode == OperatingMode::ConstantTemperature =>
            {
                c.compensated_for(
                    self.fluid_temperature_estimate(),
                    self.config.calibration_temperature,
                )
                .velocity_from_conductance(g)
            }
            Some(c) => c.velocity_from_conductance(g),
            None => MetersPerSecond::ZERO,
        }
    }

    /// Total electrical power currently drawn from the supply by the two
    /// bridges (burst-mode energy accounting).
    pub fn bridge_power_draw(&self) -> Watts {
        let u = self.platform.supply_voltage();
        let rt = self
            .wire_estimator_reference_rtd()
            .resistance(self.fluid_temperature_estimate());
        self.estimator
            .total_bridge_power(u, self.bridge.r_series_reference, rt)
    }

    /// Records one calibration point at a known reference velocity, running
    /// `settle_s` of simulation then averaging `average_s` of conductance.
    pub fn record_calibration_point(
        &mut self,
        reference: MetersPerSecond,
        env: SensorEnvironment,
        settle_s: f64,
        average_s: f64,
    ) -> CalPoint {
        let env = SensorEnvironment {
            velocity: reference,
            ..env
        };
        self.run(settle_s, env);
        let steps = (average_s / self.dt.get()).round() as u64;
        let mut sum = 0.0;
        let mut n = 0u64;
        self.drive(steps, env, |meter, _| {
            sum += meter.instantaneous_conductance().get();
            n += 1;
        });
        CalPoint {
            velocity: reference,
            conductance: ThermalConductance::new(sum / n.max(1) as f64),
        }
    }

    /// Fits and installs a field calibration, persisting it to the platform
    /// EEPROM.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Calibration`] if the fit fails.
    pub fn calibrate(&mut self, points: &[CalPoint]) -> Result<&KingCalibration, CoreError> {
        // The calibration bath's fluid temperature is known: zero the
        // temperature channel here, absorbing the reference resistor's
        // manufacturing tolerance.
        self.temp_estimate_offset =
            self.fluid_temp_estimate - self.config.calibration_temperature.get();
        let cal = KingCalibration::fit(points, self.config.overheat)?;
        cal.store(self.platform.eeprom_mut())?;
        self.calibration = Some(cal);
        self.cal_tick = self.control_tick;
        // The calibration procedure slews the line hard between setpoints;
        // whatever the monitors latched during it is procedure noise, not a
        // field diagnosis.
        self.clear_faults();
        Ok(self.calibration.as_ref().expect("just installed"))
    }

    /// Reloads the calibration from EEPROM (power-cycle recovery).
    ///
    /// A corrupt or missing primary record degrades to the redundant mirror
    /// slot: the mirror is loaded, the primary is repaired from it, and the
    /// health supervisor notes a `Recovering` excursion. Only when *both*
    /// copies fail does this error out — and the instrument goes `Faulted`.
    ///
    /// # Errors
    ///
    /// Returns the primary slot's [`CoreError::Platform`] error if every
    /// calibration copy is missing or corrupt.
    pub fn reload_calibration(&mut self) -> Result<(), CoreError> {
        let outcome = match KingCalibration::load(self.platform.eeprom()) {
            Ok(cal) => {
                self.calibration = Some(cal);
                self.observe(EventKind::CalibrationReloaded {
                    slot: CalSlot::Primary,
                });
                Ok(())
            }
            Err(primary) => match KingCalibration::load_slot(
                self.platform.eeprom(),
                KingCalibration::REDUNDANT_SLOT,
            ) {
                Ok(cal) => {
                    // Repair the primary from the surviving mirror so the
                    // next power cycle reads clean again.
                    cal.store_slot(self.platform.eeprom_mut(), KingCalibration::EEPROM_SLOT)?;
                    self.calibration = Some(cal);
                    self.health.note_eeprom_fallback();
                    self.observe(EventKind::CalibrationReloaded {
                        slot: CalSlot::Redundant,
                    });
                    Ok(())
                }
                Err(_) => {
                    self.health.note_unrecoverable();
                    self.observe(EventKind::CalibrationReloadFailed);
                    Err(primary)
                }
            },
        };
        // Surface any health edge the reload caused (fallback → Recovering,
        // unrecoverable → Faulted) without waiting for the next control
        // tick's poll.
        if let Some((from, to)) = self.health.take_transition() {
            self.observe(EventKind::HealthTransition { from, to });
        }
        outcome
    }

    /// Accepts the current conductance operating point as the new drift
    /// baseline, clearing the drift estimate ([`Meter::re_zero`]). Exact
    /// state no-op when [`drift_estimate`](Self::drift_estimate) is `0.0`.
    ///
    /// [`Meter::re_zero`]: crate::Meter::re_zero
    pub fn re_zero(&mut self) {
        self.drift.re_zero();
    }

    /// Refits the active King calibration from the drift monitor's current
    /// deviation and re-zeroes the baseline around the corrected fit
    /// ([`Meter::refit_from_recent`]).
    ///
    /// Fouling (the §4 failure mode the drift monitor watches) multiplies
    /// the wire's thermal conductance by a slowly shrinking factor `1 + d`
    /// (`d < 0` for a sensitivity loss), so scaling both King coefficients
    /// by the observed relative deviation restores the velocity decode at
    /// the operating point. The correction is clamped to ±50 % — beyond
    /// that the instrument needs a bath recalibration, not a field refit.
    /// RAM-only: pair with [`persist`](Self::persist) to survive a power
    /// cycle.
    ///
    /// [`Meter::refit_from_recent`]: crate::Meter::refit_from_recent
    pub fn refit_from_recent(&mut self) -> bool {
        let d = self.drift.deviation().clamp(-0.5, 0.5);
        if d == 0.0 {
            return false;
        }
        let Some(cal) = self.calibration.as_mut() else {
            return false;
        };
        cal.a *= 1.0 + d;
        cal.b *= 1.0 + d;
        self.drift.re_zero();
        self.cal_tick = self.control_tick;
        true
    }

    /// Writes the active calibration to the EEPROM's primary and redundant
    /// slots ([`Meter::persist`]) — one write cycle of wear on each.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Calibration`] when no calibration is installed,
    /// or the platform error when a slot write fails.
    ///
    /// [`Meter::persist`]: crate::Meter::persist
    pub fn persist(&mut self) -> Result<(), CoreError> {
        let cal = self.calibration.ok_or(CoreError::Calibration {
            reason: "no calibration installed to persist",
        })?;
        cal.store(self.platform.eeprom_mut())
    }

    /// Control ticks since the active calibration was installed or last
    /// refit ([`Meter::calibration_age`]).
    ///
    /// [`Meter::calibration_age`]: crate::Meter::calibration_age
    #[inline]
    pub fn calibration_age(&self) -> u64 {
        self.control_tick.saturating_sub(self.cal_tick)
    }

    /// The drift monitor's most recent relative conductance deviation
    /// ([`Meter::drift_estimate`]).
    ///
    /// [`Meter::drift_estimate`]: crate::Meter::drift_estimate
    #[inline]
    pub fn drift_estimate(&self) -> f64 {
        self.drift.deviation()
    }

    /// The highest per-slot EEPROM write-cycle count
    /// ([`Meter::calibration_wear`]).
    ///
    /// [`Meter::calibration_wear`]: crate::Meter::calibration_wear
    #[inline]
    pub fn calibration_wear(&self) -> u64 {
        self.platform.eeprom().max_slot_wear()
    }

    /// Auto-zeroes the direction channel: runs `seconds` of simulation at
    /// the given (zero-flow) environment and learns the channel's
    /// supply-normalized offset, which is subtracted from all subsequent
    /// direction decisions. This removes both the in-amp offset and the
    /// heater-pair mismatch (±1 % tolerance → an offset that would otherwise
    /// dwarf the coupling signal), so the detector can use a tight deadband.
    pub fn auto_zero_direction(&mut self, seconds: f64, env: SensorEnvironment) {
        let env = SensorEnvironment {
            velocity: MetersPerSecond::ZERO,
            ..env
        };
        let steps = (seconds / self.dt.get()).round() as u64;
        let mut sum = 0.0;
        let mut n: u64 = 0;
        self.drive(steps, env, |meter, _| {
            let u = meter.platform.supply_voltage().get().max(0.2);
            sum += meter.last_dir_code as f64 / u;
            n += 1;
        });
        if n > 0 {
            self.dir_offset_per_volt = sum / n as f64;
        }
        self.direction.reset();
    }

    /// The learned direction-channel offset in codes per volt of bridge
    /// supply (0 until auto-zeroed).
    #[inline]
    pub fn direction_offset(&self) -> f64 {
        self.dir_offset_per_volt
    }

    /// Latched fault flags since start (or the last clear).
    pub fn fault_latch(&self) -> FaultFlags {
        self.fault_latch
    }

    /// Clears the latched fault flags and resets the spike monitor's window
    /// state (full diagnostic reset).
    pub fn clear_faults(&mut self) {
        self.fault_latch = FaultFlags::default();
        self.spikes.reset();
    }

    /// The instrument's current aggregate health state.
    #[inline]
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// The graceful-degradation supervisor (transition diagnostics).
    #[inline]
    pub fn health_monitor(&self) -> &HealthMonitor {
        &self.health
    }

    /// Installs an injected ADC fault on the CTA acquisition channel, or
    /// clears it with `None` — the campaign layer's fault-injection hook.
    pub fn inject_adc_fault(&mut self, fault: Option<AdcFault>) {
        self.adc_fault = fault;
    }

    /// The injected ADC fault currently active, if any.
    #[inline]
    pub fn adc_fault(&self) -> Option<AdcFault> {
        self.adc_fault
    }

    /// Installs an observability sink (replacing any previous one). The
    /// meter emits tick-stamped [`ObsEvent`]s into it from the control path;
    /// see [`Observer`] for the contract. Without a sink every emission site
    /// reduces to one `Option` check.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Removes and returns the installed observability sink, if any — how
    /// the rig collects a run's event log after the simulation finishes.
    pub fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        self.observer.take()
    }

    /// Whether an observability sink is installed (lets callers skip their
    /// own instrumentation when nobody is listening).
    #[inline]
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Emits an event to the installed observer (if any), stamped with the
    /// current control tick. Public so the rig's fault injector can report
    /// *its* actions (fault engage/revert, wire-level frame errors) into the
    /// same per-run log the firmware writes.
    pub fn observe(&mut self, kind: EventKind) {
        if let Some(observer) = self.observer.as_mut() {
            observer.record(ObsEvent {
                tick: self.control_tick,
                kind,
            });
        }
    }

    /// Total control ticks executed since construction (the timestamp
    /// domain of [`ObsEvent`]s).
    #[inline]
    pub fn control_ticks(&self) -> u64 {
        self.control_tick
    }

    /// A stable 64-bit digest (FNV-1a) of the meter's observable mutable
    /// state: control phase, RNG lane state, firmware estimates and
    /// latches, the health supervisor's verdict, and the die's slow
    /// physical state. Two meters that walked bit-identical trajectories
    /// digest equal; any divergence in the simulated state shows up here.
    /// The fleet layer records this per line, which is how its
    /// checkpoint/resume and jobs-invariance tests cover full end-state
    /// equality without serializing whole meters.
    pub fn state_digest(&self) -> u64 {
        let flags = self.fault_latch;
        let m = self.last_measurement.as_ref();
        let words: [u64; 37] = [
            self.control_tick,
            self.mod_phase as u64,
            self.rng.state()[0],
            self.rng.state()[1],
            self.rng.state()[2],
            self.rng.state()[3],
            self.last_dir_code as i64 as u64,
            self.last_temp_code as i64 as u64,
            self.last_raw_ctrl_code as i64 as u64,
            self.last_on_code as u64,
            self.frozen_code_streak as u64,
            self.settled_streak as u64,
            self.fault_warmup_ticks,
            u64::from(self.was_saturated),
            self.health.state() as u64,
            u64::from(flags.bubble_activity)
                | u64::from(flags.fouling_suspected) << 1
                | u64::from(flags.loop_saturated) << 2,
            self.dir_offset_per_volt.to_bits(),
            self.fluid_temp_estimate.to_bits(),
            self.temp_estimate_offset.to_bits(),
            self.instant_conductance.get().to_bits(),
            m.map_or(0, |m| m.velocity.get().to_bits()),
            m.map_or(0, |m| m.supply_code as u64),
            m.map_or(0, |m| m.conditioned_code as i64 as u64),
            self.die.heater_temperature(HeaterId::A).get().to_bits(),
            self.die.heater_temperature(HeaterId::B).get().to_bits(),
            self.die.reference_resistance().get().to_bits(),
            self.die.bubble_coverage(HeaterId::A).to_bits(),
            self.die.bubble_coverage(HeaterId::B).to_bits(),
            self.die.fouling_thickness_um(HeaterId::A).to_bits(),
            self.die.fouling_thickness_um(HeaterId::B).to_bits(),
            // Calibration-surface state: the maintenance engine mutates the
            // installed fit and the drift monitor, so both must show up in
            // the digest for the re-zero/refit no-op and jobs-invariance
            // properties to bite.
            self.calibration.map_or(0, |c| c.a.to_bits()),
            self.calibration.map_or(0, |c| c.b.to_bits()),
            self.calibration.map_or(0, |c| c.n.to_bits()),
            self.drift.baseline().map_or(0, f64::to_bits),
            self.drift.last_value().map_or(0, f64::to_bits),
            self.drift.deviation().to_bits(),
            self.cal_tick,
        ];
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        crate::config::fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Celsius;

    fn meter(seed: u64) -> FlowMeter {
        FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), seed).unwrap()
    }

    fn env(v_cm_s: f64) -> SensorEnvironment {
        SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(v_cm_s),
            ..SensorEnvironment::still_water()
        }
    }

    #[test]
    fn step_frame_is_bit_identical_to_scalar_steps() {
        let mut scalar = meter(7);
        let mut framed = meter(7);
        let e = env(80.0);
        let frame = scalar.config().decimation;
        for round in 0..30u32 {
            if round % 3 == 0 {
                // De-align with a few scalar ticks on both meters, then
                // re-align — exercises the mixed scalar/frame cadence.
                for _ in 0..17 {
                    assert_eq!(scalar.step(e), framed.step(e));
                }
                while framed.frame_phase() != 0 {
                    assert_eq!(scalar.step(e), framed.step(e));
                }
            }
            let mut last = None;
            for _ in 0..frame {
                if let Some(m) = scalar.step(e) {
                    last = Some(m);
                }
            }
            let m = framed.step_frame(e);
            assert_eq!(last, Some(m), "round {round}");
        }
        // The die state (physics + RNG consumption) must agree to the bit.
        assert_eq!(
            scalar.die().heater_temperature(HeaterId::A).get().to_bits(),
            framed.die().heater_temperature(HeaterId::A).get().to_bits()
        );
        assert_eq!(
            scalar.die().reference_resistance().get().to_bits(),
            framed.die().reference_resistance().get().to_bits()
        );
    }

    #[test]
    fn state_digest_tracks_the_trajectory() {
        let mut a = meter(11);
        let mut b = meter(11);
        assert_eq!(a.state_digest(), b.state_digest(), "cold replicas agree");
        let initial = a.state_digest();
        a.run(0.3, env(70.0));
        b.run(0.3, env(70.0));
        assert_ne!(a.state_digest(), initial, "stepping must move the digest");
        assert_eq!(
            a.state_digest(),
            b.state_digest(),
            "identical trajectories digest equal"
        );
        // A diverged environment must show up.
        a.run(0.1, env(70.0));
        b.run(0.1, env(75.0));
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn step_frame_matches_scalar_under_adc_fault() {
        use crate::faults::AdcFault;
        for fault in [AdcFault::Stuck(1234), AdcFault::Offset(-250)] {
            let mut scalar = meter(13);
            let mut framed = meter(13);
            let e = env(60.0);
            scalar.run(0.2, e);
            framed.run(0.2, e);
            scalar.inject_adc_fault(Some(fault));
            framed.inject_adc_fault(Some(fault));
            let frame = scalar.config().decimation;
            for _ in 0..20 {
                let mut last = None;
                for _ in 0..frame {
                    if let Some(m) = scalar.step(e) {
                        last = Some(m);
                    }
                }
                assert_eq!(last, Some(framed.step_frame(e)), "fault {fault:?}");
            }
        }
    }

    #[test]
    fn run_is_bit_identical_regardless_of_entry_phase() {
        // `run` batches internally; a meter de-aligned by a partial scalar
        // prefix must produce the same stream as an all-scalar walk.
        let mut all_scalar = meter(21);
        let mut batched = meter(21);
        let e = env(150.0);
        // De-align both by 13 ticks.
        for _ in 0..13 {
            assert_eq!(all_scalar.step(e), batched.step(e));
        }
        let steps = (0.3 / all_scalar.dt.get()).round() as u64;
        let mut last = None;
        for _ in 0..steps {
            if let Some(m) = all_scalar.step(e) {
                last = Some(m);
            }
        }
        let batched_last = batched.run(0.3, e);
        assert_eq!(last, batched_last);
        assert_eq!(all_scalar.frame_phase(), batched.frame_phase());
    }

    #[test]
    fn fast_tier_tracks_exact_tier_within_bound() {
        let fast_cfg = FlowMeterConfig {
            afe_tier: crate::config::AfeTier::Fast,
            ..FlowMeterConfig::test_profile()
        };
        let mut fast = FlowMeter::new(fast_cfg, MafParams::nominal(), 5).unwrap();
        let mut exact = meter(5);
        for v in [40.0, 120.0, 220.0] {
            let me = exact.run(1.5, env(v)).unwrap();
            let mf = fast.run(1.5, env(v)).unwrap();
            let err = (me.speed.to_cm_per_s() - mf.speed.to_cm_per_s()).abs();
            // Bounded steady-state error: within 2 % of full scale (250 cm/s)
            // of the exact tier's decode.
            assert!(err < 5.0, "fast-tier speed error {err:.2} cm/s at {v} cm/s");
            // The quasi-static codes must stay dithered enough that the
            // frozen-code discriminator never trips a false watchdog reset.
            assert_eq!(mf.health, HealthState::Healthy, "at {v} cm/s");
            assert!(!mf.faults.loop_saturated, "at {v} cm/s");
        }
    }

    #[test]
    fn frame_phase_tracks_scalar_ticks() {
        let mut m = meter(9);
        let e = env(0.0);
        assert_eq!(m.frame_phase(), 0);
        for i in 1..=m.ticks_per_frame() {
            m.step(e);
            assert_eq!(m.frame_phase(), i % m.ticks_per_frame());
        }
    }

    #[test]
    fn loop_reaches_overheat_setpoint() {
        let mut m = meter(1);
        m.run(0.5, env(50.0));
        let t_wire = m.die().heater_temperature(HeaterId::A);
        // Target: 15 °C fluid + 15 K overheat = 30 °C (±1 K: direction
        // asymmetry and in-amp offset shift the balance slightly).
        assert!(
            (t_wire.get() - 30.0).abs() < 1.5,
            "wire settled at {t_wire}"
        );
    }

    #[test]
    fn supply_rises_with_flow() {
        let mut m = meter(2);
        let slow = m.run(0.4, env(20.0)).unwrap();
        let fast = m.run(0.4, env(200.0)).unwrap();
        assert!(
            fast.supply_code > slow.supply_code + 100,
            "supply {} → {}",
            slow.supply_code,
            fast.supply_code
        );
    }

    #[test]
    fn velocity_tracks_true_flow_with_factory_calibration() {
        let mut m = meter(3);
        for v in [30.0, 100.0, 200.0] {
            let meas = m.run(1.0, env(v)).unwrap();
            let measured = meas.speed.to_cm_per_s();
            assert!(
                (measured - v).abs() < 0.25 * v + 5.0,
                "true {v} cm/s measured {measured:.1} cm/s"
            );
        }
    }

    #[test]
    fn field_calibration_beats_factory() {
        let mut m = meter(4);
        let base_env = env(0.0);
        let points: Vec<CalPoint> = [10.0, 40.0, 80.0, 130.0, 180.0, 230.0]
            .iter()
            .map(|&v| {
                m.record_calibration_point(MetersPerSecond::from_cm_per_s(v), base_env, 0.3, 0.2)
            })
            .collect();
        m.calibrate(&points).unwrap();
        // After calibration, mid-range accuracy should be a few per cent.
        let meas = m.run(1.0, env(100.0)).unwrap();
        let measured = meas.speed.to_cm_per_s();
        assert!(
            (measured - 100.0).abs() < 8.0,
            "calibrated reading {measured:.1} cm/s at 100 cm/s"
        );
    }

    #[test]
    fn direction_detected_both_ways() {
        let mut m = meter(5);
        let fwd = m.run(0.6, env(80.0)).unwrap();
        assert_eq!(fwd.direction, FlowDirection::Forward, "forward flow");
        assert!(fwd.velocity.get() > 0.0);
        let rev = m.run(1.0, env(-80.0)).unwrap();
        assert_eq!(rev.direction, FlowDirection::Reverse, "reverse flow");
        assert!(rev.velocity.get() < 0.0);
    }

    #[test]
    fn measurements_arrive_at_control_rate() {
        let mut m = meter(6);
        let mut count = 0;
        let e = env(50.0);
        for _ in 0..64 * 50 {
            if m.step(e).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 50);
    }

    #[test]
    fn calibration_survives_power_cycle() {
        let mut m = meter(7);
        let points: Vec<CalPoint> = [20.0, 80.0, 150.0, 220.0]
            .iter()
            .map(|&v| {
                m.record_calibration_point(MetersPerSecond::from_cm_per_s(v), env(0.0), 0.3, 0.2)
            })
            .collect();
        let fitted = *m.calibrate(&points).unwrap();
        // Clear in-RAM calibration, then reload from EEPROM.
        m.calibration = None;
        m.reload_calibration().unwrap();
        assert_eq!(*m.calibration().unwrap(), fitted);
    }

    #[test]
    fn warmer_fluid_does_not_break_ct_loop() {
        let mut m = meter(8);
        m.run(0.5, env(100.0));
        let warm = SensorEnvironment {
            fluid_temperature: Celsius::new(25.0),
            ..env(100.0)
        };
        let meas = m.run(2.0, warm).unwrap();
        // CT mode with temperature compensation: reading stays within
        // several per cent despite the 10 K fluid shift.
        let measured = meas.speed.to_cm_per_s();
        assert!(
            (measured - 100.0).abs() < 20.0,
            "CT reading at 25 °C fluid: {measured:.1} cm/s"
        );
    }

    #[test]
    fn fluid_temperature_estimated_through_rt_arm() {
        let mut m = meter(30);
        m.run(0.5, env(50.0));
        assert!(
            (m.fluid_temperature_estimate().get() - 15.0).abs() < 1.0,
            "estimate {} at 15 °C fluid",
            m.fluid_temperature_estimate()
        );
        let warm = SensorEnvironment {
            fluid_temperature: Celsius::new(28.0),
            ..env(50.0)
        };
        m.run(2.0, warm);
        assert!(
            (m.fluid_temperature_estimate().get() - 28.0).abs() < 1.5,
            "estimate {} at 28 °C fluid",
            m.fluid_temperature_estimate()
        );
    }

    #[test]
    fn compensation_beats_uncompensated_under_fluid_shift() {
        // At 2 bar the outgassing onset (~48 °C) stays above the wall even
        // with 30 °C fluid, so this isolates the thermal-compensation effect
        // from the bubble failure mode.
        let at_2bar = |v: f64, t: f64| SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(v),
            fluid_temperature: Celsius::new(t),
            pressure: hotwire_units::Pascals::from_bar(2.0),
        };
        let run_with = |compensate: bool| {
            let cfg = FlowMeterConfig {
                temperature_compensation: compensate,
                ..FlowMeterConfig::test_profile()
            };
            let mut m = FlowMeter::new(cfg, MafParams::nominal(), 31).unwrap();
            m.run(1.0, at_2bar(100.0, 15.0));
            let baseline = m
                .run(1.0, at_2bar(100.0, 15.0))
                .unwrap()
                .speed
                .to_cm_per_s();
            m.run(4.0, at_2bar(100.0, 30.0));
            let shifted = m
                .run(2.0, at_2bar(100.0, 30.0))
                .unwrap()
                .speed
                .to_cm_per_s();
            (shifted - baseline).abs()
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(
            with < 0.6 * without,
            "compensated drift {with:.1} cm/s vs uncompensated {without:.1} cm/s"
        );
    }

    #[test]
    fn pulsed_mode_produces_measurements_and_less_power() {
        let cfg = FlowMeterConfig {
            pulsed: Some(crate::config::PulsedConfig {
                period_ticks: 50,
                duty: 0.3,
            }),
            ..FlowMeterConfig::test_profile()
        };
        let mut pulsed = FlowMeter::new(cfg, MafParams::nominal(), 9).unwrap();
        let mut continuous = meter(9);
        let e = env(100.0);
        // Average supply power over the run.
        let mut p_pulsed = 0.0;
        let mut p_cont = 0.0;
        let mut n = 0;
        for _ in 0..64 * 1000 {
            pulsed.step(e);
            continuous.step(e);
            p_pulsed += pulsed.platform.supply_voltage().get().powi(2);
            p_cont += continuous.platform.supply_voltage().get().powi(2);
            n += 1;
        }
        assert!(n > 0);
        assert!(
            p_pulsed < 0.6 * p_cont,
            "pulsed V² {p_pulsed} vs continuous {p_cont}"
        );
        assert!(pulsed.last_measurement().is_some());
    }

    #[test]
    fn watchdog_stays_quiet_in_healthy_loop() {
        let mut m = meter(10);
        m.run(0.5, env(50.0));
        assert_eq!(m.platform_mut().watchdog_mut().reset_count(), 0);
    }

    #[test]
    fn auto_zero_tightens_direction_deadband() {
        let cfg = FlowMeterConfig {
            direction_deadband: 80,
            ..FlowMeterConfig::test_profile()
        };
        let mut m = FlowMeter::new(cfg, MafParams::nominal(), 21).unwrap();
        m.auto_zero_direction(0.5, SensorEnvironment::still_water());
        // The in-amp offset (~130 codes) must have been learned.
        assert!(
            m.direction_offset().abs() > 40.0,
            "offset {} suspiciously small",
            m.direction_offset()
        );
        // With the offset removed, still water stays indeterminate even at
        // the tight deadband.
        let meas = m.run(0.5, env(0.0)).unwrap();
        assert_eq!(meas.direction, FlowDirection::Indeterminate);
        // And real flow still resolves.
        let meas = m.run(0.6, env(60.0)).unwrap();
        assert_eq!(meas.direction, FlowDirection::Forward);
    }

    #[test]
    fn corrupt_primary_calibration_falls_back_to_mirror() {
        let mut m = meter(11);
        let points: Vec<CalPoint> = [20.0, 80.0, 150.0, 220.0]
            .iter()
            .map(|&v| {
                m.record_calibration_point(MetersPerSecond::from_cm_per_s(v), env(0.0), 0.3, 0.2)
            })
            .collect();
        let fitted = *m.calibrate(&points).unwrap();
        // Bit-flip the primary record; its CRC check must now fail…
        m.platform_mut()
            .eeprom_mut()
            .corrupt(KingCalibration::EEPROM_SLOT, 3);
        m.calibration = None;
        // …but the reload degrades to the redundant mirror instead of dying.
        m.reload_calibration().unwrap();
        assert_eq!(*m.calibration().unwrap(), fitted);
        assert_eq!(m.health(), crate::health::HealthState::Recovering);
        // The primary was repaired in place from the mirror.
        assert_eq!(
            KingCalibration::load(m.platform_mut().eeprom()).unwrap(),
            fitted
        );
    }

    #[test]
    fn double_calibration_corruption_is_unrecoverable() {
        let mut m = meter(12);
        let points: Vec<CalPoint> = [20.0, 100.0, 200.0]
            .iter()
            .map(|&v| {
                m.record_calibration_point(MetersPerSecond::from_cm_per_s(v), env(0.0), 0.3, 0.2)
            })
            .collect();
        m.calibrate(&points).unwrap();
        m.platform_mut()
            .eeprom_mut()
            .corrupt(KingCalibration::EEPROM_SLOT, 2);
        m.platform_mut()
            .eeprom_mut()
            .corrupt(KingCalibration::REDUNDANT_SLOT, 2);
        assert!(m.reload_calibration().is_err());
        assert_eq!(m.health(), crate::health::HealthState::Faulted);
    }

    #[test]
    fn stuck_adc_starves_watchdog_into_recovering() {
        let mut m = meter(13);
        m.run(0.5, env(50.0));
        assert_eq!(m.health(), crate::health::HealthState::Healthy);
        assert_eq!(m.platform_mut().watchdog_mut().reset_count(), 0);
        // Freeze the CTA channel: the firmware must stop kicking and let
        // the watchdog expire into a soft reset.
        m.inject_adc_fault(Some(AdcFault::Stuck(1234)));
        m.run(0.2, env(50.0));
        assert!(
            m.platform_mut().watchdog_mut().reset_count() > 0,
            "watchdog never expired on a frozen channel"
        );
        assert_eq!(m.health(), crate::health::HealthState::Recovering);
        // Clearing the fault lets the kicks resume and health return.
        m.inject_adc_fault(None);
        m.run(1.0, env(50.0));
        assert_eq!(m.health(), crate::health::HealthState::Healthy);
    }

    #[test]
    fn offset_adc_fault_does_not_trip_the_watchdog() {
        let mut m = meter(14);
        m.run(0.3, env(50.0));
        m.inject_adc_fault(Some(AdcFault::Offset(300)));
        m.run(0.3, env(50.0));
        // Codes still carry noise, so the freeze discriminator stays quiet.
        assert_eq!(m.platform_mut().watchdog_mut().reset_count(), 0);
    }

    #[test]
    fn flow_meter_is_send() {
        // The campaign executor in `hotwire_rig` moves meters into scoped
        // worker threads; this assertion is the documented contract.
        fn assert_send<T: Send>() {}
        assert_send::<FlowMeter>();
        assert_send::<Measurement>();
    }

    #[test]
    fn replica_reconstruction_is_bit_identical() {
        let mut original = meter(77);
        let mut replica = FlowMeter::new(
            *original.config(),
            *original.die().params(),
            original.build_seed(),
        )
        .unwrap();
        let e = env(90.0);
        let a = original.run(0.3, e).unwrap();
        let b = replica.run(0.3, e).unwrap();
        assert_eq!(a.supply_code, b.supply_code);
        assert_eq!(a.conditioned_code, b.conditioned_code);
        assert_eq!(a.velocity, b.velocity);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = meter(42);
        let mut b = meter(42);
        let e = env(70.0);
        let ma = a.run(0.3, e).unwrap();
        let mb = b.run(0.3, e).unwrap();
        assert_eq!(ma.supply_code, mb.supply_code);
        assert_eq!(ma.conditioned_code, mb.conditioned_code);
    }
}
