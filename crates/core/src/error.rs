//! Error type for the conditioning firmware.

/// Errors produced by the conditioning firmware.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A platform block rejected its configuration.
    Platform(hotwire_isif::IsifError),
    /// A physics parameter was rejected.
    Physics(hotwire_physics::PhysicsError),
    /// A DSP block rejected its configuration.
    Dsp(hotwire_dsp::DspError),
    /// An AFE block rejected its configuration.
    Afe(hotwire_afe::AfeError),
    /// Calibration could not be fitted or inverted.
    Calibration {
        /// What went wrong.
        reason: &'static str,
    },
    /// A firmware configuration value was invalid.
    Config {
        /// Description of the rejected configuration.
        reason: &'static str,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
            CoreError::Physics(e) => write!(f, "physics error: {e}"),
            CoreError::Dsp(e) => write!(f, "dsp error: {e}"),
            CoreError::Afe(e) => write!(f, "afe error: {e}"),
            CoreError::Calibration { reason } => write!(f, "calibration error: {reason}"),
            CoreError::Config { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Platform(e) => Some(e),
            CoreError::Physics(e) => Some(e),
            CoreError::Dsp(e) => Some(e),
            CoreError::Afe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hotwire_isif::IsifError> for CoreError {
    fn from(e: hotwire_isif::IsifError) -> Self {
        CoreError::Platform(e)
    }
}

impl From<hotwire_physics::PhysicsError> for CoreError {
    fn from(e: hotwire_physics::PhysicsError) -> Self {
        CoreError::Physics(e)
    }
}

impl From<hotwire_dsp::DspError> for CoreError {
    fn from(e: hotwire_dsp::DspError) -> Self {
        CoreError::Dsp(e)
    }
}

impl From<hotwire_afe::AfeError> for CoreError {
    fn from(e: hotwire_afe::AfeError) -> Self {
        CoreError::Afe(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e: CoreError = hotwire_dsp::DspError::InvalidConfig {
            name: "order",
            constraint: "1..=6",
        }
        .into();
        assert!(e.to_string().contains("dsp"));
        assert!(e.source().is_some());

        let e = CoreError::Calibration {
            reason: "not enough points",
        };
        assert!(e.to_string().contains("points"));
        assert!(e.source().is_none());
    }
}
