//! King's-law calibration: fitting, inversion, persistence.
//!
//! "The constants A, B and the exponent n are empirically determined and
//! ambient specific. This nonlinearity must be compensated by a special
//! signal conditioning." (§2)
//!
//! The firmware collects `(velocity, conductance)` points against a
//! reference meter (the paper used the Promag 50), fits `G = A + B·vⁿ` — a
//! grid search over `n` with a closed-form linear least-squares solve for
//! `A, B` at each candidate — and stores the constants in the platform
//! EEPROM.

use crate::CoreError;
use hotwire_isif::eeprom::CalibrationStore;
use hotwire_units::{KelvinDelta, MetersPerSecond, ThermalConductance, Watts};

/// A fitted King's-law calibration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KingCalibration {
    /// Zero-flow conductance term, W/K.
    pub a: f64,
    /// Forced-convection coefficient, W/(K·(m/s)ⁿ).
    pub b: f64,
    /// Velocity exponent.
    pub n: f64,
    /// The overheat the constants were fitted at.
    pub overheat: KelvinDelta,
}

/// One calibration observation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CalPoint {
    /// Reference-meter velocity (magnitude).
    pub velocity: MetersPerSecond,
    /// Measured wire-to-fluid conductance at that velocity.
    pub conductance: ThermalConductance,
}

impl KingCalibration {
    /// Primary EEPROM slot used for calibration persistence.
    pub const EEPROM_SLOT: usize = 0;
    /// Redundant EEPROM slot holding a mirror copy of the calibration —
    /// the fallback when the primary record fails its CRC check.
    pub const REDUNDANT_SLOT: usize = 7;

    /// Fits King's law to calibration points.
    ///
    /// The exponent is grid-searched over `[0.30, 0.70]` in steps of 0.005;
    /// for each candidate the optimal `A, B` follow from linear least
    /// squares on the basis `[1, vⁿ]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Calibration`] with fewer than 3 points, with a
    /// non-positive overheat, or if the fit degenerates (all velocities
    /// equal, or a non-positive `A`/`B` at the optimum).
    pub fn fit(points: &[CalPoint], overheat: KelvinDelta) -> Result<Self, CoreError> {
        if points.len() < 3 {
            return Err(CoreError::Calibration {
                reason: "king fit needs at least 3 calibration points",
            });
        }
        if overheat.get() <= 0.0 {
            return Err(CoreError::Calibration {
                reason: "overheat must be positive",
            });
        }
        let vmax = points
            .iter()
            .map(|p| p.velocity.get().abs())
            .fold(0.0f64, f64::max);
        let vmin = points
            .iter()
            .map(|p| p.velocity.get().abs())
            .fold(f64::INFINITY, f64::min);
        if vmax - vmin < 1e-9 {
            return Err(CoreError::Calibration {
                reason: "calibration points must span a velocity range",
            });
        }

        let mut best: Option<(f64, f64, f64, f64)> = None; // (sse, a, b, n)
        let mut n = 0.30;
        while n <= 0.70 + 1e-12 {
            if let Some((a, b, sse)) = least_squares_ab(points, n) {
                if a > 0.0 && b > 0.0 && best.map_or(true, |(s, ..)| sse < s) {
                    best = Some((sse, a, b, n));
                }
            }
            n += 0.005;
        }
        let (_, a, b, n) = best.ok_or(CoreError::Calibration {
            reason: "no exponent produced a physical (positive A, B) fit",
        })?;
        Ok(KingCalibration { a, b, n, overheat })
    }

    /// Root-mean-square relative residual of the fit over the given points.
    pub fn rms_relative_residual(&self, points: &[CalPoint]) -> f64 {
        let sum: f64 = points
            .iter()
            .map(|p| {
                let model = self.a + self.b * p.velocity.get().abs().powf(self.n);
                ((model - p.conductance.get()) / p.conductance.get()).powi(2)
            })
            .sum();
        (sum / points.len() as f64).sqrt()
    }

    /// Converts a measured heater power (at the calibrated overheat) into a
    /// velocity magnitude.
    pub fn velocity_from_power(&self, power: Watts) -> MetersPerSecond {
        self.velocity_from_conductance(ThermalConductance::new(power.get() / self.overheat.get()))
    }

    /// Converts a measured conductance into a velocity magnitude.
    pub fn velocity_from_conductance(&self, g: ThermalConductance) -> MetersPerSecond {
        let excess = g.get() - self.a;
        if excess <= 0.0 {
            MetersPerSecond::ZERO
        } else {
            MetersPerSecond::new((excess / self.b).powf(1.0 / self.n))
        }
    }

    /// The conductance King's law predicts at a velocity (forward model).
    pub fn conductance_at(&self, v: MetersPerSecond) -> ThermalConductance {
        ThermalConductance::new(self.a + self.b * v.get().abs().powf(self.n))
    }

    /// Velocity sensitivity `dv/dG` at an operating velocity — the factor
    /// that turns the electronics' conductance resolution into the velocity
    /// resolution the paper reports (degrading as `v^(1−n)`).
    pub fn velocity_sensitivity(&self, v: MetersPerSecond) -> f64 {
        let vv = v.get().abs().max(1e-6);
        1.0 / (self.b * self.n * vv.powf(self.n - 1.0))
    }

    /// Property-compensates the calibration for a fluid temperature other
    /// than the calibration temperature.
    ///
    /// Water's conductivity, viscosity and Prandtl number all shift with
    /// temperature, moving King's `A` and `B` even at fixed overheat. The
    /// firmware knows the water property model, so it can scale the fitted
    /// constants by the ratio of the Kramers-derived laws at the estimated
    /// vs calibration *film* temperatures (fluid + half the overheat). This
    /// is the paper's "temperature sensor for tracking thermal flow
    /// variation" put to use.
    #[must_use]
    pub fn compensated_for(
        &self,
        fluid_estimate: hotwire_units::Celsius,
        calibration_temperature: hotwire_units::Celsius,
    ) -> Self {
        use hotwire_physics::fluid::Water;
        use hotwire_physics::kings_law::{KingsLaw, WireGeometry};
        let half = KelvinDelta::new(self.overheat.get() / 2.0);
        let geometry = WireGeometry::maf_heater();
        let at = KingsLaw::from_kramers(&Water::potable(), fluid_estimate + half, geometry);
        let cal =
            KingsLaw::from_kramers(&Water::potable(), calibration_temperature + half, geometry);
        KingCalibration {
            a: self.a * at.a() / cal.a(),
            b: self.b * at.b() / cal.b(),
            n: self.n,
            overheat: self.overheat,
        }
    }

    /// Persists the calibration to the platform EEPROM, writing the primary
    /// slot *and* the redundant mirror so a single corrupt record can be
    /// survived by [`load_slot`](Self::load_slot) fallback.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] on storage errors.
    pub fn store(&self, eeprom: &mut CalibrationStore) -> Result<(), CoreError> {
        self.store_slot(eeprom, Self::EEPROM_SLOT)?;
        self.store_slot(eeprom, Self::REDUNDANT_SLOT)?;
        Ok(())
    }

    /// Persists the calibration into one specific slot (mirror repair).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] on storage errors.
    pub fn store_slot(&self, eeprom: &mut CalibrationStore, slot: usize) -> Result<(), CoreError> {
        let payload = CalibrationStore::encode_f64s(&[self.a, self.b, self.n, self.overheat.get()]);
        eeprom.write_record(slot, &payload)?;
        Ok(())
    }

    /// Loads a calibration from the primary EEPROM slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] for empty/corrupt slots, or
    /// [`CoreError::Calibration`] for a malformed record.
    pub fn load(eeprom: &CalibrationStore) -> Result<Self, CoreError> {
        Self::load_slot(eeprom, Self::EEPROM_SLOT)
    }

    /// Loads a calibration from one specific EEPROM slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] for empty/corrupt slots, or
    /// [`CoreError::Calibration`] for a malformed record.
    pub fn load_slot(eeprom: &CalibrationStore, slot: usize) -> Result<Self, CoreError> {
        let values = CalibrationStore::decode_f64s(eeprom.read_record(slot)?)?;
        if values.len() != 4 {
            return Err(CoreError::Calibration {
                reason: "calibration record has wrong length",
            });
        }
        Ok(KingCalibration {
            a: values[0],
            b: values[1],
            n: values[2],
            overheat: KelvinDelta::new(values[3]),
        })
    }
}

/// Hot-wire ambient-temperature correction (the classic `TempCorrect` of
/// anemometry toolkits): a constant-temperature wire sits at a fixed wire
/// temperature `Tw`, so when the water warms from the calibration
/// reference `Tr` to an operating `Ta` the *overheat shrinks* and the
/// bridge power drops even at identical flow. Referring the measurement
/// back to calibration conditions multiplies the bridge voltage by
///
/// ```text
/// f = √((Tw − Tr) / (Tw − Ta))
/// ```
///
/// i.e. power and conductance by `f²`. This is the overheat-denominator
/// correction; water *property* drift (conductivity, Prandtl) is handled
/// separately by [`KingCalibration::compensated_for`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TempCorrect {
    /// The servoed wire temperature.
    pub wire_temperature: hotwire_units::Celsius,
    /// The fluid temperature the calibration was taken at.
    pub reference_temperature: hotwire_units::Celsius,
}

impl TempCorrect {
    /// Builds a correction for a wire held at `wire_temperature`,
    /// calibrated in water at `reference_temperature`.
    pub fn new(
        wire_temperature: hotwire_units::Celsius,
        reference_temperature: hotwire_units::Celsius,
    ) -> Self {
        TempCorrect {
            wire_temperature,
            reference_temperature,
        }
    }

    /// The voltage correction factor `√((Tw − Tr)/(Tw − Ta))` at an
    /// operating fluid temperature. Clamped to a sane range so a fluid
    /// estimate at or above the wire temperature (sensor fault) cannot
    /// produce an infinite or imaginary factor.
    pub fn factor(&self, operating: hotwire_units::Celsius) -> f64 {
        let tw = self.wire_temperature.get();
        let cal_overheat = tw - self.reference_temperature.get();
        let op_overheat = (tw - operating.get()).max(1e-3);
        (cal_overheat / op_overheat)
            .max(0.0)
            .sqrt()
            .clamp(0.1, 10.0)
    }

    /// Refers a measured conductance back to calibration conditions
    /// (multiplies by `factor²`), ready for the King inversion.
    pub fn corrected_conductance(
        &self,
        apparent: ThermalConductance,
        operating: hotwire_units::Celsius,
    ) -> ThermalConductance {
        let f = self.factor(operating);
        ThermalConductance::new(apparent.get() * f * f)
    }

    /// Refers a measured bridge power back to calibration conditions.
    pub fn corrected_power(&self, apparent: Watts, operating: hotwire_units::Celsius) -> Watts {
        let f = self.factor(operating);
        Watts::new(apparent.get() * f * f)
    }
}

impl KingCalibration {
    /// King inversion with the [`TempCorrect`] overheat correction applied
    /// first: decodes an apparent conductance measured in water at
    /// `operating` °C through constants fitted at the correction's
    /// reference temperature.
    pub fn velocity_temp_corrected(
        &self,
        apparent: ThermalConductance,
        correct: &TempCorrect,
        operating: hotwire_units::Celsius,
    ) -> MetersPerSecond {
        self.velocity_from_conductance(correct.corrected_conductance(apparent, operating))
    }
}

/// Least-squares solve of `g = a + b·v^n` for fixed `n`; returns
/// `(a, b, sse)` or `None` if the normal equations are singular.
fn least_squares_ab(points: &[CalPoint], n: f64) -> Option<(f64, f64, f64)> {
    let m = points.len() as f64;
    let (mut sx, mut sxx, mut sy, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for p in points {
        let x = p.velocity.get().abs().powf(n);
        let y = p.conductance.get();
        sx += x;
        sxx += x * x;
        sy += y;
        sxy += x * y;
    }
    let det = m * sxx - sx * sx;
    if det.abs() < 1e-18 {
        return None;
    }
    let a = (sy * sxx - sx * sxy) / det;
    let b = (m * sxy - sx * sy) / det;
    let sse: f64 = points
        .iter()
        .map(|p| {
            let model = a + b * p.velocity.get().abs().powf(n);
            (model - p.conductance.get()).powi(2)
        })
        .sum();
    Some((a, b, sse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_physics::KingsLaw;

    fn synth_points(king: &KingsLaw, velocities: &[f64]) -> Vec<CalPoint> {
        velocities
            .iter()
            .map(|&v| CalPoint {
                velocity: MetersPerSecond::new(v),
                conductance: king.conductance(MetersPerSecond::new(v)),
            })
            .collect()
    }

    #[test]
    fn fit_recovers_known_law() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.2, 0.5, 1.0, 1.5, 2.0, 2.5]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        assert!(
            (cal.a - king.a()).abs() / king.a() < 0.02,
            "A {} vs {}",
            cal.a,
            king.a()
        );
        assert!(
            (cal.b - king.b()).abs() / king.b() < 0.02,
            "B {} vs {}",
            cal.b,
            king.b()
        );
        assert!((cal.n - 0.5).abs() <= 0.01, "n {}", cal.n);
        assert!(cal.rms_relative_residual(&points) < 1e-3);
    }

    #[test]
    fn fit_tolerates_noise() {
        let king = KingsLaw::water_default();
        let mut points = synth_points(&king, &[0.05, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0, 2.5]);
        // ±1 % deterministic "noise".
        for (i, p) in points.iter_mut().enumerate() {
            let e = if i % 2 == 0 { 1.01 } else { 0.99 };
            p.conductance = ThermalConductance::new(p.conductance.get() * e);
        }
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        // Round-trip velocities within a few percent mid-range.
        for &v in &[0.5, 1.0, 2.0] {
            let g = king.conductance(MetersPerSecond::new(v));
            let back = cal.velocity_from_conductance(g);
            assert!(
                (back.get() - v).abs() / v < 0.08,
                "v={v} decoded {}",
                back.get()
            );
        }
    }

    #[test]
    fn inversion_round_trip() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.2, 0.5, 1.0, 1.5, 2.0, 2.5]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        for &v in &[0.1, 0.7, 1.8, 2.4] {
            let p = king.power(MetersPerSecond::new(v), KelvinDelta::new(15.0));
            let back = cal.velocity_from_power(p);
            assert!((back.get() - v).abs() < 0.02 * v.max(0.2), "v={v}");
        }
    }

    #[test]
    fn below_zero_flow_clamps() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let v = cal.velocity_from_conductance(ThermalConductance::new(cal.a * 0.9));
        assert_eq!(v.get(), 0.0);
    }

    #[test]
    fn sensitivity_degrades_with_speed() {
        // dv/dG ∝ v^(1−n): the paper's resolution worsens toward full scale.
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0, 2.5]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let s_low = cal.velocity_sensitivity(MetersPerSecond::new(0.2));
        let s_high = cal.velocity_sensitivity(MetersPerSecond::new(2.5));
        assert!(
            s_high > 2.0 * s_low,
            "sensitivity low {s_low} high {s_high}"
        );
    }

    #[test]
    fn compensation_tracks_property_drift() {
        use hotwire_physics::fluid::Water;
        use hotwire_physics::kings_law::WireGeometry;
        use hotwire_units::Celsius;
        // Fit at 15 °C against the true 15 °C law, then ask the compensated
        // calibration to decode conductances produced by the true 30 °C law:
        // the residual error must be far below the uncompensated one.
        let t_cal = Celsius::new(15.0);
        let t_warm = Celsius::new(30.0);
        let overheat = KelvinDelta::new(15.0);
        let half = KelvinDelta::new(7.5);
        let geom = WireGeometry::maf_heater();
        let king_cal = KingsLaw::from_kramers(&Water::potable(), t_cal + half, geom);
        let king_warm = KingsLaw::from_kramers(&Water::potable(), t_warm + half, geom);
        let points = synth_points_for(&king_cal, &[0.05, 0.3, 0.8, 1.5, 2.2]);
        let cal = KingCalibration::fit(&points, overheat).unwrap();

        let v_true = 1.2;
        let g_warm = king_warm.conductance(MetersPerSecond::new(v_true));
        let raw = cal.velocity_from_conductance(g_warm).get();
        let comp = cal
            .compensated_for(t_warm, t_cal)
            .velocity_from_conductance(g_warm)
            .get();
        let raw_err = (raw - v_true).abs() / v_true;
        let comp_err = (comp - v_true).abs() / v_true;
        assert!(
            raw_err > 0.15,
            "uncompensated error {raw_err} suspiciously small"
        );
        assert!(
            comp_err < 0.2 * raw_err,
            "compensated {comp_err} vs raw {raw_err}"
        );
    }

    fn synth_points_for(king: &KingsLaw, velocities: &[f64]) -> Vec<CalPoint> {
        velocities
            .iter()
            .map(|&v| CalPoint {
                velocity: MetersPerSecond::new(v),
                conductance: king.conductance(MetersPerSecond::new(v)),
            })
            .collect()
    }

    #[test]
    fn temp_correct_regression_at_two_water_temperatures() {
        use hotwire_units::Celsius;
        // A wire servoed at 45 °C, calibrated in 15 °C water. When the
        // season moves the water to 5 °C or 30 °C the overheat changes by
        // ±50 %, and the *apparent* conductance (power over the assumed
        // calibration overheat) misreads badly unless corrected.
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.3, 0.8, 1.5, 2.2]);
        let wire = Celsius::new(45.0);
        let t_ref = Celsius::new(15.0);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(30.0)).unwrap();
        let correct = TempCorrect::new(wire, t_ref);
        let v_true = 1.2;
        let g_conv = king.conductance(MetersPerSecond::new(v_true));

        for (t_op, raw_floor) in [(Celsius::new(5.0), 0.5), (Celsius::new(30.0), 0.5)] {
            // The bridge delivers P = G_conv · (Tw − Ta); the firmware's
            // apparent conductance divides by the calibration overheat.
            let power = g_conv.get() * (wire.get() - t_op.get());
            let apparent = ThermalConductance::new(power / (wire.get() - t_ref.get()));
            let raw = cal.velocity_from_conductance(apparent).get();
            let corrected = cal.velocity_temp_corrected(apparent, &correct, t_op).get();
            let raw_err = (raw - v_true).abs() / v_true;
            let corr_err = (corrected - v_true).abs() / v_true;
            // Regression pins: uncorrected error is large (the cold case
            // over-reads, the warm case under-reads), the corrected decode
            // collapses it by better than 50×.
            assert!(
                raw_err > raw_floor,
                "uncorrected error {raw_err} at {} °C suspiciously small",
                t_op.get()
            );
            assert!(
                corr_err < 0.02 * raw_err,
                "corrected {corr_err} vs raw {raw_err} at {} °C",
                t_op.get()
            );
        }
        // The correction factor itself: √(30/40) cold, √(30/15) warm.
        assert!((correct.factor(Celsius::new(5.0)) - (30.0f64 / 40.0).sqrt()).abs() < 1e-12);
        assert!((correct.factor(Celsius::new(30.0)) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn temp_correct_clamps_degenerate_overheat() {
        use hotwire_units::Celsius;
        let correct = TempCorrect::new(Celsius::new(45.0), Celsius::new(15.0));
        // Fluid estimate at/above the wire temperature: factor rails at the
        // clamp instead of going infinite.
        assert!(correct.factor(Celsius::new(45.0)) <= 10.0);
        assert!(correct.factor(Celsius::new(60.0)) <= 10.0);
    }

    #[test]
    fn eeprom_round_trip() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let mut eeprom = CalibrationStore::new();
        cal.store(&mut eeprom).unwrap();
        let loaded = KingCalibration::load(&eeprom).unwrap();
        assert_eq!(loaded, cal);
    }

    #[test]
    fn load_detects_corruption() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let mut eeprom = CalibrationStore::new();
        cal.store(&mut eeprom).unwrap();
        eeprom.corrupt(KingCalibration::EEPROM_SLOT, 3);
        assert!(KingCalibration::load(&eeprom).is_err());
    }

    #[test]
    fn store_writes_redundant_mirror() {
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let mut eeprom = CalibrationStore::new();
        cal.store(&mut eeprom).unwrap();
        // The mirror is a byte-identical, independently loadable copy.
        let mirror = KingCalibration::load_slot(&eeprom, KingCalibration::REDUNDANT_SLOT).unwrap();
        assert_eq!(mirror, cal);
        // Corrupting the primary leaves the mirror intact.
        eeprom.corrupt(KingCalibration::EEPROM_SLOT, 5);
        assert!(KingCalibration::load(&eeprom).is_err());
        assert_eq!(
            KingCalibration::load_slot(&eeprom, KingCalibration::REDUNDANT_SLOT).unwrap(),
            cal
        );
    }

    #[test]
    fn repeated_stores_wear_both_slots_equally() {
        // Persist-heavy maintenance policies rate-limit on slot wear, so
        // the accounting must be balanced: every `store` costs exactly
        // one write cycle on the primary AND one on the mirror — never
        // double-charging one slot or skipping the other.
        let king = KingsLaw::water_default();
        let points = synth_points(&king, &[0.05, 0.5, 1.0, 2.0]);
        let cal = KingCalibration::fit(&points, KelvinDelta::new(15.0)).unwrap();
        let mut eeprom = CalibrationStore::new();
        for _ in 0..25 {
            cal.store(&mut eeprom).unwrap();
        }
        assert_eq!(eeprom.slot_write_cycles(KingCalibration::EEPROM_SLOT), 25);
        assert_eq!(
            eeprom.slot_write_cycles(KingCalibration::REDUNDANT_SLOT),
            25
        );
        assert_eq!(eeprom.max_slot_wear(), 25);
        // No other slot picked up phantom wear.
        let worn: u64 = eeprom.wear_table().iter().sum();
        assert_eq!(worn, 50);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        let king = KingsLaw::water_default();
        assert!(
            KingCalibration::fit(&synth_points(&king, &[0.5, 1.0]), KelvinDelta::new(15.0))
                .is_err()
        );
        assert!(KingCalibration::fit(
            &synth_points(&king, &[1.0, 1.0, 1.0]),
            KelvinDelta::new(15.0)
        )
        .is_err());
        assert!(
            KingCalibration::fit(&synth_points(&king, &[0.1, 0.5, 1.0]), KelvinDelta::ZERO)
                .is_err()
        );
    }
}
