//! Heat-pulse time-of-flight flow meter — the second sensing modality.
//!
//! Where the CTA meter ([`FlowMeter`](crate::FlowMeter)) servoes a wire at
//! constant overheat and reads flow from the bridge power, this instrument
//! works like the waterxchange exchange-flow sensor: it **fires a central
//! heater for a few milliseconds**, then watches an array of four
//! thermistors bracketing the heater for the advected warm plume. The
//! sensor that sees the plume tells the *direction*; the **time-to-peak**
//! of the far sensor on the downwind side gives the *velocity* through the
//! advection–diffusion relation
//!
//! ```text
//! v² t_p² + 2 D t_p − x² = 0   ⇒   v = √(x² − 2 D t_p) / t_p
//! ```
//!
//! (the peak time of a 1-D Gaussian plume released at the origin and
//! observed at distance `x` under effective thermal dispersion `D`).
//!
//! The modality trades very differently from CTA:
//!
//! * **Power** — the heater runs a ~2.5 % duty cycle instead of a
//!   continuously servoed bridge, so average drive power is orders of
//!   magnitude lower.
//! * **Resolution / rate** — one velocity decode per pulse cycle
//!   (hundreds of milliseconds), with time-to-peak quantized by the
//!   control-rate sampling of the thermistors; between decodes the output
//!   holds. CTA's continuous servo resolves far finer and faster.
//! * **Fouling robustness** — scale on the sensor head *attenuates* the
//!   plume signal (thermal insulation) and adds a small diffusive lag,
//!   but barely moves the time-to-peak — whereas CTA reads flow from the
//!   very conductance that fouling corrupts. This is the `m1`
//!   experiment's head-to-head axis.
//!
//! Determinism follows the same contract as the CTA meter (see
//! [`crate::meter`]): all noise comes from a seeded per-meter generator
//! with a fixed draw order (four thermistor draws per control tick, sensor
//! order), and [`state_digest`](HeatPulseMeter::state_digest) folds every
//! mutable word. The meter has no oversampled inner loop, so
//! `ticks_per_frame() == 1` and the frame path is trivially bit-identical
//! to per-tick stepping.

use crate::config::{fnv1a64, FlowMeterConfig};
use crate::direction::FlowDirection;
use crate::error::CoreError;
use crate::faults::{AdcFault, FaultFlags};
use crate::flow_meter::Measurement;
use crate::health::{HealthMonitor, HealthState};
use crate::meter::Meter;
use crate::obs::{CalSlot, EventKind, ObsEvent, Observer};
use hotwire_afe::ThermometerDac;
use hotwire_isif::eeprom::CalibrationStore;
use hotwire_physics::stochastic::standard_normal;
use hotwire_physics::SensorEnvironment;
use hotwire_units::{MetersPerSecond, Seconds, ThermalConductance, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thermistor positions along the pipe axis, metres from the heater
/// (positive = downstream for forward flow): near/far pairs on both sides,
/// the waterxchange 15 mm ring flattened onto the pipe axis.
pub const SENSOR_X_M: [f64; 4] = [0.0075, 0.015, -0.0075, -0.015];

/// Effective thermal dispersion of the plume in the pipe, m²/s. This is
/// Taylor shear dispersion, orders above molecular diffusion: it spreads
/// the plume to a few millimetres by the time it reaches the sensors, so
/// the transit is resolved by several control-rate samples (a
/// molecular-only plume would be ~0.25 mm wide and alias hopelessly at
/// 2 ms sampling).
const D_EFF: f64 = 4.0e-4;

/// Source strength of one fired pulse, K·m (line-source energy per unit
/// area normalized by the fluid heat capacity).
const SOURCE_K_M: f64 = 0.010;

/// Fractional increase of effective dispersion per °C above 15 °C
/// (viscosity falls, shear dispersion grows).
const D_TEMP_SLOPE: f64 = 0.02;

/// Fouling e-fold attenuation thickness, µm: scale insulates the sensor
/// head, shrinking the observed plume amplitude.
const FOULING_ATTEN_UM: f64 = 40.0;

/// Extra diffusive lag through the scale layer, s/µm.
const FOULING_LAG_S_PER_UM: f64 = 2.0e-5;

/// Amplitude knock-down at full bubble blanket (vapor insulates).
const BUBBLE_ATTEN: f64 = 0.85;

/// Bubble-detachment time constant, s (coverage decays exponentially).
const BUBBLE_TAU_S: f64 = 2.0;

/// Regularization of the plume clock, s (avoids the t → 0 singularity in
/// the Green's function during the fire window).
const T_REG_S: f64 = 1.0e-3;

/// Consecutive frozen-code control ticks before the acquisition watchdog
/// fires (mirrors the CTA frozen-code discriminator).
const FROZEN_LIMIT: u32 = 32;

/// EWMA weight per decode for the long-term peak-amplitude baseline the
/// fouling discriminator compares against.
const AMP_EWMA_ALPHA: f64 = 0.02;

/// Fouling flag threshold: flag when the amplitude EWMA falls below this
/// fraction of the first healthy decode's amplitude.
const FOULING_AMP_RATIO: f64 = 0.6;

/// Pulse-cycle timing and front-end parameters, derived from the shared
/// [`FlowMeterConfig`] (control rate, full scale) plus modality constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatPulseConfig {
    /// Scenario seconds per control tick (thermistor sample period).
    pub control_period_s: f64,
    /// Full-scale velocity (shared with the CTA config).
    pub full_scale: MetersPerSecond,
    /// Pre-fire baseline window, s.
    pub baseline_s: f64,
    /// Heater-on window, s.
    pub fire_s: f64,
    /// Plume-monitor window (from fire start), s.
    pub monitor_s: f64,
    /// Idle tail before the next cycle, s.
    pub idle_s: f64,
    /// Heater electrical power while firing, W.
    pub heater_power: Watts,
    /// Thermistor-bias standby power, W.
    pub standby_power: Watts,
    /// Thermistor (encapsulated bead) first-order time constant, s.
    pub sensor_tau_s: f64,
    /// Thermistor front-end gain, ADC codes per kelvin.
    pub gain_codes_per_k: f64,
    /// Thermistor ADC noise, codes RMS.
    pub noise_codes_rms: f64,
    /// Down-vs-up peak asymmetry below which direction is indeterminate,
    /// codes.
    pub deadband_codes: f64,
    /// Minimum peak rise over baseline for a valid decode, codes.
    pub valid_threshold_codes: f64,
}

impl HeatPulseConfig {
    /// Derives the modality configuration from the shared firmware config:
    /// the thermistors sample at the CTA control rate, full scale is
    /// shared, and the cycle timing uses the waterxchange-style windows.
    pub fn from_flow_config(config: &FlowMeterConfig) -> Self {
        HeatPulseConfig {
            control_period_s: config.decimation as f64 / config.modulator_rate.get(),
            full_scale: config.full_scale,
            baseline_s: 0.02,
            fire_s: 0.01,
            monitor_s: 0.35,
            idle_s: 0.02,
            heater_power: Watts::new(0.080),
            standby_power: Watts::new(2.0e-4),
            sensor_tau_s: 0.005,
            gain_codes_per_k: 2000.0,
            noise_codes_rms: 3.0,
            deadband_codes: 10.0,
            valid_threshold_codes: 12.0,
        }
    }

    fn ticks(&self, seconds: f64) -> u32 {
        ((seconds / self.control_period_s).round() as u32).max(1)
    }

    /// Whole pulse cycle, s.
    pub fn cycle_s(&self) -> f64 {
        self.baseline_s + self.fire_s + self.monitor_s + self.idle_s
    }
}

/// The time-of-flight calibration record: a decode scale factor, the
/// effective dispersion the inversion assumes, and the sensor spacing.
/// Persisted to calibration storage (primary slot 1, redundant mirror
/// slot 6 — disjoint from the King record's 0/7) with the same CRC +
/// redundant-fallback machinery the CTA calibration uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatPulseCalibration {
    /// Multiplicative decode correction (design model = 1.0).
    pub scale: f64,
    /// Effective dispersion the inversion assumes, m²/s.
    pub diffusivity: f64,
    /// Far-sensor spacing the inversion assumes, m.
    pub spacing_m: f64,
}

impl HeatPulseCalibration {
    /// Primary calibration-storage slot.
    pub const EEPROM_SLOT: usize = 1;
    /// Redundant mirror slot.
    pub const REDUNDANT_SLOT: usize = 6;

    /// The design-model calibration (no field correction).
    pub fn design() -> Self {
        HeatPulseCalibration {
            scale: 1.0,
            diffusivity: D_EFF,
            spacing_m: SENSOR_X_M[1],
        }
    }

    /// Inverts one observed time-to-peak at sensor distance `x_m` into a
    /// velocity magnitude, m/s (the advection–diffusion peak relation with
    /// this record's dispersion, times the field scale).
    pub fn decode(&self, x_m: f64, t_peak_s: f64) -> f64 {
        if t_peak_s <= 0.0 {
            return 0.0;
        }
        let adv = (x_m * x_m - 2.0 * self.diffusivity * t_peak_s).max(0.0);
        self.scale * adv.sqrt() / t_peak_s
    }

    /// Fits the field scale from observed `(true velocity m/s, time-to-peak
    /// s, sensor distance m)` triples: the mean ratio of truth to the
    /// design-model decode.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Calibration`] when no usable point (positive
    /// velocity and a decodable peak) is supplied.
    pub fn fitted(&self, points: &[(f64, f64, f64)]) -> Result<Self, CoreError> {
        let design = HeatPulseCalibration {
            scale: 1.0,
            ..*self
        };
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(v_true, t_peak, x_m) in points {
            let decoded = design.decode(x_m, t_peak);
            if v_true > 0.0 && decoded > 0.0 {
                sum += v_true / decoded;
                n += 1;
            }
        }
        if n == 0 {
            return Err(CoreError::Calibration {
                reason: "heat-pulse fit needs at least one decodable point",
            });
        }
        Ok(HeatPulseCalibration {
            scale: sum / n as f64,
            ..*self
        })
    }

    /// Writes the record to both the primary slot and the redundant mirror.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] if a slot write fails.
    pub fn store(&self, eeprom: &mut CalibrationStore) -> Result<(), CoreError> {
        self.store_slot(eeprom, Self::EEPROM_SLOT)?;
        self.store_slot(eeprom, Self::REDUNDANT_SLOT)
    }

    /// Writes the record to one explicit slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] if the write fails.
    pub fn store_slot(&self, eeprom: &mut CalibrationStore, slot: usize) -> Result<(), CoreError> {
        let payload =
            CalibrationStore::encode_f64s(&[self.scale, self.diffusivity, self.spacing_m]);
        eeprom.write_record(slot, &payload)?;
        Ok(())
    }

    /// Reads the record from the primary slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] on a missing or corrupt record.
    pub fn load(eeprom: &CalibrationStore) -> Result<Self, CoreError> {
        Self::load_slot(eeprom, Self::EEPROM_SLOT)
    }

    /// Reads the record from one explicit slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] on a missing or corrupt record, or
    /// [`CoreError::Calibration`] on a malformed payload.
    pub fn load_slot(eeprom: &CalibrationStore, slot: usize) -> Result<Self, CoreError> {
        let values = CalibrationStore::decode_f64s(eeprom.read_record(slot)?)?;
        if values.len() != 3 {
            return Err(CoreError::Calibration {
                reason: "heat-pulse calibration record holds three values",
            });
        }
        Ok(HeatPulseCalibration {
            scale: values[0],
            diffusivity: values[1],
            spacing_m: values[2],
        })
    }
}

/// Where the meter is inside its pulse cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CyclePhase {
    /// Averaging thermistor baselines, heater off.
    Baseline,
    /// Heater on.
    Fire,
    /// Heater off, watching for the plume.
    Monitor,
    /// Dead time before the next baseline.
    Idle,
}

/// Per-sensor peak tracker: running maximum with its tick and the codes
/// either side (for the parabolic sub-sample refinement).
#[derive(Debug, Clone, Copy, Default)]
struct PeakTrack {
    baseline_sum: f64,
    baseline_n: u32,
    best_code: i32,
    best_tick: u32,
    before_best: i32,
    after_best: Option<i32>,
    prev_code: i32,
}

impl PeakTrack {
    fn baseline(&self) -> f64 {
        if self.baseline_n == 0 {
            0.0
        } else {
            self.baseline_sum / self.baseline_n as f64
        }
    }

    fn reset_window(&mut self) {
        self.best_code = i32::MIN;
        self.best_tick = 0;
        self.before_best = 0;
        self.after_best = None;
        self.prev_code = 0;
    }

    fn push(&mut self, tick: u32, code: i32) {
        if code > self.best_code {
            self.before_best = self.prev_code;
            self.best_code = code;
            self.best_tick = tick;
            self.after_best = None;
        } else if self.after_best.is_none() && tick == self.best_tick + 1 {
            self.after_best = Some(code);
        }
        self.prev_code = code;
    }

    /// Sub-sample peak time via a three-point parabolic fit around the
    /// argmax (ticks); falls back to the raw argmax at window edges.
    fn refined_peak_tick(&self) -> f64 {
        let (b, m) = (self.before_best as f64, self.best_code as f64);
        let Some(a) = self.after_best else {
            return self.best_tick as f64;
        };
        let a = a as f64;
        let denom = b - 2.0 * m + a;
        if denom.abs() < 1e-9 {
            return self.best_tick as f64;
        }
        let delta = 0.5 * (b - a) / denom;
        self.best_tick as f64 + delta.clamp(-0.5, 0.5)
    }
}

/// The heat-pulse time-of-flight meter. See the [module docs](self).
#[derive(Debug)]
pub struct HeatPulseMeter {
    config: HeatPulseConfig,
    calibration: Option<HeatPulseCalibration>,
    eeprom: CalibrationStore,
    rng: StdRng,
    build_seed: u64,

    // Cycle timing (control ticks).
    baseline_ticks: u32,
    fire_ticks: u32,
    monitor_ticks: u32,
    idle_ticks: u32,
    cycle_tick: u32,

    // Plume simulation state.
    plume_live: bool,
    t_since_fire_mid: f64,
    x_adv_m: f64,
    sensor_k: [f64; 4],
    tracks: [PeakTrack; 4],

    // Decoded output, held between cycles.
    last_velocity: MetersPerSecond,
    last_direction: FlowDirection,
    last_peak_code: i32,
    decodes: u64,
    valid_decodes: u64,

    // Degradation state.
    drive_fraction: f64,
    fouling_um: f64,
    bubble_coverage: f64,
    amp_ewma: f64,
    amp_reference: f64,

    // Supervision.
    health: HealthMonitor,
    fault_latch: FaultFlags,
    adc_fault: Option<AdcFault>,
    frozen_streak: u32,
    last_codes: [i32; 4],

    control_tick: u64,
    /// Control tick at which the active calibration was installed or last
    /// refit (the zero point of `calibration_age`).
    cal_tick: u64,
    observer: Option<Box<dyn Observer>>,
}

impl HeatPulseMeter {
    /// Builds a meter from the shared firmware configuration, writing the
    /// design calibration to both storage slots (factory state).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration or a storage
    /// write failure.
    pub fn new(config: FlowMeterConfig, seed: u64) -> Result<Self, CoreError> {
        config.validate()?;
        let hp = HeatPulseConfig::from_flow_config(&config);
        let mut eeprom = CalibrationStore::new();
        let factory = HeatPulseCalibration::design();
        factory.store(&mut eeprom)?;
        let control_rate = 1.0 / hp.control_period_s;
        Ok(HeatPulseMeter {
            baseline_ticks: hp.ticks(hp.baseline_s),
            fire_ticks: hp.ticks(hp.fire_s),
            monitor_ticks: hp.ticks(hp.monitor_s),
            idle_ticks: hp.ticks(hp.idle_s),
            cycle_tick: 0,
            plume_live: false,
            t_since_fire_mid: 0.0,
            x_adv_m: 0.0,
            sensor_k: [0.0; 4],
            tracks: [PeakTrack::default(); 4],
            last_velocity: MetersPerSecond::ZERO,
            last_direction: FlowDirection::Indeterminate,
            last_peak_code: 0,
            decodes: 0,
            valid_decodes: 0,
            drive_fraction: 1.0,
            fouling_um: 0.0,
            bubble_coverage: 0.0,
            amp_ewma: 0.0,
            amp_reference: 0.0,
            // Same supervisor tuning as the CTA meter: escalate after 5 s
            // of continuous fault, 0.5 s of quiet per recovery stage.
            health: HealthMonitor::new((5.0 * control_rate) as u64, (0.5 * control_rate) as u64),
            fault_latch: FaultFlags::default(),
            adc_fault: None,
            frozen_streak: 0,
            last_codes: [i32::MIN; 4],
            control_tick: 0,
            cal_tick: 0,
            observer: None,
            rng: StdRng::seed_from_u64(seed ^ 0x4850_4D31),
            build_seed: seed,
            calibration: Some(factory),
            eeprom,
            config: hp,
        })
    }

    /// The modality configuration.
    pub fn config(&self) -> &HeatPulseConfig {
        &self.config
    }

    /// The active calibration record (`None` only after an unrecoverable
    /// reload failure).
    pub fn calibration(&self) -> Option<&HeatPulseCalibration> {
        self.calibration.as_ref()
    }

    /// Installs a calibration record and persists it to both slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] if a storage write fails.
    pub fn install_calibration(&mut self, cal: HeatPulseCalibration) -> Result<(), CoreError> {
        cal.store(&mut self.eeprom)?;
        self.calibration = Some(cal);
        self.cal_tick = self.control_tick;
        Ok(())
    }

    /// The seed this meter was built with.
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Velocity decodes attempted / accepted so far.
    pub fn decode_counts(&self) -> (u64, u64) {
        (self.decodes, self.valid_decodes)
    }

    /// Direct access to the calibration storage (tests, fault hooks).
    pub fn eeprom_mut(&mut self) -> &mut CalibrationStore {
        &mut self.eeprom
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(observer) = self.observer.as_mut() {
            observer.record(ObsEvent {
                tick: self.control_tick,
                kind,
            });
        }
    }

    /// Ticks in one full cycle.
    fn cycle_ticks(&self) -> u32 {
        self.baseline_ticks + self.fire_ticks + self.monitor_ticks + self.idle_ticks
    }

    fn phase(&self) -> CyclePhase {
        let t = self.cycle_tick;
        if t < self.baseline_ticks {
            CyclePhase::Baseline
        } else if t < self.baseline_ticks + self.fire_ticks {
            CyclePhase::Fire
        } else if t < self.baseline_ticks + self.fire_ticks + self.monitor_ticks {
            CyclePhase::Monitor
        } else {
            CyclePhase::Idle
        }
    }

    /// The expected thermistor overtemperature at sensor `i`, kelvin, for
    /// the current plume state (1-D Green's function of an impulse
    /// released at the fire midpoint, attenuated by degradation).
    fn plume_k(&self, i: usize, diffusivity: f64) -> f64 {
        if !self.plume_live {
            return 0.0;
        }
        // The impulse releases at the fire midpoint; before that (and for
        // lag-shifted sample times) there is no plume yet.
        let t = self.t_since_fire_mid + T_REG_S;
        if t <= 0.0 {
            return 0.0;
        }
        let spread = 4.0 * diffusivity * t;
        let dx = SENSOR_X_M[i] - self.x_adv_m;
        let gauss = (-dx * dx / spread).exp();
        let atten = (-self.fouling_um / FOULING_ATTEN_UM).exp()
            * (1.0 - BUBBLE_ATTEN * self.bubble_coverage)
            * self.drive_fraction
            * self.drive_fraction;
        SOURCE_K_M / (core::f64::consts::PI * spread).sqrt() * gauss * atten
    }

    /// Decodes direction and velocity from the tracked peaks at the end of
    /// a monitor window.
    fn decode_cycle(&mut self) {
        self.decodes += 1;
        let dt = self.config.control_period_s;
        let fire_start_tick = self.baseline_ticks;
        // Peak rises over baseline, codes.
        let rises: Vec<f64> = (0..4)
            .map(|i| {
                let t = &self.tracks[i];
                if t.best_code == i32::MIN {
                    0.0
                } else {
                    t.best_code as f64 - t.baseline()
                }
            })
            .collect();
        let down = rises[0] + rises[1];
        let up = rises[2] + rises[3];
        let best_rise = rises.iter().cloned().fold(0.0f64, f64::max);

        if best_rise < self.config.valid_threshold_codes {
            // No plume seen inside the window: stagnant (or the signal is
            // buried — degradation the supervisor already tracks). Report
            // still water rather than holding a stale reading forever.
            self.last_velocity = MetersPerSecond::ZERO;
            self.last_direction = FlowDirection::Indeterminate;
            self.last_peak_code = best_rise as i32;
            return;
        }
        self.valid_decodes += 1;
        self.last_peak_code = best_rise as i32;
        // Long-term amplitude baseline for the fouling discriminator.
        if self.amp_reference == 0.0 {
            self.amp_reference = best_rise;
            self.amp_ewma = best_rise;
        } else {
            self.amp_ewma += AMP_EWMA_ALPHA * (best_rise - self.amp_ewma);
        }

        // Direction needs the plume clearly on one side: a relative
        // asymmetry (stagnant water spreads symmetrically, so both sides
        // see comparable rises) on top of an absolute noise floor.
        let asymmetry = (down - up) / (down + up).max(1.0);
        let (dir, side) =
            if (down - up).abs() < self.config.deadband_codes || asymmetry.abs() < 0.25 {
                (FlowDirection::Indeterminate, None)
            } else if down > up {
                (FlowDirection::Forward, Some((0usize, 1usize)))
            } else {
                (FlowDirection::Reverse, Some((2usize, 3usize)))
            };
        self.last_direction = dir;
        let Some((near, far)) = side else {
            self.last_velocity = MetersPerSecond::ZERO;
            return;
        };

        // Prefer the far sensor (better ToF leverage); fall back to the
        // near one when the plume has not reached the far sensor inside
        // the window (its running max sat at the final tick, still rising).
        let window_end = self.baseline_ticks + self.fire_ticks + self.monitor_ticks - 1;
        let pick = |idx: usize| -> Option<(usize, f64)> {
            let t = &self.tracks[idx];
            let usable = t.best_code != i32::MIN
                && (t.best_code as f64 - t.baseline()) >= self.config.valid_threshold_codes
                && t.best_tick < window_end;
            usable.then(|| (idx, t.refined_peak_tick()))
        };
        let Some((idx, peak_tick)) = pick(far).or_else(|| pick(near)) else {
            // Plume detected (direction is known) but no settled peak:
            // below the modality's velocity floor.
            self.last_velocity = MetersPerSecond::ZERO;
            return;
        };
        // Time from the source release (fire midpoint) to the peak. The
        // residual thermistor-bead delay (sub-millisecond at design flows,
        // growing toward τ_s at low velocity) is left in: it is exactly
        // the kind of front-end systematic the field-scale calibration
        // absorbs.
        let fire_mid_tick = fire_start_tick as f64 + self.fire_ticks as f64 / 2.0;
        let t_peak = ((peak_tick - fire_mid_tick) * dt).max(dt * 0.5);
        let cal = self
            .calibration
            .unwrap_or_else(HeatPulseCalibration::design);
        let speed = cal
            .decode(SENSOR_X_M[idx].abs(), t_peak)
            .min(self.config.full_scale.get() * 1.2);
        let signed = match dir {
            FlowDirection::Forward => speed,
            FlowDirection::Reverse => -speed,
            FlowDirection::Indeterminate => 0.0,
        };
        self.last_velocity = MetersPerSecond::new(signed);
    }

    /// One control tick: advance the cycle state machine, sample the
    /// thermistors, update supervision, and emit the held measurement.
    fn control_step(&mut self, env: SensorEnvironment) -> Measurement {
        let dt = self.config.control_period_s;
        let phase = self.phase();

        // Cycle transitions happen on entry ticks.
        if self.cycle_tick == self.baseline_ticks {
            // Fire begins: release the plume clock at the fire midpoint.
            self.plume_live = true;
            self.t_since_fire_mid = -self.config.fire_s / 2.0;
            self.x_adv_m = 0.0;
            for t in &mut self.tracks {
                t.reset_window();
            }
        }

        // Physics: plume advects with the (signed) probe velocity; the
        // dispersion grows slightly with water temperature.
        let diffusivity =
            D_EFF * (1.0 + D_TEMP_SLOPE * (env.fluid_temperature.get() - 15.0)).max(0.25);
        if self.plume_live {
            self.t_since_fire_mid += dt;
            if self.t_since_fire_mid > 0.0 {
                // Partial step on the tick where the clock crosses zero,
                // so x_adv tracks v·t exactly under constant flow.
                self.x_adv_m += env.velocity.get() * dt.min(self.t_since_fire_mid);
            }
        }
        // Bubble blankets detach on their own.
        self.bubble_coverage *= (-dt / BUBBLE_TAU_S).exp();
        if self.bubble_coverage < 1e-6 {
            self.bubble_coverage = 0.0;
        }

        // Thermistor front end: first-order bead lag onto the plume model,
        // then gain, noise and quantization — four seeded noise draws per
        // control tick, sensor order, every tick (constant draw rate).
        let lag = dt / self.config.sensor_tau_s;
        let fouling_lag = self.fouling_um * FOULING_LAG_S_PER_UM;
        let mut codes = [0i32; 4];
        for (i, code) in codes.iter_mut().enumerate() {
            // The scale layer delays the plume by a diffusive lag: sample
            // the Green's function slightly in the past.
            let target = if fouling_lag > 0.0 && self.plume_live {
                let held_t = self.t_since_fire_mid;
                self.t_since_fire_mid = (held_t - fouling_lag).max(-self.config.fire_s / 2.0);
                let k = self.plume_k(i, diffusivity);
                self.t_since_fire_mid = held_t;
                k
            } else {
                self.plume_k(i, diffusivity)
            };
            self.sensor_k[i] += lag * (target - self.sensor_k[i]);
            let noise = standard_normal(&mut self.rng) * self.config.noise_codes_rms;
            let dc = 500.0 + 20.0 * (env.fluid_temperature.get() - 15.0);
            let raw = (dc + self.config.gain_codes_per_k * self.sensor_k[i] + noise)
                .clamp(i16::MIN as f64, i16::MAX as f64) as i32;
            *code = match self.adc_fault {
                Some(AdcFault::Stuck(code)) => code,
                Some(AdcFault::Offset(off)) => raw.saturating_add(off),
                None => raw,
            };
        }

        // Acquisition watchdog: all four channels frozen for a sustained
        // streak means a dead converter (noise makes natural freezes
        // vanishingly rare).
        let frozen = codes == self.last_codes;
        self.last_codes = codes;
        self.frozen_streak = if frozen { self.frozen_streak + 1 } else { 0 };
        let watchdog_expired = self.frozen_streak >= FROZEN_LIMIT;
        if watchdog_expired {
            self.frozen_streak = 0;
            self.emit(EventKind::WatchdogExpired);
        }

        // Peak tracking and baseline accumulation.
        match phase {
            CyclePhase::Baseline => {
                for (i, track) in self.tracks.iter_mut().enumerate() {
                    track.baseline_sum += codes[i] as f64;
                    track.baseline_n += 1;
                }
            }
            CyclePhase::Fire | CyclePhase::Monitor => {
                for (i, track) in self.tracks.iter_mut().enumerate() {
                    track.push(self.cycle_tick, codes[i]);
                }
            }
            CyclePhase::Idle => {}
        }

        // End of the monitor window: decode.
        if self.cycle_tick + 1 == self.baseline_ticks + self.fire_ticks + self.monitor_ticks {
            self.decode_cycle();
            self.plume_live = false;
        }

        // Degradation flags feed the shared graceful-degradation
        // supervisor exactly as the CTA discriminators do.
        self.fault_latch = FaultFlags {
            bubble_activity: self.bubble_coverage > 0.02,
            fouling_suspected: self.amp_reference > 0.0
                && self.amp_ewma < FOULING_AMP_RATIO * self.amp_reference,
            loop_saturated: false,
        };
        self.health.update(self.fault_latch, watchdog_expired);
        if let Some((from, to)) = self.health.take_transition() {
            self.emit(EventKind::HealthTransition { from, to });
        }

        let firing = phase == CyclePhase::Fire;
        let drive_power =
            self.config.heater_power.get() * self.drive_fraction * self.drive_fraction;
        let measurement = Measurement {
            velocity: self.last_velocity,
            speed: MetersPerSecond::new(self.last_velocity.get().abs()),
            direction: self.last_direction,
            supply_code: if firing {
                (4095.0 * self.drive_fraction) as u32
            } else {
                0
            },
            conditioned_code: self.last_peak_code,
            conductance: ThermalConductance::ZERO,
            wire_power: if firing {
                Watts::new(drive_power)
            } else {
                self.config.standby_power
            },
            faults: self.fault_latch,
            health: self.health.state(),
            tick: self.control_tick,
        };

        self.control_tick += 1;
        self.cycle_tick += 1;
        if self.cycle_tick == self.cycle_ticks() {
            self.cycle_tick = 0;
            for t in &mut self.tracks {
                *t = PeakTrack::default();
            }
        }
        measurement
    }
}

impl Meter for HeatPulseMeter {
    fn step(&mut self, env: SensorEnvironment) -> Option<Measurement> {
        Some(self.control_step(env))
    }

    fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
        // No oversampled inner loop: one frame is one control tick.
        self.control_step(env)
    }

    fn frame_phase(&self) -> u32 {
        0
    }

    fn ticks_per_frame(&self) -> u32 {
        1
    }

    fn control_period(&self) -> Seconds {
        Seconds::new(self.config.control_period_s)
    }

    fn full_scale(&self) -> MetersPerSecond {
        self.config.full_scale
    }

    fn health(&self) -> HealthState {
        self.health.state()
    }

    /// Duty-cycle-averaged drive power plus the thermistor bias — the
    /// modality's headline advantage over the continuously servoed bridge.
    fn power_draw(&self) -> Watts {
        let cycle = self.config.cycle_s();
        let fire = self.config.fire_s;
        let drive = self.config.heater_power.get() * self.drive_fraction * self.drive_fraction;
        Watts::new((drive * fire + self.config.standby_power.get() * (cycle - fire)) / cycle)
    }

    fn state_digest(&self) -> u64 {
        let rng = self.rng.state();
        let cal = self.calibration.unwrap_or(HeatPulseCalibration {
            scale: 0.0,
            diffusivity: 0.0,
            spacing_m: 0.0,
        });
        let mut words: Vec<u64> = vec![
            self.control_tick,
            self.cycle_tick as u64,
            rng[0],
            rng[1],
            rng[2],
            rng[3],
            u64::from(self.plume_live),
            self.t_since_fire_mid.to_bits(),
            self.x_adv_m.to_bits(),
            self.last_velocity.get().to_bits(),
            self.last_direction.signum() as i64 as u64,
            self.last_peak_code as i64 as u64,
            self.decodes,
            self.valid_decodes,
            self.drive_fraction.to_bits(),
            self.fouling_um.to_bits(),
            self.bubble_coverage.to_bits(),
            self.amp_ewma.to_bits(),
            self.amp_reference.to_bits(),
            self.health.state() as u64,
            u64::from(self.fault_latch.bubble_activity)
                | u64::from(self.fault_latch.fouling_suspected) << 1
                | u64::from(self.fault_latch.loop_saturated) << 2,
            self.frozen_streak as u64,
            cal.scale.to_bits(),
            cal.diffusivity.to_bits(),
            cal.spacing_m.to_bits(),
        ];
        words.push(self.cal_tick);
        for i in 0..4 {
            words.push(self.sensor_k[i].to_bits());
            words.push(self.last_codes[i] as i64 as u64);
        }
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        self.observer.take()
    }

    fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    fn observe(&mut self, kind: EventKind) {
        self.emit(kind);
    }

    fn reload_calibration(&mut self) -> Result<(), CoreError> {
        let outcome = match HeatPulseCalibration::load(&self.eeprom) {
            Ok(cal) => {
                self.calibration = Some(cal);
                self.emit(EventKind::CalibrationReloaded {
                    slot: CalSlot::Primary,
                });
                Ok(())
            }
            Err(primary) => {
                match HeatPulseCalibration::load_slot(
                    &self.eeprom,
                    HeatPulseCalibration::REDUNDANT_SLOT,
                ) {
                    Ok(cal) => {
                        cal.store_slot(&mut self.eeprom, HeatPulseCalibration::EEPROM_SLOT)?;
                        self.calibration = Some(cal);
                        self.health.note_eeprom_fallback();
                        self.emit(EventKind::CalibrationReloaded {
                            slot: CalSlot::Redundant,
                        });
                        Ok(())
                    }
                    Err(_) => {
                        self.health.note_unrecoverable();
                        self.emit(EventKind::CalibrationReloadFailed);
                        Err(primary)
                    }
                }
            }
        };
        if let Some((from, to)) = self.health.take_transition() {
            self.emit(EventKind::HealthTransition { from, to });
        }
        outcome
    }

    /// Accepts the current amplitude EWMA as the new fouling reference.
    /// Exact state no-op when the drift estimate is already zero (either
    /// no decode has anchored the reference yet, or the EWMA sits exactly
    /// on it).
    fn re_zero(&mut self) {
        if self.amp_reference > 0.0 {
            self.amp_reference = self.amp_ewma;
        }
    }

    /// Compensates the fouling-induced peak lag inferred from the
    /// amplitude droop: scale insulates the sensor head (amplitude falls
    /// as `exp(-f/F)`) *and* delays the peak by a diffusive lag
    /// (`FOULING_LAG_S_PER_UM` per µm), which under-reads velocity. The
    /// refit inverts the attenuation model to estimate the layer
    /// thickness, folds the lag bias at the characteristic transit time
    /// into the calibration scale, and re-anchors the amplitude
    /// reference.
    fn refit_from_recent(&mut self) -> bool {
        let d = Meter::drift_estimate(self);
        if d == 0.0 {
            return false;
        }
        let Some(cal) = self.calibration.as_mut() else {
            return false;
        };
        // Inferred scale thickness (negative when the signal *grew* —
        // cleaning, supply restored — which walks the correction back).
        let fouling_um = -FOULING_ATTEN_UM * (1.0 + d).max(0.05).ln();
        // Characteristic transit: far spacing at half full scale.
        let t_char = cal.spacing_m / (0.5 * self.config.full_scale.get());
        let bias = (FOULING_LAG_S_PER_UM * fouling_um / t_char).clamp(-0.5, 0.5);
        cal.scale *= 1.0 + bias;
        self.amp_reference = self.amp_ewma;
        self.cal_tick = self.control_tick;
        true
    }

    fn persist(&mut self) -> Result<(), CoreError> {
        let cal = self.calibration.ok_or(CoreError::Calibration {
            reason: "no calibration installed to persist",
        })?;
        cal.store(&mut self.eeprom)
    }

    fn calibration_age(&self) -> u64 {
        self.control_tick.saturating_sub(self.cal_tick)
    }

    /// Relative droop of the received plume amplitude against its anchored
    /// reference (negative = signal loss, the §4 fouling signature seen
    /// through this modality).
    fn drift_estimate(&self) -> f64 {
        if self.amp_reference > 0.0 {
            (self.amp_ewma - self.amp_reference) / self.amp_reference
        } else {
            0.0
        }
    }

    fn calibration_wear(&self) -> u64 {
        self.eeprom.max_slot_wear()
    }

    fn inject_adc_fault(&mut self, fault: Option<AdcFault>) {
        self.adc_fault = fault;
    }

    /// The heater drive has no thermometer DAC to save: the derate is a
    /// scalar fraction, restored to nominal on revert.
    fn degrade_supply(&mut self, fraction: f64) -> Option<ThermometerDac> {
        self.drive_fraction = fraction.clamp(0.0, 1.0);
        None
    }

    fn restore_supply(&mut self, _saved: Option<ThermometerDac>) {
        self.drive_fraction = 1.0;
    }

    fn corrupt_calibration(&mut self, slot: usize, byte: usize) {
        self.eeprom.corrupt(slot, byte);
    }

    fn inject_bubble_burst(&mut self, coverage: f64) {
        self.bubble_coverage = (self.bubble_coverage + coverage).clamp(0.0, 1.0);
    }

    fn deposit_fouling(&mut self, microns: f64) {
        self.fouling_um += microns.max(0.0);
    }

    fn worst_bubble_coverage(&self) -> f64 {
        self.bubble_coverage
    }

    fn worst_fouling_um(&self) -> f64 {
        self.fouling_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Celsius;

    fn meter(seed: u64) -> HeatPulseMeter {
        HeatPulseMeter::new(FlowMeterConfig::test_profile(), seed).unwrap()
    }

    fn env(cm_s: f64) -> SensorEnvironment {
        SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(cm_s),
            ..SensorEnvironment::still_water()
        }
    }

    /// Run whole cycles and return the final held measurement.
    fn run_cycles(m: &mut HeatPulseMeter, env: SensorEnvironment, cycles: u32) -> Measurement {
        let ticks = m.cycle_ticks() * cycles;
        let mut last = None;
        for _ in 0..ticks {
            last = Meter::step(m, env);
        }
        last.unwrap()
    }

    #[test]
    fn decodes_forward_flow_within_tolerance() {
        let mut m = meter(11);
        let out = run_cycles(&mut m, env(100.0), 4);
        assert_eq!(out.direction, FlowDirection::Forward);
        let v = out.velocity.to_cm_per_s();
        assert!(
            (v - 100.0).abs() < 20.0,
            "decoded {v} cm/s for a 100 cm/s flow"
        );
    }

    #[test]
    fn decodes_reverse_flow() {
        let mut m = meter(12);
        let out = run_cycles(&mut m, env(-80.0), 4);
        assert_eq!(out.direction, FlowDirection::Reverse);
        assert!(out.velocity.to_cm_per_s() < -40.0);
    }

    #[test]
    fn still_water_reads_zero() {
        let mut m = meter(13);
        let out = run_cycles(&mut m, env(0.0), 3);
        assert_eq!(out.direction, FlowDirection::Indeterminate);
        assert_eq!(out.velocity.to_cm_per_s(), 0.0);
    }

    #[test]
    fn deterministic_across_replicas() {
        let mut a = meter(42);
        let mut b = meter(42);
        for _ in 0..(a.cycle_ticks() * 3) {
            let ma = Meter::step(&mut a, env(75.0));
            let mb = Meter::step(&mut b, env(75.0));
            assert_eq!(ma, mb);
        }
        assert_eq!(Meter::state_digest(&a), Meter::state_digest(&b));
        // And a different seed diverges.
        let mut c = meter(43);
        run_cycles(&mut c, env(75.0), 3);
        assert_ne!(Meter::state_digest(&a), Meter::state_digest(&c));
    }

    #[test]
    fn step_frame_matches_step() {
        let mut a = meter(7);
        let mut b = meter(7);
        for _ in 0..200 {
            let ma = Meter::step(&mut a, env(50.0)).unwrap();
            let mb = Meter::step_frame(&mut b, env(50.0));
            assert_eq!(ma, mb);
        }
        assert_eq!(Meter::state_digest(&a), Meter::state_digest(&b));
    }

    #[test]
    fn duty_cycled_power_is_orders_below_cta() {
        let m = meter(1);
        let p = Meter::power_draw(&m).get();
        assert!(p < 0.005, "duty-cycled average {p} W");
        // CTA test-profile bridge power is ~tens of mW; this should be
        // well under a tenth of it.
    }

    #[test]
    fn fouling_attenuates_but_barely_shifts_decode() {
        let clean = {
            let mut m = meter(21);
            run_cycles(&mut m, env(100.0), 4).velocity.to_cm_per_s()
        };
        let fouled = {
            let mut m = meter(21);
            Meter::deposit_fouling(&mut m, 15.0);
            run_cycles(&mut m, env(100.0), 4).velocity.to_cm_per_s()
        };
        // 15 µm of scale costs amplitude, not time-of-flight: the decode
        // moves by a few percent at most.
        assert!(
            (clean - fouled).abs() < 0.08 * clean,
            "clean {clean}, fouled {fouled}"
        );
    }

    #[test]
    fn heavy_fouling_buries_the_signal_and_flags() {
        let mut m = meter(22);
        Meter::deposit_fouling(&mut m, 250.0);
        let out = run_cycles(&mut m, env(100.0), 3);
        // e^{-250/40} ≈ 2e-3: the plume is below the validity threshold.
        assert_eq!(out.velocity.to_cm_per_s(), 0.0);
        assert_eq!(Meter::worst_fouling_um(&m), 250.0);
    }

    #[test]
    fn bubble_burst_decays() {
        let mut m = meter(23);
        Meter::inject_bubble_burst(&mut m, 0.5);
        assert!(Meter::worst_bubble_coverage(&m) > 0.4);
        run_cycles(&mut m, env(50.0), 8);
        assert!(
            Meter::worst_bubble_coverage(&m) < 0.2,
            "coverage should detach over ~3 s"
        );
    }

    #[test]
    fn adc_stuck_trips_the_watchdog() {
        let mut m = meter(24);
        #[derive(Debug)]
        struct Count(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl Observer for Count {
            fn record(&mut self, event: ObsEvent) {
                if matches!(event.kind, EventKind::WatchdogExpired) {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        Meter::set_observer(&mut m, Box::new(Count(hits.clone())));
        Meter::inject_adc_fault(&mut m, Some(AdcFault::Stuck(1200)));
        run_cycles(&mut m, env(100.0), 2);
        assert!(hits.load(std::sync::atomic::Ordering::Relaxed) > 0);
        Meter::inject_adc_fault(&mut m, None);
    }

    #[test]
    fn supply_derate_shrinks_plume_and_restores() {
        let mut m = meter(25);
        assert!(Meter::degrade_supply(&mut m, 0.4).is_none());
        let derated = run_cycles(&mut m, env(100.0), 3);
        let p_derated = Meter::power_draw(&m).get();
        Meter::restore_supply(&mut m, None);
        let restored = run_cycles(&mut m, env(100.0), 3);
        assert!(Meter::power_draw(&m).get() > p_derated);
        // Amplitude scales with drive²; the decode survives a 0.4 derate
        // (SNR margin) and both read the true flow.
        assert!(derated.velocity.to_cm_per_s() > 50.0);
        assert!(restored.velocity.to_cm_per_s() > 50.0);
    }

    #[test]
    fn calibration_survives_eeprom_attack_via_redundant_slot() {
        let mut m = meter(26);
        Meter::corrupt_calibration(&mut m, HeatPulseCalibration::EEPROM_SLOT, 2);
        assert!(Meter::reload_calibration(&mut m).is_ok());
        assert!(m.calibration().is_some());
        // Both copies gone: unrecoverable.
        Meter::corrupt_calibration(&mut m, HeatPulseCalibration::EEPROM_SLOT, 2);
        Meter::corrupt_calibration(&mut m, HeatPulseCalibration::REDUNDANT_SLOT, 2);
        assert!(Meter::reload_calibration(&mut m).is_err());
        assert_eq!(Meter::health(&m), HealthState::Faulted);
    }

    #[test]
    fn calibration_fit_and_roundtrip() {
        let design = HeatPulseCalibration::design();
        // Synthesize peaks from the forward model and check the fit
        // recovers a deliberate 7 % scale skew.
        let x = design.spacing_m;
        let points: Vec<(f64, f64, f64)> = [0.5f64, 1.0, 1.5]
            .iter()
            .map(|&v_true| {
                let v_model = v_true / 1.07;
                let d = design.diffusivity;
                let t_p = ((d * d + v_model * v_model * x * x).sqrt() - d) / (v_model * v_model);
                (v_true, t_p, x)
            })
            .collect();
        let fitted = design.fitted(&points).unwrap();
        assert!(
            (fitted.scale - 1.07).abs() < 0.01,
            "fitted scale {}",
            fitted.scale
        );
        let mut eeprom = CalibrationStore::new();
        fitted.store(&mut eeprom).unwrap();
        let loaded = HeatPulseCalibration::load(&eeprom).unwrap();
        assert_eq!(fitted, loaded);
        assert!(design.fitted(&[]).is_err());
    }

    #[test]
    fn tracks_a_changing_temperature() {
        // Warm water broadens dispersion; the decode must stay sane.
        let warm = SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(100.0),
            fluid_temperature: Celsius::new(35.0),
            ..SensorEnvironment::still_water()
        };
        let mut m = meter(27);
        let mut last = None;
        for _ in 0..(m.cycle_ticks() * 4) {
            last = Meter::step(&mut m, warm);
        }
        let v = last.unwrap().velocity.to_cm_per_s();
        assert!((v - 100.0).abs() < 25.0, "decoded {v} at 35 °C");
    }
}
