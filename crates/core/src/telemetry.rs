//! Telemetry encoding of measurements for the probe's UART/SPI link.
//!
//! §6 envisions probes "widely diffused all over the water distribution
//! channels" reporting to the network operator. This module defines the wire
//! record — fixed-point fields, explicitly little-endian — and rides it on
//! the CRC-framed UART transport from `hotwire-isif`.

use crate::direction::FlowDirection;
use crate::flow_meter::Measurement;
use crate::health::HealthState;
use crate::CoreError;
use hotwire_isif::uart::{encode_frame, FrameDecoder};
use hotwire_units::MetersPerSecond;

/// Wire version tag of the record layout.
pub const RECORD_VERSION: u8 = 1;
/// Encoded record length in bytes.
pub const RECORD_LEN: usize = 16;

/// Why a CRC-valid frame payload failed to parse as a [`TelemetryRecord`].
///
/// The UART CRC guards against *transport* corruption; these are *content*
/// errors — a well-framed payload that is not a valid record (foreign
/// traffic on the link, a newer firmware's layout, or corruption that
/// happened before framing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Payload length differs from [`RECORD_LEN`].
    WrongLength,
    /// Version byte is not [`RECORD_VERSION`].
    UnknownVersion,
    /// Direction code is outside 0..=2.
    BadDirection,
}

/// Tally of record-level decode outcomes from a frame stream.
///
/// [`TelemetryRecord::decode_stream`] historically dropped malformed (CRC-valid
/// but unparseable) payloads with no trace; this counter set closes that hole
/// so an ingest service can account for every frame the link layer delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordDecodeStats {
    /// Frames that parsed into valid records.
    pub records: u64,
    /// Frames whose payload length was not [`RECORD_LEN`].
    pub wrong_length: u64,
    /// Frames with an unknown version byte.
    pub unknown_version: u64,
    /// Frames with an invalid direction code.
    pub bad_direction: u64,
}

impl RecordDecodeStats {
    /// Records one parse outcome.
    pub fn tally(&mut self, outcome: &Result<TelemetryRecord, RecordError>) {
        match outcome {
            Ok(_) => self.records += 1,
            Err(RecordError::WrongLength) => self.wrong_length += 1,
            Err(RecordError::UnknownVersion) => self.unknown_version += 1,
            Err(RecordError::BadDirection) => self.bad_direction += 1,
        }
    }

    /// Total CRC-valid frames that were not valid records.
    pub fn malformed(&self) -> u64 {
        self.wrong_length + self.unknown_version + self.bad_direction
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &RecordDecodeStats) {
        self.records += other.records;
        self.wrong_length += other.wrong_length;
        self.unknown_version += other.unknown_version;
        self.bad_direction += other.bad_direction;
    }
}

/// The compact telemetry record sent per reporting interval.
///
/// Layout (little-endian):
///
/// ```text
/// 0      version (u8)
/// 1      direction (0 = indeterminate, 1 = forward, 2 = reverse)
/// 2..4   flags (u16): bit0 bubble, bit1 fouling, bit2 saturated,
///        bits 3–4 health state ([`HealthState::code`])
/// 4..8   signed velocity in hundredths of cm/s (i32)
/// 8..12  conductance in nW/K (u32)
/// 12..16 control tick (u32, wrapping)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// Signed velocity in hundredths of cm/s.
    pub velocity_centi_cm_s: i32,
    /// Direction code.
    pub direction: FlowDirection,
    /// Fault bits.
    pub bubble: bool,
    /// Fouling-drift bit.
    pub fouling: bool,
    /// Loop-saturation bit.
    pub saturated: bool,
    /// Aggregate health state (2-bit field on the wire).
    pub health: HealthState,
    /// Conductance in nW/K.
    pub conductance_nw_per_k: u32,
    /// Control tick (wrapping).
    pub tick: u32,
}

impl TelemetryRecord {
    /// Builds a record from a conditioned measurement.
    ///
    /// Non-finite values cannot ride the fixed-point wire honestly: `clamp`
    /// preserves NaN and the saturating `as` cast would then encode it as a
    /// plausible-looking 0. A NaN velocity or conductance (a poisoned King
    /// inversion, e.g. from a corrupt calibration record) is therefore
    /// encoded as 0 **with the `saturated` flag raised**, so the receiver
    /// sees an out-of-band measurement instead of a silent zero-flow report.
    pub fn from_measurement(m: &Measurement) -> Self {
        let v = m.velocity.to_cm_per_s() * 100.0;
        let g = m.conductance.get() * 1e9;
        let poisoned = v.is_nan() || g.is_nan();
        TelemetryRecord {
            velocity_centi_cm_s: if v.is_nan() {
                0
            } else {
                v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
            },
            direction: m.direction,
            bubble: m.faults.bubble_activity,
            fouling: m.faults.fouling_suspected,
            saturated: m.faults.loop_saturated || poisoned,
            health: m.health,
            conductance_nw_per_k: if g.is_nan() {
                0
            } else {
                g.clamp(0.0, u32::MAX as f64) as u32
            },
            tick: (m.tick & 0xFFFF_FFFF) as u32,
        }
    }

    /// The decoded velocity.
    pub fn velocity(&self) -> MetersPerSecond {
        MetersPerSecond::from_cm_per_s(self.velocity_centi_cm_s as f64 / 100.0)
    }

    /// Serializes to the 16-byte wire layout.
    pub fn to_bytes(&self) -> [u8; RECORD_LEN] {
        let mut out = [0u8; RECORD_LEN];
        out[0] = RECORD_VERSION;
        out[1] = match self.direction {
            FlowDirection::Indeterminate => 0,
            FlowDirection::Forward => 1,
            FlowDirection::Reverse => 2,
        };
        let flags: u16 = (self.bubble as u16)
            | ((self.fouling as u16) << 1)
            | ((self.saturated as u16) << 2)
            | ((self.health.code() as u16) << 3);
        out[2..4].copy_from_slice(&flags.to_le_bytes());
        out[4..8].copy_from_slice(&self.velocity_centi_cm_s.to_le_bytes());
        out[8..12].copy_from_slice(&self.conductance_nw_per_k.to_le_bytes());
        out[12..16].copy_from_slice(&self.tick.to_le_bytes());
        out
    }

    /// Deserializes from the wire layout.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for a wrong length, unknown version, or
    /// invalid direction code.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        Self::parse(bytes).map_err(|e| CoreError::Config {
            reason: match e {
                RecordError::WrongLength => "telemetry record has wrong length",
                RecordError::UnknownVersion => "unknown telemetry record version",
                RecordError::BadDirection => "invalid direction code in telemetry record",
            },
        })
    }

    /// Deserializes from the wire layout with a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`RecordError`] naming which validation failed, suitable for
    /// tallying into [`RecordDecodeStats`].
    pub fn parse(bytes: &[u8]) -> Result<Self, RecordError> {
        if bytes.len() != RECORD_LEN {
            return Err(RecordError::WrongLength);
        }
        if bytes[0] != RECORD_VERSION {
            return Err(RecordError::UnknownVersion);
        }
        let direction = match bytes[1] {
            0 => FlowDirection::Indeterminate,
            1 => FlowDirection::Forward,
            2 => FlowDirection::Reverse,
            _ => return Err(RecordError::BadDirection),
        };
        let flags = u16::from_le_bytes([bytes[2], bytes[3]]);
        Ok(TelemetryRecord {
            velocity_centi_cm_s: i32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            direction,
            bubble: flags & 1 != 0,
            fouling: flags & 2 != 0,
            saturated: flags & 4 != 0,
            health: HealthState::from_code((flags >> 3) as u8),
            conductance_nw_per_k: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            tick: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
        })
    }

    /// Encodes the record into a complete UART frame (SOH + len + payload +
    /// CRC-16).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] only on framing errors (cannot happen
    /// for the fixed 16-byte payload).
    pub fn to_frame(&self) -> Result<Vec<u8>, CoreError> {
        Ok(encode_frame(&self.to_bytes())?)
    }

    /// Decodes all complete, CRC-valid records from a byte stream.
    ///
    /// Malformed payloads (CRC-valid frames that fail record validation) are
    /// dropped; use [`TelemetryRecord::decode_stream_counted`] when the caller
    /// must account for them.
    pub fn decode_stream(decoder: &mut FrameDecoder, bytes: &[u8]) -> Vec<TelemetryRecord> {
        let mut stats = RecordDecodeStats::default();
        Self::decode_stream_counted(decoder, bytes, &mut stats)
    }

    /// Decodes all complete, CRC-valid records from a byte stream, tallying
    /// every frame's parse outcome into `stats`.
    ///
    /// Unlike the historical `decode_stream`, no frame is consumed invisibly:
    /// each CRC-valid payload either becomes a returned record (`records`) or
    /// increments one of the malformed counters.
    pub fn decode_stream_counted(
        decoder: &mut FrameDecoder,
        bytes: &[u8],
        stats: &mut RecordDecodeStats,
    ) -> Vec<TelemetryRecord> {
        bytes
            .iter()
            .filter_map(|&b| decoder.push(b))
            .filter_map(|payload| {
                let outcome = TelemetryRecord::parse(&payload);
                stats.tally(&outcome);
                outcome.ok()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultFlags;
    use hotwire_units::{ThermalConductance, Watts};

    fn sample_measurement() -> Measurement {
        Measurement {
            velocity: MetersPerSecond::from_cm_per_s(-123.45),
            speed: MetersPerSecond::from_cm_per_s(123.45),
            direction: FlowDirection::Reverse,
            supply_code: 2100,
            conditioned_code: 2100,
            conductance: ThermalConductance::new(2.345e-3),
            wire_power: Watts::new(0.033),
            faults: FaultFlags {
                bubble_activity: true,
                fouling_suspected: false,
                loop_saturated: true,
            },
            health: HealthState::Recovering,
            tick: 77_000,
        }
    }

    #[test]
    fn record_round_trips_bytes() {
        let rec = TelemetryRecord::from_measurement(&sample_measurement());
        let back = TelemetryRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.velocity_centi_cm_s, -12345);
        assert!(back.bubble && back.saturated && !back.fouling);
        assert_eq!(back.health, HealthState::Recovering);
        assert_eq!(back.direction, FlowDirection::Reverse);
        assert_eq!(back.conductance_nw_per_k, 2_345_000);
        assert!((back.velocity().to_cm_per_s() + 123.45).abs() < 1e-9);
    }

    #[test]
    fn health_states_round_trip_on_the_wire() {
        for h in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Faulted,
            HealthState::Recovering,
        ] {
            let rec = TelemetryRecord {
                health: h,
                ..TelemetryRecord::from_measurement(&sample_measurement())
            };
            let back = TelemetryRecord::from_bytes(&rec.to_bytes()).unwrap();
            assert_eq!(back.health, h);
            // The neighbouring fault bits are untouched by the 2-bit field.
            assert!(back.bubble && back.saturated && !back.fouling);
        }
    }

    #[test]
    fn record_rides_the_uart_framing() {
        let rec = TelemetryRecord::from_measurement(&sample_measurement());
        let mut wire = vec![0x00, 0xFF]; // line noise
        wire.extend(rec.to_frame().unwrap());
        wire.push(0x55); // more noise
        wire.extend(rec.to_frame().unwrap());
        let mut decoder = FrameDecoder::new();
        let records = TelemetryRecord::decode_stream(&mut decoder, &wire);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec);
    }

    #[test]
    fn corrupt_frame_dropped_cleanly() {
        let rec = TelemetryRecord::from_measurement(&sample_measurement());
        let mut frame = rec.to_frame().unwrap();
        frame[6] ^= 0xA5;
        let mut decoder = FrameDecoder::new();
        let records = TelemetryRecord::decode_stream(&mut decoder, &frame);
        assert!(records.is_empty());
        assert_eq!(decoder.crc_errors(), 1);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(TelemetryRecord::from_bytes(&[0u8; 4]).is_err());
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0] = 99; // bad version
        assert!(TelemetryRecord::from_bytes(&bytes).is_err());
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0] = RECORD_VERSION;
        bytes[1] = 9; // bad direction
        assert!(TelemetryRecord::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decode_stream_counts_malformed_records() {
        let rec = TelemetryRecord::from_measurement(&sample_measurement());
        // Four CRC-valid frames: one good record, one truncated payload, one
        // future-version record, one with a bogus direction code.
        let mut short = rec.to_bytes()[..RECORD_LEN - 2].to_vec();
        short[0] = RECORD_VERSION;
        let mut versioned = rec.to_bytes();
        versioned[0] = RECORD_VERSION + 7;
        let mut misdirected = rec.to_bytes();
        misdirected[1] = 9;
        let mut wire = rec.to_frame().unwrap();
        wire.extend(encode_frame(&short).unwrap());
        wire.extend(encode_frame(&versioned).unwrap());
        wire.extend(encode_frame(&misdirected).unwrap());

        let mut decoder = FrameDecoder::new();
        let mut stats = RecordDecodeStats::default();
        let records = TelemetryRecord::decode_stream_counted(&mut decoder, &wire, &mut stats);
        assert_eq!(records, vec![rec]);
        assert_eq!(
            stats,
            RecordDecodeStats {
                records: 1,
                wrong_length: 1,
                unknown_version: 1,
                bad_direction: 1,
            }
        );
        assert_eq!(stats.malformed(), 3);
        // Every CRC-valid frame is accounted for: none eaten invisibly.
        assert_eq!(decoder.good_frames(), stats.records + stats.malformed());

        let mut merged = RecordDecodeStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.records, 2);
        assert_eq!(merged.malformed(), 6);
    }

    #[test]
    fn parse_names_each_validation_failure() {
        assert_eq!(
            TelemetryRecord::parse(&[0u8; 4]),
            Err(RecordError::WrongLength)
        );
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0] = 99;
        assert_eq!(
            TelemetryRecord::parse(&bytes),
            Err(RecordError::UnknownVersion)
        );
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0] = RECORD_VERSION;
        bytes[1] = 9;
        assert_eq!(
            TelemetryRecord::parse(&bytes),
            Err(RecordError::BadDirection)
        );
    }

    #[test]
    fn velocity_clamps_at_wire_limits() {
        let m = Measurement {
            velocity: MetersPerSecond::new(1e9),
            ..sample_measurement()
        };
        let rec = TelemetryRecord::from_measurement(&m);
        assert_eq!(rec.velocity_centi_cm_s, i32::MAX);
    }

    #[test]
    fn nan_measurement_is_flagged_not_zeroed_silently() {
        // Start from a measurement with NO fault flags, so the only way the
        // wire record can carry `saturated` is the NaN detection itself.
        let m = Measurement {
            velocity: MetersPerSecond::new(f64::NAN),
            faults: FaultFlags::default(),
            ..sample_measurement()
        };
        let rec = TelemetryRecord::from_measurement(&m);
        assert_eq!(rec.velocity_centi_cm_s, 0);
        assert!(rec.saturated, "NaN velocity must raise the saturated flag");
        // The flag survives the wire round trip.
        let back = TelemetryRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back, rec);
        assert!(back.saturated);

        // A NaN conductance is caught the same way.
        let m = Measurement {
            conductance: ThermalConductance::new(f64::NAN),
            faults: FaultFlags::default(),
            ..sample_measurement()
        };
        let rec = TelemetryRecord::from_measurement(&m);
        assert_eq!(rec.conductance_nw_per_k, 0);
        assert!(rec.saturated);

        // And a clean measurement still reports a clean flag word.
        let m = Measurement {
            faults: FaultFlags::default(),
            ..sample_measurement()
        };
        assert!(!TelemetryRecord::from_measurement(&m).saturated);
    }
}
