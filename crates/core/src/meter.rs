//! The modality-neutral meter contract the evaluation engine drives.
//!
//! Everything above the firmware — the line runner, the campaign executor,
//! the fleet engine, the fault injector, checkpointing — used to be
//! hard-coded to the CTA [`FlowMeter`]. This trait extracts the surface
//! those engines actually touch, so alternate sensing modalities (the
//! heat-pulse time-of-flight meter of [`crate::heat_pulse`], the rig's
//! reference-instrument adapters) plug into the same physics substrate and
//! the same deterministic execution machinery.
//!
//! # Contract
//!
//! Implementations are deterministic instruments: a meter built from a
//! seed and stepped through a fixed environment sequence must produce a
//! bit-identical measurement stream and [`state_digest`](Meter::state_digest)
//! on every run, on any thread, at any job count. Concretely:
//!
//! * **Frame alignment** — [`step_frame`](Meter::step_frame) advances
//!   exactly [`ticks_per_frame`](Meter::ticks_per_frame) modulator ticks
//!   and must be bit-identical to that many [`step`](Meter::step) calls
//!   under a constant environment; it may only be called when
//!   [`frame_phase`](Meter::frame_phase) is 0 and must panic otherwise.
//!   Meters without a modulator-rate inner loop report
//!   `ticks_per_frame() == 1` and are trivially frame-aligned.
//! * **RNG-lane draw order** — all randomness must be drawn from seeded
//!   generators owned by the meter, in an order that is a pure function of
//!   the tick count and the meter's own state (never of wall-clock,
//!   thread identity, or observer presence). Fault hooks must not draw.
//! * **Digest semantics** — [`state_digest`](Meter::state_digest) folds
//!   every piece of observable mutable state (tick counters, RNG state,
//!   estimator/latch state, health verdict, slow physical state) into one
//!   stable 64-bit word. Two meters that walked bit-identical
//!   trajectories digest equal; any divergence shows up. The fleet layer
//!   checkpoints this per line.
//! * **Observation is read-only** — a meter with an observer installed
//!   and one without compute bit-identical measurements; observers only
//!   receive events.
//!
//! # Object safety
//!
//! The trait is deliberately dyn-compatible (no generic methods, no
//! `Self`-returning methods), which `tests/meter_trait.rs` asserts at
//! compile time; the engines are nonetheless generic (`LineRunner<M>`)
//! so the hot loop monomorphizes and pays no vtable dispatch.

use crate::error::CoreError;
use crate::faults::AdcFault;
use crate::flow_meter::{FlowMeter, Measurement};
use crate::health::HealthState;
use crate::obs::{EventKind, Observer};
use hotwire_afe::ThermometerDac;
use hotwire_physics::sensor::HeaterId;
use hotwire_physics::SensorEnvironment;
use hotwire_units::{Celsius, MetersPerSecond, Seconds, Volts, Watts};

/// The meter-facing surface of the evaluation engine: stepping, drive
/// timing, health, telemetry emission, calibration reload, fault hooks and
/// state digest. See the [module docs](self) for the determinism contract.
pub trait Meter: Send + std::fmt::Debug {
    // --- stepping and drive timing ---

    /// One modulator tick of co-simulation; returns a measurement on
    /// control ticks (every [`ticks_per_frame`](Self::ticks_per_frame)-th
    /// call), `None` in between.
    fn step(&mut self, env: SensorEnvironment) -> Option<Measurement>;

    /// Advances one full control frame — [`ticks_per_frame`](Self::ticks_per_frame)
    /// modulator ticks under a constant environment — and returns the
    /// control-tick measurement the frame ends on. Bit-identical to the
    /// equivalent [`step`](Self::step) sequence (or a documented
    /// bounded-error fast tier the implementation opts into).
    ///
    /// # Panics
    ///
    /// Panics if the meter is not frame-aligned
    /// ([`frame_phase`](Self::frame_phase) != 0).
    fn step_frame(&mut self, env: SensorEnvironment) -> Measurement;

    /// Modulator ticks into the current frame; 0 means frame-aligned.
    fn frame_phase(&self) -> u32;

    /// Modulator ticks per control frame (1 for meters without an
    /// oversampled inner loop).
    fn ticks_per_frame(&self) -> u32;

    /// Scenario time advanced per control tick — the runner's line/probe
    /// update period.
    fn control_period(&self) -> Seconds;

    /// The instrument's full-scale velocity.
    fn full_scale(&self) -> MetersPerSecond;

    // --- health, power, digest ---

    /// The graceful-degradation supervisor's current verdict.
    fn health(&self) -> HealthState;

    /// Steady electrical power the instrument draws from the line supply
    /// (sensing plus drive, averaged over its duty cycle) — the m1
    /// head-to-head's power axis.
    fn power_draw(&self) -> Watts;

    /// Stable 64-bit digest of all observable mutable state (see the
    /// [module docs](self) for the exact semantics).
    fn state_digest(&self) -> u64;

    // --- telemetry emission (structured observability) ---

    /// Installs an event observer (replacing any previous one).
    fn set_observer(&mut self, observer: Box<dyn Observer>);

    /// Removes and returns the installed observer, if any.
    fn take_observer(&mut self) -> Option<Box<dyn Observer>>;

    /// Whether an observer is installed (the runner gates its hot-loop
    /// instrumentation on this).
    fn has_observer(&self) -> bool;

    /// Emits one observability event (stamped with the meter's control
    /// tick). No-op without an observer.
    fn observe(&mut self, kind: EventKind);

    // --- calibration surface ---
    //
    // The modality-generic maintenance interface: a policy engine
    // (`hotwire_rig::maintain`) decides *when* to act and drives every
    // modality through these five actions/observables without knowing
    // whether the calibration underneath is a King's-law fit or a
    // time-of-flight scale. All defaults are inert no-ops so stateless
    // instruments (the rig's reference adapters) satisfy the contract
    // without code, and the trait stays dyn-compatible.
    //
    // Determinism: none of these methods may draw from the meter's RNG
    // lanes (they run at frame boundaries between RNG-consuming steps, and
    // the runner's jobs-invariance tests pin that a policy-managed run
    // stays bit-identical at any job count).

    /// Re-reads the calibration record from persistent storage, falling
    /// back to the redundant slot on a CRC failure (and repairing the
    /// primary), latching a fault when every copy is gone.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when no valid calibration copy survives.
    fn reload_calibration(&mut self) -> Result<(), CoreError>;

    /// Accepts the current operating point as the new drift reference,
    /// clearing the drift estimate without touching the calibration
    /// itself. Must be an exact state no-op when
    /// [`drift_estimate`](Self::drift_estimate) is already `0.0` (pinned
    /// at digest level by proptest). Default: no-op.
    fn re_zero(&mut self) {}

    /// Refits the active calibration from the instrument's recent drift
    /// estimate (in RAM only — pair with [`persist`](Self::persist) to
    /// survive a power cycle) and re-zeroes the drift reference around the
    /// corrected fit. Returns `true` when the calibration actually
    /// changed, `false` when there was nothing to correct (zero drift or
    /// no calibration installed). Default: `false`.
    fn refit_from_recent(&mut self) -> bool {
        false
    }

    /// Writes the active calibration to persistent storage (primary plus
    /// redundant slot — one write cycle of wear on each).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when no calibration is installed or the
    /// write fails. Default: `Ok(())` for meters without storage.
    fn persist(&mut self) -> Result<(), CoreError> {
        Ok(())
    }

    /// Control ticks elapsed since the active calibration was installed or
    /// last refit — the age a `Scheduled` policy compares against its
    /// period. Default: 0 (an ageless instrument never triggers a
    /// scheduled refit).
    fn calibration_age(&self) -> u64 {
        0
    }

    /// The instrument's current relative drift estimate (signed; `0.0`
    /// means no observed drift). For the CTA meter this is the
    /// conductance-baseline deviation; for the heat-pulse meter the
    /// received-amplitude droop. Default: `0.0`.
    fn drift_estimate(&self) -> f64 {
        0.0
    }

    /// The highest per-slot EEPROM write-cycle count — the wear figure an
    /// event-triggered policy rate-limits persists against. Default: 0.
    fn calibration_wear(&self) -> u64 {
        0
    }

    /// The instrument's own fluid-temperature estimate, when it carries a
    /// temperature channel (the CTA meter's compensated estimate) — the
    /// observable behind an `EventTriggered` policy's temperature-delta
    /// trigger. Default: `None` (no temperature channel; the trigger
    /// never fires).
    fn fluid_temperature(&self) -> Option<Celsius> {
        None
    }

    // --- fault hooks (the injector's attack surface) ---

    /// Installs (or clears, with `None`) an acquisition-path fault on the
    /// instrument's primary ADC.
    fn inject_adc_fault(&mut self, fault: Option<AdcFault>);

    /// Derates the drive/supply rail to `fraction` of nominal (the caller
    /// clamps to a sane range). Returns the saved pre-fault supply DAC for
    /// meters that model one — the injector hands it back to
    /// [`restore_supply`](Self::restore_supply) on revert, preserving
    /// per-event save/restore semantics for overlapping windows.
    fn degrade_supply(&mut self, fraction: f64) -> Option<ThermometerDac>;

    /// Reverts a supply derate, restoring `saved` when the meter returned
    /// one from [`degrade_supply`](Self::degrade_supply).
    fn restore_supply(&mut self, saved: Option<ThermometerDac>);

    /// Flips one bit in byte `byte` of calibration-storage slot `slot`
    /// (the EEPROM attack; pair with
    /// [`reload_calibration`](Self::reload_calibration) to exercise the
    /// CRC check and redundant-slot fallback).
    fn corrupt_calibration(&mut self, slot: usize, byte: usize);

    /// An abrupt vapor/air burst blankets the sensing surfaces with extra
    /// bubble coverage (impulse; coverage then decays naturally).
    fn inject_bubble_burst(&mut self, coverage: f64);

    /// A step of scale lands on the sensing surfaces at once (impulse;
    /// scale does not clear on its own).
    fn deposit_fouling(&mut self, microns: f64);

    // --- slow physical state the trace records ---

    /// Worst-case bubble coverage fraction across the sensing surfaces.
    fn worst_bubble_coverage(&self) -> f64;

    /// Worst-case fouling thickness across the sensing surfaces, µm.
    fn worst_fouling_um(&self) -> f64;
}

impl Meter for FlowMeter {
    #[inline]
    fn step(&mut self, env: SensorEnvironment) -> Option<Measurement> {
        FlowMeter::step(self, env)
    }

    #[inline]
    fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
        FlowMeter::step_frame(self, env)
    }

    #[inline]
    fn frame_phase(&self) -> u32 {
        FlowMeter::frame_phase(self)
    }

    #[inline]
    fn ticks_per_frame(&self) -> u32 {
        FlowMeter::ticks_per_frame(self)
    }

    fn control_period(&self) -> Seconds {
        Seconds::new(self.config().decimation as f64 / self.config().modulator_rate.get())
    }

    fn full_scale(&self) -> MetersPerSecond {
        self.config().full_scale
    }

    fn health(&self) -> HealthState {
        FlowMeter::health(self)
    }

    fn power_draw(&self) -> Watts {
        self.bridge_power_draw()
    }

    fn state_digest(&self) -> u64 {
        FlowMeter::state_digest(self)
    }

    fn set_observer(&mut self, observer: Box<dyn Observer>) {
        FlowMeter::set_observer(self, observer);
    }

    fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        FlowMeter::take_observer(self)
    }

    #[inline]
    fn has_observer(&self) -> bool {
        FlowMeter::has_observer(self)
    }

    fn observe(&mut self, kind: EventKind) {
        FlowMeter::observe(self, kind);
    }

    fn reload_calibration(&mut self) -> Result<(), CoreError> {
        FlowMeter::reload_calibration(self)
    }

    fn re_zero(&mut self) {
        FlowMeter::re_zero(self);
    }

    fn refit_from_recent(&mut self) -> bool {
        FlowMeter::refit_from_recent(self)
    }

    fn persist(&mut self) -> Result<(), CoreError> {
        FlowMeter::persist(self)
    }

    fn calibration_age(&self) -> u64 {
        FlowMeter::calibration_age(self)
    }

    fn drift_estimate(&self) -> f64 {
        FlowMeter::drift_estimate(self)
    }

    fn calibration_wear(&self) -> u64 {
        FlowMeter::calibration_wear(self)
    }

    fn fluid_temperature(&self) -> Option<Celsius> {
        Some(self.fluid_temperature_estimate())
    }

    fn inject_adc_fault(&mut self, fault: Option<AdcFault>) {
        FlowMeter::inject_adc_fault(self, fault);
    }

    /// Swaps the supply DAC for one whose full scale is `fraction` of
    /// nominal; returns the original for restoration. (This is the exact
    /// brownout mechanics the fault injector applied before the trait
    /// extraction — per-event save/restore, so overlapping windows each
    /// restore their own saved DAC.)
    fn degrade_supply(&mut self, fraction: f64) -> Option<ThermometerDac> {
        let original = self.platform_mut().supply_dac().clone();
        let vref = Volts::new(original.vref().get() * fraction);
        let degraded = ThermometerDac::ideal(original.bits(), vref)
            .expect("clamped brownout fraction yields a valid DAC");
        self.platform_mut().set_supply_dac(degraded);
        Some(original)
    }

    fn restore_supply(&mut self, saved: Option<ThermometerDac>) {
        if let Some(dac) = saved {
            self.platform_mut().set_supply_dac(dac);
        }
    }

    fn corrupt_calibration(&mut self, slot: usize, byte: usize) {
        self.platform_mut().eeprom_mut().corrupt(slot, byte);
    }

    fn inject_bubble_burst(&mut self, coverage: f64) {
        self.die_mut().inject_bubble_burst(coverage);
    }

    fn deposit_fouling(&mut self, microns: f64) {
        self.die_mut().deposit_fouling(microns);
    }

    fn worst_bubble_coverage(&self) -> f64 {
        let die = self.die();
        die.bubble_coverage(HeaterId::A)
            .max(die.bubble_coverage(HeaterId::B))
    }

    fn worst_fouling_um(&self) -> f64 {
        let die = self.die();
        die.fouling_thickness_um(HeaterId::A)
            .max(die.fouling_thickness_um(HeaterId::B))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowMeterConfig;
    use hotwire_physics::MafParams;

    /// The trait is dyn-compatible: engines could hold `Box<dyn Meter>`
    /// (they stay generic instead, for monomorphized hot loops).
    fn _object_safe(_: &dyn Meter) {}

    #[test]
    fn flow_meter_trait_delegation_matches_inherent() {
        let config = FlowMeterConfig::test_profile();
        let mut a = FlowMeter::new(config, MafParams::nominal(), 7).unwrap();
        let mut b = FlowMeter::new(config, MafParams::nominal(), 7).unwrap();
        let env = SensorEnvironment::still_water();
        for _ in 0..3 {
            // Inherent path on `a`, trait path on `b`.
            let ma = FlowMeter::step_frame(&mut a, env);
            let mb = Meter::step_frame(&mut b, env);
            assert_eq!(ma, mb);
        }
        assert_eq!(
            FlowMeter::state_digest(&a),
            Meter::state_digest(&b),
            "trait delegation must not perturb the trajectory"
        );
        assert_eq!(
            Meter::control_period(&a).get(),
            config.decimation as f64 / config.modulator_rate.get()
        );
        assert_eq!(Meter::full_scale(&a), config.full_scale);
    }

    #[test]
    fn supply_hooks_save_and_restore() {
        let config = FlowMeterConfig::test_profile();
        let mut m = FlowMeter::new(config, MafParams::nominal(), 3).unwrap();
        let nominal = m.platform_mut().supply_dac().vref().get();
        let saved = Meter::degrade_supply(&mut m, 0.5);
        assert!(saved.is_some());
        let sagged = m.platform_mut().supply_dac().vref().get();
        assert!((sagged - nominal * 0.5).abs() < 1e-12);
        Meter::restore_supply(&mut m, saved);
        assert_eq!(m.platform_mut().supply_dac().vref().get(), nominal);
        // The None case must leave the rail untouched (matches the
        // injector's historical `if let Some` revert).
        Meter::restore_supply(&mut m, None);
        assert_eq!(m.platform_mut().supply_dac().vref().get(), nominal);
    }
}
