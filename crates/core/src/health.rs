//! Graceful-degradation state machine for the assembled instrument.
//!
//! §6 of the paper motivates self-diagnosis ("allowing also any malfunction
//! behavior … to be immediately localized and isolated"); this module closes
//! the loop from *detection* to *reaction*. The fault monitors of
//! [`faults`](crate::faults), the ISIF watchdog and the EEPROM CRC checks
//! all feed a single supervisor, [`HealthMonitor`], which tracks the
//! instrument through four states:
//!
//! ```text
//!            any fault            fault persists
//! Healthy ─────────────► Degraded ─────────────► Faulted
//!    ▲                      │                       │
//!    │   faults clear       │     faults clear      │
//!    └─────── Recovering ◄──┴───────────────────────┘
//!         (watchdog expiry and EEPROM fallback also land here)
//! ```
//!
//! and emits at most one [`RecoveryAction`] per control tick: engage the
//! pulsed drive against bubble activity (§4's mitigation), re-zero the drift
//! baseline after a fouling event, or soft-reset the conditioning firmware
//! after a watchdog expiry. The supervisor is plain owned state — stepping
//! it is deterministic, so campaign runs with fault injection stay
//! bit-identical across thread counts.

use crate::faults::FaultFlags;

/// The instrument's aggregate health, reported in every
/// [`Measurement`](crate::flow_meter::Measurement) and telemetry record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum HealthState {
    /// No active faults; all monitors quiet.
    #[default]
    Healthy,
    /// At least one fault monitor is firing; measurements still flow but
    /// should be treated with suspicion.
    Degraded,
    /// A fault has persisted past the tolerance window, or an unrecoverable
    /// error (both calibration copies corrupt) occurred.
    Faulted,
    /// The instrument is coming back: a recovery action ran (soft reset,
    /// EEPROM fallback) or faults just cleared, and the supervisor is
    /// holding until the monitors stay quiet.
    Recovering,
}

impl HealthState {
    /// The 2-bit wire code used in telemetry (bits 3–4 of the flags word).
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Faulted => 2,
            HealthState::Recovering => 3,
        }
    }

    /// Decodes a 2-bit wire code (only the low two bits are examined, so
    /// every input maps to a valid state).
    pub fn from_code(code: u8) -> Self {
        match code & 0b11 {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            2 => HealthState::Faulted,
            _ => HealthState::Recovering,
        }
    }
}

/// What the supervisor asks the firmware to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryAction {
    /// Nothing to do.
    #[default]
    None,
    /// Switch the heater drive to the pulsed scheme (bubble mitigation, §4).
    EngagePulsedDrive,
    /// Re-learn the drift baseline — accept the post-fouling conductance as
    /// the new normal instead of flagging it forever.
    ReZero,
    /// Reset the conditioning firmware's transient state after a watchdog
    /// expiry (the simulated equivalent of the hardware reset the ISIF
    /// watchdog would pull).
    SoftReset,
}

/// The graceful-degradation supervisor.
///
/// Call [`update`](Self::update) once per control tick with the current
/// fault flags and watchdog status; call
/// [`note_eeprom_fallback`](Self::note_eeprom_fallback) /
/// [`note_unrecoverable`](Self::note_unrecoverable) from calibration-reload
/// paths. The one-shot actions re-arm after a full recovery, so separate
/// fault episodes each get their reaction.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    state: HealthState,
    /// Consecutive fault-free update ticks.
    clean_streak: u64,
    /// Consecutive faulty update ticks.
    degraded_streak: u64,
    /// Faulty ticks tolerated in `Degraded` before escalating to `Faulted`.
    fault_limit: u64,
    /// Clean ticks required to advance one recovery stage.
    recover_hold: u64,
    /// Total state transitions (diagnostic).
    transitions: u64,
    /// One-shot latch: pulsed drive already requested this episode.
    pulsed_engaged: bool,
    /// One-shot latch: re-zero already requested this episode.
    rezeroed: bool,
    /// Last state handed out by [`take_transition`](Self::take_transition);
    /// lets observers see edges without hooking `set_state`.
    observed_state: HealthState,
}

impl HealthMonitor {
    /// Creates a supervisor that escalates to `Faulted` after `fault_limit`
    /// consecutive faulty ticks and needs `recover_hold` consecutive clean
    /// ticks per recovery stage (both clamped to ≥ 1).
    pub fn new(fault_limit: u64, recover_hold: u64) -> Self {
        HealthMonitor {
            state: HealthState::Healthy,
            clean_streak: 0,
            degraded_streak: 0,
            fault_limit: fault_limit.max(1),
            recover_hold: recover_hold.max(1),
            transitions: 0,
            pulsed_engaged: false,
            rezeroed: false,
            observed_state: HealthState::Healthy,
        }
    }

    /// The current state.
    #[inline]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Total state transitions since construction.
    #[inline]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn set_state(&mut self, next: HealthState) {
        if self.state != next {
            self.state = next;
            self.transitions += 1;
        }
    }

    /// Returns `Some((from, to))` if the state changed since the last call
    /// (or since construction), `None` otherwise.
    ///
    /// The edge is computed against the last *observed* state, not the last
    /// internal transition, so multiple `set_state` calls within one control
    /// tick collapse into a single edge — and a change that nets out back to
    /// the observed state reports nothing. Callers poll this once per tick
    /// to turn the supervisor's state into observability events; polling is
    /// read-only with respect to the supervisor's behaviour.
    pub fn take_transition(&mut self) -> Option<(HealthState, HealthState)> {
        if self.observed_state != self.state {
            let from = self.observed_state;
            self.observed_state = self.state;
            Some((from, self.state))
        } else {
            None
        }
    }

    /// Advances the supervisor one control tick and returns the recovery
    /// action the firmware should take (at most one per tick; watchdog
    /// expiry preempts everything else).
    pub fn update(&mut self, faults: FaultFlags, watchdog_expired: bool) -> RecoveryAction {
        if watchdog_expired {
            // The loop stopped kicking: firmware-level freeze. Reset takes
            // priority over the slower fault reactions.
            self.clean_streak = 0;
            self.degraded_streak = 0;
            self.set_state(HealthState::Recovering);
            return RecoveryAction::SoftReset;
        }
        if faults.any() {
            self.clean_streak = 0;
            if self.state != HealthState::Faulted {
                self.degraded_streak += 1;
                if self.degraded_streak >= self.fault_limit {
                    self.set_state(HealthState::Faulted);
                } else {
                    self.set_state(HealthState::Degraded);
                }
            }
            if faults.bubble_activity && !self.pulsed_engaged {
                self.pulsed_engaged = true;
                return RecoveryAction::EngagePulsedDrive;
            }
            if faults.fouling_suspected && !self.rezeroed {
                self.rezeroed = true;
                return RecoveryAction::ReZero;
            }
            RecoveryAction::None
        } else {
            self.degraded_streak = 0;
            if self.state != HealthState::Healthy {
                self.clean_streak += 1;
                if self.clean_streak >= self.recover_hold {
                    self.clean_streak = 0;
                    match self.state {
                        // Degraded/Faulted pass through Recovering: the
                        // instrument announces it is coming back before
                        // declaring itself healthy again.
                        HealthState::Degraded | HealthState::Faulted => {
                            self.set_state(HealthState::Recovering);
                        }
                        HealthState::Recovering => {
                            self.set_state(HealthState::Healthy);
                            // Full recovery re-arms the one-shot reactions
                            // for the next episode.
                            self.pulsed_engaged = false;
                            self.rezeroed = false;
                        }
                        HealthState::Healthy => {}
                    }
                }
            }
            RecoveryAction::None
        }
    }

    /// Records that the calibration loaded from the *redundant* EEPROM slot
    /// because the primary failed its CRC — recoverable, but worth a
    /// `Recovering` excursion so telemetry surfaces the event.
    pub fn note_eeprom_fallback(&mut self) {
        self.clean_streak = 0;
        self.set_state(HealthState::Recovering);
    }

    /// Records an unrecoverable error (e.g. every calibration copy corrupt):
    /// the instrument goes straight to `Faulted`.
    pub fn note_unrecoverable(&mut self) {
        self.clean_streak = 0;
        self.degraded_streak = 0;
        self.set_state(HealthState::Faulted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bubble() -> FaultFlags {
        FaultFlags {
            bubble_activity: true,
            ..FaultFlags::default()
        }
    }

    fn fouling() -> FaultFlags {
        FaultFlags {
            fouling_suspected: true,
            ..FaultFlags::default()
        }
    }

    #[test]
    fn healthy_stays_healthy_on_quiet_monitors() {
        let mut h = HealthMonitor::new(100, 10);
        for _ in 0..1000 {
            assert_eq!(h.update(FaultFlags::default(), false), RecoveryAction::None);
        }
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.transitions(), 0);
    }

    #[test]
    fn fault_degrades_then_escalates() {
        let mut h = HealthMonitor::new(5, 10);
        assert_eq!(h.update(bubble(), false), RecoveryAction::EngagePulsedDrive);
        assert_eq!(h.state(), HealthState::Degraded);
        // Only one pulsed-drive request per episode.
        for _ in 0..3 {
            assert_eq!(h.update(bubble(), false), RecoveryAction::None);
        }
        assert_eq!(h.state(), HealthState::Degraded);
        h.update(bubble(), false); // 5th faulty tick
        assert_eq!(h.state(), HealthState::Faulted);
    }

    #[test]
    fn recovery_passes_through_recovering() {
        let mut h = HealthMonitor::new(100, 3);
        h.update(fouling(), false);
        assert_eq!(h.state(), HealthState::Degraded);
        for _ in 0..3 {
            h.update(FaultFlags::default(), false);
        }
        assert_eq!(h.state(), HealthState::Recovering);
        for _ in 0..3 {
            h.update(FaultFlags::default(), false);
        }
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn watchdog_expiry_forces_soft_reset() {
        let mut h = HealthMonitor::new(100, 3);
        assert_eq!(
            h.update(FaultFlags::default(), true),
            RecoveryAction::SoftReset
        );
        assert_eq!(h.state(), HealthState::Recovering);
        // Expiry preempts even an active fault.
        assert_eq!(h.update(bubble(), true), RecoveryAction::SoftReset);
    }

    #[test]
    fn fouling_requests_one_rezero_per_episode() {
        let mut h = HealthMonitor::new(100, 2);
        assert_eq!(h.update(fouling(), false), RecoveryAction::ReZero);
        assert_eq!(h.update(fouling(), false), RecoveryAction::None);
        // Full recovery re-arms.
        for _ in 0..4 {
            h.update(FaultFlags::default(), false);
        }
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.update(fouling(), false), RecoveryAction::ReZero);
    }

    #[test]
    fn eeprom_notes_move_the_state() {
        let mut h = HealthMonitor::new(100, 2);
        h.note_eeprom_fallback();
        assert_eq!(h.state(), HealthState::Recovering);
        h.note_unrecoverable();
        assert_eq!(h.state(), HealthState::Faulted);
    }

    #[test]
    fn take_transition_reports_collapsed_edges() {
        let mut h = HealthMonitor::new(100, 2);
        assert_eq!(h.take_transition(), None);
        h.update(bubble(), false);
        assert_eq!(
            h.take_transition(),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        // No change since last poll.
        assert_eq!(h.take_transition(), None);
        // Two internal transitions before one poll collapse to one edge.
        h.note_eeprom_fallback();
        h.note_unrecoverable();
        assert_eq!(
            h.take_transition(),
            Some((HealthState::Degraded, HealthState::Faulted))
        );
    }

    #[test]
    fn wire_code_round_trips() {
        for s in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Faulted,
            HealthState::Recovering,
        ] {
            assert_eq!(HealthState::from_code(s.code()), s);
        }
        // High bits are masked, never invalid.
        assert_eq!(HealthState::from_code(0b1110), HealthState::Faulted);
    }
}
