//! Structured observability events emitted by the conditioning firmware.
//!
//! The paper's prototype was judged by its *measured* behaviour; §6's
//! diffuse-deployment vision additionally demands that "any malfunction
//! behavior … be immediately localized and isolated". Between the headline
//! metrics and that vision sits a gap: nothing in the stack records *when*
//! the PI loop saturated, *when* the health supervisor changed its mind, or
//! *when* a calibration reload had to fall back to the mirror slot. This
//! module closes the gap on the firmware side.
//!
//! # Design
//!
//! `hotwire_core` stays dependency-free: the firmware does not know (or
//! care) what collects its events. It emits tick-stamped [`ObsEvent`]s
//! through the light [`Observer`] trait, whose methods all have no-op
//! defaults; the evaluation rig (`hotwire_rig::obs`) installs a bounded
//! event log per run, and a meter without an observer pays only an
//! `Option` check per event site — zero allocation, zero bookkeeping.
//!
//! # Determinism
//!
//! Events are part of the instrument's deterministic output: they are a
//! pure function of the meter's inputs and seed, stamped with the control
//! tick (never wall-clock), so two runs of equal specs produce equal event
//! streams — the property the rig's jobs-invariance tests assert.

use crate::health::HealthState;

/// Which calibration EEPROM slot a reload served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum CalSlot {
    /// The primary record passed its CRC.
    Primary,
    /// The primary failed; the redundant mirror served the reload.
    Redundant,
}

/// What happened. Variants carry only plain copyable data so events stay
/// cheap to record and trivially comparable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum EventKind {
    /// The PI loop pinned the supply DAC at a rail for the saturation
    /// monitor's window (entry edge).
    PiSaturationEnter,
    /// The supply code came off the rail (exit edge).
    PiSaturationExit,
    /// The graceful-degradation supervisor changed state.
    HealthTransition {
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
    /// The ISIF watchdog expired (frozen acquisition front end); a soft
    /// reset follows on the same tick.
    WatchdogExpired,
    /// The fault injector engaged a scheduled fault (rig-side; the label is
    /// the fault kind's stable snake_case name).
    FaultActivated {
        /// Stable name of the fault kind.
        fault: &'static str,
    },
    /// The fault injector reverted a windowed fault.
    FaultCleared {
        /// Stable name of the fault kind.
        fault: &'static str,
    },
    /// A calibration reload succeeded from the given slot.
    CalibrationReloaded {
        /// The slot that served the reload.
        slot: CalSlot,
    },
    /// Every calibration copy was missing or corrupt; the instrument is
    /// `Faulted`.
    CalibrationReloadFailed,
    /// The telemetry receiver dropped a frame on a CRC mismatch.
    UartFrameError,
    /// A maintenance policy re-zeroed the drift baseline (the current
    /// operating point becomes the new reference; no stored calibration
    /// changes).
    CalibrationReZeroed,
    /// A maintenance policy refit the active calibration from the
    /// instrument's recent drift estimate (in RAM only — persistence is a
    /// separate, wear-limited action).
    CalibrationRefit,
    /// A maintenance policy persisted the active calibration to EEPROM
    /// (primary + redundant slot, one write cycle each).
    CalibrationPersisted,
}

impl EventKind {
    /// Stable snake_case name of the variant — the aggregation key used by
    /// counters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PiSaturationEnter => "pi_saturation_enter",
            EventKind::PiSaturationExit => "pi_saturation_exit",
            EventKind::HealthTransition { .. } => "health_transition",
            EventKind::WatchdogExpired => "watchdog_expired",
            EventKind::FaultActivated { .. } => "fault_activated",
            EventKind::FaultCleared { .. } => "fault_cleared",
            EventKind::CalibrationReloaded { .. } => "calibration_reloaded",
            EventKind::CalibrationReloadFailed => "calibration_reload_failed",
            EventKind::UartFrameError => "uart_frame_error",
            EventKind::CalibrationReZeroed => "calibration_re_zeroed",
            EventKind::CalibrationRefit => "calibration_refit",
            EventKind::CalibrationPersisted => "calibration_persisted",
        }
    }
}

/// One observability event, stamped with the control tick it occurred on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ObsEvent {
    /// Control-tick index at emission ([`FlowMeter::control_ticks`]).
    ///
    /// [`FlowMeter::control_ticks`]: crate::FlowMeter::control_ticks
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A sink for firmware observability events.
///
/// # Contract
///
/// * Every method has a no-op default, so `impl Observer for MySink {}` is
///   a valid (blind) observer and implementors override only what they
///   need.
/// * Recording must be infallible and cheap: the meter calls
///   [`record`](Observer::record) from its control path. Sinks that bound
///   their memory drop events and report the loss via
///   [`dropped`](Observer::dropped) instead of blocking or reallocating
///   without bound.
/// * `Send + Debug` because the meter that owns the sink is itself `Send`
///   (the campaign executor moves meters into worker threads) and `Debug`.
/// * Observers must not influence behaviour: a meter with an observer and
///   a meter without one compute bit-identical measurements. Observation
///   is read-only by construction — the trait receives events, never the
///   meter.
pub trait Observer: Send + std::fmt::Debug {
    /// Accepts one event. Default: discard it.
    fn record(&mut self, event: ObsEvent) {
        let _ = event;
    }

    /// Removes and returns everything recorded so far, oldest first.
    /// Default: nothing was kept, so nothing comes back.
    fn drain(&mut self) -> Vec<ObsEvent> {
        Vec::new()
    }

    /// How many events the sink discarded (e.g. for capacity). Default: 0.
    fn dropped(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The no-op defaults make an empty impl a valid blind observer.
    #[derive(Debug)]
    struct Blind;
    impl Observer for Blind {}

    #[test]
    fn default_observer_is_a_no_op() {
        let mut blind = Blind;
        blind.record(ObsEvent {
            tick: 1,
            kind: EventKind::WatchdogExpired,
        });
        assert!(blind.drain().is_empty());
        assert_eq!(blind.dropped(), 0);
    }

    #[test]
    fn event_names_are_stable_and_distinct() {
        let kinds = [
            EventKind::PiSaturationEnter,
            EventKind::PiSaturationExit,
            EventKind::HealthTransition {
                from: HealthState::Healthy,
                to: HealthState::Degraded,
            },
            EventKind::WatchdogExpired,
            EventKind::FaultActivated { fault: "adc_stuck" },
            EventKind::FaultCleared { fault: "adc_stuck" },
            EventKind::CalibrationReloaded {
                slot: CalSlot::Redundant,
            },
            EventKind::CalibrationReloadFailed,
            EventKind::UartFrameError,
            EventKind::CalibrationReZeroed,
            EventKind::CalibrationRefit,
            EventKind::CalibrationPersisted,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate event names");
    }

    #[test]
    fn events_compare_by_value() {
        let a = ObsEvent {
            tick: 7,
            kind: EventKind::CalibrationReloaded {
                slot: CalSlot::Primary,
            },
        };
        assert_eq!(a, a);
        assert_ne!(a, ObsEvent { tick: 8, ..a });
    }
}
