//! Property-based tests of the platform blocks: storage and framing must
//! round-trip arbitrary payloads and survive arbitrary corruption.

use hotwire_isif::eeprom::{crc16_ccitt, CalibrationStore, SLOT_CAPACITY, SLOT_COUNT};
use hotwire_isif::uart::{encode_frame, FrameDecoder, MAX_PAYLOAD};
use hotwire_isif::IsifError;
use proptest::prelude::*;

proptest! {
    #[test]
    fn eeprom_round_trips_any_payload(
        slot in 0usize..SLOT_COUNT,
        payload in prop::collection::vec(any::<u8>(), 0..=SLOT_CAPACITY),
    ) {
        let mut store = CalibrationStore::new();
        store.write_record(slot, &payload).unwrap();
        prop_assert_eq!(store.read_record(slot).unwrap(), &payload[..]);
    }

    #[test]
    fn eeprom_detects_any_single_byte_corruption(
        payload in prop::collection::vec(any::<u8>(), 4..=SLOT_CAPACITY),
        byte in 0usize..SLOT_CAPACITY,
    ) {
        prop_assume!(byte < payload.len());
        let mut store = CalibrationStore::new();
        store.write_record(0, &payload).unwrap();
        store.corrupt(0, byte);
        let result = store.read_record(0);
        let corrupt = matches!(result, Err(IsifError::CorruptRecord { slot: 0 }));
        prop_assert!(corrupt, "corruption not detected");
    }

    #[test]
    fn f64_records_round_trip(values in prop::collection::vec(-1e12f64..1e12, 0..8)) {
        let payload = CalibrationStore::encode_f64s(&values);
        let back = CalibrationStore::decode_f64s(&payload).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn uart_round_trips_any_payload(payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD)) {
        let wire = encode_frame(&payload).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in wire {
            if let Some(frame) = dec.push(b) {
                got = Some(frame);
            }
        }
        prop_assert_eq!(got, Some(payload));
    }

    #[test]
    fn uart_survives_garbage_followed_by_idle_flush(
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        payload in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Garbage may contain an accidental SOH whose false length field
        // would swallow real frames; the idle-line flush between bursts (as
        // a real UART receiver implements) restores framing deterministically.
        let mut dec = FrameDecoder::new();
        for b in garbage {
            let _ = dec.push(b);
        }
        dec.flush(); // inter-frame idle detected
        let mut frames = Vec::new();
        for b in encode_frame(&payload).unwrap() {
            if let Some(f) = dec.push(b) {
                frames.push(f);
            }
        }
        prop_assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn crc16_detects_single_bit_flips(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        bit in 0usize..512,
    ) {
        prop_assume!(bit < payload.len() * 8);
        let crc = crc16_ccitt(&payload);
        let mut corrupted = payload.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(crc, crc16_ccitt(&corrupted));
    }
}
