//! Property-based tests of the platform blocks: storage and framing must
//! round-trip arbitrary payloads and survive arbitrary corruption.

use hotwire_isif::eeprom::{crc16_ccitt, CalibrationStore, SLOT_CAPACITY, SLOT_COUNT};
use hotwire_isif::uart::{encode_frame, FrameDecoder, MAX_PAYLOAD};
use hotwire_isif::IsifError;
use proptest::prelude::*;

proptest! {
    #[test]
    fn eeprom_round_trips_any_payload(
        slot in 0usize..SLOT_COUNT,
        payload in prop::collection::vec(any::<u8>(), 0..=SLOT_CAPACITY),
    ) {
        let mut store = CalibrationStore::new();
        store.write_record(slot, &payload).unwrap();
        prop_assert_eq!(store.read_record(slot).unwrap(), &payload[..]);
    }

    #[test]
    fn eeprom_detects_any_single_byte_corruption(
        payload in prop::collection::vec(any::<u8>(), 4..=SLOT_CAPACITY),
        byte in 0usize..SLOT_CAPACITY,
    ) {
        prop_assume!(byte < payload.len());
        let mut store = CalibrationStore::new();
        store.write_record(0, &payload).unwrap();
        store.corrupt(0, byte);
        let result = store.read_record(0);
        let corrupt = matches!(result, Err(IsifError::CorruptRecord { slot: 0 }));
        prop_assert!(corrupt, "corruption not detected");
    }

    #[test]
    fn f64_records_round_trip(values in prop::collection::vec(-1e12f64..1e12, 0..8)) {
        let payload = CalibrationStore::encode_f64s(&values);
        let back = CalibrationStore::decode_f64s(&payload).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn uart_round_trips_any_payload(payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD)) {
        let wire = encode_frame(&payload).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in wire {
            if let Some(frame) = dec.push(b) {
                got = Some(frame);
            }
        }
        prop_assert_eq!(got, Some(payload));
    }

    #[test]
    fn uart_survives_garbage_followed_by_idle_flush(
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        payload in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Garbage may contain an accidental SOH whose false length field
        // would swallow real frames; the idle-line flush between bursts (as
        // a real UART receiver implements) restores framing deterministically.
        let mut dec = FrameDecoder::new();
        for b in garbage {
            let _ = dec.push(b);
        }
        dec.flush(); // inter-frame idle detected
        let mut frames = Vec::new();
        for b in encode_frame(&payload).unwrap() {
            if let Some(f) = dec.push(b) {
                frames.push(f);
            }
        }
        prop_assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn uart_embedded_frame_always_recovered(
        prefix in prop::collection::vec(any::<u8>(), 0..48),
        payload in prop::collection::vec(any::<u8>(), 0..48),
        suffix in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        // Any byte stream containing an intact encoded frame must yield
        // that frame after at most one idle flush, no matter what corrupt
        // prefix/suffix surrounds it — including prefixes ending in a
        // spurious SOH whose false length field spans the genuine frame
        // (the swallowing bug the re-hunt fix closes).
        let frame = encode_frame(&payload).unwrap();
        let mut wire = prefix.clone();
        wire.extend(&frame);
        wire.extend(&suffix);
        let mut dec = FrameDecoder::new();
        let mut frames: Vec<Vec<u8>> = wire.iter().filter_map(|&b| dec.push(b)).collect();
        frames.extend(dec.flush()); // the single idle flush
        prop_assert!(
            frames.contains(&payload),
            "intact frame lost: prefix {prefix:02x?}, payload {payload:02x?}, suffix {suffix:02x?}"
        );
    }

    #[test]
    fn uart_byte_ledger_is_exact(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..8),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..4),
    ) {
        // Conservation law of the decode counters: after a final flush,
        // every pushed byte was either skipped while hunting (resyncs),
        // part of a decoded frame (payload + 4 framing bytes), or
        // discarded — nothing vanishes from LinkStats, which is exactly
        // the accounting hole the flush() fix closed.
        let mut wire = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            wire.extend(chunk);
            if let Some(p) = payloads.get(i) {
                wire.extend(encode_frame(p).unwrap());
            }
        }
        let mut dec = FrameDecoder::new();
        let mut decoded: Vec<Vec<u8>> = wire.iter().filter_map(|&b| dec.push(b)).collect();
        decoded.extend(dec.flush());
        let stats = dec.stats();
        let frame_bytes: u64 = decoded.iter().map(|p| p.len() as u64 + 4).sum();
        prop_assert_eq!(
            wire.len() as u64,
            stats.resyncs + stats.discarded_bytes + frame_bytes,
            "ledger mismatch: {:?} over wire {:02x?}", stats, wire
        );
        prop_assert_eq!(stats.good_frames, decoded.len() as u64);
    }

    #[test]
    fn crc16_detects_single_bit_flips(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        bit in 0usize..512,
    ) {
        prop_assume!(bit < payload.len() * 8);
        let crc = crc16_ccitt(&payload);
        let mut corrupted = payload.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(crc, crc16_ccitt(&corrupted));
    }
}
