//! The configuration register file.
//!
//! The real chip configures its analog blocks through digitally-controlled
//! trimming bits carried over a safe digital/analog boundary (the paper's
//! "JLCC approach"). The emulation keeps a flat 16-bit-addressed space of
//! 32-bit registers with a change journal, so experiment code can snapshot
//! and replay configurations exactly as a production tester would.

use crate::IsifError;
use std::collections::BTreeMap;

/// Well-known register addresses (one block per 0x100 window).
pub mod addr {
    /// Channel 0 readout-mode select.
    pub const CH0_MODE: u16 = 0x0000;
    /// Channel 0 in-amp gain code.
    pub const CH0_GAIN: u16 = 0x0004;
    /// Channel 0 anti-alias corner code.
    pub const CH0_FILTER: u16 = 0x0008;
    /// Channel stride: channel `n` register = `CH0_* + n·0x100`.
    pub const CHANNEL_STRIDE: u16 = 0x0100;
    /// Decimation ratio register.
    pub const DECIMATION: u16 = 0x0400;
    /// Supply-DAC code (12-bit).
    pub const SUPPLY_DAC: u16 = 0x0404;
    /// Watchdog period in control ticks.
    pub const WATCHDOG_PERIOD: u16 = 0x0408;
    /// Pulsed-drive duty register (per-mille).
    pub const PULSE_DUTY: u16 = 0x040C;
    /// Last mapped address (exclusive).
    pub const SPACE_END: u16 = 0x0500;
}

/// A flat register file with change journaling.
///
/// ```
/// use hotwire_isif::regs::{addr, RegisterFile};
///
/// let mut regs = RegisterFile::new();
/// regs.write(addr::SUPPLY_DAC, 2048)?;
/// assert_eq!(regs.read(addr::SUPPLY_DAC)?, 2048);
/// assert_eq!(regs.journal().len(), 1);
/// # Ok::<(), hotwire_isif::IsifError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegisterFile {
    values: BTreeMap<u16, u32>,
    journal: Vec<(u16, u32)>,
}

impl RegisterFile {
    /// Creates an empty register file (all registers read as zero).
    pub fn new() -> Self {
        RegisterFile::default()
    }

    fn check(address: u16) -> Result<(), IsifError> {
        if address >= addr::SPACE_END || address % 4 != 0 {
            return Err(IsifError::UnmappedRegister { address });
        }
        Ok(())
    }

    /// Reads a register (unwritten registers read as zero).
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::UnmappedRegister`] for an address outside the
    /// mapped space or not 4-byte aligned.
    pub fn read(&self, address: u16) -> Result<u32, IsifError> {
        Self::check(address)?;
        Ok(self.values.get(&address).copied().unwrap_or(0))
    }

    /// Writes a register and journals the change.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::UnmappedRegister`] for an invalid address.
    pub fn write(&mut self, address: u16, value: u32) -> Result<(), IsifError> {
        Self::check(address)?;
        self.values.insert(address, value);
        self.journal.push((address, value));
        Ok(())
    }

    /// The ordered list of `(address, value)` writes since creation or the
    /// last [`clear_journal`](Self::clear_journal).
    pub fn journal(&self) -> &[(u16, u32)] {
        &self.journal
    }

    /// Clears the change journal (keeps values).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// Snapshots all current register values.
    pub fn snapshot(&self) -> Vec<(u16, u32)> {
        self.values.iter().map(|(&a, &v)| (a, v)).collect()
    }

    /// Replays a snapshot (journaling each write).
    ///
    /// # Errors
    ///
    /// Returns the first invalid address encountered; prior writes stick.
    pub fn restore(&mut self, snapshot: &[(u16, u32)]) -> Result<(), IsifError> {
        for &(a, v) in snapshot {
            self.write(a, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_and_default_zero() {
        let mut r = RegisterFile::new();
        assert_eq!(r.read(addr::CH0_GAIN).unwrap(), 0);
        r.write(addr::CH0_GAIN, 50).unwrap();
        assert_eq!(r.read(addr::CH0_GAIN).unwrap(), 50);
    }

    #[test]
    fn channel_stride_addresses_are_mapped() {
        let mut r = RegisterFile::new();
        for ch in 0..4u16 {
            let a = addr::CH0_MODE + ch * addr::CHANNEL_STRIDE;
            r.write(a, ch as u32).unwrap();
            assert_eq!(r.read(a).unwrap(), ch as u32);
        }
    }

    #[test]
    fn rejects_unmapped_and_unaligned() {
        let mut r = RegisterFile::new();
        assert!(r.write(addr::SPACE_END, 1).is_err());
        assert!(r.write(0x0001, 1).is_err());
        assert!(r.read(0xFFFC).is_err());
    }

    #[test]
    fn journal_records_order() {
        let mut r = RegisterFile::new();
        r.write(addr::CH0_MODE, 1).unwrap();
        r.write(addr::SUPPLY_DAC, 100).unwrap();
        r.write(addr::CH0_MODE, 2).unwrap();
        assert_eq!(
            r.journal(),
            &[
                (addr::CH0_MODE, 1),
                (addr::SUPPLY_DAC, 100),
                (addr::CH0_MODE, 2)
            ]
        );
        r.clear_journal();
        assert!(r.journal().is_empty());
        // Values survive journal clearing.
        assert_eq!(r.read(addr::CH0_MODE).unwrap(), 2);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut r = RegisterFile::new();
        r.write(addr::CH0_GAIN, 50).unwrap();
        r.write(addr::DECIMATION, 256).unwrap();
        let snap = r.snapshot();
        let mut fresh = RegisterFile::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.read(addr::CH0_GAIN).unwrap(), 50);
        assert_eq!(fresh.read(addr::DECIMATION).unwrap(), 256);
    }
}
