//! The assembled ISIF platform.
//!
//! Owns the four input channels, the sensor-driving DACs, the configuration
//! registers, the software-IP scheduler, the watchdog and the calibration
//! EEPROM — the complete chip of the paper's Fig. 3, minus the sensor, which
//! lives in `hotwire-physics` and is wired up by the conditioning firmware in
//! `hotwire-core`.

use crate::channel::{ChannelConfig, InputChannel};
use crate::eeprom::CalibrationStore;
use crate::regs::RegisterFile;
use crate::sched::Scheduler;
use crate::timer::Watchdog;
use crate::IsifError;
use hotwire_afe::dac::ThermometerDac;
use hotwire_units::{Hertz, Volts};

/// Number of analog input channels on the chip.
pub const CHANNEL_COUNT: usize = 4;

/// Default LEON cycle budget per control tick (40 MHz CPU, 1 kHz control
/// rate).
pub const DEFAULT_CYCLE_BUDGET: u64 = 40_000;

/// The assembled mixed-signal platform.
#[derive(Debug)]
pub struct IsifPlatform {
    modulator_rate: Hertz,
    channels: [Option<InputChannel>; CHANNEL_COUNT],
    supply_dac: ThermometerDac,
    supply_code: u32,
    aux_dac: ThermometerDac,
    aux_code: u32,
    regs: RegisterFile,
    scheduler: Scheduler,
    watchdog: Watchdog,
    eeprom: CalibrationStore,
}

impl IsifPlatform {
    /// Builds a platform clocked at `modulator_rate`, with ideal 12-bit
    /// supply and 10-bit auxiliary DACs (use
    /// [`set_supply_dac`](Self::set_supply_dac) to install a mismatched
    /// one).
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::Config`] if any block rejects its defaults.
    pub fn new(modulator_rate: Hertz) -> Result<Self, IsifError> {
        Ok(IsifPlatform {
            modulator_rate,
            channels: [None, None, None, None],
            supply_dac: ThermometerDac::ideal(12, Volts::new(5.0))?,
            supply_code: 0,
            aux_dac: ThermometerDac::ideal(10, Volts::new(5.0))?,
            aux_code: 0,
            regs: RegisterFile::new(),
            scheduler: Scheduler::new(DEFAULT_CYCLE_BUDGET)?,
            watchdog: Watchdog::new(16),
            eeprom: CalibrationStore::new(),
        })
    }

    /// The ΣΔ modulator clock.
    #[inline]
    pub fn modulator_rate(&self) -> Hertz {
        self.modulator_rate
    }

    /// Installs a channel configuration into slot `index`.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::NoSuchChannel`] for an index ≥ 4 or
    /// [`IsifError::Config`] for invalid parameters.
    pub fn configure_channel(
        &mut self,
        index: usize,
        config: ChannelConfig,
    ) -> Result<(), IsifError> {
        if index >= CHANNEL_COUNT {
            return Err(IsifError::NoSuchChannel { index });
        }
        self.channels[index] = Some(InputChannel::new(config, self.modulator_rate)?);
        Ok(())
    }

    /// Borrows a configured channel.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::NoSuchChannel`] if the slot is out of range or
    /// unconfigured.
    pub fn channel_mut(&mut self, index: usize) -> Result<&mut InputChannel, IsifError> {
        self.channels
            .get_mut(index)
            .and_then(|c| c.as_mut())
            .ok_or(IsifError::NoSuchChannel { index })
    }

    /// Number of configured channels.
    pub fn configured_channels(&self) -> usize {
        self.channels.iter().filter(|c| c.is_some()).count()
    }

    /// Replaces the supply DAC (e.g. with a mismatched instance).
    pub fn set_supply_dac(&mut self, dac: ThermometerDac) {
        self.supply_dac = dac;
        self.supply_code = self.supply_code.min(self.supply_dac.max_code());
    }

    /// Writes the bridge-supply DAC code.
    pub fn set_supply_code(&mut self, code: u32) {
        self.supply_code = code.min(self.supply_dac.max_code());
    }

    /// The current bridge-supply DAC code.
    #[inline]
    pub fn supply_code(&self) -> u32 {
        self.supply_code
    }

    /// The analog bridge-supply voltage for the current code.
    pub fn supply_voltage(&self) -> Volts {
        self.supply_dac.convert(self.supply_code)
    }

    /// The supply DAC itself (resolution queries).
    #[inline]
    pub fn supply_dac(&self) -> &ThermometerDac {
        &self.supply_dac
    }

    /// Writes the auxiliary DAC code.
    pub fn set_aux_code(&mut self, code: u32) {
        self.aux_code = code.min(self.aux_dac.max_code());
    }

    /// The auxiliary DAC output voltage.
    pub fn aux_voltage(&self) -> Volts {
        self.aux_dac.convert(self.aux_code)
    }

    /// The configuration register file.
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Read-only register file access.
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// The software-IP scheduler.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// The watchdog.
    pub fn watchdog_mut(&mut self) -> &mut Watchdog {
        &mut self.watchdog
    }

    /// Read-only watchdog access (reset-count and arming queries).
    #[inline]
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// The calibration EEPROM.
    pub fn eeprom_mut(&mut self) -> &mut CalibrationStore {
        &mut self.eeprom
    }

    /// Read-only EEPROM access.
    pub fn eeprom(&self) -> &CalibrationStore {
        &self.eeprom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AnalogInput;
    use rand::SeedableRng;

    fn platform() -> IsifPlatform {
        IsifPlatform::new(Hertz::from_kilohertz(256.0)).unwrap()
    }

    #[test]
    fn channel_configuration_lifecycle() {
        let mut p = platform();
        assert_eq!(p.configured_channels(), 0);
        assert!(p.channel_mut(0).is_err());
        p.configure_channel(0, ChannelConfig::maf_bridge()).unwrap();
        assert_eq!(p.configured_channels(), 1);
        assert!(p.channel_mut(0).is_ok());
        assert!(matches!(
            p.configure_channel(7, ChannelConfig::maf_bridge()),
            Err(IsifError::NoSuchChannel { index: 7 })
        ));
    }

    #[test]
    fn channel_converts_through_platform() {
        let mut p = platform();
        p.configure_channel(1, ChannelConfig::maf_bridge()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let chan = p.channel_mut(1).unwrap();
        let mut outputs = 0;
        for _ in 0..256 * 5 {
            if chan
                .sample(AnalogInput::Differential(Volts::ZERO), 0.0, &mut rng)
                .is_some()
            {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 5);
    }

    #[test]
    fn supply_dac_codes_clamp() {
        let mut p = platform();
        p.set_supply_code(99_999);
        assert_eq!(p.supply_code(), 4095);
        assert!((p.supply_voltage().get() - 5.0).abs() < 1e-9);
        p.set_supply_code(0);
        assert_eq!(p.supply_voltage().get(), 0.0);
    }

    #[test]
    fn supply_resolution_is_millivolt_scale() {
        let p = platform();
        let lsb = p.supply_dac().lsb();
        assert!((lsb.get() - 5.0 / 4095.0).abs() < 1e-9);
    }

    #[test]
    fn aux_dac_is_10_bits() {
        let mut p = platform();
        p.set_aux_code(1023);
        assert!((p.aux_voltage().get() - 5.0).abs() < 1e-9);
        p.set_aux_code(2000);
        assert!((p.aux_voltage().get() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn subsystems_reachable() {
        let mut p = platform();
        p.regs_mut()
            .write(crate::regs::addr::DECIMATION, 256)
            .unwrap();
        assert_eq!(p.regs().read(crate::regs::addr::DECIMATION).unwrap(), 256);
        p.eeprom_mut().write_record(0, b"cal").unwrap();
        assert_eq!(p.eeprom().read_record(0).unwrap(), b"cal");
        p.watchdog_mut().kick();
        assert_eq!(p.scheduler_mut().tick(), 0);
    }
}
