//! CRC-protected calibration storage — ISIF's EEPROM.
//!
//! Calibration (King's-law constants, bridge trims) must survive power
//! cycles and be trusted: each record slot carries a CRC-16/CCITT over its
//! payload, checked on every read.

use crate::IsifError;

/// Number of record slots.
pub const SLOT_COUNT: usize = 8;
/// Payload capacity of one slot in bytes.
pub const SLOT_CAPACITY: usize = 64;

/// Computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

#[derive(Debug, Clone)]
struct Slot {
    len: usize,
    crc: u16,
    data: [u8; SLOT_CAPACITY],
    written: bool,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            len: 0,
            crc: 0,
            data: [0; SLOT_CAPACITY],
            written: false,
        }
    }
}

/// A slot-organized calibration EEPROM with per-record CRC.
///
/// ```
/// use hotwire_isif::CalibrationStore;
///
/// let mut eeprom = CalibrationStore::new();
/// eeprom.write_record(0, b"king a=3.5e-4")?;
/// assert_eq!(eeprom.read_record(0)?, b"king a=3.5e-4");
/// # Ok::<(), hotwire_isif::IsifError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CalibrationStore {
    slots: [Slot; SLOT_COUNT],
    write_cycles: u64,
    slot_write_cycles: [u64; SLOT_COUNT],
}

impl CalibrationStore {
    /// Creates an erased store.
    pub fn new() -> Self {
        CalibrationStore::default()
    }

    /// Writes a record into `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::NoSuchChannel`]-style slot error for an invalid
    /// slot, or [`IsifError::RecordTooLarge`] if the payload exceeds
    /// [`SLOT_CAPACITY`].
    pub fn write_record(&mut self, slot: usize, payload: &[u8]) -> Result<(), IsifError> {
        let s = self
            .slots
            .get_mut(slot)
            .ok_or(IsifError::EmptySlot { slot })?;
        if payload.len() > SLOT_CAPACITY {
            return Err(IsifError::RecordTooLarge {
                size: payload.len(),
                capacity: SLOT_CAPACITY,
            });
        }
        s.data[..payload.len()].copy_from_slice(payload);
        s.len = payload.len();
        s.crc = crc16_ccitt(payload);
        s.written = true;
        self.write_cycles += 1;
        self.slot_write_cycles[slot] += 1;
        Ok(())
    }

    /// Reads the record in `slot`, verifying its CRC.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::EmptySlot`] if nothing was written, or
    /// [`IsifError::CorruptRecord`] if the CRC check fails.
    pub fn read_record(&self, slot: usize) -> Result<&[u8], IsifError> {
        let s = self.slots.get(slot).ok_or(IsifError::EmptySlot { slot })?;
        if !s.written {
            return Err(IsifError::EmptySlot { slot });
        }
        let payload = &s.data[..s.len];
        if crc16_ccitt(payload) != s.crc {
            return Err(IsifError::CorruptRecord { slot });
        }
        Ok(payload)
    }

    /// Reads the first slot in `slots` whose record passes its CRC check,
    /// returning the winning slot index alongside the payload.
    ///
    /// This is the recoverable-read primitive for redundant storage: callers
    /// list a primary slot followed by its mirrors, and a corrupt or empty
    /// primary degrades to the next copy instead of a dead end.
    ///
    /// # Errors
    ///
    /// Returns the *first* slot's error when every listed slot fails (the
    /// primary's failure is the most diagnostic), or
    /// [`IsifError::EmptySlot`] for an empty `slots` list.
    pub fn read_record_any(&self, slots: &[usize]) -> Result<(usize, &[u8]), IsifError> {
        let mut first_err = None;
        for &slot in slots {
            match self.read_record(slot) {
                Ok(payload) => return Ok((slot, payload)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err.unwrap_or(IsifError::EmptySlot { slot: 0 }))
    }

    /// Erases one slot.
    pub fn erase(&mut self, slot: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            *s = Slot::default();
        }
    }

    /// Total write cycles (endurance bookkeeping).
    #[inline]
    pub fn write_cycles(&self) -> u64 {
        self.write_cycles
    }

    /// Write cycles accumulated by one slot (per-slot wear accounting).
    ///
    /// EEPROM endurance is a per-cell limit, not a device-global one: a
    /// policy that hammers the primary slot while barely touching the
    /// mirror wears the primary out first even though the global counter
    /// looks fine. Out-of-range slots report 0.
    #[inline]
    pub fn slot_write_cycles(&self, slot: usize) -> u64 {
        self.slot_write_cycles.get(slot).copied().unwrap_or(0)
    }

    /// The per-slot wear table, indexed by slot.
    #[inline]
    pub fn wear_table(&self) -> &[u64; SLOT_COUNT] {
        &self.slot_write_cycles
    }

    /// The highest per-slot write-cycle count — the wear-levelling figure
    /// an event-triggered persistence policy rate-limits against.
    #[inline]
    pub fn max_slot_wear(&self) -> u64 {
        self.slot_write_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Deliberately corrupts a byte of a slot (for fault-injection tests).
    pub fn corrupt(&mut self, slot: usize, byte: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            if byte < s.len {
                s.data[byte] ^= 0xFF;
            }
        }
    }

    /// Serializes an `f64` array into a record payload (little-endian).
    pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 8);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a record payload back into `f64`s.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::FrameError`] if the payload length is not a
    /// multiple of 8.
    pub fn decode_f64s(payload: &[u8]) -> Result<Vec<f64>, IsifError> {
        if payload.len() % 8 != 0 {
            return Err(IsifError::FrameError {
                reason: "payload length not a multiple of 8",
            });
        }
        Ok(payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn write_read_round_trip() {
        let mut e = CalibrationStore::new();
        e.write_record(3, b"hello").unwrap();
        assert_eq!(e.read_record(3).unwrap(), b"hello");
        assert_eq!(e.write_cycles(), 1);
    }

    #[test]
    fn empty_slot_reports() {
        let e = CalibrationStore::new();
        assert!(matches!(e.read_record(0), Err(IsifError::EmptySlot { .. })));
        assert!(matches!(
            e.read_record(99),
            Err(IsifError::EmptySlot { .. })
        ));
    }

    #[test]
    fn per_slot_wear_is_counted() {
        let mut e = CalibrationStore::new();
        e.write_record(0, b"a").unwrap();
        e.write_record(0, b"b").unwrap();
        e.write_record(7, b"m").unwrap();
        assert_eq!(e.write_cycles(), 3);
        assert_eq!(e.slot_write_cycles(0), 2);
        assert_eq!(e.slot_write_cycles(7), 1);
        assert_eq!(e.slot_write_cycles(3), 0);
        assert_eq!(e.slot_write_cycles(99), 0);
        assert_eq!(e.max_slot_wear(), 2);
        assert_eq!(e.wear_table()[0], 2);
        // Erase clears the record but not the wear history — cells do not
        // heal.
        e.erase(0);
        assert_eq!(e.slot_write_cycles(0), 2);
    }

    #[test]
    fn corruption_is_detected() {
        let mut e = CalibrationStore::new();
        e.write_record(1, b"calibration").unwrap();
        e.corrupt(1, 4);
        assert!(matches!(
            e.read_record(1),
            Err(IsifError::CorruptRecord { slot: 1 })
        ));
    }

    #[test]
    fn read_record_any_falls_back_across_slots() {
        let mut e = CalibrationStore::new();
        e.write_record(0, b"primary").unwrap();
        e.write_record(7, b"mirror").unwrap();
        // Healthy primary wins.
        assert_eq!(
            e.read_record_any(&[0, 7]).unwrap(),
            (0, b"primary" as &[u8])
        );
        // Corrupt primary degrades to the mirror.
        e.corrupt(0, 2);
        assert_eq!(e.read_record_any(&[0, 7]).unwrap(), (7, b"mirror" as &[u8]));
        // Both gone: the primary's error surfaces.
        e.corrupt(7, 1);
        assert!(matches!(
            e.read_record_any(&[0, 7]),
            Err(IsifError::CorruptRecord { slot: 0 })
        ));
        assert!(matches!(
            e.read_record_any(&[]),
            Err(IsifError::EmptySlot { .. })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut e = CalibrationStore::new();
        let big = [0u8; SLOT_CAPACITY + 1];
        assert!(matches!(
            e.write_record(0, &big),
            Err(IsifError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn erase_empties_slot() {
        let mut e = CalibrationStore::new();
        e.write_record(0, b"x").unwrap();
        e.erase(0);
        assert!(matches!(e.read_record(0), Err(IsifError::EmptySlot { .. })));
    }

    #[test]
    fn f64_encoding_round_trip() {
        let values = [3.5e-4, 1.1e-3, 0.5, -273.15];
        let payload = CalibrationStore::encode_f64s(&values);
        let back = CalibrationStore::decode_f64s(&payload).unwrap();
        assert_eq!(back, values);
        assert!(CalibrationStore::decode_f64s(&payload[..7]).is_err());
    }

    #[test]
    fn f64_record_survives_eeprom() {
        let mut e = CalibrationStore::new();
        let king = [3.47e-4, 1.92e-3, 0.5];
        e.write_record(2, &CalibrationStore::encode_f64s(&king))
            .unwrap();
        let back = CalibrationStore::decode_f64s(e.read_record(2).unwrap()).unwrap();
        assert_eq!(back, king);
    }
}
